"""Registry store: publish/resolve, integrity, atomicity, gc."""

import json
import threading

import numpy as np
import pytest

from repro.nas import evaluate_topology
from repro.nn import Topology
from repro.registry import (
    ArtifactNotFoundError,
    ModelRegistry,
    RegistryError,
    atomic_directory,
    file_digest,
    read_manifest,
    verify_directory,
    write_manifest,
)


def make_package(rng, din=5, dout=2):
    x = rng.standard_normal((60, din))
    y = x @ rng.standard_normal((din, dout))
    return evaluate_topology(
        Topology(hidden=(8,), activation="tanh"), x, y, rng=rng
    ).package


def write_payload(staged, contents=b"payload bytes"):
    (staged / "blob.bin").write_bytes(contents)


class TestPublishResolve:
    def test_round_trip(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        ref = registry.publish(
            "m", "nn-model", write_payload, input_dim=3, output_dim=1,
            metrics={"f_e": 0.1},
        )
        assert ref.version == 1
        assert ref.kind == "nn-model"
        assert ref.metrics == {"f_e": 0.1}
        resolved = registry.resolve("m")
        assert resolved.version == 1
        assert resolved.payload_path("blob.bin").read_bytes() == b"payload bytes"

    def test_versions_are_dense_and_latest_wins(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for i in range(3):
            registry.publish("m", "nn-model", lambda d, i=i: write_payload(d, bytes([i])))
        assert registry.versions("m") == [1, 2, 3]
        assert registry.resolve("m").version == 3
        assert registry.resolve("m", 2).payload_path("blob.bin").read_bytes() == b"\x01"

    def test_unknown_name_and_version(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ArtifactNotFoundError):
            registry.resolve("absent")
        # ArtifactNotFoundError doubles as KeyError for dict-style callers
        with pytest.raises(KeyError):
            registry.resolve("absent")
        registry.publish("m", "nn-model", write_payload)
        with pytest.raises(ArtifactNotFoundError):
            registry.resolve("m", 9)

    def test_invalid_name_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError):
            registry.publish("../escape", "nn-model", write_payload)

    def test_names_skip_junk_dirs(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("real", "nn-model", write_payload)
        (tmp_path / ".tmp-orphan").mkdir()
        (tmp_path / "real" / ".tmp-abandoned").mkdir()
        assert registry.names() == ["real"]

    def test_concurrent_publishers_get_distinct_versions(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        versions, barrier = [], threading.Barrier(4)
        lock = threading.Lock()

        def publish(i):
            barrier.wait()
            ref = registry.publish(
                "m", "nn-model", lambda d: write_payload(d, bytes([i]))
            )
            with lock:
                versions.append(ref.version)

        threads = [threading.Thread(target=publish, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(versions) == [1, 2, 3, 4]
        assert registry.versions("m") == [1, 2, 3, 4]


class TestIntegrity:
    def test_verify_ok(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("m", "nn-model", write_payload)
        result = registry.verify("m")
        assert result.ok
        assert registry.verify_all() == [result]

    def test_flipped_payload_byte_detected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        ref = registry.publish("m", "nn-model", write_payload)
        blob = ref.payload_path("blob.bin")
        raw = bytearray(blob.read_bytes())
        raw[0] ^= 0xFF
        blob.write_bytes(bytes(raw))
        result = registry.verify("m")
        assert not result.ok
        assert any("SHA-256 mismatch" in e for e in result.errors)

    def test_missing_payload_detected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        ref = registry.publish("m", "nn-model", write_payload)
        ref.payload_path("blob.bin").unlink()
        assert any("missing payload" in e for e in registry.verify("m").errors)

    def test_edited_manifest_detected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        ref = registry.publish("m", "nn-model", write_payload, metrics={"f_e": 0.1})
        manifest_path = ref.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["metrics"]["f_e"] = 0.0  # make the artifact look better
        manifest_path.write_text(json.dumps(manifest))
        assert any("digest mismatch" in e for e in registry.verify("m").errors)

    def test_file_digest_matches_manifest(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        ref = registry.publish("m", "nn-model", write_payload)
        recorded = ref.manifest["payloads"]["blob.bin"]["sha256"]
        assert file_digest(ref.payload_path("blob.bin")) == recorded


class TestAtomicity:
    def test_exception_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "artifact"
        with atomic_directory(target) as staged:
            (staged / "a.txt").write_text("v1")
        with pytest.raises(RuntimeError):
            with atomic_directory(target) as staged:
                (staged / "a.txt").write_text("partial v2")
                raise RuntimeError("died mid-save")
        assert (target / "a.txt").read_text() == "v1"
        assert not list(tmp_path.glob(".tmp-*"))

    def test_kill_mid_save_leaves_previous_package_loadable(self, rng, tmp_path):
        """Regression: SurrogatePackage.save used to write in place, so a
        kill mid-save left a half-written directory that load() crashed on.
        Now the save stages into a temp dir: dying mid-write (modeled by
        KeyboardInterrupt, which is what SIGINT delivers) leaves the old
        package bytes untouched and still loadable."""
        from repro.nas.package import SurrogatePackage

        package = make_package(rng)
        target = tmp_path / "pkg"
        package.save(target)
        before = (target / "surrogate.npz").read_bytes()

        original = SurrogatePackage.write_payloads

        def dying_write(self, directory):
            original(self, directory)  # payloads hit the temp dir...
            raise KeyboardInterrupt  # ...then the process dies

        SurrogatePackage.write_payloads = dying_write
        try:
            with pytest.raises(KeyboardInterrupt):
                make_package(rng).save(target)
        finally:
            SurrogatePackage.write_payloads = original

        assert (target / "surrogate.npz").read_bytes() == before
        reloaded = SurrogatePackage.load(target)
        x = rng.standard_normal((4, package.input_dim))
        np.testing.assert_array_equal(reloaded.predict(x), package.predict(x))

    def test_stray_tmp_dir_does_not_break_load_and_gc_sweeps_it(
        self, rng, tmp_path
    ):
        """A real SIGKILL leaves the .tmp-* staging dir behind; it must be
        invisible to readers and swept by gc."""
        registry = ModelRegistry(tmp_path)
        registry.publish("m", "nn-model", write_payload)
        stray = tmp_path / "m" / ".tmp-killed"
        stray.mkdir()
        (stray / "blob.bin").write_bytes(b"half-written")
        assert registry.versions("m") == [1]
        assert registry.resolve("m").version == 1
        removed = registry.gc(keep=1)
        assert stray in removed
        assert not stray.exists()


class TestLifecycle:
    def test_gc_keeps_newest(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for _ in range(4):
            registry.publish("m", "nn-model", write_payload)
        removed = registry.gc(keep=2)
        assert registry.versions("m") == [3, 4]
        assert len(removed) == 2
        with pytest.raises(ValueError):
            registry.gc(keep=0)

    def test_delete_one_version(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for _ in range(2):
            registry.publish("m", "nn-model", write_payload)
        registry.delete("m", 1)
        assert registry.versions("m") == [2]


class TestManifestHelpers:
    def test_write_read_round_trip(self, tmp_path):
        (tmp_path / "data.bin").write_bytes(b"\x00" * 16)
        manifest = write_manifest(
            tmp_path, name="m", version=7, kind="nn-model",
            input_dim=4, output_dim=2, dtype="float32",
        )
        assert read_manifest(tmp_path) == manifest
        assert manifest["payloads"]["data.bin"]["bytes"] == 16
        assert verify_directory(tmp_path) == []

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ArtifactNotFoundError):
            read_manifest(tmp_path)
        assert verify_directory(tmp_path)  # reported, not raised


class TestGcPinning:
    """Regression: gc used to count versions blindly, so a deployed or
    canaried version older than ``keep`` could be deleted out from under
    the serving layer."""

    def test_explicit_pins_survive(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for _ in range(4):
            registry.publish("m", "nn-model", write_payload)
        removed = registry.gc(keep=1, pinned={"m": [1, 2]})
        assert registry.versions("m") == [1, 2, 4]
        assert len(removed) == 1  # only v3 was collectable

    def test_manifest_declared_pins_survive(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for _ in range(3):
            registry.publish("m", "nn-model", write_payload)
        # a lifecycle-style artifact declares which model versions it needs
        registry.publish(
            "m-lifecycle", "lifecycle-state", write_payload,
            meta={"pins": [{"name": "m", "versions": [1]}]},
        )
        registry.gc(keep=1)
        # v1 is pinned by the lifecycle artifact; v2 was collectable
        assert registry.versions("m") == [1, 3]

    def test_only_latest_manifest_pins_apply(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for _ in range(3):
            registry.publish("m", "nn-model", write_payload)
        registry.publish(
            "m-lifecycle", "lifecycle-state", write_payload,
            meta={"pins": [{"name": "m", "versions": [1]}]},
        )
        registry.publish(
            "m-lifecycle", "lifecycle-state", write_payload,
            meta={"pins": [{"name": "m", "versions": [2]}]},
        )
        registry.gc(keep=1)
        # the newest lifecycle record pins v2; the stale v1 pin is gone
        assert registry.versions("m") == [2, 3]

    def test_malformed_pin_entries_ignored(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for _ in range(3):
            registry.publish("m", "nn-model", write_payload)
        registry.publish(
            "junk", "lifecycle-state", write_payload,
            meta={"pins": [{"oops": True}, "nonsense", {"name": "m", "versions": ["x"]}]},
        )
        registry.gc(keep=1)
        assert registry.versions("m") == [3]
