"""Legacy artifact formats keep loading through the registry codecs."""

import json

import numpy as np
import pytest

from repro.autoencoder import Autoencoder, load_autoencoder, save_autoencoder
from repro.nas import AutoencoderCache, evaluate_topology
from repro.nas.package import SurrogatePackage
from repro.nn import Topology, build_model, load_model, save_model
from repro.registry import ModelRegistry
from repro.registry.formats import load_autoencoder_params


def make_package(rng, din=6, dout=2):
    x = rng.standard_normal((60, din))
    y = x @ rng.standard_normal((din, dout))
    return evaluate_topology(
        Topology(hidden=(8,), activation="tanh"), x, y, rng=rng
    ).package


def legacy_model_npz(path, model, topology, din, dout):
    """Write the pre-registry ``save_model`` layout byte for byte."""
    meta = {
        "version": 2,
        "in_features": din,
        "out_features": dout,
        "topology": {
            "family": "mlp",
            "hidden": list(topology.hidden),
            "activation": topology.activation,
            "residual": topology.residual,
            "sparse_input": topology.sparse_input,
        },
    }
    arrays = {f"param_{i}": p.data for i, p in enumerate(model.parameters())}
    np.savez(path, meta=json.dumps(meta), **arrays)


class TestModelNpz:
    def test_legacy_save_model_file_loads(self, rng, tmp_path):
        topology = Topology(hidden=(4,), activation="relu")
        model = build_model(3, 2, topology)
        legacy_model_npz(tmp_path / "old.npz", model, topology, 3, 2)

        loaded, loaded_topology, din, dout = load_model(tmp_path / "old.npz")
        assert (din, dout) == (3, 2)
        assert loaded_topology == topology
        for got, want in zip(loaded.parameters(), model.parameters()):
            np.testing.assert_array_equal(got.data, want.data)

    def test_new_save_model_is_byte_identical_to_legacy_writer(
        self, rng, tmp_path
    ):
        """The registry codec must not drift from the historical layout:
        old readers (and old checkouts) keep loading new files."""
        topology = Topology(hidden=(4,), activation="relu")
        model = build_model(3, 2, topology)
        legacy_model_npz(tmp_path / "old.npz", model, topology, 3, 2)
        save_model(model, topology, 3, 2, tmp_path / "new.npz")
        assert (
            (tmp_path / "new.npz").read_bytes()
            == (tmp_path / "old.npz").read_bytes()
        )

    def test_version_1_mlp_file_loads(self, rng, tmp_path):
        topology = Topology(hidden=(4,), activation="relu")
        model = build_model(3, 2, topology)
        meta = {
            "version": 1,
            "in_features": 3,
            "out_features": 2,
            "hidden": [4],
            "activation": "relu",
            "residual": False,
            "sparse_input": False,
        }
        arrays = {f"param_{i}": p.data for i, p in enumerate(model.parameters())}
        np.savez(tmp_path / "v1.npz", meta=json.dumps(meta), **arrays)
        loaded, loaded_topology, _, _ = load_model(tmp_path / "v1.npz")
        assert loaded_topology == topology
        for got, want in zip(loaded.parameters(), model.parameters()):
            np.testing.assert_array_equal(got.data, want.data)


class TestLegacyPackageDir:
    def test_old_package_dir_loads(self, rng, tmp_path):
        """A directory written by the pre-registry SurrogatePackage.save
        (package.json + npz payloads, ``ae_param_i`` keys, no manifest)."""
        din, latent, dout = 6, 3, 2
        ae = Autoencoder(din, latent, depth=1)
        topology = Topology(hidden=(8,), activation="tanh")
        model = build_model(latent, dout, topology)
        package = SurrogatePackage(
            model=model, topology=topology, input_dim=din, output_dim=dout,
            autoencoder=ae,
        )

        legacy = tmp_path / "old_pkg"
        legacy.mkdir()
        legacy_model_npz(legacy / "surrogate.npz", model, topology, latent, dout)
        np.savez(
            legacy / "autoencoder.npz",
            **{f"ae_param_{i}": p.data for i, p in enumerate(ae.parameters())},
        )
        (legacy / "package.json").write_text(json.dumps({
            "input_dim": din,
            "output_dim": dout,
            "uses_reduction": True,
            "autoencoder": {
                "input_dim": din, "latent_dim": latent,
                "sparse_input": False, "depth": 1,
            },
        }))

        loaded = SurrogatePackage.load(legacy)
        x = rng.standard_normal((5, din))
        np.testing.assert_array_equal(loaded.predict(x), package.predict(x))

    def test_registry_artifact_round_trip_is_exact(self, rng, tmp_path):
        package = make_package(rng)
        registry = ModelRegistry(tmp_path / "registry")
        ref = package.publish(registry, "demo", metrics={"f_e": 0.02})
        loaded = SurrogatePackage.from_registry(registry, "demo")
        x = rng.standard_normal((7, package.input_dim))
        np.testing.assert_array_equal(loaded.predict(x), package.predict(x))
        assert ref.metrics["f_e"] == 0.02

    def test_verify_flags_flipped_byte_in_npz(self, rng, tmp_path):
        package = make_package(rng)
        registry = ModelRegistry(tmp_path / "registry")
        ref = package.publish(registry, "demo")
        assert registry.verify("demo").ok
        npz = ref.payload_path("surrogate.npz")
        raw = bytearray(npz.read_bytes())
        raw[len(raw) // 2] ^= 0x01  # flip one bit in the middle of a param
        npz.write_bytes(bytes(raw))
        result = registry.verify("demo")
        assert not result.ok
        assert any("surrogate.npz" in e for e in result.errors)


class TestAutoencoderFormats:
    def test_save_load_round_trip(self, rng, tmp_path):
        ae = Autoencoder(8, 3, depth=2)
        save_autoencoder(ae, tmp_path / "ae.npz", sigma=0.25)
        loaded = load_autoencoder(tmp_path / "ae.npz")
        x = rng.standard_normal((4, 8))
        np.testing.assert_array_equal(loaded.encode(x), ae.encode(x))

    def test_legacy_param_archive_loads_into_constructed_model(
        self, rng, tmp_path
    ):
        ae = Autoencoder(8, 3, depth=1)
        np.savez(
            tmp_path / "old_ae.npz",
            **{f"param_{i}": p.data for i, p in enumerate(ae.parameters())},
        )
        target = Autoencoder(8, 3, depth=1)
        load_autoencoder_params(target, tmp_path / "old_ae.npz")
        x = rng.standard_normal((4, 8))
        np.testing.assert_array_equal(target.encode(x), ae.encode(x))

    def test_embedded_meta_required_for_standalone_load(self, tmp_path):
        ae = Autoencoder(8, 3, depth=1)
        np.savez(
            tmp_path / "old_ae.npz",
            **{f"param_{i}": p.data for i, p in enumerate(ae.parameters())},
        )
        with pytest.raises(ValueError, match="no embedded meta"):
            load_autoencoder(tmp_path / "old_ae.npz")


class TestLegacyAECacheLayout:
    def test_pre_registry_cache_entry_loads(self, rng, tmp_path):
        """Entries written by the old flat ``ae_cache/<key>/meta.json``
        layout hit through the registry-backed cache."""
        ae = Autoencoder(10, 4, depth=1)
        z = rng.standard_normal((30, 4))
        key = "a" * 64

        legacy = tmp_path / "ae_cache" / key
        legacy.mkdir(parents=True)
        np.savez(
            legacy / "autoencoder.npz",
            **{f"param_{i}": p.data for i, p in enumerate(ae.parameters())},
        )
        np.save(legacy / "encoded.npy", z)
        (legacy / "meta.json").write_text(json.dumps({
            "input_dim": 10, "latent_dim": 4, "depth": 1,
            "activation": "relu", "sparse_input": False, "sigma": 0.5,
        }))

        cache = AutoencoderCache(tmp_path)
        entry = cache.get(key)
        assert entry is not None
        assert entry.sigma == 0.5
        np.testing.assert_array_equal(entry.z, z)
        x = rng.standard_normal((3, 10))
        np.testing.assert_array_equal(entry.autoencoder.encode(x), ae.encode(x))
