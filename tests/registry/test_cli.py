"""``repro registry`` CLI: list / inspect / verify / gc."""

import json

from repro.cli import main
from repro.registry import ModelRegistry


def write_payload(staged):
    (staged / "blob.bin").write_bytes(b"cli payload")


def publish_some(root, versions=2):
    registry = ModelRegistry(root)
    refs = [
        registry.publish(
            "demo", "nn-model", write_payload,
            input_dim=4, output_dim=2, metrics={"f_e": 0.05},
        )
        for _ in range(versions)
    ]
    return registry, refs


class TestList:
    def test_empty(self, tmp_path, capsys):
        assert main(["registry", "list", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_lists_every_version(self, tmp_path, capsys):
        publish_some(tmp_path)
        assert main(["registry", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "demo v1" in out and "demo v2" in out
        assert "nn-model" in out and "f_e=0.05" in out


class TestInspect:
    def test_dumps_manifest_json(self, tmp_path, capsys):
        _, refs = publish_some(tmp_path)
        assert main(["registry", "inspect", str(tmp_path), "demo"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["version"] == 2  # latest by default
        assert main(
            ["registry", "inspect", str(tmp_path), "demo", "--version", "1"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["digest"] == refs[0].digest

    def test_unknown_name_exits_2(self, tmp_path, capsys):
        assert main(["registry", "inspect", str(tmp_path), "absent"]) == 2
        assert "error" in capsys.readouterr().out


class TestVerify:
    def test_clean_registry_passes(self, tmp_path, capsys):
        publish_some(tmp_path)
        assert main(["registry", "verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "demo v1: OK" in out and "0 failed" in out

    def test_flipped_byte_fails_the_run(self, tmp_path, capsys):
        _, refs = publish_some(tmp_path)
        blob = refs[1].payload_path("blob.bin")
        raw = bytearray(blob.read_bytes())
        raw[0] ^= 0xFF
        blob.write_bytes(bytes(raw))
        assert main(["registry", "verify", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "demo v2: FAILED" in out and "SHA-256 mismatch" in out
        # scoping to the untouched version still passes
        assert main(
            ["registry", "verify", str(tmp_path), "demo", "--version", "1"]
        ) == 0

    def test_unknown_name_exits_2(self, tmp_path):
        assert main(["registry", "verify", str(tmp_path), "absent"]) == 2


class TestGc:
    def test_prunes_old_versions(self, tmp_path, capsys):
        registry, _ = publish_some(tmp_path, versions=3)
        assert main(["registry", "gc", str(tmp_path), "--keep", "1"]) == 0
        assert "2 path(s) removed" in capsys.readouterr().out
        assert registry.versions("demo") == [3]

    def test_pin_flag_protects_versions(self, tmp_path, capsys):
        registry, _ = publish_some(tmp_path, versions=3)
        assert main(
            ["registry", "gc", str(tmp_path), "--keep", "1",
             "--pin", "demo:1"]
        ) == 0
        assert registry.versions("demo") == [1, 3]

    def test_malformed_pin_exits_2(self, tmp_path, capsys):
        publish_some(tmp_path, versions=1)
        assert main(
            ["registry", "gc", str(tmp_path), "--pin", "demo"]
        ) == 2
        assert "NAME:VERSION" in capsys.readouterr().err
