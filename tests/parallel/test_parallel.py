"""SPMD communicator and parallel-map tests."""

import threading

import numpy as np
import pytest

from repro.parallel import Communicator, SpmdError, parallel_map, parallel_samples, run_spmd


class TestRunSpmd:
    def test_per_rank_results_ordered(self):
        results = run_spmd(lambda comm: comm.rank * 10, size=4)
        assert results == [0, 10, 20, 30]

    def test_single_rank(self):
        assert run_spmd(lambda comm: comm.size, size=1) == [1]

    def test_rank_exception_aborts_all(self):
        def work(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()
            return comm.rank

        with pytest.raises(SpmdError, match="rank 1"):
            run_spmd(work, size=3)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, size=0)

    def test_mpi4py_spellings(self):
        def work(comm):
            return (comm.Get_rank(), comm.Get_size())

        assert run_spmd(work, size=2) == [(0, 2), (1, 2)]


class TestCollectives:
    def test_bcast(self):
        def work(comm):
            data = {"v": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert run_spmd(work, size=3) == [{"v": 42}] * 3

    def test_scatter_gather_round_trip(self):
        def work(comm):
            chunks = [[i, i + 1] for i in range(comm.size)] if comm.rank == 0 else None
            mine = comm.scatter(chunks, root=0)
            doubled = [2 * v for v in mine]
            return comm.gather(doubled, root=0)

        results = run_spmd(work, size=3)
        assert results[0] == [[0, 2], [2, 4], [4, 6]]
        assert results[1] is None and results[2] is None

    def test_scatter_wrong_count_rejected(self):
        def work(comm):
            return comm.scatter([1], root=0)

        with pytest.raises(SpmdError):
            run_spmd(work, size=2)

    def test_allgather(self):
        results = run_spmd(lambda c: c.allgather(c.rank**2), size=4)
        assert all(r == [0, 1, 4, 9] for r in results)

    def test_allreduce_sum_default(self):
        results = run_spmd(lambda c: c.allreduce(c.rank + 1), size=4)
        assert all(r == 10 for r in results)

    def test_allreduce_custom_op(self):
        results = run_spmd(lambda c: c.allreduce(c.rank + 1, op=max), size=4)
        assert all(r == 4 for r in results)

    def test_allreduce_numpy_arrays(self):
        def work(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        results = run_spmd(work, size=3)
        assert all(np.allclose(r, 3.0) for r in results)

    def test_reduce_only_root_receives(self):
        results = run_spmd(lambda c: c.reduce(1, root=1), size=3)
        assert results == [None, 3, None]

    def test_repeated_collectives_stay_consistent(self):
        def work(comm):
            total = 0
            for round_ in range(5):
                total += comm.allreduce(comm.rank + round_)
            return total

        results = run_spmd(work, size=3)
        assert len(set(results)) == 1


class TestPointToPoint:
    def test_ring_exchange(self):
        def work(comm):
            right = (comm.rank + 1) % comm.size
            comm.send(comm.rank, dest=right, tag=1)
            return comm.recv(tag=1)

        results = run_spmd(work, size=4)
        assert sorted(results) == [0, 1, 2, 3]

    def test_send_out_of_range_rejected(self):
        def work(comm):
            comm.send(1, dest=99)

        with pytest.raises(SpmdError):
            run_spmd(work, size=2)


class TestParallelMap:
    def test_results_in_order(self):
        assert parallel_map(lambda v: v * v, list(range(17)), workers=4) == [
            v * v for v in range(17)
        ]

    def test_single_worker_plain_loop(self):
        assert parallel_map(lambda v: -v, [1, 2, 3], workers=1) == [-1, -2, -3]

    def test_more_workers_than_items(self):
        assert parallel_map(lambda v: v + 1, [5], workers=8) == [6]

    def test_empty_items(self):
        assert parallel_map(lambda v: v, [], workers=3) == []

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(lambda v: v, [1], workers=0)

    def test_threads_actually_used(self):
        seen = set()

        def fn(v):
            seen.add(threading.get_ident())
            return v

        parallel_map(fn, list(range(32)), workers=4)
        assert len(seen) > 1


class TestParallelSamples:
    def test_matches_serial_generation(self, rng):
        from repro.apps import LaghosApplication
        from repro.extract import SampleGenerator, build_schema

        app = LaghosApplication()
        base = app.example_problem(np.random.default_rng(0))
        acq = app.acquire(n_samples=5, rng=np.random.default_rng(0))
        generator = SampleGenerator(
            app.region_fn, acq.input_schema, acq.output_schema
        )
        serial_x, serial_y = generator.generate(
            base, 12, rng=np.random.default_rng(7),
            perturb_names=app.perturb_names(),
        )
        par_x, par_y = parallel_samples(
            generator, base, 12, rng=np.random.default_rng(7),
            perturb_names=app.perturb_names(), workers=4,
        )
        assert np.allclose(serial_x, par_x)
        assert np.allclose(serial_y, par_y)

    def test_zero_samples_rejected(self, rng):
        from repro.apps import LaghosApplication
        from repro.extract import SampleGenerator

        app = LaghosApplication()
        acq = app.acquire(n_samples=3, rng=np.random.default_rng(0))
        generator = SampleGenerator(app.region_fn, acq.input_schema, acq.output_schema)
        with pytest.raises(ValueError):
            parallel_samples(generator, app.example_problem(rng), 0)
