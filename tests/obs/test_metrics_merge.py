"""Delta-based cross-process metric merging (worker -> front-end)."""

import pickle

import pytest

from repro.obs.merge import MetricsDeltaTracker, apply_metrics_delta
from repro.obs.metrics import MetricsRegistry


class TestDeltaTracker:
    def test_idle_registry_ships_nothing(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "never incremented")
        tracker = MetricsDeltaTracker(registry)
        assert tracker.delta() is None

    def test_counter_delta_only_ships_movement(self):
        registry = MetricsRegistry()
        served = registry.counter("served_total", "requests", ("model",))
        tracker = MetricsDeltaTracker(registry)
        served.inc(3, model="a")
        first = tracker.delta()
        assert first is not None
        (entry,) = first["counters"]
        assert entry["name"] == "served_total"
        assert entry["series"] == [{"key": ["a"], "value": 3.0}]
        # nothing moved since: tracker must go quiet again
        assert tracker.delta() is None
        served.inc(2, model="b")
        second = tracker.delta()
        (entry,) = second["counters"]
        # only the series that moved, as a delta not a total
        assert entry["series"] == [{"key": ["b"], "value": 2.0}]

    def test_histogram_delta_carries_bucket_increments(self):
        registry = MetricsRegistry()
        lat = registry.histogram(
            "latency_seconds", "latency", ("model",), buckets=(0.1, 1.0)
        )
        tracker = MetricsDeltaTracker(registry)
        lat.observe(0.05, model="a")
        lat.observe(0.5, model="a")
        delta = tracker.delta()
        (entry,) = delta["histograms"]
        assert entry["bounds"] == [0.1, 1.0]
        (series,) = entry["series"]
        assert series["key"] == ["a"]
        assert series["buckets"] == [1, 1, 0]
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(0.55)
        assert tracker.delta() is None

    def test_delta_payload_pickles(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c").inc(1)
        registry.histogram("h_seconds", "h").observe(0.2)
        tracker = MetricsDeltaTracker(registry)
        delta = tracker.delta()
        assert pickle.loads(pickle.dumps(delta)) == delta

    def test_gauges_are_not_shipped(self):
        registry = MetricsRegistry()
        registry.gauge("depth", "queue depth").set(7)
        tracker = MetricsDeltaTracker(registry)
        assert tracker.delta() is None


class TestApplyDelta:
    def _shipper(self, worker: MetricsRegistry):
        tracker = MetricsDeltaTracker(worker)

        def ship(front: MetricsRegistry) -> None:
            delta = tracker.delta()
            if delta is not None:
                apply_metrics_delta(front, delta)

        return ship

    def test_round_trip_creates_instruments(self):
        worker = MetricsRegistry()
        front = MetricsRegistry()
        served = worker.counter("served_total", "requests served", ("model",))
        ship = self._shipper(worker)
        served.inc(5, model="m")
        ship(front)
        merged = front.get("served_total")
        assert merged is not None
        assert merged.help == "requests served"
        assert merged.value(model="m") == 5

    def test_repeated_publishes_do_not_double_count(self):
        worker = MetricsRegistry()
        front = MetricsRegistry()
        served = worker.counter("served_total", "", ("model",))
        ship = self._shipper(worker)
        served.inc(5, model="m")
        ship(front)
        ship(front)  # idle publish: no movement, no double count
        served.inc(1, model="m")
        ship(front)
        assert front.get("served_total").value(model="m") == 6
        assert served.value(model="m") == 6

    def test_merges_on_top_of_front_end_activity(self):
        worker = MetricsRegistry()
        front = MetricsRegistry()
        front.counter("served_total", "", ("model",)).inc(10, model="m")
        worker.counter("served_total", "", ("model",)).inc(2, model="m")
        ship = self._shipper(worker)
        ship(front)
        assert front.get("served_total").value(model="m") == 12

    def test_histogram_merge_preserves_quantiles_and_bounds(self):
        worker = MetricsRegistry()
        front = MetricsRegistry()
        lat = worker.histogram(
            "latency_seconds", "", (), buckets=(0.01, 0.1, 1.0)
        )
        ship = self._shipper(worker)
        for v in (0.005, 0.05, 0.5, 0.5):
            lat.observe(v)
        ship(front)
        merged = front.get("latency_seconds")
        assert merged.buckets == lat.buckets
        assert merged.quantile(0.5) == lat.quantile(0.5)
        (state,) = merged.raw_series().values()
        assert state[2] == 4

    def test_two_workers_sum_into_one_view(self):
        front = MetricsRegistry()
        workers = [MetricsRegistry(), MetricsRegistry()]
        for i, w in enumerate(workers):
            w.counter("served_total", "", ("model",)).inc(i + 1, model="m")
        for w in workers:
            apply_metrics_delta(front, MetricsDeltaTracker(w).delta())
        assert front.get("served_total").value(model="m") == 3
