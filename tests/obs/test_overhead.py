"""Disabled-telemetry overhead on the instrumented hot paths.

The acceptance bar: with telemetry off, `Orchestrator.run_model` and
`GuardedSurrogate.run` may cost at most 5 % more than the equivalent
uninstrumented (seed) code path.  Both measurements use min-of-repeats so
scheduler noise cancels instead of accumulating.
"""

import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro import obs
from repro.runtime import GuardedSurrogate, Orchestrator


@pytest.fixture(autouse=True)
def telemetry_off():
    obs.configure(enabled=False, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def _best_of(fn, n_calls: int, repeats: int = 9) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(n_calls):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_overhead_within(baseline, instrumented, n_calls, *, bound=1.05,
                            attempts=5):
    """Assert instrumented/baseline <= bound on at least one clean attempt.

    A single micro-benchmark pass is at the mercy of whatever else the
    machine is doing; re-measuring from scratch a few times rejects load
    spikes without loosening the bound itself.
    """
    ratio = float("inf")
    for _ in range(attempts):
        base = _best_of(baseline, n_calls)
        inst = _best_of(instrumented, n_calls)
        ratio = min(ratio, inst / base)
        if ratio <= bound:
            return
    raise AssertionError(
        f"disabled-telemetry overhead {(ratio - 1.0) * 100:.2f}% exceeds "
        f"{(bound - 1.0) * 100:.0f}% across {attempts} attempts"
    )


class TestOrchestratorOverhead:
    def test_run_model_disabled_within_5_percent(self):
        orc = Orchestrator()
        w = np.random.default_rng(0).standard_normal((128, 128))
        orc.register_model("mm", lambda x: x @ w)
        orc.put_tensor("in", np.ones(128))

        # seed-equivalent body: the exact same work without the telemetry
        # wrapper (the disabled wrapper adds one attribute check + a call)
        def baseline():
            orc._run_model_inner("mm", ("in",), ("out",))

        def instrumented():
            orc.run_model("mm", ("in",), ("out",))

        instrumented()   # warm-up
        _assert_overhead_within(baseline, instrumented, n_calls=200)


class TestGuardOverhead:
    def test_guard_run_disabled_within_5_percent(self):
        w = np.random.default_rng(1).standard_normal((512, 512))

        class App:
            name = "bench"

            def run_exact(self, problem):
                return SimpleNamespace(outputs={"v": problem["x"] @ w})

        class Surrogate:
            app = App()

            def run(self, problem):
                return {"v": problem["x"] @ w}

        def validator(problem, outputs):
            return bool(np.isfinite(outputs["v"]).all())

        guarded = GuardedSurrogate(Surrogate(), validator)
        problem = {"x": np.ones(512)}

        # seed-equivalent guard: same surrogate call, same validator, the
        # seed's unsynchronized counter arithmetic
        seed_stats = {"invocations": 0, "fallbacks": 0}

        def baseline():
            seed_stats["invocations"] += 1
            outputs = guarded.surrogate.run(problem)
            if not validator(problem, outputs):
                seed_stats["fallbacks"] += 1

        def instrumented():
            guarded.run(problem)

        instrumented()   # warm-up
        _assert_overhead_within(baseline, instrumented, n_calls=300)
