"""Metrics registry: counters, gauges, histograms, exporters, thread safety."""

import json
import re
import threading

import numpy as np
import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("requests_total", "requests")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)
        assert c.total() == pytest.approx(3.5)

    def test_labels_split_series(self, registry):
        c = registry.counter("hits_total", labels=("app",))
        c.inc(app="cg")
        c.inc(3, app="fft")
        assert c.value(app="cg") == 1
        assert c.value(app="fft") == 3
        assert c.total() == 4

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("l_total", labels=("app",))
        with pytest.raises(ValueError):
            c.inc(model="x")
        with pytest.raises(ValueError):
            c.inc()

    def test_concurrent_increments_lose_nothing(self, registry):
        c = registry.counter("hammered_total")
        n_threads, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == n_threads * per_thread


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6

    def test_labelled(self, registry):
        g = registry.gauge("best", labels=("objective",))
        g.set(0.25, objective="f_c")
        assert g.value(objective="f_c") == 0.25


class TestHistogram:
    def test_count_sum(self, registry):
        h = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)

    def test_quantiles_are_bucket_accurate(self, registry):
        h = registry.histogram("lat_seconds", buckets=tuple(np.linspace(0.01, 1.0, 100)))
        rng = np.random.default_rng(0)
        samples = rng.uniform(0.0, 1.0, size=5000)
        for v in samples:
            h.observe(v)
        for q in (0.5, 0.9, 0.99):
            est = h.quantile(q)
            true = float(np.quantile(samples, q))
            assert est == pytest.approx(true, abs=0.02)

    def test_percentiles_keys(self, registry):
        h = registry.histogram("p_seconds")
        h.observe(0.01)
        p = h.percentiles()
        assert set(p) == {"p50", "p90", "p99"}

    def test_empty_quantile_is_nan(self, registry):
        h = registry.histogram("e_seconds")
        assert np.isnan(h.quantile(0.5))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-6
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0

    def test_out_of_range_quantile_rejected(self, registry):
        h = registry.histogram("q_seconds")
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_label_conflict_rejected(self, registry):
        registry.counter("lbl_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("lbl_total", labels=("b",))

    def test_prometheus_exposition_well_formed(self, registry):
        registry.counter("served_total", "requests served").inc(4)
        registry.gauge("depth", "queue depth").set(2)
        h = registry.histogram("lat_seconds", "latency", labels=("model",),
                               buckets=(0.1, 1.0))
        h.observe(0.05, model="m")
        text = registry.to_prometheus()
        line_re = re.compile(
            r'^(# (HELP|TYPE) .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+)$'
        )
        for line in text.strip().splitlines():
            assert line_re.match(line), line
        assert "# TYPE served_total counter" in text
        assert "served_total 4" in text
        assert 'lat_seconds_bucket{model="m",le="+Inf"} 1' in text
        assert 'lat_seconds_count{model="m"} 1' in text

    def test_histogram_buckets_are_cumulative(self, registry):
        h = registry.histogram("c_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            h.observe(v)
        text = registry.to_prometheus()
        assert 'c_seconds_bucket{le="0.1"} 1' in text
        assert 'c_seconds_bucket{le="1"} 3' in text
        assert 'c_seconds_bucket{le="+Inf"} 4' in text

    def test_json_snapshot_round_trips(self, registry):
        registry.counter("a_total", labels=("app",)).inc(app="cg")
        registry.histogram("h_seconds").observe(0.2)
        payload = json.loads(registry.to_json())
        names = {m["name"] for m in payload["metrics"]}
        assert names == {"a_total", "h_seconds"}
        hist = next(m for m in payload["metrics"] if m["name"] == "h_seconds")
        assert hist["series"][0]["count"] == 1
        assert "p99" in hist["series"][0]

    def test_reserved_label_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("r_seconds", labels=("le",))
