"""Tracer: nesting, context isolation, Chrome export, global switchboard."""

import json
import threading

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Tracer
from repro.perf.timers import PhaseTimer


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


class TestSpans:
    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        spans = {s.name: s for s in tracer.finished_spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None

    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("t", K=16) as sp:
            sp.set_attribute("f_c", 0.5)
        span = tracer.finished_spans()[0]
        assert span.attributes == {"K": 16, "f_c": 0.5}

    def test_duration_positive_and_ordered(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        span = tracer.finished_spans()[0]
        assert span.finished and span.duration >= 0

    def test_threads_do_not_share_current_span(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["parent_in_thread"] = tracer.current_span()
            with tracer.span("child"):
                pass

        with tracer.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["parent_in_thread"] is None
        child = tracer.spans_named("child")[0]
        assert child.parent_id is None

    def test_pinned_duration(self):
        tracer = Tracer()
        span = tracer.start_span("x")
        tracer.end_span(span, duration=0.125)
        assert span.duration == pytest.approx(0.125)


class TestChromeExport:
    def test_export_structure(self, tmp_path):
        tracer = Tracer()
        with tracer.span("build", app="CG"):
            with tracer.span("build.search"):
                pass
        path = tracer.export_chrome_trace(tmp_path / "t.trace.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == 2
        ids = {e["args"]["span_id"] for e in events}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["cat"] == "repro"
            parent = event["args"].get("parent_span_id")
            assert parent is None or parent in ids
        child = next(e for e in events if e["name"] == "build.search")
        assert child["args"]["parent_span_id"] is not None

    def test_nonjson_attributes_stringified(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", obj=object()):
            pass
        payload = tracer.to_chrome_trace()
        assert isinstance(payload["traceEvents"][0]["args"]["obj"], str)


class TestGlobalSwitch:
    def test_disabled_span_is_noop(self):
        with obs.disabled():
            with obs.span("hot", x=1) as sp:
                sp.set_attribute("y", 2)
        assert obs.get_tracer().finished_spans() == []

    def test_disabled_restores_previous_state(self):
        assert obs.is_enabled()
        with obs.disabled():
            assert not obs.is_enabled()
        assert obs.is_enabled()

    def test_configure_swaps_registry(self):
        fresh = MetricsRegistry()
        obs.configure(registry=fresh)
        assert obs.get_registry() is fresh

    def test_state_identity_is_stable(self):
        before = obs.TELEMETRY
        obs.configure(enabled=False, reset=True)
        assert obs.TELEMETRY is before


class TestPhaseHelper:
    def test_single_measurement_feeds_all_consumers(self):
        timer = PhaseTimer()
        hist = obs.get_registry().histogram("phase_seconds", labels=("phase",))
        with obs.phase("fetch_input", timer=timer, histogram=hist,
                       labels={"phase": "fetch_input"}):
            pass
        span = obs.get_tracer().spans_named("fetch_input")[0]
        assert timer.phases["fetch_input"] == pytest.approx(span.duration, rel=0, abs=0)
        assert hist.count(phase="fetch_input") == 1
        assert hist.sum(phase="fetch_input") == pytest.approx(span.duration)

    def test_disabled_still_feeds_timer(self):
        timer = PhaseTimer()
        with obs.disabled():
            with obs.phase("encode", timer=timer):
                pass
        assert "encode" in timer.phases
        assert obs.get_tracer().finished_spans() == []

    def test_exception_still_records(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with obs.phase("run_model", timer=timer):
                raise RuntimeError("boom")
        assert timer.phases["run_model"] > 0
        assert obs.get_tracer().spans_named("run_model")[0].finished
