"""Tracked locks: order recording, wrappers, instrumentation, histograms."""

import threading

import pytest

from repro import obs
from repro.obs.locks import (
    LockOrderRecorder,
    TrackedCondition,
    TrackedLock,
    instrument_object,
    tracked_class_name,
)


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


class TestRecorder:
    def test_nested_acquire_records_edge(self):
        rec = LockOrderRecorder()
        rec.on_acquire("A")
        rec.on_acquire("B")
        rec.on_release("B")
        rec.on_release("A")
        assert rec.edges() == {("A", "B"): 1}

    def test_counts_accumulate(self):
        rec = LockOrderRecorder()
        for _ in range(3):
            rec.on_acquire("A")
            rec.on_acquire("B")
            rec.on_release("B")
            rec.on_release("A")
        assert rec.edges()[("A", "B")] == 3

    def test_reentrant_reacquire_is_not_a_self_edge(self):
        rec = LockOrderRecorder()
        rec.on_acquire("A")
        rec.on_acquire("A")      # RLock-style re-entry
        rec.on_release("A")
        rec.on_release("A")
        assert rec.edges() == {}

    def test_held_is_per_thread(self):
        rec = LockOrderRecorder()
        rec.on_acquire("A")
        seen = {}

        def other():
            seen["held"] = rec.held()
            rec.on_acquire("B")      # no A on this thread: no edge
            rec.on_release("B")

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert seen["held"] == ()
        assert rec.edges() == {}
        assert rec.held() == ("A",)
        rec.on_release("A")

    def test_reset_clears_edges(self):
        rec = LockOrderRecorder()
        rec.on_acquire("A")
        rec.on_acquire("B")
        rec.reset()
        assert rec.edges() == {}


class TestTrackedLock:
    def test_context_manager_records_order(self):
        rec = LockOrderRecorder()
        a = TrackedLock(threading.Lock(), "X._a", recorder=rec)
        b = TrackedLock(threading.Lock(), "X._b", recorder=rec)
        with a:
            with b:
                pass
        assert rec.edges() == {("X._a", "X._b"): 1}

    def test_acquire_release_protocol(self):
        rec = LockOrderRecorder()
        lock = TrackedLock(threading.Lock(), "X._a", recorder=rec)
        assert lock.acquire()
        assert lock.locked()
        assert rec.held() == ("X._a",)
        lock.release()
        assert not lock.locked()
        assert rec.held() == ()

    def test_nonblocking_failure_records_nothing(self):
        rec = LockOrderRecorder()
        inner = threading.Lock()
        inner.acquire()
        lock = TrackedLock(inner, "X._a", recorder=rec)
        assert not lock.acquire(blocking=False)
        assert rec.held() == ()
        inner.release()

    def test_wait_and_held_histograms_observed(self):
        lock = TrackedLock(threading.Lock(), "X._a", recorder=LockOrderRecorder())
        with lock:
            pass
        registry = obs.get_registry()
        wait = registry.histogram("repro_lock_wait_seconds", labels=("lock",))
        held = registry.histogram("repro_lock_held_seconds", labels=("lock",))
        assert wait.count(lock="X._a") == 1
        assert held.count(lock="X._a") == 1

    def test_histograms_skipped_when_disabled(self):
        obs.configure(enabled=False)
        lock = TrackedLock(threading.Lock(), "X._a", recorder=LockOrderRecorder())
        with lock:
            pass
        registry = obs.get_registry()
        wait = registry.histogram("repro_lock_wait_seconds", labels=("lock",))
        assert wait.count(lock="X._a") == 0


class TestTrackedCondition:
    def test_wait_notify_roundtrip(self):
        rec = LockOrderRecorder()
        cond = TrackedCondition(threading.Condition(), "Q._cond", recorder=rec)
        ready = []

        def consumer():
            with cond:
                while not ready:
                    cond.wait(timeout=5.0)

        t = threading.Thread(target=consumer)
        t.start()
        with cond:
            ready.append(1)
            cond.notify()
        t.join(timeout=5.0)
        assert not t.is_alive()
        # wait time lands in the wait histogram alongside acquire time
        wait = obs.get_registry().histogram(
            "repro_lock_wait_seconds", labels=("lock",)
        )
        assert wait.count(lock="Q._cond") >= 3  # 2 acquires + 1 wait

    def test_wait_for_predicate(self):
        cond = TrackedCondition(
            threading.Condition(), "Q._cond", recorder=LockOrderRecorder()
        )
        items = [1]
        with cond:
            assert cond.wait_for(lambda: items, timeout=1.0)


class TestInstrumentObject:
    class Sample:
        def __init__(self):
            self._lock = threading.Lock()
            self._rlock = threading.RLock()
            self._cond = threading.Condition()
            self.data = []

    def test_wraps_all_lock_attributes(self):
        obj = self.Sample()
        wrapped = instrument_object(obj, recorder=LockOrderRecorder())
        assert wrapped == {
            "_lock": "Sample._lock",
            "_rlock": "Sample._rlock",
            "_cond": "Sample._cond",
        }
        assert isinstance(obj._lock, TrackedLock)
        assert isinstance(obj._rlock, TrackedLock)
        assert isinstance(obj._cond, TrackedCondition)
        assert obj.data == []  # non-lock attributes untouched

    def test_attrs_filter_and_idempotence(self):
        obj = self.Sample()
        rec = LockOrderRecorder()
        assert instrument_object(obj, ["_lock"], recorder=rec) == {
            "_lock": "Sample._lock"
        }
        assert not isinstance(obj._cond, TrackedCondition)
        # second pass skips the already-wrapped attribute
        assert instrument_object(obj, ["_lock"], recorder=rec) == {}

    def test_names_match_static_identity_convention(self):
        obj = self.Sample()
        assert tracked_class_name(obj) == "Sample"
        wrapped = instrument_object(
            obj, ["_cond"], recorder=LockOrderRecorder(), prefix="_RequestQueue"
        )
        assert wrapped == {"_cond": "_RequestQueue._cond"}

    def test_wrapped_locks_record_through_given_recorder(self):
        obj = self.Sample()
        rec = LockOrderRecorder()
        instrument_object(obj, recorder=rec)
        with obj._lock:
            with obj._cond:
                pass
        assert rec.edges() == {("Sample._lock", "Sample._cond"): 1}
