"""Seeded concurrency bugs for the CC analyzer's detection tests.

Each class below plants exactly one family of defect the analyzer must
catch.  Nothing here is ever executed — the module exists to be parsed
(``lint_concurrency`` / ``repro lint``), and the deadlocks are only
deadlocks if you call them, which nobody does.
"""

import threading
import time


class LeakyCounter:
    """Mixed discipline: one locked write, one bare write -> CC101."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def increment(self):
        with self._lock:
            self.count += 1

    def sneaky_bump(self):
        self.count += 1          # unguarded write: CC101


class DeadlockPair:
    """A->B in one method, B->A in another -> lock-order cycle (CC201)."""

    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.left = 0
        self.right = 0

    def forward(self):
        with self._a:
            with self._b:
                self.left += 1

    def backward(self):
        with self._b:
            with self._a:
                self.right += 1


class DoubleAcquire:
    """Plain Lock re-acquired through a call chain -> self-deadlock (CC202)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:
            self.value += 1


class BadCondvar:
    """Every condvar lint at once: CC301, CC302, CC303."""

    def __init__(self):
        self._cond = threading.Condition()
        self.items = []

    def take_if(self):
        with self._cond:
            if not self.items:       # should be `while`
                self._cond.wait()    # CC301
            return self.items.pop()

    def signal(self):
        self._cond.notify()          # CC302: condition not held

    def take_until(self, deadline):
        with self._cond:
            while not self.items:
                # CC303: timeout recomputed inline each pass
                self._cond.wait(deadline - time.monotonic())
            return self.items.pop()
