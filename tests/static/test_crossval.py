"""Static/dynamic cross-validation tests (acceptance: CG, AMG, Blackscholes)."""

import numpy as np
import pytest

from repro.apps import make_application
from repro.static import Severity, cross_validate
from repro.static.crossval import _diff
from repro.static.inference import infer_region_fn

from . import fixture_regions


@pytest.mark.parametrize("app_name", ["CG", "AMG", "Blackscholes"])
def test_seed_apps_agree(app_name):
    app = make_application(app_name)
    problem = app.example_problem(np.random.default_rng(0))
    cv = cross_validate(app.region_fn, problem)
    assert cv.agrees, cv.summary()
    assert cv.static_inputs == cv.dynamic_inputs
    assert cv.static_outputs == cv.dynamic_outputs
    assert len(cv.static_inputs) >= 3
    assert cv.static_outputs  # at least one output


def test_cg_exact_sets():
    app = make_application("CG")
    problem = app.example_problem(np.random.default_rng(0))
    cv = cross_validate(app.region_fn, problem)
    assert cv.static_inputs == ("A", "b", "max_iters", "tol", "x0")
    assert cv.static_outputs == ("x",)


class TestDisagreements:
    def test_static_only_input_on_untaken_branch(self):
        # flag > 0 takes the x-branch, so the trace never reads y
        cv = cross_validate(
            fixture_regions.branch_hidden,
            {"x": np.ones(4), "y": np.ones(4), "flag": 1.0},
        )
        assert not cv.agrees
        rules = {d.rule for d in cv.diagnostics}
        assert rules == {"SF301"}
        (diag,) = cv.diagnostics
        assert diag.severity == Severity.WARNING
        assert "'y'" in diag.message
        assert "y" in cv.static_inputs and "y" not in cv.dynamic_inputs

    def test_branch_taken_both_sides_agree_on_that_path_output(self):
        cv = cross_validate(
            fixture_regions.branch_hidden,
            {"x": np.ones(4), "y": np.ones(4), "flag": 1.0},
        )
        assert cv.static_outputs == cv.dynamic_outputs == ("out",)

    def test_static_only_output_on_untaken_write(self):
        # flag < 0 skips the branch that writes the declared output `extra`
        cv = cross_validate(
            fixture_regions.maybe_extra,
            {"x": np.ones(4), "flag": -1.0},
        )
        rules = {d.rule for d in cv.diagnostics}
        assert "SF303" in rules
        assert "extra" in cv.static_outputs
        assert "extra" not in cv.dynamic_outputs

    def test_taken_write_no_output_disagreement(self):
        cv = cross_validate(
            fixture_regions.maybe_extra,
            {"x": np.ones(4), "flag": 1.0},
        )
        assert {d.rule for d in cv.diagnostics} <= {"SF301"}
        assert "extra" in cv.dynamic_outputs

    def test_dynamic_only_sides_are_errors(self):
        # the dynamic-only directions cannot arise from well-formed regions
        # (the tracer shares the static per-statement read/write sets), but
        # the reporting path must stay correct for defensive use
        report = infer_region_fn(fixture_regions.clean_saxpy)
        for kind, rule in [
            ("dynamic_only_input", "SF302"),
            ("dynamic_only_output", "SF304"),
        ]:
            diags = _diff(kind, {"phantom"}, "clean_saxpy", report, "<test>")
            assert len(diags) == 1
            assert diags[0].rule == rule
            assert diags[0].severity == Severity.ERROR
            assert "phantom" in diags[0].message

    def test_clean_region_agrees(self):
        cv = cross_validate(
            fixture_regions.clean_saxpy,
            {"a": 2.0, "x": np.ones(4), "y0": np.zeros(4)},
        )
        assert cv.agrees
        assert cv.static_inputs == ("a", "x", "y0")
        assert cv.static_outputs == ("y",)
