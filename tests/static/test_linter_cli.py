"""Linter front-end, report rendering, and the ``repro lint`` CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.static import Severity, lint_module, lint_path, lint_source

FIXTURE_DIR = os.path.dirname(__file__)
BAD_FIXTURE = os.path.join(FIXTURE_DIR, "fixture_bad_regions.py")
REPO_ROOT = os.path.dirname(os.path.dirname(FIXTURE_DIR))
QUICKSTART = os.path.join(REPO_ROOT, "examples", "quickstart.py")


class TestDiscovery:
    def test_discovers_decorated_functions(self):
        report = lint_source(
            "from repro.extract import code_region\n"
            "@code_region(name='one', live_after=('a',))\n"
            "def f1(x):\n    a = x\n    return a\n"
            "def plain(x):\n    return x\n"
        )
        assert report.regions == ("one",)

    def test_duplicate_region_names_flagged(self):
        report = lint_source(
            "from repro.extract import code_region\n"
            "@code_region(name='dup', live_after=('a',))\n"
            "def f1(x):\n    a = x\n    return a\n"
            "@code_region(name='dup', live_after=('b',))\n"
            "def f2(x):\n    b = x\n    return b\n"
        )
        assert "SF107" in {d.rule for d in report.errors}

    def test_no_regions_is_info_only(self):
        report = lint_source("x = 1\n")
        assert report.regions == ()
        assert {d.rule for d in report.diagnostics} == {"SF001"}
        assert report.exit_code() == 0

    def test_syntax_error_is_error(self):
        report = lint_source("def broken(:\n")
        assert report.exit_code() == 1

    def test_positional_name_argument(self):
        report = lint_source(
            "from repro.extract import code_region\n"
            "@code_region('pos_name', live_after=('a',))\n"
            "def f1(x):\n    a = x\n    return a\n"
        )
        assert report.regions == ("pos_name",)


class TestReportRendering:
    def test_text_format_has_location_lines(self):
        text = lint_path(BAD_FIXTURE).format_text()
        assert "fixture_bad_regions.py" in text
        assert "error SF201" in text
        assert "error(s)" in text

    def test_json_roundtrip(self):
        payload = json.loads(lint_path(BAD_FIXTURE).format_json())
        assert payload["summary"]["error"] >= 4
        assert {"rule", "severity", "message", "file", "line", "col", "region"} <= set(
            payload["diagnostics"][0]
        )

    def test_exit_code_thresholds(self):
        report = lint_source(
            "from repro.extract import code_region\n"
            "@code_region(name='w', live_after=())\n"
            "def f1(x):\n    a = x\n    return a * 2\n"   # SF104 warning only
        )
        assert report.exit_code(Severity.ERROR) == 0
        assert report.exit_code(Severity.WARNING) == 1


class TestLintModuleResolution:
    def test_path_target(self):
        assert lint_module(BAD_FIXTURE).exit_code() == 1

    def test_dotted_module_target(self):
        report = lint_module("repro.apps.cg")
        assert report.regions == ("cg_solver",)
        assert report.exit_code() == 0

    def test_unresolvable_target(self):
        report = lint_module("no.such.module")
        assert {d.rule for d in report.errors} == {"SF002"}
        assert report.exit_code() == 1


class TestCLI:
    def test_lint_quickstart_exits_zero(self, capsys):
        assert main(["lint", QUICKSTART]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_quickstart_json(self, capsys):
        assert main(["lint", QUICKSTART, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["error"] == 0

    def test_lint_bad_fixture_exits_nonzero(self, capsys):
        assert main(["lint", BAD_FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "SF201" in out and "SF204" in out

    def test_lint_app_runs_crossval(self, capsys):
        assert main(["lint", "CG"]) == 0
        out = capsys.readouterr().out
        assert "cross-validation 'cg_solver': agree" in out

    def test_lint_app_no_crossval(self, capsys):
        assert main(["lint", "CG", "--no-crossval"]) == 0
        assert "cross-validation" not in capsys.readouterr().out

    def test_lint_app_json_is_pure_json(self, capsys):
        assert main(["lint", "Blackscholes", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regions"] == ["blackscholes"]

    def test_fail_on_warning(self):
        # the bad fixture has warnings too; threshold must tighten the gate
        assert main(["lint", BAD_FIXTURE, "--fail-on", "warning"]) == 1

    def test_unknown_target_exits_nonzero(self):
        assert main(["lint", "definitely.not.a.module"]) == 1
