"""The CC concurrency analyzer: guards, lock orders, condvars, crossval."""

import json
import os

import pytest

from repro.cli import main
from repro.static import Severity
from repro.static.concurrency import (
    CC_RULES,
    cross_validate_lock_orders,
    lint_concurrency,
    lint_concurrency_source,
    lock_order_graph,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixture_concurrency_bugs.py")


def rules_of(report):
    return {d.rule for d in report.diagnostics}


def lint(source):
    return lint_concurrency_source(source)


PREAMBLE = "import threading\n"


class TestGuardedBy:
    def test_declared_guard_flags_bare_write(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # cc: guarded-by(_lock)\n"
            "    def bad(self):\n"
            "        self.n = 1\n"
        )
        assert rules_of(report) == {"CC101"}

    def test_declared_guard_flags_bare_read(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # cc: guarded-by(_lock)\n"
            "    def peek(self):\n"
            "        return self.n\n"
        )
        assert rules_of(report) == {"CC102"}

    def test_atomic_reads_waives_reads_not_writes(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # cc: guarded-by(_lock, atomic-reads)\n"
            "    def peek(self):\n"
            "        return self.n\n"
            "    def bad(self):\n"
            "        self.n = 1\n"
        )
        assert rules_of(report) == {"CC101"}

    def test_guarded_access_is_clean(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # cc: guarded-by(_lock)\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self.n\n"
        )
        assert not report.diagnostics

    def test_inference_votes_dominant_lock(self):
        # two locked writes, one bare: the bare one loses the vote
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self.n = 1\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self.n = 2\n"
            "    def c(self):\n"
            "        self.n = 3\n"
        )
        assert "CC101" in rules_of(report)

    def test_inference_tie_is_cc103(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "        self.n = 0\n"
            "    def x(self):\n"
            "        with self._a:\n"
            "            self.n = 1\n"
            "    def y(self):\n"
            "        with self._b:\n"
            "            self.n = 2\n"
        )
        assert rules_of(report) == {"CC103"}

    def test_never_locked_fields_exempt(self):
        # single-threaded class: no lock involvement, nothing to check
        report = lint(
            "class C:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        self.n += 1\n"
            "    def peek(self):\n"
            "        return self.n\n"
        )
        assert not report.diagnostics


class TestRequires:
    SRC = (
        PREAMBLE
        + "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.n = 0  # cc: guarded-by(_lock)\n"
        "    def _bump_locked(self):  # cc: requires(_lock)\n"
        "        self.n += 1\n"
    )

    def test_requires_credits_body_and_checked_caller(self):
        report = lint(
            self.SRC
            + "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._bump_locked()\n"
        )
        assert not report.diagnostics

    def test_call_without_lock_is_cc104(self):
        report = lint(
            self.SRC
            + "    def bad(self):\n"
            "        self._bump_locked()\n"
        )
        assert rules_of(report) == {"CC104"}

    def test_unresolvable_pragma_is_cc105(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self.n = 0  # cc: guarded-by(_missing)\n"
        )
        assert "CC105" in rules_of(report)

    def test_malformed_directive_is_cc105(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self.n = 0  # cc: guardedby(_lock)\n"
        )
        assert "CC105" in rules_of(report)


class TestLockOrderGraph:
    def test_cycle_is_cc201(self):
        report = lint_concurrency(FIXTURE)
        assert "CC201" in rules_of(report)

    def test_interprocedural_reacquire_is_cc202(self):
        report = lint_concurrency(FIXTURE)
        assert "CC202" in rules_of(report)

    def test_rlock_reacquire_is_fine(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        assert "CC202" not in rules_of(report)

    def test_consistent_order_has_edge_no_cycle(self):
        graph = lock_order_graph(FIXTURE)
        assert ("DeadlockPair._a", "DeadlockPair._b") in graph.edge_set()
        assert ("DeadlockPair._b", "DeadlockPair._a") in graph.edge_set()
        assert any("DeadlockPair._a" in scc for scc in graph.cycles())

    def test_cross_class_edges(self):
        source = (
            PREAMBLE
            + "class Inner:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def poke(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "class Outer:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.inner = Inner()\n"
            "    def drive(self):\n"
            "        with self._lock:\n"
            "            self.inner.poke()\n"
        )
        report = lint_concurrency_source(source)
        assert not report.at_least(Severity.ERROR)
        from repro.static.concurrency import analyze_sources, build_graph

        graph, _ = build_graph(analyze_sources([("<mem>", source)]))
        assert ("Outer._lock", "Inner._lock") in graph.edge_set()


class TestCondvars:
    def test_seeded_condvar_lints(self):
        report = lint_concurrency(FIXTURE)
        assert {"CC301", "CC302", "CC303"} <= rules_of(report)

    def test_wait_for_is_loop_exempt(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "        self.items = []\n"
            "    def take(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait_for(lambda: self.items)\n"
            "            return self.items.pop()\n"
        )
        assert "CC301" not in rules_of(report)

    def test_wait_holding_unrelated_lock_is_cc203(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cond = threading.Condition()\n"
            "    def stall(self):\n"
            "        with self._lock:\n"
            "            with self._cond:\n"
            "                while True:\n"
            "                    self._cond.wait()\n"
        )
        assert "CC203" in rules_of(report)


class TestSuppression:
    def test_ignore_pragma_suppresses_that_line(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # cc: guarded-by(_lock)\n"
            "    def bad(self):\n"
            "        self.n = 1  # cc: ignore(CC101)\n"
        )
        assert not report.diagnostics

    def test_ignore_wrong_code_does_not_suppress(self):
        report = lint(
            PREAMBLE
            + "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # cc: guarded-by(_lock)\n"
            "    def bad(self):\n"
            "        self.n = 1  # cc: ignore(CC102)\n"
        )
        assert rules_of(report) == {"CC101"}


class TestReportFilter:
    def test_select_prefix(self):
        report = lint_concurrency(FIXTURE)
        only_3xx = report.filter(select=["CC3"])
        assert rules_of(only_3xx) == {"CC301", "CC302", "CC303"}

    def test_ignore_prefix(self):
        report = lint_concurrency(FIXTURE)
        no_1xx = report.filter(ignore=["CC1"])
        assert not any(r.startswith("CC1") for r in rules_of(no_1xx))
        assert "CC201" in rules_of(no_1xx)

    def test_select_then_ignore(self):
        report = lint_concurrency(FIXTURE)
        picked = report.filter(select=["CC2"], ignore=["CC202"])
        assert rules_of(picked) == {"CC201"}


class TestCrossValidation:
    def test_dynamic_only_edge_is_cc401(self):
        graph = lock_order_graph(FIXTURE)
        recorded = {("Nowhere._x", "Nowhere._y"): 3}
        xval = cross_validate_lock_orders(graph, recorded)
        assert not xval.agrees
        assert {d.rule for d in xval.diagnostics if d.severity >= Severity.ERROR} == {"CC401"}
        assert "3 time(s)" in next(
            d.message for d in xval.diagnostics if d.rule == "CC401"
        )

    def test_static_only_edge_is_info_cc402(self):
        graph = lock_order_graph(FIXTURE)
        xval = cross_validate_lock_orders(graph, {})
        assert xval.agrees
        assert all(d.rule == "CC402" for d in xval.diagnostics)
        assert all(d.severity == Severity.INFO for d in xval.diagnostics)

    def test_exact_agreement_summary(self):
        graph = lock_order_graph(FIXTURE)
        recorded = {edge: 1 for edge in graph.edge_set()}
        xval = cross_validate_lock_orders(graph, recorded)
        assert xval.agrees
        assert not xval.diagnostics
        assert "agree" in xval.summary()


class TestCLI:
    def test_fixture_text_output_has_cc_codes(self, capsys):
        assert main(["lint", FIXTURE]) == 1
        out = capsys.readouterr().out
        for code in ("CC101", "CC201", "CC202", "CC301", "CC302", "CC303"):
            assert code in out

    def test_fixture_json_output(self, capsys):
        assert main(["lint", FIXTURE, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {d["rule"] for d in payload["diagnostics"]}
        assert {"CC101", "CC201", "CC202", "CC301", "CC302", "CC303"} <= codes
        assert payload["summary"]["error"] >= 5

    def test_select_filters_rules(self, capsys):
        assert main(["lint", FIXTURE, "--select", "CC3", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {d["rule"] for d in payload["diagnostics"]} == {
            "CC301", "CC302", "CC303"
        }

    def test_ignore_filters_rules(self, capsys):
        assert main([
            "lint", FIXTURE, "--select", "CC", "--ignore", "CC2",
            "--format", "json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {d["rule"] for d in payload["diagnostics"]}
        assert codes and not any(c.startswith("CC2") for c in codes)

    def test_select_can_zero_out_report(self, capsys):
        # selecting a code family the fixture doesn't trip exits clean
        assert main(["lint", FIXTURE, "--select", "CC4"]) == 0

    def test_directory_target_runs_package_rules(self, capsys):
        pkg = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src", "repro", "static",
        )
        assert main(["lint", pkg, "--select", "CC", "--fail-on", "warning"]) == 0


class TestRuleCatalog:
    def test_cc_rules_are_registered_globally(self):
        from repro.static import RULES

        assert set(CC_RULES) <= set(RULES)

    def test_all_emitted_rules_are_cataloged(self):
        report = lint_concurrency(FIXTURE)
        assert rules_of(report) <= set(CC_RULES)
