"""Self-hosting: the repo's own regions must be lint-clean.

Every application module and every example is linted by path (pure AST),
and every application region again at runtime through its attached spec —
the same gate the CI lint job applies.
"""

import glob
import os

import pytest

from repro.apps import ALL_APPLICATIONS
from repro.static import Severity, lint_concurrency, lint_path, lint_region_fn

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
PACKAGE_DIR = os.path.join(REPO_ROOT, "src", "repro")
APP_FILES = sorted(glob.glob(os.path.join(REPO_ROOT, "src", "repro", "apps", "*.py")))
EXAMPLE_FILES = sorted(glob.glob(os.path.join(REPO_ROOT, "examples", "*.py")))


def test_fixture_paths_found():
    assert len(APP_FILES) >= 12
    assert len(EXAMPLE_FILES) >= 5


@pytest.mark.parametrize("path", APP_FILES + EXAMPLE_FILES, ids=os.path.basename)
def test_module_lints_clean(path):
    report = lint_path(path)
    noisy = report.at_least(Severity.WARNING)
    assert not noisy, "\n".join(d.format() for d in noisy)
    assert report.exit_code() == 0


@pytest.mark.parametrize("app_cls", ALL_APPLICATIONS, ids=lambda c: c.name)
def test_region_fn_lints_clean(app_cls):
    app = app_cls()
    static_report, diags = lint_region_fn(app.region_fn)
    errors = [d for d in diags if d.severity >= Severity.WARNING]
    assert not errors, "\n".join(d.format() for d in errors)
    # the region's declared outputs are all statically derivable
    assert static_report.outputs
    assert static_report.inputs


class TestConcurrencySelfhost:
    """The serving stack must pass its own lock analyzer — on discipline
    alone, with zero ``# cc: ignore`` escapes."""

    def test_package_is_cc_clean(self):
        report = lint_concurrency(PACKAGE_DIR)
        noisy = report.at_least(Severity.INFO)
        assert not noisy, "\n".join(d.format() for d in noisy)

    def test_no_suppressions_anywhere_in_package(self):
        # tokenize-level check: docstrings *documenting* the pragma are
        # fine, an actual `# cc: ignore(...)` comment is not
        from repro.static.concurrency import analyze_target

        analysis, _, _ = analyze_target(PACKAGE_DIR)
        offenders = [
            f"{path}:{line}"
            for path, lines in sorted(analysis.ignores.items())
            for line in sorted(lines)
        ]
        assert not offenders, offenders

    def test_static_graph_covers_serving_stack(self):
        # the edges the runtime crossval test exercises must exist statically
        from repro.static import lock_order_graph

        edges = lock_order_graph(PACKAGE_DIR).edge_set()
        assert ("Orchestrator._state_lock", "_RequestQueue._cond") in edges
        assert ("Orchestrator._state_lock", "Orchestrator._lock") in edges
