"""Importable region fixtures for static-analysis tests.

They live in a real module (not a test body) because runtime linting and
the tracer both need ``inspect.getsource`` to work.  Unlike
``fixture_bad_regions.py`` these decorate cleanly.
"""

import numpy as np

from repro.extract import code_region


@code_region(name="branch_hidden", live_after=("out",))
def branch_hidden(x, y, flag):
    """Reads ``y`` only on the branch an example trace may never take."""
    if flag > 0:
        out = x * 2.0
    else:
        out = y - 1.0
    return out


@code_region(name="maybe_extra", live_after=("out", "extra"))
def maybe_extra(x, flag):
    """Writes the declared output ``extra`` only on one branch."""
    out = x * 2.0
    if flag > 0:
        extra = x + 1.0
    return out


@code_region(name="impure_live", live_after=("out",))
def impure_live(x):
    """Decoratable but surrogate-unfit: used by the preflight tests."""
    print("computing")                      # SF202
    noise = np.random.random(x.shape)       # SF201
    out = x + noise
    return out


@code_region(name="clean_saxpy", live_after=("y",))
def clean_saxpy(a, x, y0):
    y = y0 + a * x
    return y
