"""Static region-dataflow inference tests."""

import ast

import pytest

from repro.static import RegionMeta, infer_function, infer_region_fn
from repro.static.inference import function_params, returned_names_ast


def infer(source: str, **meta_kwargs):
    func = ast.parse(source).body[0]
    return infer_function(func, RegionMeta(name="r", **meta_kwargs))


class TestInputs:
    def test_params_read_before_write_are_inputs(self):
        report = infer(
            "def f(a, b, c):\n"
            "    x = a + b\n"
            "    c = x * 2\n"      # c written before any read
            "    return x\n",
            live_after=("x",),
        )
        assert report.inputs == ("a", "b")

    def test_param_read_after_rebinding_not_input(self):
        report = infer(
            "def f(a):\n    a = 1.0\n    y = a + 2\n    return y\n",
            live_after=("y",),
        )
        assert report.inputs == ()

    def test_read_and_write_same_statement_is_input(self):
        report = infer(
            "def f(x0):\n    x0 = x0 + 1\n    return x0\n",
            live_after=("x0",),
        )
        assert report.inputs == ("x0",)

    def test_branch_writes_do_not_kill(self):
        # only one branch writes `a`, so a later read may still see the
        # caller's value
        report = infer(
            "def f(a, flag):\n"
            "    if flag:\n"
            "        a = 0.0\n"
            "    y = a + 1\n"
            "    return y\n",
            live_after=("y",),
        )
        assert "a" in report.inputs

    def test_both_branches_write_kills(self):
        report = infer(
            "def f(a, flag):\n"
            "    if flag:\n"
            "        a = 0.0\n"
            "    else:\n"
            "        a = 1.0\n"
            "    y = a + 1\n"
            "    return y\n",
            live_after=("y",),
        )
        assert "a" not in report.inputs
        assert "flag" in report.inputs

    def test_loop_body_reads_are_inputs(self):
        report = infer(
            "def f(values, n):\n"
            "    total = 0.0\n"
            "    for i in range(n):\n"
            "        total = total + values[i]\n"
            "    return total\n",
            live_after=("total",),
        )
        assert report.inputs == ("n", "values")

    def test_loop_target_is_not_an_input(self):
        report = infer(
            "def f(i, n):\n"
            "    acc = 0.0\n"
            "    for i in range(n):\n"
            "        acc = acc + i\n"
            "    return acc\n",
            live_after=("acc",),
        )
        assert "i" not in report.inputs

    def test_while_loop_writes_are_may_writes(self):
        # the while body may run zero times, so the read after it can see
        # the parameter
        report = infer(
            "def f(x, n):\n"
            "    while n > 0:\n"
            "        x = x * 0.5\n"
            "        n = n - 1\n"
            "    y = x + 1\n"
            "    return y\n",
            live_after=("y",),
        )
        assert {"n", "x"} <= set(report.inputs)

    def test_comprehension_target_not_free(self):
        report = infer(
            "def f(xs):\n    y = [v * 2 for v in xs]\n    return y\n",
            live_after=("y",),
        )
        assert report.inputs == ("xs",)
        assert "v" not in report.free_reads

    def test_free_reads_exclude_builtins(self):
        report = infer(
            "def f(a):\n    y = np.abs(float(a)) + _HELPER\n    return y\n",
            live_after=("y",),
        )
        assert set(report.free_reads) == {"np", "_HELPER"}


class TestOutputs:
    def test_outputs_are_writes_intersect_live(self):
        report = infer(
            "def f(a):\n    x = a + 1\n    tmp = x * 2\n    return x\n",
            live_after=("x",),
        )
        assert report.outputs == ("x",)
        assert set(report.writes) >= {"x", "tmp"}

    def test_live_from_continuation_source(self):
        report = infer(
            "def f(a):\n    x = a + 1\n    tmp = x * 2\n    return x\n",
            live_after=(),
            continuation_source="print(x)\nprint(tmp)",
        )
        assert set(report.outputs) == {"tmp", "x"}

    def test_live_from_returned_names(self):
        report = infer(
            "def f(a):\n    u = a + 1\n    s = a * 2\n    return u, s\n",
            live_after=(),
        )
        assert report.live == ("u", "s")
        assert set(report.outputs) == {"s", "u"}

    def test_live_unknown_when_underivable(self):
        report = infer(
            "def f(a):\n    u = a + 1\n    return u * 2\n",
            live_after=(),
        )
        assert report.live is None
        assert report.outputs == ()

    def test_conditional_write_still_counts_as_write(self):
        report = infer(
            "def f(a, flag):\n"
            "    out = a\n"
            "    if flag:\n"
            "        extra = a + 1\n"
            "    return out\n",
            live_after=("out", "extra"),
        )
        assert set(report.outputs) == {"extra", "out"}


class TestHelpers:
    def test_function_params_varieties(self):
        func = ast.parse(
            "def f(a, b=1, *args, c, **kw):\n    pass\n"
        ).body[0]
        assert function_params(func) == ("a", "b", "c", "args", "kw")

    def test_returned_names_tuple(self):
        func = ast.parse("def f():\n    return x, y\n").body[0]
        assert returned_names_ast(func) == ("x", "y")

    def test_returned_names_expression_is_empty(self):
        func = ast.parse("def f():\n    return x + 1\n").body[0]
        assert returned_names_ast(func) == ()


class TestRuntimeInference:
    def test_matches_real_region(self):
        from repro.apps.cg import cg_solver

        report = infer_region_fn(cg_solver)
        assert report.region_name == "cg_solver"
        assert report.inputs == ("A", "b", "max_iters", "tol", "x0")
        assert report.outputs == ("x",)
        assert report.returns == ("x", "iters")
