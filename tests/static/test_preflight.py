"""Pipeline preflight hook tests."""

import os

import numpy as np
import pytest

from repro.apps.base import Application, RegionCost
from repro.core import AutoHPCnet, AutoHPCnetConfig
from repro.static import (
    PreflightError,
    PreflightWarning,
    preflight_concurrency,
    preflight_region,
)

from . import fixture_regions


class _ImpureApp(Application):
    """Minimal app wrapping the impure fixture region."""

    name = "ImpureFixture"
    app_type = "I"
    replaced_function = "impure_live"
    qoi_name = "mean"

    @property
    def region_fn(self):
        return fixture_regions.impure_live

    def example_problem(self, rng):
        return {"x": rng.standard_normal(4)}

    def qoi_from_outputs(self, problem, outputs):
        return float(np.mean(outputs["out"]))

    def region_cost(self, problem, outputs):
        return RegionCost(flops=1.0, bytes_moved=1.0)

    def other_cost(self, problem):
        return RegionCost(flops=1.0, bytes_moved=1.0)


class TestPreflightRegion:
    def test_clean_region_passes(self):
        diags = preflight_region(fixture_regions.clean_saxpy, mode="error")
        assert all(d.severity.label == "info" for d in diags)

    def test_error_mode_raises(self):
        with pytest.raises(PreflightError) as excinfo:
            preflight_region(fixture_regions.impure_live, mode="error")
        message = str(excinfo.value)
        assert "SF201" in message and "SF202" in message
        assert excinfo.value.region == "impure_live"
        assert excinfo.value.diagnostics

    def test_warn_mode_warns_instead(self):
        with pytest.warns(PreflightWarning, match="SF20"):
            diags = preflight_region(fixture_regions.impure_live, mode="warn")
        assert any(d.severity.label == "error" for d in diags)

    def test_off_mode_skips(self):
        assert preflight_region(fixture_regions.impure_live, mode="off") == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="preflight mode"):
            preflight_region(fixture_regions.clean_saxpy, mode="loud")


class TestPreflightConcurrency:
    FIXTURE = os.path.join(
        os.path.dirname(__file__), "fixture_concurrency_bugs.py"
    )

    def test_off_mode_skips(self):
        assert preflight_concurrency(self.FIXTURE, mode="off") == []

    def test_shipped_package_passes_error_mode(self):
        # default target is the installed repro package — which is clean
        assert preflight_concurrency(mode="error") == []

    def test_error_mode_raises_on_seeded_bugs(self):
        with pytest.raises(PreflightError, match="CC201"):
            preflight_concurrency(self.FIXTURE, mode="error")

    def test_warn_mode_warns_instead(self):
        with pytest.warns(PreflightWarning, match="CC"):
            diags = preflight_concurrency(self.FIXTURE, mode="warn")
        assert any(d.rule.startswith("CC") for d in diags)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="preflight mode"):
            preflight_concurrency(self.FIXTURE, mode="loud")


class TestPipelineIntegration:
    def test_build_refuses_unfit_region(self):
        framework = AutoHPCnet(AutoHPCnetConfig(n_samples=10))
        with pytest.raises(PreflightError, match="impure_live"):
            framework.build(_ImpureApp())

    def test_config_validates_preflight(self):
        with pytest.raises(ValueError, match="preflight"):
            AutoHPCnetConfig(preflight="loud")

    def test_config_validates_preflight_concurrency(self):
        with pytest.raises(ValueError, match="preflight_concurrency"):
            AutoHPCnetConfig(preflight_concurrency="loud")

    def test_config_default_is_error(self):
        assert AutoHPCnetConfig().preflight == "error"
        # the concurrency gate is opt-in: it lints our runtime, not the
        # user's region, and is primarily a CI/deploy check
        assert AutoHPCnetConfig().preflight_concurrency == "off"
