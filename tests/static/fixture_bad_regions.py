"""Deliberately surrogate-unfit regions — linted via AST only, NEVER imported.

Importing this module would raise at decoration time (``bad_meta`` has a
``continuation_source`` that does not parse, which ``RegionSpec`` now
rejects).  That is the point: the static linter must find every problem
from the source text alone, without importing the module.  Tests lint this
file by path.
"""

import numpy as np

from repro.extract import code_region

COUNTER = {}


@code_region(name="unfit", live_after=("out",))
def unfit_region(data, scratch):
    global COUNTER                                   # SF203: global declaration
    noise = np.random.standard_normal(data.shape)    # SF201: nondeterministic
    print("tracing", data.shape)                     # SF202: I/O
    scratch[0] = float(data.sum())                   # SF204: mutates input arg
    COUNTER["calls"] = COUNTER.get("calls", 0) + 1   # SF203: global mutation
    out = eval("data + noise")                       # SF205: dynamic execution
    return out


@code_region(
    name="bad_meta",
    live_after=("missing",),                         # SF103: never written
    continuation_source="def broken(:",              # SF102: does not parse
)
def bad_meta(x):
    y = x * 2.0
    return y                                         # SF105: y not live_after
