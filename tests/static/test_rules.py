"""Surrogate-fitness rule tests (the SFxxx catalogue)."""

import os

import pytest

from repro.static import RULES, Severity, lint_path, lint_source

FIXTURE_DIR = os.path.dirname(__file__)
BAD_FIXTURE = os.path.join(FIXTURE_DIR, "fixture_bad_regions.py")


def rules_of(diags):
    return {d.rule for d in diags}


def lint_region_source(body: str, *, live_after=("out",), extra_deco="") -> list:
    """Lint one synthetic region; ``body`` is the indented function body."""
    source = (
        "from repro.extract import code_region\n"
        f"@code_region(name='r', live_after={live_after!r}{extra_deco})\n"
        "def region(data, scratch):\n"
        f"{body}"
    )
    return lint_source(source, filename="<test>").diagnostics


class TestBadFixtureModule:
    """The acceptance fixture: an unfit module hits >= 4 error-level rules."""

    def test_at_least_four_distinct_error_rules(self):
        report = lint_path(BAD_FIXTURE)
        error_rules = rules_of(report.errors)
        assert {"SF201", "SF202", "SF203", "SF204", "SF205"} <= error_rules
        assert len(error_rules) >= 4

    def test_metadata_errors_found_without_importing(self):
        report = lint_path(BAD_FIXTURE)
        error_rules = rules_of(report.errors)
        assert "SF102" in error_rules   # continuation_source does not parse
        assert "SF103" in error_rules   # live_after name never written

    def test_fixture_is_not_importable(self):
        # satellite 2: decoration itself rejects the bad continuation_source
        with pytest.raises(ValueError, match="continuation_source"):
            import importlib.util

            spec = importlib.util.spec_from_file_location("bad_regions", BAD_FIXTURE)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)

    def test_exit_code_nonzero(self):
        assert lint_path(BAD_FIXTURE).exit_code() == 1

    def test_diagnostics_carry_locations(self):
        report = lint_path(BAD_FIXTURE)
        for d in report.errors:
            assert d.file == BAD_FIXTURE
            assert d.line > 0
            assert d.region in ("unfit", "bad_meta")


class TestPurityRules:
    def test_nondeterministic_call(self):
        diags = lint_region_source(
            "    out = data + np.random.standard_normal(3)\n    return out\n"
        )
        assert "SF201" in rules_of(diags)

    def test_time_call(self):
        diags = lint_region_source(
            "    out = data * time.time()\n    return out\n"
        )
        assert "SF201" in rules_of(diags)

    def test_io_call(self):
        diags = lint_region_source(
            "    print(data)\n    out = data\n    return out\n"
        )
        assert "SF202" in rules_of(diags)

    def test_open_call(self):
        diags = lint_region_source(
            "    out = open('f').read()\n    return out\n"
        )
        assert "SF202" in rules_of(diags)

    def test_global_statement(self):
        diags = lint_region_source(
            "    global state\n    state = 1\n    out = data\n    return out\n"
        )
        assert "SF203" in rules_of(diags)

    def test_global_element_write(self):
        diags = lint_region_source(
            "    CACHE[0] = data\n    out = data\n    return out\n"
        )
        assert "SF203" in rules_of(diags)

    def test_input_mutation(self):
        diags = lint_region_source(
            "    scratch[0] = 1.0\n    out = data\n    return out\n"
        )
        assert "SF204" in rules_of(diags)

    def test_input_mutation_augassign(self):
        diags = lint_region_source(
            "    scratch[0] += 1.0\n    out = data\n    return out\n"
        )
        assert "SF204" in rules_of(diags)

    def test_mutation_of_live_after_param_allowed(self):
        diags = lint_region_source(
            "    scratch[0] = 1.0\n    out = data\n    return out\n",
            live_after=("out", "scratch"),
        )
        assert "SF204" not in rules_of(diags)

    def test_local_element_write_allowed(self):
        diags = lint_region_source(
            "    buf = data.copy()\n    buf[0] = 1.0\n    out = buf\n    return out\n"
        )
        assert rules_of(diags) <= {"SF105"}

    def test_exec_and_eval(self):
        diags = lint_region_source(
            "    out = eval('data')\n    return out\n"
        )
        assert "SF205" in rules_of(diags)

    def test_import_inside_region(self):
        diags = lint_region_source(
            "    import math\n    out = math.sqrt(2.0) * data\n    return out\n"
        )
        assert "SF205" in rules_of(diags)

    def test_yield_flagged(self):
        diags = lint_region_source(
            "    yield data\n"
        )
        assert "SF205" in rules_of(diags)

    def test_closure_capture_warns(self):
        diags = lint_region_source(
            "    acc = []\n"
            "    def push(v):\n"
            "        acc.append(v)\n"
            "    push(data)\n"
            "    out = acc\n"
            "    return out\n"
        )
        by_rule = {d.rule: d for d in diags}
        assert "SF206" in by_rule
        assert by_rule["SF206"].severity == Severity.WARNING

    def test_clean_region_is_clean(self):
        diags = lint_region_source(
            "    out = data * 2.0 + scratch\n    return out\n"
        )
        assert all(d.severity < Severity.WARNING for d in diags)


class TestMetadataRules:
    def test_live_after_never_written(self):
        diags = lint_region_source(
            "    out = data\n    return out\n", live_after=("out", "ghost")
        )
        assert "SF103" in rules_of(diags)

    def test_live_after_param_passthrough_allowed(self):
        diags = lint_region_source(
            "    out = data\n    return out\n", live_after=("out", "scratch")
        )
        assert "SF103" not in rules_of(diags)

    def test_underivable_outputs_warns(self):
        diags = lint_region_source(
            "    out = data\n    return out * 2\n", live_after=()
        )
        assert "SF104" in rules_of(diags)

    def test_return_not_live_is_info(self):
        diags = lint_region_source(
            "    out = data\n    other = data * 2\n    return out, other\n"
        )
        by_rule = {d.rule: d for d in diags}
        assert "SF105" in by_rule
        assert by_rule["SF105"].severity == Severity.INFO

    def test_live_after_vs_continuation_mismatch(self):
        diags = lint_region_source(
            "    out = data\n    aux = data * 2\n    return out\n",
            extra_deco=", continuation_source='print(aux)'",
        )
        assert "SF106" in rules_of(diags)

    def test_live_after_matching_continuation_clean(self):
        diags = lint_region_source(
            "    out = data\n    return out\n",
            extra_deco=", continuation_source='print(out)'",
        )
        assert "SF106" not in rules_of(diags)


class TestCatalogue:
    def test_every_diagnostic_rule_is_documented(self):
        report = lint_path(BAD_FIXTURE)
        for d in report.diagnostics:
            assert d.rule in RULES
            assert d.severity == RULES[d.rule][0]
