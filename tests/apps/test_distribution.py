"""§3.2 distribution-invariance tests.

One surrogate serves one input distribution: the training samples the
extractor generates and the evaluation problems the workload generator
draws must come from the *same* distribution, and the traced execution
path must be stable across that distribution — otherwise the surrogate's
I/O signature itself would change.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPLICATIONS
from repro.extract import RegionTracer


@pytest.fixture(scope="module", params=ALL_APPLICATIONS, ids=lambda c: c.name)
def app(request):
    return request.param()


class TestDistributionInvariance:
    def test_execution_path_stable_across_problems(self, app):
        """All problems from the generator take the same traced path
        (same statement multiset), up to data-dependent iteration counts."""
        tracer = RegionTracer(app.region_fn)
        stmt_sets = set()
        for problem in app.generate_problems(4, np.random.default_rng(0)):
            _, trace = tracer.trace(**problem)
            stmt_sets.add(frozenset(s for s, _ in trace.flatten()))
        # identical statement *sets* (counts may differ for solvers)
        assert len(stmt_sets) == 1

    def test_io_classification_stable_across_problems(self, app):
        from repro.extract import build_dddg, classify_io, get_region_spec

        tracer = RegionTracer(app.region_fn)
        live = frozenset(get_region_spec(app.region_fn).live_after)
        classifications = set()
        for problem in app.generate_problems(3, np.random.default_rng(1)):
            _, trace = tracer.trace(**problem)
            io = classify_io(build_dddg(trace), problem, live)
            classifications.add((io.inputs, io.outputs))
        assert len(classifications) == 1

    def test_training_and_evaluation_scales_match(self, app):
        """Acquired sample inputs and evaluation problems overlap in range."""
        acq = app.acquire(n_samples=25, rng=np.random.default_rng(2))
        eval_problems = app.generate_problems(25, np.random.default_rng(3))
        eval_x = np.array(
            [acq.input_schema.flatten(p) for p in eval_problems]
        )
        train_span = acq.x.max() - acq.x.min()
        # evaluation features stay within a modest factor of the training box
        assert eval_x.min() >= acq.x.min() - 0.75 * train_span
        assert eval_x.max() <= acq.x.max() + 0.75 * train_span

    def test_qoi_spread_is_moderate(self, app):
        """The QoI varies across problems but not wildly (one distribution)."""
        qois = [
            app.run_exact(p).qoi
            for p in app.generate_problems(12, np.random.default_rng(4))
        ]
        qois = np.abs(np.array(qois))
        assert qois.max() / max(qois.min(), 1e-12) < 100.0
