"""Per-app cost-model and paper-scale projection tests."""

import numpy as np
import pytest

from repro.apps import ALL_APPLICATIONS, AMGApplication, CGApplication
from repro.perf import XEON_E5_2698V4


@pytest.fixture(scope="module", params=ALL_APPLICATIONS, ids=lambda c: c.name)
def app(request):
    return request.param()


class TestPaperScaleProjection:
    def test_projected_region_time_in_paper_range(self, app):
        """At paper scale the region takes O(0.1-10 s) on the CPU model,
        the wall-clock range §7 reports for the originals."""
        problem = app.example_problem(np.random.default_rng(0))
        run = app.run_exact(problem)
        region = run.region_cost.scaled(app.cost_scale)
        seconds = XEON_E5_2698V4.kernel_time(region.flops, region.bytes_moved)
        assert 0.05 <= seconds <= 30.0, (app.name, seconds)

    def test_scaled_helpers_match_manual_scaling(self, app):
        problem = app.example_problem(np.random.default_rng(1))
        run = app.run_exact(problem)
        scaled = app.scaled_region_cost(problem, run.outputs)
        assert scaled.flops == pytest.approx(run.region_cost.flops * app.cost_scale)
        other = app.scaled_other_cost(problem)
        assert other.flops == pytest.approx(
            app.other_cost(problem).flops * app.cost_scale
        )

    def test_speedup_ceiling_exceeds_one(self, app):
        """solver/(other) ratio — the app's achievable ceiling — is > 1.2x."""
        problem = app.example_problem(np.random.default_rng(2))
        run = app.run_exact(problem)
        solver = XEON_E5_2698V4.kernel_time(
            run.region_cost.flops * app.cost_scale,
            run.region_cost.bytes_moved * app.cost_scale,
        )
        other_cost = app.other_cost(problem)
        other = XEON_E5_2698V4.kernel_time(
            other_cost.flops * app.cost_scale,
            other_cost.bytes_moved * app.cost_scale,
        )
        ceiling = (solver + other) / other
        assert ceiling > 1.2, (app.name, ceiling)


class TestIterationDependentCosts:
    def test_cg_cost_grows_with_iterations(self):
        app = CGApplication()
        problem = app.example_problem(np.random.default_rng(0))
        few = app.region_cost(problem, {"iters": 5})
        many = app.region_cost(problem, {"iters": 20})
        assert many.flops > few.flops
        assert many.bytes_moved > few.bytes_moved

    def test_amg_cost_uses_reported_iterations(self):
        app = AMGApplication()
        problem = app.example_problem(np.random.default_rng(0))
        run = app.run_exact(problem)
        explicit = app.region_cost(problem, {"iters": run.outputs["iters"]})
        assert run.region_cost.flops == pytest.approx(explicit.flops)

    def test_cg_typical_iterations_measured_at_init(self):
        app = CGApplication()
        assert 3 <= app.typical_iters <= app.max_iters
