"""Numerical correctness of each application's replaced kernel."""

import numpy as np
import pytest

from repro.apps import (
    AMGApplication,
    BlackscholesApplication,
    CannealApplication,
    CGApplication,
    FFTApplication,
    FluidanimateApplication,
    LaghosApplication,
    MGApplication,
    MiniQMCApplication,
    StreamclusterApplication,
    X264Application,
    annealing,
    blk_schls_eq_euro_no_div,
    cg_solver,
    determinant,
    dimension_reduction,
    encode_frame,
    fft_solver,
    mg_solver,
    ns_equation,
    pcg_solver,
    solve_velocity,
    ssim,
)
from repro.sparse import from_dense


class TestCG:
    def test_solves_system(self, rng):
        app = CGApplication()
        p = app.example_problem(rng)
        x, iters = cg_solver(**p)
        assert np.allclose(app.matrix.matvec(x), p["b"], atol=1e-6)
        assert 0 < iters <= p["max_iters"]

    def test_zero_rhs_gives_zero(self):
        app = CGApplication()
        x, iters = cg_solver(app.matrix, np.zeros(app.n), np.zeros(app.n), 10, 1e-10)
        assert np.allclose(x, 0.0)


class TestFFT:
    @pytest.mark.parametrize("n", [8, 16, 32, 64])
    def test_matches_numpy_fft(self, n, rng):
        re = rng.standard_normal(n)
        im = rng.standard_normal(n)
        re_out, im_out = fft_solver(re, im)
        expected = np.fft.fft(re + 1j * im)
        assert np.allclose(re_out + 1j * im_out, expected, atol=1e-9)

    def test_linearity(self, rng):
        re1, im1 = rng.standard_normal(16), rng.standard_normal(16)
        re2, im2 = rng.standard_normal(16), rng.standard_normal(16)
        sum_out = fft_solver(re1 + re2, im1 + im2)
        a = fft_solver(re1, im1)
        b = fft_solver(re2, im2)
        assert np.allclose(sum_out[0], a[0] + b[0])

    def test_parseval(self, rng):
        re = rng.standard_normal(32)
        re_out, im_out = fft_solver(re, np.zeros(32))
        assert np.sum(re**2) * 32 == pytest.approx(np.sum(re_out**2 + im_out**2))


class TestMG:
    def test_residual_decreases_with_cycles(self, rng):
        app = MGApplication()
        p = app.example_problem(rng)
        _, r1 = mg_solver(p["b"], p["u0"], 1, p["sweeps"], p["omega"])
        _, r3 = mg_solver(p["b"], p["u0"], 3, p["sweeps"], p["omega"])
        assert r3 < r1

    def test_converges_toward_solution(self, rng):
        app = MGApplication()
        p = app.example_problem(rng)
        u, res = mg_solver(p["b"], p["u0"], 20, 3, p["omega"])
        assert res < 0.05 * np.linalg.norm(p["b"]) / np.sqrt(app.n)


class TestBlackscholes:
    def test_put_call_parity(self, rng):
        n = 16
        app = BlackscholesApplication(n_options=n)
        p = app.example_problem(rng)
        calls = blk_schls_eq_euro_no_div(
            p["spot"], p["strike"], p["rate"], p["volatility"], p["expiry"],
            np.zeros(n),
        )
        puts = blk_schls_eq_euro_no_div(
            p["spot"], p["strike"], p["rate"], p["volatility"], p["expiry"],
            np.ones(n),
        )
        parity = calls - puts
        expected = p["spot"] - p["strike"] * np.exp(-p["rate"] * p["expiry"])
        assert np.allclose(parity, expected, atol=2e-3)  # CNDF polynomial error

    def test_call_price_bounds(self, rng):
        app = BlackscholesApplication()
        p = app.example_problem(rng)
        calls = blk_schls_eq_euro_no_div(
            p["spot"], p["strike"], p["rate"], p["volatility"], p["expiry"],
            np.zeros(app.n),
        )
        intrinsic = np.maximum(
            p["spot"] - p["strike"] * np.exp(-p["rate"] * p["expiry"]), 0.0
        )
        assert np.all(calls >= intrinsic - 2e-3)
        assert np.all(calls <= p["spot"] + 1e-9)

    def test_deep_itm_call_approaches_forward(self):
        price = blk_schls_eq_euro_no_div(
            np.array([1000.0]), np.array([1.0]), np.array([0.0]),
            np.array([0.2]), np.array([1.0]), np.array([0.0]),
        )
        assert price[0] == pytest.approx(999.0, abs=0.5)


class TestCanneal:
    def test_cost_tracking_matches_recomputation(self, rng):
        app = CannealApplication()
        p = app.example_problem(rng)
        cost, positions = annealing(**p)
        dx = np.abs(positions[:, 0][:, None] - positions[:, 0][None, :])
        dy = np.abs(positions[:, 1][:, None] - positions[:, 1][None, :])
        truth = float(np.sum(p["weights"] * (dx + dy)) / 2.0)
        assert cost == pytest.approx(truth, rel=1e-9)

    def test_annealing_never_worse_than_initial(self, rng):
        app = CannealApplication()
        p = app.example_problem(rng)
        cost, _ = annealing(**p)
        dx = np.abs(p["positions0"][:, 0][:, None] - p["positions0"][:, 0][None, :])
        dy = np.abs(p["positions0"][:, 1][:, None] - p["positions0"][:, 1][None, :])
        initial = float(np.sum(p["weights"] * (dx + dy)) / 2.0)
        assert cost <= initial + 1e-9

    def test_positions_are_permutation_of_initial(self, rng):
        app = CannealApplication()
        p = app.example_problem(rng)
        _, positions = annealing(**p)
        original = {tuple(row) for row in p["positions0"]}
        final = {tuple(row) for row in positions}
        assert original == final


class TestFluidanimate:
    def test_projection_reduces_divergence(self, rng):
        app = FluidanimateApplication()
        p = app.example_problem(rng)
        u_out, v_out = ns_equation(**p)

        def div(u, v):
            return 0.5 * (
                np.roll(u, -1, axis=1) - np.roll(u, 1, axis=1)
                + np.roll(v, -1, axis=0) - np.roll(v, 1, axis=0)
            )

        before = np.abs(div(p["u"], p["v"])).mean()
        after = np.abs(div(u_out, v_out)).mean()
        assert after < before

    def test_zero_velocity_is_fixed_point(self):
        app = FluidanimateApplication()
        z = np.zeros((app.n, app.n))
        u_out, v_out = ns_equation(z, z, app.dt, app.jacobi_iters)
        assert np.allclose(u_out, 0.0)
        assert np.allclose(v_out, 0.0)


class TestStreamcluster:
    def test_reduced_shape(self, rng):
        app = StreamclusterApplication()
        p = app.example_problem(rng)
        reduced = dimension_reduction(**p)
        assert reduced.shape == (app.m, app.k)

    def test_captures_dominant_variance(self, rng):
        app = StreamclusterApplication()
        p = app.example_problem(rng)
        reduced = dimension_reduction(**p)
        # the sketch must retain most of the data's energy
        total = np.sum(p["points"] ** 2)
        kept = np.sum(reduced**2)
        assert kept > 0.5 * total


class TestX264:
    def test_reconstruction_close_to_frame(self, rng):
        app = X264Application()
        p = app.example_problem(rng)
        recon = encode_frame(**p)
        err = np.abs(recon - p["frame"]).mean()
        assert err < 0.1

    def test_finer_qp_reconstructs_better(self, rng):
        app = X264Application()
        p = app.example_problem(rng)
        coarse = encode_frame(p["frame"], p["previous"], 0.5)
        fine = encode_frame(p["frame"], p["previous"], 0.01)
        assert np.abs(fine - p["frame"]).mean() < np.abs(coarse - p["frame"]).mean()

    def test_ssim_identity_is_one(self, rng):
        frame = rng.random((8, 8))
        assert ssim(frame, frame) == pytest.approx(1.0)

    def test_ssim_decreases_with_noise(self, rng):
        frame = rng.random((8, 8))
        noisy = frame + 0.5 * rng.standard_normal((8, 8))
        assert ssim(frame, noisy) < ssim(frame, frame + 0.01)


class TestMiniQMC:
    def test_logdet_matches_numpy(self, rng):
        app = MiniQMCApplication()
        p = app.example_problem(rng)
        logdet, sign = determinant(**p)
        expected_sign, expected_logdet = np.linalg.slogdet(p["M"])
        assert logdet == pytest.approx(expected_logdet, rel=1e-9)
        assert sign == pytest.approx(expected_sign)

    def test_identity_matrix(self):
        logdet, sign = determinant(np.eye(5))
        assert logdet == pytest.approx(0.0, abs=1e-12)
        assert sign == 1.0

    def test_permutation_sign(self):
        m = np.eye(4)[[1, 0, 2, 3]]  # one row swap: det = -1
        logdet, sign = determinant(m)
        assert sign == -1.0
        assert logdet == pytest.approx(0.0, abs=1e-12)


class TestAMG:
    def test_pcg_solves_poisson(self, rng):
        app = AMGApplication()
        p = app.example_problem(rng)
        x, iters = pcg_solver(**p)
        assert np.allclose(app.matrix.matvec(x), p["b"], atol=1e-6)

    def test_preconditioning_reduces_iterations(self, rng):
        app = AMGApplication()
        p = app.example_problem(rng)
        _, iters_pcg = pcg_solver(**p)
        p_plain = dict(p)
        p_plain["inv_diag"] = np.ones(app.n)  # identity preconditioner
        _, iters_plain = pcg_solver(**p_plain)
        assert iters_pcg <= iters_plain

    def test_address_stream_nonempty(self, rng):
        app = AMGApplication()
        p = app.example_problem(rng)
        run = app.run_exact(p)
        stream = app.solver_address_stream(run.outputs)
        assert stream.size > 100


class TestLaghos:
    def test_momentum_conservation_free_flow(self):
        # uniform pressure, no compression: forces vanish, velocity unchanged
        app = LaghosApplication()
        n = app.n
        v = np.full(n + 1, 0.3)
        p = np.full(n, 1.0)
        rho = np.full(n, 1.0)
        v_new = solve_velocity(v, p, app.x_nodes, rho, app.dt, app.visc_coeff)
        assert np.allclose(v_new, v)

    def test_shock_accelerates_interface(self, rng):
        app = LaghosApplication()
        p = app.example_problem(rng)
        v_new = solve_velocity(**p)
        mid = app.n // 2
        # high pressure on the left pushes the interface right
        assert v_new[mid] > p["v"][mid]

    def test_thomas_solve_correct(self, rng):
        # reconstruct the tridiagonal system and verify the velocity solve
        app = LaghosApplication(n_zones=8)
        prob = app.example_problem(rng)
        v_new = solve_velocity(**prob)
        dv = v_new - prob["v"]
        n = app.n
        dx = app.x_nodes[1:] - app.x_nodes[:-1]
        m_zone = prob["rho"] * dx
        diag = np.zeros(n + 1)
        diag[:-1] += m_zone / 3.0
        diag[1:] += m_zone / 3.0
        off = m_zone / 6.0
        m = np.diag(diag) + np.diag(off, 1) + np.diag(off, -1)
        dvc = prob["v"][1:] - prob["v"][:-1]
        q = np.where(dvc < 0, prob["visc_coeff"] * prob["rho"] * dvc * dvc, 0.0)
        ptot = prob["p"] + q
        force = np.zeros(n + 1)
        force[1:-1] = -(ptot[1:] - ptot[:-1])
        assert np.allclose(m @ dv, prob["dt"] * force, atol=1e-10)
