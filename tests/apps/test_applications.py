"""Cross-cutting contract tests for all 11 applications (Table 2)."""

import numpy as np
import pytest

from repro.apps import ALL_APPLICATIONS, make_application


@pytest.fixture(scope="module", params=ALL_APPLICATIONS, ids=lambda c: c.name)
def app(request):
    return request.param()


class TestApplicationContract:
    def test_metadata_complete(self, app):
        assert app.name and app.app_type in ("I", "II", "III")
        assert app.replaced_function and app.qoi_name

    def test_example_problem_is_region_kwargs(self, app):
        problem = app.example_problem(np.random.default_rng(0))
        result = app.region_fn(**problem)
        assert result is not None

    def test_run_exact_deterministic(self, app):
        problem = app.example_problem(np.random.default_rng(1))
        q1 = app.run_exact(problem).qoi
        q2 = app.run_exact(problem).qoi
        assert q1 == q2

    def test_qoi_finite_and_varies_across_problems(self, app):
        problems = app.generate_problems(6, np.random.default_rng(2))
        qois = [app.run_exact(p).qoi for p in problems]
        assert all(np.isfinite(q) for q in qois)
        assert np.std(qois) > 0

    def test_costs_positive(self, app):
        problem = app.example_problem(np.random.default_rng(3))
        run = app.run_exact(problem)
        assert run.region_cost.flops > 0
        assert run.region_cost.bytes_moved > 0
        other = app.other_cost(problem)
        assert other.flops > 0

    def test_region_dominates_remainder(self, app):
        # surrogate acceleration only makes sense when the replaced region
        # is the dominant cost (the paper's selection criterion, §2.1)
        problem = app.example_problem(np.random.default_rng(4))
        run = app.run_exact(problem)
        assert run.region_cost.flops >= app.other_cost(problem).flops * 0.99

    def test_scale_factors_sane(self, app):
        assert app.cost_scale >= 1e5
        assert app.data_scale >= 1e3
        assert app.unrolled_blowup >= 1.0

    def test_acquisition_shapes(self, app):
        acq = app.acquire(n_samples=8, rng=np.random.default_rng(5))
        assert acq.x.shape == (8, acq.input_dim)
        assert acq.y.shape == (8, acq.output_dim)
        assert acq.input_dim > 0 and acq.output_dim > 0

    def test_acquired_samples_vary(self, app):
        acq = app.acquire(n_samples=6, rng=np.random.default_rng(6))
        assert np.std(acq.x, axis=0).max() > 0
        assert np.std(acq.y, axis=0).max() > 0

    def test_io_classification_covers_qoi_path(self, app):
        acq = app.acquire(n_samples=5, rng=np.random.default_rng(7))
        problem = app.example_problem(np.random.default_rng(7))
        run = app.run_exact(problem)
        outputs = {
            name: run.outputs[name] for name in acq.output_schema.names
        }
        qoi = app.qoi_from_outputs(problem, outputs)
        assert np.isfinite(qoi)

    def test_schema_flatten_unflatten_round_trip(self, app):
        acq = app.acquire(n_samples=5, rng=np.random.default_rng(8))
        problem = app.example_problem(np.random.default_rng(8))
        vec = acq.input_schema.flatten(problem)
        back = acq.input_schema.unflatten(vec)
        for field in acq.input_schema.fields:
            value = problem[field.name]
            dense = value.to_dense() if hasattr(value, "to_dense") else np.asarray(value)
            recovered = back[field.name]
            recovered = (
                recovered.to_dense() if hasattr(recovered, "to_dense") else np.asarray(recovered)
            )
            assert np.allclose(np.atleast_1d(dense).ravel(),
                               np.atleast_1d(recovered).ravel())


def test_registry_instantiates_all():
    for cls in ALL_APPLICATIONS:
        assert make_application(cls.name).name == cls.name


def test_registry_case_insensitive():
    assert make_application("blackscholes").name == "Blackscholes"


def test_registry_rejects_unknown():
    with pytest.raises(ValueError):
        make_application("doom")


def test_type_counts_match_table2():
    types = [cls.app_type for cls in ALL_APPLICATIONS]
    assert types.count("I") == 3
    assert types.count("II") == 5
    assert types.count("III") == 3
