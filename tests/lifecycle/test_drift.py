"""Drift detector: reference freezing, both channels, resets."""

import numpy as np
import pytest

from repro import obs
from repro.lifecycle import DriftConfig, DriftDetector


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


CFG = DriftConfig(
    window=16, min_samples=8, reference_samples=32,
    hit_rate_threshold=0.8, z_threshold=6.0,
)


def feed_reference(det, rng, n=32, dim=3):
    for _ in range(n):
        det.observe(rng.standard_normal(dim))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_samples": 0},
            {"window": 4, "min_samples": 8},
            {"hit_rate_threshold": 0.0},
            {"hit_rate_threshold": 1.5},
            {"z_threshold": 0.0},
            {"reference_samples": 1},
        ],
    )
    def test_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftConfig(**kwargs)


class TestInputShiftChannel:
    def test_no_score_until_reference_frozen_and_window_filled(self, rng):
        det = DriftDetector(CFG, model="m")
        for _ in range(CFG.reference_samples):
            assert det.observe(rng.standard_normal(3)).shift_z is None
        # reference frozen; recent window still below min_samples
        for _ in range(CFG.min_samples - 1):
            assert det.observe(rng.standard_normal(3)).shift_z is None
        assert det.observe(rng.standard_normal(3)).shift_z is not None

    def test_stationary_traffic_does_not_fire(self, rng):
        det = DriftDetector(CFG, model="m")
        feed_reference(det, rng)
        last = None
        for _ in range(40):
            last = det.observe(rng.standard_normal(3))
        assert not last.drifted

    def test_mean_shift_fires(self, rng):
        det = DriftDetector(CFG, model="m")
        feed_reference(det, rng)
        score = None
        for _ in range(CFG.window):
            score = det.observe(rng.standard_normal(3) + 3.0)
        assert score.drifted and score.reason == "input-shift"
        assert score.shift_z > CFG.z_threshold

    def test_feature_count_mismatch_rejected(self, rng):
        det = DriftDetector(CFG, model="m")
        det.observe(rng.standard_normal(3))
        with pytest.raises(ValueError):
            det.observe(rng.standard_normal(4))


class TestHitRateChannel:
    def test_fallbacks_fire_hit_rate(self, rng):
        det = DriftDetector(CFG, model="m")
        score = None
        for _ in range(CFG.min_samples):
            score = det.observe(rng.standard_normal(3), fallback=True)
        assert score.hit_rate == 0.0
        assert score.drifted and score.reason == "hit-rate"

    def test_hit_rate_takes_priority_over_shift(self, rng):
        det = DriftDetector(CFG, model="m")
        feed_reference(det, rng)
        score = None
        for _ in range(CFG.window):
            score = det.observe(rng.standard_normal(3) + 3.0, fallback=True)
        # both channels are over threshold; the guard signal names the reason
        assert score.shift_z > CFG.z_threshold
        assert score.reason == "hit-rate"

    def test_event_counter_counts_rising_edges_only(self, rng):
        det = DriftDetector(CFG, model="m")
        for _ in range(CFG.min_samples + 5):
            det.observe(rng.standard_normal(3), fallback=True)
        rendered = obs.get_registry().to_prometheus()
        assert 'repro_drift_events_total{model="m",reason="hit-rate"} 1' in rendered


class TestResets:
    def test_reset_recent_keeps_reference(self, rng):
        det = DriftDetector(CFG, model="m")
        feed_reference(det, rng)
        for _ in range(CFG.window):
            det.observe(rng.standard_normal(3) + 3.0)
        assert det.score().drifted
        det.reset_recent()
        assert not det.score().drifted
        # the old reference still defines normal: shift re-fires quickly
        score = None
        for _ in range(CFG.min_samples):
            score = det.observe(rng.standard_normal(3) + 3.0)
        assert score.drifted

    def test_rebaseline_forgets_everything(self, rng):
        det = DriftDetector(CFG, model="m")
        feed_reference(det, rng)
        for _ in range(CFG.window):
            det.observe(rng.standard_normal(3) + 3.0)
        det.rebaseline()
        # shifted traffic becomes the new reference: no drift against it
        score = None
        for _ in range(CFG.reference_samples + CFG.window):
            score = det.observe(rng.standard_normal(3) + 3.0)
        assert not score.drifted
