"""Lifecycle state machine + persisted store: transitions, history, pins."""

import pytest

from repro import obs
from repro.lifecycle import (
    InvalidTransition,
    LifecycleRecord,
    LifecycleState,
    LifecycleStore,
    TrafficBuffer,
)
from repro.registry import ModelRegistry


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def write_payload(staged):
    (staged / "blob.bin").write_bytes(b"model bytes")


class TestTransitions:
    def test_full_happy_path_walk(self):
        record = LifecycleRecord(model="m", incumbent=1)
        path = [
            LifecycleState.DRIFTING,
            LifecycleState.RETRAINING,
            LifecycleState.CANARY,
            LifecycleState.PROMOTE,
            LifecycleState.STABLE,
        ]
        for state in path:
            record = record.transition(state)
        assert record.state is LifecycleState.STABLE
        assert record.seq == len(path)
        assert [h["to"] for h in record.history] == [s.value for s in path]
        assert [h["seq"] for h in record.history] == list(range(1, 6))

    def test_rollback_branch(self):
        record = (
            LifecycleRecord(model="m")
            .transition(LifecycleState.DRIFTING)
            .transition(LifecycleState.RETRAINING)
            .transition(LifecycleState.CANARY)
            .transition(LifecycleState.ROLLBACK, candidate=2)
            .transition(LifecycleState.STABLE)
        )
        assert record.state is LifecycleState.STABLE
        assert record.history[-2]["detail"] == {"candidate": 2}

    @pytest.mark.parametrize(
        "start,to",
        [
            (LifecycleState.STABLE, LifecycleState.CANARY),
            (LifecycleState.STABLE, LifecycleState.PROMOTE),
            (LifecycleState.CANARY, LifecycleState.STABLE),
            (LifecycleState.CANARY, LifecycleState.RETRAINING),
            (LifecycleState.PROMOTE, LifecycleState.CANARY),
        ],
    )
    def test_non_edges_rejected(self, start, to):
        record = LifecycleRecord(model="m", state=start)
        with pytest.raises(InvalidTransition):
            record.transition(to)

    def test_records_are_immutable(self):
        record = LifecycleRecord(model="m")
        after = record.transition(LifecycleState.DRIFTING)
        assert record.state is LifecycleState.STABLE
        assert after is not record

    def test_pins_collect_referenced_versions(self):
        record = LifecycleRecord(
            model="m", incumbent=3, candidate=5, parent_version=3
        )
        assert record.pins == [3, 5]
        assert LifecycleRecord(model="m").pins == []


class TestStore:
    def test_round_trip_preserves_history(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        store = LifecycleStore(registry, "m")
        assert store.load() is None
        record = (
            LifecycleRecord(model="m", incumbent=1)
            .transition(LifecycleState.DRIFTING, trigger="drift")
            .transition(LifecycleState.RETRAINING)
        )
        store.save(record)
        loaded = store.load()
        assert loaded.state is LifecycleState.RETRAINING
        assert loaded.seq == 2
        assert loaded.history == record.history
        assert loaded.incumbent == 1

    def test_every_save_is_a_new_version(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        store = LifecycleStore(registry, "m")
        record = LifecycleRecord(model="m", incumbent=1)
        store.save(record)
        record = record.transition(LifecycleState.DRIFTING)
        store.save(record)
        assert registry.versions("m-lifecycle") == [1, 2]
        # latest wins: the newest version is the truth
        assert store.load().state is LifecycleState.DRIFTING

    def test_manifest_declares_gc_pins(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for _ in range(3):
            registry.publish("m", "nn-model", write_payload)
        store = LifecycleStore(registry, "m")
        store.save(LifecycleRecord(model="m", incumbent=1, candidate=2))
        ref = registry.resolve("m-lifecycle")
        assert ref.meta["pins"] == [{"name": "m", "versions": [1, 2]}]
        # and gc honors them without being told anything about lifecycles
        registry.gc(keep=1)
        assert registry.versions("m") == [1, 2, 3]

    def test_request_seeds_record_from_registry(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("m", "nn-model", write_payload)
        store = LifecycleStore(registry, "m")
        record = store.request("trigger")
        assert record.requested == "trigger"
        assert record.incumbent == 1
        assert store.load().requested == "trigger"

    def test_unknown_request_rejected(self, tmp_path):
        store = LifecycleStore(ModelRegistry(tmp_path), "m")
        with pytest.raises(ValueError):
            store.request("explode")

    def test_state_metrics_exported(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        store = LifecycleStore(registry, "m")
        store.save(LifecycleRecord(model="m").transition(LifecycleState.DRIFTING))
        rendered = obs.get_registry().to_prometheus()
        assert 'repro_lifecycle_state{model="m"} 1' in rendered
        assert (
            'repro_lifecycle_transitions_total{model="m",to="DRIFTING"} 1'
            in rendered
        )


class TestTrafficBuffer:
    def test_ring_semantics_and_arrays(self, rng):
        buffer = TrafficBuffer(capacity=4)
        for i in range(6):
            buffer.add([float(i)] * 3, [float(i)])
        assert len(buffer) == 4
        x, y = buffer.arrays()
        assert x.shape == (4, 3) and y.shape == (4, 1)
        assert y.ravel().tolist() == [2.0, 3.0, 4.0, 5.0]
        buffer.clear()
        assert len(buffer) == 0
        with pytest.raises(ValueError):
            buffer.arrays()

    def test_add_copies_inputs(self, rng):
        buffer = TrafficBuffer()
        row = rng.standard_normal(3)
        buffer.add(row, [1.0])
        row[:] = 0.0
        x, _ = buffer.arrays()
        assert x[0].any()
