"""Closed-loop controller e2e: drift → retrain → canary → promote/rollback.

The world is a linear map the surrogate fits well inside its training
box.  "Drift" is traffic far outside the box, where the tanh net
saturates and the validator fails — exactly the §7.1 restart signal the
loop feeds on.  Every scenario runs through the *real* stack: registry
publishes, orchestrator canary routing, guard-style validation, and the
persisted state machine.
"""

import pickle

import numpy as np
import pytest

from repro import obs
from repro.lifecycle import (
    DriftConfig,
    LifecycleConfig,
    LifecycleController,
    LifecycleRecord,
    LifecycleState,
    RetrainConfig,
    Retrainer,
)
from repro.nas import evaluate_topology
from repro.nn import Topology
from repro.registry import ModelRegistry
from repro.runtime import Orchestrator


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


DIN, DOUT, SHIFT = 4, 2, 20.0

CFG = LifecycleConfig(
    fraction=0.25,
    decision_samples=12,
    min_incumbent_samples=6,
    early_rollback_samples=6,
    regression_margin=0.05,
    drift=DriftConfig(
        window=24, min_samples=10, reference_samples=24,
        hit_rate_threshold=0.8, z_threshold=8.0,
    ),
    retrain=RetrainConfig(num_epochs=60, batch_size=8, min_samples=16),
)


class World:
    """One model + registry + calibrated validator, shared by scenarios."""

    def __init__(self, tmp_path, rng):
        self.rng = rng
        self.w = rng.standard_normal((DIN, DOUT)) * 2.0
        x = rng.standard_normal((240, DIN))
        y = x @ self.w
        self.package = evaluate_topology(
            Topology(hidden=(16,), activation="tanh"), x, y, rng=rng
        ).package
        self.registry = ModelRegistry(tmp_path / "registry")
        self.package.publish(self.registry, "m")
        # tolerance: every healthy prediction passes with 4x headroom,
        # so the hit-rate channel only fires on genuinely foreign traffic
        probe = rng.standard_normal((80, DIN))
        errors = np.linalg.norm(
            self.package.predict(probe) - probe @ self.w, axis=1
        )
        self.tol = 4.0 * float(np.max(errors))

    def reference(self, row):
        return np.asarray(row) @ self.w

    def validator(self, row, yhat):
        err = np.linalg.norm(np.ravel(yhat) - self.reference(row))
        return bool(np.isfinite(err) and err < self.tol)

    def controller(self, orchestrator):
        return LifecycleController(
            "m",
            orchestrator,
            self.registry,
            reference=self.reference,
            validator=self.validator,
            config=CFG,
        )

    def healthy_row(self):
        return self.rng.standard_normal(DIN)

    def shifted_row(self):
        return self.rng.standard_normal(DIN) + SHIFT


@pytest.fixture
def world(tmp_path, rng):
    return World(tmp_path, rng)


def drive(ctl, world, make_row, *, until, max_steps=400):
    """Serve + step until the controller reaches ``until``; return results."""
    results = []
    for _ in range(max_steps):
        results.append(ctl.serve(make_row()))
        if ctl.step() is until:
            return results
    raise AssertionError(
        f"never reached {until} (state {ctl.state}, "
        f"buffer {len(ctl.buffer)}, retrains {ctl.retrain_count})"
    )


HAPPY_PATH = [
    ("STABLE", "DRIFTING"),
    ("DRIFTING", "RETRAINING"),
    ("RETRAINING", "CANARY"),
    ("CANARY", "PROMOTE"),
    ("PROMOTE", "STABLE"),
]


class TestRetrainerIdempotence:
    def test_identical_request_returns_cached_candidate(self, world):
        retrainer = Retrainer(world.registry, "m", CFG.retrain)
        x = np.stack([world.shifted_row() for _ in range(20)])
        y = x @ world.w
        first = retrainer.retrain(world.package, x, y, parent_version=1)
        again = retrainer.retrain(world.package, x, y, parent_version=1)
        assert first.version == again.version == 2
        assert retrainer.trained_count == 1  # the second call was a cache hit
        lineage = first.meta["lineage"]
        assert lineage["parent_version"] == 1
        assert lineage["trigger"] == "drift"
        assert lineage["samples"] == 20

    def test_insufficient_samples_rejected(self, world):
        retrainer = Retrainer(world.registry, "m", CFG.retrain)
        with pytest.raises(ValueError):
            retrainer.retrain(
                world.package, np.zeros((3, DIN)), np.zeros((3, DOUT)),
                parent_version=1,
            )


class TestThreadModeLoop:
    def test_drift_to_promote(self, world):
        orc = Orchestrator()
        ctl = world.controller(orc)
        assert ctl.attach() is LifecycleState.STABLE

        # healthy traffic: the loop stays put
        for _ in range(40):
            result = ctl.serve(world.healthy_row())
            assert result.valid and result.version == 1
            assert ctl.step() is LifecycleState.STABLE

        # foreign traffic: the guard fails, drift fires, the loop runs
        drive(ctl, world, world.shifted_row, until=LifecycleState.CANARY)
        assert ctl.retrain_count == 1
        canary_phase = drive(
            ctl, world, world.shifted_row, until=LifecycleState.STABLE
        )

        record = ctl.record
        assert record.incumbent == 2 and record.candidate is None
        assert [(h["from"], h["to"]) for h in record.history] == HAPPY_PATH
        # the decision is in the history, not just the pointers
        assert record.history[-2]["detail"]["candidate"] == 2
        # persisted state agrees with the in-memory record
        assert ctl.store.load().to_payload() == record.to_payload()
        # the registry carries the lineage of the promoted version
        lineage = world.registry.resolve("m", 2).meta["lineage"]
        assert lineage["parent_version"] == 1
        assert lineage["trigger"] == "drift"
        assert lineage["drift"]["reason"] in ("hit-rate", "input-shift")
        # canary slice stayed a bounded minority; nothing was misrouted
        versions = [r.version for r in canary_phase]
        assert set(versions) <= {1, 2}
        assert versions.count(2) / len(versions) <= 0.45
        # promoted version serves all traffic now
        assert ctl.serve(world.shifted_row()).version == 2

    def test_sabotaged_candidate_rolls_back(self, world):
        class Saboteur(Retrainer):
            """Publishes a candidate whose head weights are garbage."""

            def retrain(self, incumbent, x, y, *, parent_version, **kwargs):
                bad = pickle.loads(pickle.dumps(incumbent))
                for param in bad.model.parameters():
                    param.data[:] = 1e3
                self.trained_count += 1
                return bad.publish(
                    self.registry, self.name,
                    extra_meta={"lineage": {
                        "parent_version": int(parent_version),
                        "trigger": "drift", "content_key": "sabotage",
                    }},
                )

        orc = Orchestrator()
        ctl = world.controller(orc)
        ctl.retrainer = Saboteur(world.registry, "m", CFG.retrain)
        ctl.attach()
        for _ in range(40):
            ctl.serve(world.healthy_row())
            ctl.step()
        drive(ctl, world, world.shifted_row, until=LifecycleState.CANARY)

        # the drift was transient: traffic returns to normal, where the
        # incumbent is healthy and the sabotaged candidate fails hard
        drive(ctl, world, world.healthy_row, until=LifecycleState.STABLE)
        record = ctl.record
        assert record.state is LifecycleState.STABLE
        assert record.incumbent == 1 and record.candidate is None
        transitions = [(h["from"], h["to"]) for h in record.history]
        assert ("CANARY", "ROLLBACK") in transitions
        assert ("CANARY", "PROMOTE") not in transitions
        # the bad candidate is published (with lineage) but not serving
        assert world.registry.versions("m") == [1, 2]
        assert orc.active_version("m") == 1
        assert orc.canary_status("m") is None

    def test_manual_trigger_via_persisted_request(self, world):
        orc = Orchestrator()
        ctl = world.controller(orc)
        ctl.attach()
        for _ in range(40):
            ctl.serve(world.healthy_row())
            ctl.step()
        assert ctl.state is LifecycleState.STABLE
        # the CLI writes the override into the registry; the controller
        # picks it up on its next step without sharing memory
        ctl.store.request("trigger")
        assert ctl.step() is LifecycleState.DRIFTING
        assert ctl.record.trigger == "manual"


class TestKillResume:
    def test_mid_canary_kill_resumes_without_retraining(self, world):
        orc = Orchestrator()
        ctl = world.controller(orc)
        ctl.attach()
        for _ in range(40):
            ctl.serve(world.healthy_row())
            ctl.step()
        drive(ctl, world, world.shifted_row, until=LifecycleState.CANARY)
        pre_kill = ctl.store.load()
        assert pre_kill.state is LifecycleState.CANARY

        # "kill": the process dies; orchestrator + controller memory is gone
        orc2 = Orchestrator()
        ctl2 = world.controller(orc2)
        assert ctl2.resume() is LifecycleState.CANARY
        assert ctl2.retrain_count == 0  # the published candidate is reused
        assert orc2.canary_status("m") is not None
        assert orc2.active_version("m") == pre_kill.incumbent

        drive(ctl2, world, world.shifted_row, until=LifecycleState.STABLE)
        record = ctl2.record
        assert ctl2.retrain_count == 0  # still zero: no duplicate training
        assert record.incumbent == pre_kill.candidate
        # the full pre-kill history survived the crash
        transitions = [(h["from"], h["to"]) for h in record.history]
        assert transitions == HAPPY_PATH
        assert record.seq == len(HAPPY_PATH)

    def test_kill_during_retraining_reuses_published_candidate(self, world):
        """Resume RETRAINING with an empty buffer: the candidate published
        before the kill (found by lineage) goes to canary, not a retrain."""
        retrainer = Retrainer(world.registry, "m", CFG.retrain)
        x = np.stack([world.shifted_row() for _ in range(20)])
        retrainer.retrain(world.package, x, x @ world.w, parent_version=1)

        orc = Orchestrator()
        ctl = world.controller(orc)
        # persisted record says RETRAINING, as if the kill landed mid-fit
        record = LifecycleRecord(
            model="m", incumbent=1, parent_version=1
        )
        record = record.transition(LifecycleState.DRIFTING)
        record = record.transition(LifecycleState.RETRAINING)
        ctl.store.save(record)

        ctl2 = world.controller(orc)
        ctl2.resume()
        assert ctl2.step() is LifecycleState.CANARY
        assert ctl2.retrain_count == 0
        assert ctl2.record.candidate == 2


class TestProcessModeLoop:
    def test_drift_to_promote_across_processes(self, world):
        orc = Orchestrator(num_processes=2)
        ctl = world.controller(orc)
        ctl.attach()
        orc.start()
        try:
            for _ in range(40):
                result = ctl.serve(world.healthy_row())
                assert result.valid and result.version == 1
                ctl.step()
            assert ctl.state is LifecycleState.STABLE
            drive(ctl, world, world.shifted_row, until=LifecycleState.CANARY)
            assert ctl.retrain_count == 1
            canary_phase = drive(
                ctl, world, world.shifted_row, until=LifecycleState.STABLE
            )
            record = ctl.record
            assert record.incumbent == 2
            assert [(h["from"], h["to"]) for h in record.history] == HAPPY_PATH
            versions = [r.version for r in canary_phase]
            assert set(versions) <= {1, 2}
            assert versions.count(2) / len(versions) <= 0.45
            assert ctl.serve(world.shifted_row()).version == 2
        finally:
            orc.stop()
