"""Roofline-model property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perf import (
    DeviceModel,
    PCIE3_X16,
    TESLA_V100_NN,
    TESLA_V100_SOLVER,
    XEON_E5_2698V4,
    estimate_kernel_time,
    transfer_time,
)


class TestRooflineShape:
    def test_crossover_at_machine_balance(self):
        dev = DeviceModel("d", peak_flops=1e12, mem_bandwidth=1e11, launch_overhead=0.0)
        balance = dev.peak_flops / dev.mem_bandwidth  # flops per byte
        nbytes = 1e6
        compute_bound = dev.kernel_time(nbytes * balance * 10, nbytes)
        memory_bound = dev.kernel_time(nbytes * balance / 10, nbytes)
        assert compute_bound > memory_bound
        assert memory_bound == pytest.approx(nbytes / dev.mem_bandwidth)

    def test_time_monotone_in_both_inputs(self):
        dev = XEON_E5_2698V4
        assert dev.kernel_time(2e9, 1e6) >= dev.kernel_time(1e9, 1e6)
        assert dev.kernel_time(1e9, 2e9) >= dev.kernel_time(1e9, 1e6)

    def test_solver_vs_nn_gpu_profiles(self):
        # identical kernel, both V100 profiles: the NN profile is faster
        flops, nbytes = 1e10, 1e8
        assert TESLA_V100_NN.kernel_time(flops, nbytes) < TESLA_V100_SOLVER.kernel_time(
            flops, nbytes
        )

    def test_invocation_scaling(self):
        t1 = estimate_kernel_time(XEON_E5_2698V4, 1e8, 1e6, invocations=1)
        t10 = estimate_kernel_time(XEON_E5_2698V4, 1e8, 1e6, invocations=10)
        assert t10 == pytest.approx(10 * t1)

    def test_transfer_latency_floor(self):
        nearly_zero = transfer_time(PCIE3_X16, 1)
        assert nearly_zero >= PCIE3_X16.latency

    def test_negative_invocations_rejected(self):
        with pytest.raises(ValueError):
            estimate_kernel_time(XEON_E5_2698V4, 1, 1, invocations=-1)


@settings(max_examples=30, deadline=None)
@given(
    st.floats(1.0, 1e12),
    st.floats(1.0, 1e12),
)
def test_kernel_time_at_least_each_bound(flops, nbytes):
    dev = TESLA_V100_NN
    t = dev.kernel_time(flops, nbytes)
    assert t >= flops / dev.peak_flops
    assert t >= nbytes / dev.mem_bandwidth
    assert t >= dev.launch_overhead


@settings(max_examples=30, deadline=None)
@given(st.floats(0.0, 1e12))
def test_achieved_bandwidth_never_exceeds_peak(nbytes):
    dev = XEON_E5_2698V4
    assert dev.achieved_bandwidth(0.0, nbytes) <= dev.mem_bandwidth + 1e-6
