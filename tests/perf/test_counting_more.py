"""Additional FLOP-accounting tests (nn_inference_cost and counters)."""

import numpy as np
import pytest

from repro.nn import Sequential, Dense, Activation, Topology, build_mlp
from repro.perf import FlopCounter, nn_inference_cost


class TestNNInferenceCost:
    def test_flops_match_model_accounting(self, rng):
        model = build_mlp(6, 2, Topology(hidden=(8,), activation="relu"), rng)
        # prime activation dims
        from repro.nn import Tensor

        model(Tensor(rng.standard_normal((1, 6))))
        flops, traffic = nn_inference_cost(model, batch=1)
        assert flops == model.flops(1)
        assert traffic >= model.num_parameters() * 8

    def test_batch_scales_flops(self, rng):
        model = build_mlp(6, 2, Topology(hidden=(8,), activation="relu"), rng)
        from repro.nn import Tensor

        model(Tensor(rng.standard_normal((1, 6))))
        f1, _ = nn_inference_cost(model, batch=1)
        f4, _ = nn_inference_cost(model, batch=4)
        # Dense flops scale linearly with batch; activations were primed at 1
        assert f4 > 2 * f1

    def test_traffic_floor_is_parameters(self, rng):
        model = Sequential([Dense(100, 100, rng)])
        _, traffic = nn_inference_cost(model, batch=1)
        assert traffic >= 100 * 100 * 8


class TestFlopCounterScaling:
    def test_scaled_counter(self):
        counter = FlopCounter(10.0, 20.0, 2)
        scaled = counter.scaled(3.0)
        assert scaled.flops == 30.0
        assert scaled.bytes_moved == 60.0
        assert scaled.kernel_launches == 6

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            FlopCounter(1.0, 1.0).scaled(-1.0)

    def test_merge_is_commutative(self):
        a, b = FlopCounter(1, 2, 3), FlopCounter(4, 5, 6)
        ab, ba = a.merge(b), b.merge(a)
        assert (ab.flops, ab.bytes_moved, ab.kernel_launches) == (
            ba.flops, ba.bytes_moved, ba.kernel_launches
        )
