"""Two-level cache hierarchy tests."""

import numpy as np
import pytest

from repro.perf import CacheConfig, CacheHierarchy, XEON_L1, XEON_L2


class TestCacheHierarchy:
    def test_levels_filter_accesses(self):
        h = CacheHierarchy(XEON_L1, XEON_L2)
        # small working set: first pass misses, second pass hits L1
        h.access_stream(range(0, 4096, 8))
        counts = h.access_stream(range(0, 4096, 8))
        assert counts["l1"] == 512
        assert counts["memory"] == 0

    def test_mid_size_set_hits_l2(self):
        h = CacheHierarchy(
            CacheConfig(size_bytes=1024, line_bytes=64, ways=2),
            CacheConfig(size_bytes=64 * 1024, line_bytes=64, ways=8),
        )
        stream = list(range(0, 32 * 1024, 64))    # 32 KB: beyond L1, inside L2
        h.access_stream(stream)
        counts = h.access_stream(stream)
        assert counts["l2"] > 0
        assert counts["memory"] == 0

    def test_global_miss_rate_composition(self):
        h = CacheHierarchy(XEON_L1, XEON_L2)
        h.access_stream(range(0, 8 * 1024 * 1024, 64))   # stream beyond both
        assert h.global_miss_rate == pytest.approx(1.0, abs=0.05)

    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(XEON_L2, XEON_L1)

    def test_reset(self):
        h = CacheHierarchy(XEON_L1, XEON_L2)
        h.access(0)
        h.reset()
        assert h.l1.stats.accesses == 0
        assert h.access(0) == "memory"
