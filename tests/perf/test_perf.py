"""Device-model, cache-simulator, metric and timer tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perf import (
    CacheConfig,
    DeviceModel,
    FlopCounter,
    Link,
    PCIE3_X16,
    PhaseTimer,
    SetAssociativeCache,
    SpeedupBreakdown,
    TESLA_V100_NN,
    XEON_E5_2698V4,
    XEON_L2,
    axpy_cost,
    dense_mm_cost,
    dot_cost,
    effective_speedup,
    fft_cost,
    harmonic_mean,
    hit_rate,
    reconstruction_similarity,
    speedup,
    spmv_cost,
    stencil_cost,
)


# ------------------------------------------------------------------- devices


class TestDeviceModel:
    def test_compute_bound_kernel(self):
        dev = DeviceModel("d", peak_flops=1e9, mem_bandwidth=1e12, launch_overhead=0.0)
        assert dev.kernel_time(1e9, 8) == pytest.approx(1.0)

    def test_memory_bound_kernel(self):
        dev = DeviceModel("d", peak_flops=1e15, mem_bandwidth=1e9, launch_overhead=0.0)
        assert dev.kernel_time(8, 1e9) == pytest.approx(1.0)

    def test_launch_overhead_added(self):
        dev = DeviceModel("d", peak_flops=1e9, mem_bandwidth=1e9, launch_overhead=1e-3)
        assert dev.kernel_time(0, 0) == pytest.approx(1e-3)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            XEON_E5_2698V4.kernel_time(-1, 0)

    def test_gpu_nn_beats_cpu_on_dense_work(self):
        flops, traffic = dense_mm_cost(512, 512, 512)
        assert TESLA_V100_NN.kernel_time(flops, traffic) < XEON_E5_2698V4.kernel_time(
            flops, traffic
        )

    def test_link_time(self):
        assert PCIE3_X16.time(16e9) == pytest.approx(1.0 + 10e-6)
        with pytest.raises(ValueError):
            PCIE3_X16.time(-1)

    def test_invalid_device_rejected(self):
        with pytest.raises(ValueError):
            DeviceModel("bad", peak_flops=0.0, mem_bandwidth=1.0, launch_overhead=0.0)


# ------------------------------------------------------------------- cache simulator


class TestCacheSimulator:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, line_bytes=64, ways=2))
        assert cache.access(0) is False
        assert cache.access(8) is True      # same line
        assert cache.access(0) is True

    def test_streaming_within_capacity_hits(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=4096, line_bytes=64, ways=4))
        cache.access_block(0, 2048, stride=8)
        stats = cache.access_block(0, 2048, stride=8)
        assert stats.miss_rate < 0.05

    def test_thrashing_beyond_capacity_misses(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, line_bytes=64, ways=2))
        cache.access_block(0, 65536, stride=64)
        stats = cache.access_block(0, 65536, stride=64)
        assert stats.miss_rate > 0.9

    def test_lru_eviction_order(self):
        # 1 set, 2 ways: A, B fill; touching A again makes B the LRU victim
        cache = SetAssociativeCache(CacheConfig(size_bytes=128, line_bytes=64, ways=2))
        a, b, c = 0, 64, 128
        cache.access(a)
        cache.access(b)
        cache.access(a)
        cache.access(c)          # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_irregular_gather_misses_more_than_streaming(self, rng):
        config = CacheConfig(size_bytes=2048, line_bytes=64, ways=4)
        streaming = SetAssociativeCache(config)
        s_stats = streaming.access_block(0, 32768, stride=8)
        gather = SetAssociativeCache(config)
        addresses = rng.integers(0, 1 << 20, size=4096) * 8
        g_stats = gather.access_stream(addresses.tolist())
        assert g_stats.miss_rate > s_stats.miss_rate

    def test_reset(self):
        cache = SetAssociativeCache(XEON_L2)
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is False

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100, line_bytes=60, ways=2)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64, line_bytes=64, ways=2)

    def test_stats_merge(self):
        from repro.perf import CacheStats

        merged = CacheStats(2, 3).merge(CacheStats(1, 1))
        assert merged.hits == 3 and merged.misses == 4
        assert merged.miss_rate == pytest.approx(4 / 7)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
def test_cache_hit_plus_miss_equals_accesses(addresses):
    cache = SetAssociativeCache(CacheConfig(size_bytes=1024, line_bytes=64, ways=2))
    stats = cache.access_stream(addresses)
    assert stats.hits + stats.misses == len(addresses)
    assert 0.0 <= stats.miss_rate <= 1.0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
def test_cache_repeat_stream_never_misses_more(addresses):
    config = CacheConfig(size_bytes=32768, line_bytes=64, ways=8)
    cache = SetAssociativeCache(config)
    first = cache.access_stream(addresses)
    # working set fits entirely: replay must be all hits
    if len(set(a // 64 for a in addresses)) <= config.num_sets * config.ways // 2:
        second = cache.access_stream(addresses)
        assert second.misses == 0


# ------------------------------------------------------------------- metrics


class TestMetrics:
    def test_speedup_eqn2(self):
        assert speedup(10.0, 1.0, 1.0, 2.0) == pytest.approx(3.0)

    def test_speedup_breakdown_value(self):
        b = SpeedupBreakdown(10.0, 1.0, 1.0, 2.0)
        assert b.value == pytest.approx(3.0)
        assert b.t_original == 12.0
        assert b.t_surrogate == 4.0

    def test_negative_terms_rejected(self):
        with pytest.raises(ValueError):
            SpeedupBreakdown(-1.0, 0.0, 0.0, 1.0)

    def test_hit_rate_eqn3(self):
        exact = [1.0, 1.0, 1.0, 1.0]
        surrogate = [1.05, 1.2, 0.95, 1.0]
        assert hit_rate(exact, surrogate, mu=0.10) == pytest.approx(0.75)

    def test_hit_rate_perfect(self):
        assert hit_rate([2.0, 3.0], [2.0, 3.0]) == 1.0

    def test_hit_rate_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hit_rate([1.0], [1.0, 2.0])

    def test_sigma_y_eqn1_literal(self):
        x = np.array([1.0, 2.0, 4.0])
        y = np.array([1.05, 2.0, 8.0])
        # strict Eqn 1 (atol=0): only the 4->8 element is out of 10% range
        assert reconstruction_similarity(x, y, mu=0.10, atol=0.0) == pytest.approx(1 / 3)

    def test_sigma_y_zero_elements_with_floor(self):
        x = np.array([0.0, 0.0, 1.0])
        y = np.array([1e-6, 1e-6, 1.0])
        assert reconstruction_similarity(x, y, mu=0.10) == 0.0
        assert reconstruction_similarity(x, y, mu=0.10, atol=0.0) == pytest.approx(2 / 3)

    def test_effective_speedup_restart_penalty(self):
        b = SpeedupBreakdown(10.0, 0.5, 0.5, 2.0)
        full = effective_speedup(b, 1.0)
        half = effective_speedup(b, 0.5)
        assert full == pytest.approx(b.value)
        assert half < full
        # at hit 0 every problem pays both paths: slowdown below 1x
        assert effective_speedup(b, 0.0) < 1.0

    def test_harmonic_mean(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert harmonic_mean([1.0, 3.0]) < np.mean([1.0, 3.0])
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -1.0])


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(0.1, 100, allow_nan=False), min_size=2, max_size=20),
)
def test_harmonic_mean_bounded_by_min_max(values):
    hm = harmonic_mean(values)
    assert min(values) - 1e-9 <= hm <= max(values) + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1), st.floats(0.0, 0.5))
def test_hit_rate_in_unit_interval(seed, mu):
    rng = np.random.default_rng(seed)
    exact = rng.uniform(0.5, 2.0, size=10)
    surrogate = exact * rng.uniform(0.7, 1.3, size=10)
    assert 0.0 <= hit_rate(exact, surrogate, mu=mu) <= 1.0


# ------------------------------------------------------------------- counting + timers


class TestCounting:
    def test_spmv_cost(self):
        flops, _ = spmv_cost(100, 10)
        assert flops == 200.0

    def test_dot_axpy(self):
        assert dot_cost(10)[0] == 20.0
        assert axpy_cost(10)[0] == 20.0

    def test_dense_mm(self):
        assert dense_mm_cost(2, 3, 4)[0] == 48.0

    def test_fft_nlogn(self):
        f32, _ = fft_cost(32)
        f64, _ = fft_cost(64)
        assert f64 / f32 == pytest.approx((64 * 6) / (32 * 5))

    def test_stencil(self):
        assert stencil_cost(100, 5)[0] == 1000.0

    def test_flop_counter_accumulates(self):
        c = FlopCounter()
        c.add(10, 20)
        c.add(5, 5)
        assert c.flops == 15 and c.bytes_moved == 25 and c.kernel_launches == 2
        merged = c.merge(FlopCounter(1, 1, 1))
        assert merged.flops == 16
        assert c.scaled(2.0).flops == 30

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FlopCounter().add(-1)


class TestPhaseTimer:
    def test_add_and_fractions(self):
        t = PhaseTimer()
        t.add("a", 3.0)
        t.add("b", 1.0)
        assert t.total == 4.0
        assert t.fraction("a") == pytest.approx(0.75)
        assert sum(t.breakdown().values()) == pytest.approx(1.0)

    def test_measure_context(self):
        t = PhaseTimer()
        with t.measure("work"):
            sum(range(1000))
        assert t.phases["work"] > 0

    def test_merged(self):
        a, b = PhaseTimer({"x": 1.0}), PhaseTimer({"x": 2.0, "y": 1.0})
        merged = a.merged(b)
        assert merged.phases == {"x": 3.0, "y": 1.0}

    def test_report_contains_phases(self):
        t = PhaseTimer({"fetch": 0.2, "run": 0.8})
        report = t.report()
        assert "fetch" in report and "run" in report and "total" in report

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)
