"""End-to-end integration: full Auto-HPCnet builds on real applications.

Budgets are kept small so the whole suite stays fast; the benchmark
harness runs the full-budget versions.
"""

import numpy as np
import pytest

from repro import AutoHPCnet, AutoHPCnetConfig, evaluate_surrogate
from repro.apps import (
    BlackscholesApplication,
    FFTApplication,
    LaghosApplication,
    MGApplication,
)
from repro.runtime import Client, Orchestrator

FAST = AutoHPCnetConfig(
    n_samples=150,
    outer_iterations=2,
    inner_trials=2,
    num_epochs=60,
    ae_epochs=25,
    quality_problems=6,
    quality_loss=0.5,
    qoi_mu=0.25,
    encoding_loss=0.95,
    seed=0,
)


@pytest.fixture(scope="module")
def fft_build():
    return AutoHPCnet(FAST).build(FFTApplication())


class TestBuild:
    def test_build_produces_working_surrogate(self, fft_build):
        app = fft_build.surrogate.app
        problem = app.example_problem(np.random.default_rng(5))
        outputs = fft_build.surrogate.run(problem)
        assert set(outputs) == {"re_out", "im_out"}

    def test_offline_timers_cover_all_phases(self, fft_build):
        phases = fft_build.timers.phases
        assert {"trace_generation", "autoencoder_training", "bayesian_optimization"} <= set(
            phases
        )
        assert all(v > 0 for v in phases.values())

    def test_quality_constraint_satisfied(self, fft_build):
        assert fft_build.f_e <= FAST.quality_loss

    def test_build_summary_readable(self, fft_build):
        text = fft_build.summary()
        assert "region" in text and "2D NAS" in text

    def test_build_report_formatting(self, fft_build):
        from repro.core import format_build_report

        text = format_build_report(fft_build)
        assert "outer-loop history" in text
        assert "offline phases" in text
        assert "K=" in text

    def test_guarded_deployment_integration(self, fft_build):
        from repro.runtime import GuardedSurrogate, default_validator

        guard = GuardedSurrogate(
            fft_build.surrogate, default_validator("FFT")
        )
        app = fft_build.surrogate.app
        problem = app.example_problem(np.random.default_rng(21))
        outputs = guard.run(problem)
        assert set(outputs) == {"re_out", "im_out"}
        assert guard.stats.invocations == 1

    def test_evaluation_row(self, fft_build):
        row = evaluate_surrogate(
            fft_build.surrogate, n_problems=15, rng=np.random.default_rng(7)
        )
        assert row.speedup > 1.0
        assert 0.0 <= row.hit_rate <= 1.0
        assert row.breakdown.t_numerical_solver > 0

    def test_full_input_mode(self):
        cfg = AutoHPCnetConfig(
            n_samples=100, search_type="fullInput", inner_trials=2,
            outer_iterations=1, num_epochs=30, quality_problems=3,
            quality_loss=0.9, qoi_mu=0.5, seed=1,
        )
        build = AutoHPCnet(cfg).build(LaghosApplication())
        assert build.surrogate.package.autoencoder is None

    def test_deploy_through_orchestrator(self, fft_build, tmp_path):
        # save, reload through the client, predict through the store
        pkg = fft_build.surrogate.package
        pkg.save(tmp_path / "pkg")
        client = Client(Orchestrator())
        loaded = client.set_model_from_file("fft-net", str(tmp_path / "pkg"))
        x = np.random.default_rng(3).standard_normal((2, pkg.input_dim))
        out = client.run_model("fft-net", inputs=x, outputs="out")
        assert out.shape == (2, pkg.output_dim)

    def test_surrogate_qoi_close_to_exact(self, fft_build):
        app = fft_build.surrogate.app
        rng = np.random.default_rng(11)
        problems = app.generate_problems(10, rng)
        errors = []
        for p in problems:
            exact = app.run_exact(p).qoi
            errors.append(abs(fft_build.surrogate.qoi(p) - exact) / abs(exact))
        assert np.mean(errors) < 0.4


class TestCheckpointedBuild:
    def test_resume_produces_surrogate(self, tmp_path):
        app = MGApplication()
        cfg1 = AutoHPCnetConfig(
            n_samples=100, outer_iterations=1, inner_trials=2, num_epochs=30,
            ae_epochs=20, quality_problems=3, quality_loss=0.9, qoi_mu=0.5, seed=2,
        )
        AutoHPCnet(cfg1).build(app, checkpoint_dir=str(tmp_path))
        cfg2 = AutoHPCnetConfig(
            n_samples=100, outer_iterations=2, inner_trials=2, num_epochs=30,
            ae_epochs=20, quality_problems=3, quality_loss=0.9, qoi_mu=0.5, seed=2,
        )
        build = AutoHPCnet(cfg2).build(app, checkpoint_dir=str(tmp_path))
        assert len(build.search.outer_history) >= 2
        assert (tmp_path / "best_package" / "package.json").exists()
