"""End-to-end telemetry: a real pipeline build + serving run produces a
Perfetto-loadable Chrome trace and a Prometheus exposition with the
documented metric names, and the serving spans agree with the PhaseTimer."""

import json
import re

import numpy as np
import pytest

from repro import AutoHPCnet, AutoHPCnetConfig, obs
from repro.apps import BlackscholesApplication
from repro.runtime import ONLINE_PHASES, GuardedSurrogate, ServingSession, default_validator

FAST = AutoHPCnetConfig(
    n_samples=120, outer_iterations=1, inner_trials=2, num_epochs=40,
    quality_problems=4, quality_loss=0.9, qoi_mu=0.5, seed=0,
)


@pytest.fixture(scope="module")
def telemetry_run():
    """One instrumented build + a few serving/guard invocations."""
    obs.configure(enabled=True, reset=True)
    app = BlackscholesApplication()
    build = AutoHPCnet(FAST).build(app)
    session = ServingSession(build.surrogate.package)
    guarded = GuardedSurrogate(build.surrogate, default_validator(app.name))
    rng = np.random.default_rng(3)
    for problem in app.generate_problems(4, rng):
        x = build.surrogate.input_schema.flatten(problem)
        session.infer(build.surrogate.x_scaler.transform(x[None, :])[0])
        guarded.run(problem)
    yield build, session, guarded
    obs.configure(enabled=True, reset=True)


class TestTraceExport:
    def test_trace_is_perfetto_loadable(self, telemetry_run, tmp_path):
        path = obs.get_tracer().export_chrome_trace(tmp_path / "build.trace.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events, "no spans recorded"
        ids = set()
        for event in events:
            assert event["ph"] == "X"           # complete events: always balanced
            assert isinstance(event["name"], str) and event["name"]
            assert event["dur"] >= 0
            assert isinstance(event["ts"], float)
            ids.add(event["args"]["span_id"])
        for event in events:
            parent = event["args"].get("parent_span_id")
            assert parent is None or parent in ids

    def test_expected_span_tree(self, telemetry_run):
        tracer = obs.get_tracer()
        names = {s.name for s in tracer.finished_spans()}
        for expected in (
            "build", "build.preflight", "build.acquire", "build.encode",
            "build.search", "build.package", "nas.outer_iteration",
            "nas.trial", "load_model", "fetch_input", "encode", "run_model",
        ):
            assert expected in names, f"missing span {expected!r}"
        # build children link to the build root
        spans = tracer.finished_spans()
        root = next(s for s in spans if s.name == "build")
        children = {s.name for s in spans if s.parent_id == root.span_id}
        assert {"build.preflight", "build.acquire", "build.search"} <= children
        # NAS spans carry the search coordinates
        outer = next(s for s in spans if s.name == "nas.outer_iteration")
        assert "K" in outer.attributes
        trial = next(s for s in spans if s.name == "nas.trial")
        assert {"f_c", "f_e"} <= set(trial.attributes)

    def test_nas_trials_nest_under_outer_iteration(self, telemetry_run):
        spans = obs.get_tracer().finished_spans()
        outer_ids = {s.span_id for s in spans if s.name == "nas.outer_iteration"}
        trials = [s for s in spans if s.name == "nas.trial"]
        assert trials
        assert all(t.parent_id in outer_ids for t in trials)


class TestPrometheusExport:
    DOCUMENTED = (
        "repro_orchestrator_tensor_store_size",
        "repro_orchestrator_inference_seconds",
        "repro_serving_phase_seconds",
        "repro_guard_invocations_total",
        "repro_nas_best_f_c",
        "repro_nas_best_f_e",
    )

    def test_exposition_parses_and_has_documented_names(self, telemetry_run):
        text = obs.get_registry().to_prometheus()
        line_re = re.compile(
            r'^(# (HELP|TYPE) .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+)$'
        )
        for line in text.strip().splitlines():
            assert line_re.match(line), f"bad exposition line: {line!r}"
        for name in self.DOCUMENTED:
            assert name in text, f"missing documented metric {name}"

    def test_serving_histogram_counts_every_phase(self, telemetry_run):
        hist = obs.get_registry().get("repro_serving_phase_seconds")
        for phase in ONLINE_PHASES:
            expected = 1 if phase == "load_model" else 4
            assert hist.count(phase=phase) == expected

    def test_guard_counters_match_stats(self, telemetry_run):
        _, _, guarded = telemetry_run
        registry = obs.get_registry()
        assert (
            registry.get("repro_guard_invocations_total").value(app="Blackscholes")
            == guarded.stats.invocations
        )

    def test_snapshot_renders_as_table(self, telemetry_run):
        from repro.core.reports import format_metrics_table

        table = format_metrics_table(obs.get_registry().snapshot())
        assert "repro_serving_phase_seconds" in table
        assert "p99" in table


class TestSingleSourceOfTruth:
    def test_span_fractions_match_phase_timer(self, telemetry_run):
        """§7.3 phase fractions: spans and PhaseTimer must not drift."""
        _, session, _ = telemetry_run
        tracer = obs.get_tracer()
        span_seconds = {
            phase: sum(s.duration for s in tracer.spans_named(phase))
            for phase in ONLINE_PHASES
        }
        for phase in ONLINE_PHASES:
            assert span_seconds[phase] == pytest.approx(
                session.timer.phases[phase], rel=1e-12
            )
        total = sum(span_seconds.values())
        for phase in ONLINE_PHASES:
            assert span_seconds[phase] / total == pytest.approx(
                session.timer.fraction(phase), rel=1e-9
            )

    def test_histogram_sum_matches_timer(self, telemetry_run):
        _, session, _ = telemetry_run
        hist = obs.get_registry().get("repro_serving_phase_seconds")
        for phase in ONLINE_PHASES:
            assert hist.sum(phase=phase) == pytest.approx(
                session.timer.phases[phase], rel=1e-12
            )


class TestCLITelemetry:
    def test_telemetry_subcommand_prometheus(self, capsys):
        from repro.cli import main

        assert main(["telemetry", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        # whatever this process accumulated is exposed in valid format
        for line in out.strip().splitlines():
            assert line.startswith("#") or re.match(
                r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$", line
            ), line

    def test_telemetry_subcommand_table(self, capsys):
        from repro.cli import main

        assert main(["telemetry"]) == 0
        assert "metric" in capsys.readouterr().out

    def test_trace_out_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.trace.json"
        assert main(["telemetry", "--trace-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "traceEvents" in payload
