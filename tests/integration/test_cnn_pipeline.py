"""Integration: the CNN surrogate family through the full pipeline."""

import numpy as np
import pytest

from repro import AutoHPCnet, AutoHPCnetConfig
from repro.apps import FFTApplication
from repro.nas import SurrogatePackage
from repro.nn import CNNTopology

CNN_FAST = AutoHPCnetConfig(
    n_samples=100,
    outer_iterations=1,
    inner_trials=2,
    num_epochs=25,
    quality_problems=4,
    quality_loss=0.9,
    qoi_mu=0.5,
    model_type="cnn",
    seed=0,
)


@pytest.fixture(scope="module")
def cnn_build():
    return AutoHPCnet(CNN_FAST).build(FFTApplication())


class TestCNNPipeline:
    def test_selected_topology_is_convolutional(self, cnn_build):
        assert isinstance(cnn_build.surrogate.package.topology, CNNTopology)

    def test_cnn_forced_to_full_input(self, cnn_build):
        # conv pooling is tied to the signal length, so no feature reduction
        assert cnn_build.surrogate.package.autoencoder is None
        assert cnn_build.search.best_k == cnn_build.acquisition.input_dim

    def test_surrogate_runs_the_region(self, cnn_build):
        app = cnn_build.surrogate.app
        problem = app.example_problem(np.random.default_rng(3))
        outputs = cnn_build.surrogate.run(problem)
        assert set(outputs) == {"re_out", "im_out"}

    def test_cnn_package_save_load(self, cnn_build, tmp_path):
        pkg = cnn_build.surrogate.package
        pkg.save(tmp_path / "cnn_pkg")
        loaded = SurrogatePackage.load(tmp_path / "cnn_pkg")
        assert isinstance(loaded.topology, CNNTopology)
        x = np.random.default_rng(1).standard_normal((2, pkg.input_dim))
        assert np.allclose(pkg.predict(x), loaded.predict(x))

    def test_invalid_model_type_rejected(self):
        with pytest.raises(ValueError):
            AutoHPCnetConfig(model_type="transformer")
