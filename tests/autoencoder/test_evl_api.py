"""Tests for the error-bounded feature-reduction API (§6.2)."""

import numpy as np
import pytest

from repro.autoencoder import AETrainConfig, Autoencoder, train_autoencoder
from repro.sparse import from_dense


class TestEvlAPI:
    def test_evl_improves_with_training(self, rng):
        z = rng.standard_normal((120, 3))
        x = np.tanh(z @ rng.standard_normal((3, 24)))
        ae = Autoencoder(24, 6, depth=2, activation="tanh", rng=rng)
        before = ae.evl(x)
        train_autoencoder(ae, x, AETrainConfig(num_epochs=120, lr=3e-3, seed=0))
        after = ae.evl(x)
        assert after < before

    def test_evl_on_sparse_input(self, rng):
        dense = rng.standard_normal((20, 16)) * (rng.random((20, 16)) < 0.3)
        ae = Autoencoder(16, 4, sparse_input=True, rng=rng)
        sigma = ae.evl(from_dense(dense, "csr"))
        assert 0.0 <= sigma <= 1.0

    def test_evl_tolerance_monotone(self, rng):
        x = rng.standard_normal((30, 10))
        ae = Autoencoder(10, 3, rng=rng)
        strict = ae.evl(x, mu=0.01)
        loose = ae.evl(x, mu=0.5)
        assert loose <= strict

    def test_quality_vs_reduction_trade(self, rng):
        """The central §4/§5 trade: more reduction, worse (or equal) sigma."""
        z = rng.standard_normal((150, 4))
        x = np.tanh(z @ rng.standard_normal((4, 32)))
        sigmas = {}
        for k in (2, 16):
            ae = Autoencoder(32, k, depth=2, activation="tanh",
                             rng=np.random.default_rng(1))
            train_autoencoder(ae, x, AETrainConfig(num_epochs=80, lr=3e-3, seed=2))
            sigmas[k] = ae.evl(x)
        assert sigmas[16] <= sigmas[2] + 0.05
