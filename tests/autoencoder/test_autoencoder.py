"""Autoencoder model + error-bounded training tests."""

import numpy as np
import pytest

from repro.autoencoder import AETrainConfig, Autoencoder, hourglass_widths, train_autoencoder
from repro.extract import batch_to_csr
from repro.sparse import from_dense


def low_rank_data(rng, n=150, dim=32, rank=3):
    z = rng.standard_normal((n, rank))
    w = rng.standard_normal((rank, dim))
    return np.tanh(z @ w)


class TestHourglassWidths:
    def test_monotone_shrink(self):
        widths = hourglass_widths(100, 5, 4)
        assert widths[-1] == 5
        assert all(widths[i] >= widths[i + 1] for i in range(len(widths) - 1))

    def test_depth_one(self):
        assert hourglass_widths(50, 7, 1) == [7]

    def test_latent_larger_than_input_rejected(self):
        with pytest.raises(ValueError):
            hourglass_widths(5, 10, 2)

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            hourglass_widths(10, 2, 0)


class TestModel:
    def test_encode_decode_shapes(self, rng):
        ae = Autoencoder(16, 4, depth=2, rng=rng)
        x = rng.standard_normal((5, 16))
        z = ae.encode(x)
        assert z.shape == (5, 4)
        assert ae.decode(z).shape == (5, 16)
        assert ae.reconstruct(x).shape == (5, 16)

    def test_single_row_encode(self, rng):
        ae = Autoencoder(8, 2, rng=rng)
        assert ae.encode(rng.standard_normal(8)).shape == (1, 2)

    def test_sparse_encode_matches_dense(self, rng):
        ae = Autoencoder(12, 3, sparse_input=True, rng=rng)
        dense = rng.standard_normal((4, 12)) * (rng.random((4, 12)) < 0.4)
        z_sparse = ae.encode(from_dense(dense, "csr"))
        z_dense = ae.encode(dense)
        assert np.allclose(z_sparse, z_dense)

    def test_sparse_encode_rejected_without_flag(self, rng):
        ae = Autoencoder(12, 3, sparse_input=False, rng=rng)
        with pytest.raises(TypeError):
            ae.encode(from_dense(np.eye(4, 12), "csr"))

    def test_evl_perfect_for_identity_data(self, rng):
        ae = Autoencoder(8, 8, depth=1, rng=rng)
        # latent == input: after enough training evl should be low; here we
        # only check the metric is within [0, 1]
        x = rng.standard_normal((10, 8))
        sigma = ae.evl(x)
        assert 0.0 <= sigma <= 1.0

    def test_flops_positive_and_split(self, rng):
        ae = Autoencoder(16, 4, depth=2, rng=rng)
        assert ae.encode_flops(1) > 0
        assert ae.flops(1) > ae.encode_flops(1)


class TestTraining:
    def test_loss_decreases(self, rng):
        x = low_rank_data(rng)
        ae = Autoencoder(32, 6, depth=2, activation="tanh", rng=rng)
        result = train_autoencoder(ae, x, AETrainConfig(num_epochs=40, lr=3e-3, seed=0))
        assert result.train_losses[-1] < result.train_losses[0]

    def test_sigma_tracked_per_epoch(self, rng):
        x = low_rank_data(rng)
        ae = Autoencoder(32, 6, rng=rng)
        result = train_autoencoder(ae, x, AETrainConfig(num_epochs=7, seed=0))
        assert len(result.sigma_history) == result.epochs_run
        assert all(0.0 <= s <= 1.0 for s in result.sigma_history)

    def test_error_bound_stops_early(self, rng):
        x = low_rank_data(rng)
        ae = Autoencoder(32, 16, depth=2, activation="tanh", rng=rng)
        result = train_autoencoder(
            ae, x, AETrainConfig(num_epochs=500, lr=3e-3, encoding_loss_bound=0.95, seed=0)
        )
        assert result.met_bound
        assert result.epochs_run < 500

    def test_sparse_input_training(self, rng):
        x = low_rank_data(rng) * (rng.random((150, 32)) < 0.3)
        ae = Autoencoder(32, 6, sparse_input=True, rng=rng)
        result = train_autoencoder(ae, x, AETrainConfig(num_epochs=15, seed=1))
        assert result.train_losses[-1] < result.train_losses[0]

    def test_gradient_checkpointing_trains_equivalently(self, rng):
        x = low_rank_data(rng, n=60)
        results = []
        for ckpt in (False, True):
            ae = Autoencoder(32, 6, depth=3, rng=np.random.default_rng(3))
            r = train_autoencoder(
                ae, x,
                AETrainConfig(num_epochs=8, gradient_checkpointing=ckpt, seed=2),
            )
            results.append(r.train_losses)
        assert np.allclose(results[0], results[1], rtol=1e-8)

    def test_dimension_mismatch_rejected(self, rng):
        ae = Autoencoder(16, 4, rng=rng)
        with pytest.raises(ValueError):
            train_autoencoder(ae, rng.standard_normal((10, 8)))

    def test_too_few_samples_rejected(self, rng):
        ae = Autoencoder(16, 4, rng=rng)
        with pytest.raises(ValueError):
            train_autoencoder(ae, rng.standard_normal((1, 16)))

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            AETrainConfig(encoding_loss_bound=1.5)
