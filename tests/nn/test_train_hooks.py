"""Per-epoch callbacks and dtype preservation in the training loop."""

import numpy as np

from repro.nn.mlp import Topology, build_mlp
from repro.nn.train import TrainConfig, _as_float_array, predict, train_model


def make_data(rng, n=64, din=5, dout=2, dtype=np.float64):
    x = rng.standard_normal((n, din)).astype(dtype)
    w = rng.standard_normal((din, dout))
    return x, (x @ w).astype(dtype)


def make_model(din=5, dout=2):
    return build_mlp(
        din,
        dout,
        Topology(hidden=(8,), activation="relu"),
        rng=np.random.default_rng(0),
    )


class TestEpochCallback:
    def test_truthy_return_stops_training(self, rng):
        x, y = make_data(rng)
        result = train_model(
            make_model(), x, y, TrainConfig(num_epochs=50, patience=50),
            epoch_callback=lambda epoch, tl, vl: epoch >= 4,
        )
        assert result.epochs_run == 5
        assert result.stopped_by_callback
        assert np.isfinite(result.best_val_loss)

    def test_falsy_callback_never_stops(self, rng):
        x, y = make_data(rng)
        seen = []

        def watch(epoch, train_loss, val_loss):
            seen.append((epoch, train_loss, val_loss))
            return False

        result = train_model(
            make_model(), x, y, TrainConfig(num_epochs=6, patience=50),
            epoch_callback=watch,
        )
        assert not result.stopped_by_callback
        assert [s[0] for s in seen] == list(range(result.epochs_run))
        assert [s[2] for s in seen] == result.val_losses

    def test_no_callback_unchanged(self, rng):
        x, y = make_data(rng)
        a = train_model(make_model(), x, y, TrainConfig(num_epochs=8))
        b = train_model(make_model(), x, y, TrainConfig(num_epochs=8),
                        epoch_callback=None)
        assert a.val_losses == b.val_losses
        assert not a.stopped_by_callback


class TestDtypePreservation:
    def test_as_float_array_passthrough(self):
        for dtype in (np.float32, np.float64):
            a = np.ones((3, 2), dtype=dtype)
            assert _as_float_array(a) is a

    def test_as_float_array_upcasts_ints(self):
        out = _as_float_array(np.arange(6).reshape(2, 3))
        assert out.dtype == np.float64

    def test_float32_training_runs(self, rng):
        x, y = make_data(rng, dtype=np.float32)
        result = train_model(make_model(), x, y, TrainConfig(num_epochs=5))
        assert result.epochs_run == 5
        assert np.isfinite(result.best_val_loss)

    def test_predict_does_not_upcast_input(self, rng):
        x, y = make_data(rng, dtype=np.float32)
        model = make_model()
        train_model(model, x, y, TrainConfig(num_epochs=3))
        out = predict(model, x[:4])
        assert out.shape == (4, 2)
        assert np.isfinite(out).all()
