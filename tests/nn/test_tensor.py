"""Autograd correctness: analytic gradients vs finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, concat, no_grad


def finite_diff(fn, x, eps=1e-6):
    """Numerical gradient of scalar-valued fn at array x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        dn = fn(x)
        flat[i] = orig
        gflat[i] = (up - dn) / (2 * eps)
    return grad


def check_gradient(op, x_val, atol=1e-5):
    """Compare autograd and numeric gradients for y = sum(op(x))."""
    x = Tensor(x_val.copy(), requires_grad=True)
    y = op(x).sum()
    y.backward()

    def scalar_fn(arr):
        return op(Tensor(arr)).sum().item()

    numeric = finite_diff(scalar_fn, x_val.copy())
    assert np.allclose(x.grad, numeric, atol=atol), (x.grad, numeric)


class TestUnaryGradients:
    def test_neg(self, rng):
        check_gradient(lambda t: -t, rng.standard_normal((3, 4)))

    def test_relu(self, rng):
        check_gradient(lambda t: t.relu(), rng.standard_normal((3, 4)) + 0.01)

    def test_leaky_relu(self, rng):
        check_gradient(lambda t: t.leaky_relu(), rng.standard_normal((3, 4)) + 0.01)

    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh(), rng.standard_normal((3, 4)))

    def test_sigmoid(self, rng):
        check_gradient(lambda t: t.sigmoid(), rng.standard_normal((3, 4)))

    def test_exp(self, rng):
        check_gradient(lambda t: t.exp(), rng.standard_normal((3, 4)))

    def test_log(self, rng):
        check_gradient(lambda t: t.log(), rng.random((3, 4)) + 0.5)

    def test_abs(self, rng):
        check_gradient(lambda t: t.abs(), rng.standard_normal((3, 4)) + 0.01)

    def test_pow(self, rng):
        check_gradient(lambda t: t**3.0, rng.random((3, 4)) + 0.5)

    def test_clip_min(self, rng):
        check_gradient(lambda t: t.clip_min(0.1), rng.standard_normal((3, 4)) + 0.01)

    def test_reshape(self, rng):
        check_gradient(lambda t: (t.reshape(12) ** 2.0), rng.standard_normal((3, 4)))

    def test_transpose(self, rng):
        check_gradient(lambda t: (t.T ** 2.0), rng.standard_normal((3, 4)))

    def test_getitem(self, rng):
        check_gradient(lambda t: t[1:3] ** 2.0, rng.standard_normal((4, 3)))


class TestBinaryGradients:
    def test_add_broadcast(self, rng):
        a_val = rng.standard_normal((3, 4))
        b_val = rng.standard_normal(4)
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 4)))
        assert np.allclose(b.grad, 3 * np.ones(4))

    def test_mul(self, rng):
        a_val = rng.standard_normal((3, 4))
        b_val = rng.standard_normal((3, 4))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, b_val)
        assert np.allclose(b.grad, a_val)

    def test_div(self, rng):
        a_val = rng.standard_normal((3, 4))
        b_val = rng.random((3, 4)) + 1.0
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, 1.0 / b_val)
        assert np.allclose(b.grad, -a_val / b_val**2)

    def test_sub(self, rng):
        a = Tensor(rng.standard_normal(5), requires_grad=True)
        b = Tensor(rng.standard_normal(5), requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, -1.0)

    def test_rsub_rdiv(self, rng):
        a = Tensor(rng.random(4) + 1.0, requires_grad=True)
        (2.0 - a).sum().backward()
        assert np.allclose(a.grad, -1.0)
        a.zero_grad()
        (1.0 / a).sum().backward()
        assert np.allclose(a.grad, -1.0 / a.data**2)

    def test_matmul_2d(self, rng):
        a_val = rng.standard_normal((3, 4))
        w_val = rng.standard_normal((4, 2))
        a = Tensor(a_val, requires_grad=True)
        w = Tensor(w_val, requires_grad=True)
        (a @ w).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 2)) @ w_val.T)
        assert np.allclose(w.grad, a_val.T @ np.ones((3, 2)))

    def test_matmul_vec(self, rng):
        a_val = rng.standard_normal(4)
        b_val = rng.standard_normal(4)
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).backward()
        assert np.allclose(a.grad, b_val)
        assert np.allclose(b.grad, a_val)


class TestReductions:
    def test_sum_all(self, rng):
        check_gradient(lambda t: t.sum() ** 2.0, rng.standard_normal((3, 4)))

    def test_sum_axis(self, rng):
        check_gradient(lambda t: t.sum(axis=0) ** 2.0, rng.standard_normal((3, 4)))

    def test_sum_keepdims(self, rng):
        check_gradient(
            lambda t: t.sum(axis=1, keepdims=True) ** 2.0, rng.standard_normal((3, 4))
        )

    def test_mean(self, rng):
        x = Tensor(rng.standard_normal(8), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 8)


class TestGraphMechanics:
    def test_grad_accumulates_through_shared_node(self, rng):
        x = Tensor(rng.standard_normal(4), requires_grad=True)
        y = x * 2.0
        (y + y).sum().backward()
        assert np.allclose(x.grad, 4.0)

    def test_diamond_graph(self, rng):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        (a * b).sum().backward()
        # d/dx 15x^2 = 30x
        assert np.allclose(x.grad, 60.0)

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_backward_on_non_scalar_requires_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.ones(3))
        assert np.allclose(x.grad, 2.0)

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        assert not x.detach().requires_grad

    def test_deep_chain_iterative_toposort(self):
        # 5000-op chain must not hit the recursion limit
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.001
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_concat(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        out = concat([a, b], axis=0)
        assert out.shape == (6, 3)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1), st.sampled_from(["tanh", "sigmoid", "relu"]))
def test_composite_expression_gradient_property(seed, act):
    rng = np.random.default_rng(seed)
    x_val = rng.standard_normal((4, 3)) + 0.05

    def op(t):
        h = getattr(t, act)()
        return (h * h + t * 0.5)

    x = Tensor(x_val.copy(), requires_grad=True)
    op(x).sum().backward()
    numeric = finite_diff(lambda arr: op(Tensor(arr)).sum().item(), x_val.copy())
    assert np.allclose(x.grad, numeric, atol=1e-4)
