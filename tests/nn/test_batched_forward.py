"""2-D batch support and batch-invariant matmul across repro.nn layers."""

import numpy as np
import pytest

from repro.nn import (
    Activation,
    Dense,
    Residual,
    Sequential,
    SparseDense,
    Tensor,
    batch_invariant,
    is_batch_invariant,
    no_grad,
)
from repro.sparse import from_dense


def make_stack(rng, din=6, width=8):
    return Sequential(
        [
            Dense(din, width, rng),
            Activation("tanh"),
            Residual(Sequential([Dense(width, width, rng), Activation("relu")])),
            Dense(width, 2, rng),
        ]
    )


class TestBatchedForward:
    def test_dense_accepts_single_row_and_batch(self, rng):
        layer = Dense(5, 3, rng)
        single = layer(Tensor(rng.standard_normal(5))).data
        batch = layer(Tensor(rng.standard_normal((4, 5)))).data
        assert single.shape == (3,)
        assert batch.shape == (4, 3)

    def test_dense_rejects_wrong_width(self, rng):
        layer = Dense(5, 3, rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((2, 4))))

    def test_sparse_dense_dense_fallback_rejects_wrong_width(self, rng):
        layer = SparseDense(5, 3, rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((2, 7))))

    def test_sequential_batch_rows_match_csr_batch(self, rng):
        layer = SparseDense(8, 4, rng)
        dense = rng.standard_normal((6, 8)) * (rng.random((6, 8)) < 0.4)
        with no_grad():
            from_sparse = layer(from_dense(dense, "csr")).data
            from_dense_input = layer(Tensor(dense)).data
        assert np.allclose(from_sparse, from_dense_input)

    def test_residual_and_sequential_batch(self, rng):
        model = make_stack(rng)
        x = rng.standard_normal((7, 6))
        with no_grad():
            batch = model(Tensor(x)).data
        assert batch.shape == (7, 2)
        for i in range(7):
            with no_grad():
                row = model(Tensor(x[i][None, :])).data[0]
            assert np.allclose(row, batch[i])


class TestBatchInvariantMode:
    def test_context_toggles_flag(self):
        assert not is_batch_invariant()
        with batch_invariant():
            assert is_batch_invariant()
            with batch_invariant():
                assert is_batch_invariant()
            assert is_batch_invariant()
        assert not is_batch_invariant()

    def test_rows_bit_identical_under_mode(self, rng):
        model = make_stack(rng)
        x = rng.standard_normal((32, 6))
        with no_grad(), batch_invariant():
            batch = model(Tensor(x)).data
            for i in range(32):
                row = model(Tensor(x[i][None, :])).data[0]
                assert np.array_equal(row, batch[i])

    def test_split_invariance(self, rng):
        """Any slicing of the batch yields the same rows, bit for bit."""
        model = make_stack(rng)
        x = rng.standard_normal((19, 6))
        with no_grad(), batch_invariant():
            whole = model(Tensor(x)).data
            parts = np.vstack(
                [model(Tensor(x[:5])).data, model(Tensor(x[5:12])).data,
                 model(Tensor(x[12:])).data]
            )
        assert np.array_equal(whole, parts)

    def test_mode_matches_blas_numerically(self, rng):
        model = make_stack(rng)
        x = rng.standard_normal((16, 6))
        with no_grad():
            blas = model(Tensor(x)).data
            with batch_invariant():
                invariant = model(Tensor(x)).data
        assert np.allclose(blas, invariant, rtol=1e-12, atol=1e-12)

    def test_gradients_flow_under_mode(self, rng):
        layer = Dense(4, 3, rng)
        x = Tensor(rng.standard_normal((5, 4)))
        with batch_invariant():
            out = layer(x)
            loss = (out * out).sum()
            loss.backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == (4, 3)


class TestPackageBatch:
    def test_predict_batch_stacks_rows(self, rng):
        from repro.nas import evaluate_topology
        from repro.nn import Topology

        x = rng.standard_normal((60, 6))
        y = x @ rng.standard_normal((6, 2))
        pkg = evaluate_topology(
            Topology(hidden=(8,), activation="tanh"), x, y, rng=rng
        ).package
        rows = [rng.standard_normal(6) for _ in range(5)]
        stacked = pkg.predict_batch(rows)
        assert stacked.shape == (5, 2)
        for i, row in enumerate(rows):
            assert np.allclose(stacked[i], pkg.predict(row))

    def test_predict_batch_empty(self, rng):
        from repro.nas import evaluate_topology
        from repro.nn import Topology

        x = rng.standard_normal((60, 6))
        y = x @ rng.standard_normal((6, 2))
        pkg = evaluate_topology(
            Topology(hidden=(8,), activation="tanh"), x, y, rng=rng
        ).package
        assert pkg.predict_batch([]).shape == (0, 2)

    def test_predict_rejects_wrong_feature_count(self, rng):
        from repro.nas import evaluate_topology
        from repro.nn import Topology

        x = rng.standard_normal((60, 6))
        y = x @ rng.standard_normal((6, 2))
        pkg = evaluate_topology(
            Topology(hidden=(8,), activation="tanh"), x, y, rng=rng
        ).package
        with pytest.raises(ValueError):
            pkg.predict(rng.standard_normal((3, 9)))
