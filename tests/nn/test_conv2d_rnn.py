"""2-D convolution/deconvolution and recurrent layer tests."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AvgPool2d,
    Conv2d,
    Deconv2d,
    ImageView,
    LastStep,
    MaxPool2d,
    RNN,
    SequenceView,
    Sequential,
    Tensor,
    Upsample2d,
    mse_loss,
)


class TestConv2d:
    def test_shape_preserved(self, rng):
        conv = Conv2d(2, 5, 3, rng)
        out = conv(Tensor(rng.standard_normal((2, 2, 6, 7))))
        assert out.shape == (2, 5, 6, 7)

    def test_matches_direct_convolution(self, rng):
        conv = Conv2d(1, 1, 3, rng)
        x = rng.standard_normal((1, 1, 5, 5))
        out = conv(Tensor(x)).data[0, 0]
        kernel = conv.weight.data[:, 0, 0].reshape(3, 3)
        padded = np.pad(x[0, 0], 1)
        expected = np.zeros((5, 5))
        for i in range(5):
            for j in range(5):
                expected[i, j] = np.sum(padded[i : i + 3, j : j + 3] * kernel)
        expected += conv.bias.data[0]
        assert np.allclose(out, expected)

    def test_gradient_matches_finite_difference(self, rng):
        conv = Conv2d(1, 2, 3, rng)
        x = rng.standard_normal((1, 1, 4, 4))
        (conv(Tensor(x)) ** 2.0).sum().backward()
        analytic = conv.weight.grad.copy()
        eps = 1e-6
        idx = (4, 0, 1)
        conv.weight.data[idx] += eps
        up = (conv(Tensor(x)) ** 2.0).sum().item()
        conv.weight.data[idx] -= 2 * eps
        dn = (conv(Tensor(x)) ** 2.0).sum().item()
        conv.weight.data[idx] += eps
        assert analytic[idx] == pytest.approx((up - dn) / (2 * eps), abs=1e-5)

    def test_even_kernel_rejected(self, rng):
        with pytest.raises(ValueError):
            Conv2d(1, 1, 2, rng)

    def test_learns_blur_kernel(self, rng):
        # target: fixed 3x3 average blur
        x = rng.standard_normal((40, 1, 8, 8))
        kernel = np.ones((3, 3)) / 9.0
        y = np.zeros_like(x)
        for s in range(40):
            padded = np.pad(x[s, 0], 1)
            for i in range(8):
                for j in range(8):
                    y[s, 0, i, j] = np.sum(padded[i : i + 3, j : j + 3] * kernel)
        conv = Conv2d(1, 1, 3, rng)
        opt = Adam(list(conv.parameters()), lr=5e-2)
        for _ in range(120):
            opt.zero_grad()
            loss = mse_loss(conv(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3
        learned = conv.weight.data[:, 0, 0].reshape(3, 3)
        assert np.allclose(learned, kernel, atol=0.05)


class TestPooling2d:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = MaxPool2d(2)(x)
        assert np.allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = AvgPool2d(2)(x)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_indivisible_rejected(self, rng):
        with pytest.raises(ValueError):
            MaxPool2d(3)(Tensor(rng.standard_normal((1, 1, 4, 4))))

    def test_upsample_then_pool_is_identity(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 4)))
        round_trip = AvgPool2d(2)(Upsample2d(2)(x))
        assert np.allclose(round_trip.data, x.data)


class TestDeconv2d:
    def test_upscales(self, rng):
        deconv = Deconv2d(2, 3, 3, factor=2, rng=rng)
        out = deconv(Tensor(rng.standard_normal((1, 2, 4, 4))))
        assert out.shape == (1, 3, 8, 8)

    def test_parameters_trainable(self, rng):
        deconv = Deconv2d(1, 1, 3, factor=2, rng=rng)
        (deconv(Tensor(rng.standard_normal((1, 1, 2, 2)))) ** 2.0).sum().backward()
        assert all(p.grad is not None for p in deconv.parameters())


class TestImageView:
    def test_reshape(self, rng):
        x = rng.standard_normal((3, 12))
        out = ImageView(3, 4)(Tensor(x))
        assert out.shape == (3, 1, 3, 4)

    def test_wrong_size_rejected(self, rng):
        with pytest.raises(ValueError):
            ImageView(3, 4)(Tensor(rng.standard_normal((2, 13))))


class TestRNN:
    def test_sequence_output_shape(self, rng):
        rnn = RNN(4, 8, rng)
        out = rnn(Tensor(rng.standard_normal((3, 5, 4))))
        assert out.shape == (3, 5, 8)

    def test_last_step_mode(self, rng):
        rnn = RNN(4, 8, rng, return_sequence=False)
        out = rnn(Tensor(rng.standard_normal((3, 5, 4))))
        assert out.shape == (3, 8)

    def test_bptt_gradients_flow_to_recurrence(self, rng):
        rnn = RNN(2, 4, rng)
        x = Tensor(rng.standard_normal((2, 6, 2)))
        rnn(x).sum().backward()
        assert rnn.w_h.grad is not None
        assert np.any(rnn.w_h.grad != 0)

    def test_learns_running_mean(self, rng):
        # target: cumulative mean of a scalar sequence (needs memory)
        x = rng.standard_normal((60, 6, 1))
        y = np.cumsum(x[:, :, 0], axis=1) / np.arange(1, 7)
        from repro.nn import Dense

        rnn = RNN(1, 12, rng)
        dense = Dense(12, 1, rng)
        params = list(rnn.parameters()) + list(dense.parameters())
        opt = Adam(params, lr=1e-2)
        for _ in range(150):
            opt.zero_grad()
            seq = rnn(Tensor(x))
            flat = seq.reshape(60 * 6, 12)
            pred = dense(flat).reshape(60, 6)
            loss = mse_loss(pred, Tensor(y))
            loss.backward()
            opt.step()
        assert loss.item() < 0.05

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            RNN(4, 8, rng)(Tensor(rng.standard_normal((2, 4))))


class TestSequenceAdapters:
    def test_sequence_view(self, rng):
        x = rng.standard_normal((2, 12))
        out = SequenceView(3)(Tensor(x))
        assert out.shape == (2, 3, 4)

    def test_last_step(self, rng):
        x = rng.standard_normal((2, 5, 3))
        out = LastStep()(Tensor(x))
        assert np.allclose(out.data, x[:, -1, :])

    def test_sequence_view_indivisible_rejected(self, rng):
        with pytest.raises(ValueError):
            SequenceView(5)(Tensor(rng.standard_normal((2, 12))))
