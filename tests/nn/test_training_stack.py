"""Losses, optimizers, MLP builder, training loop, checkpointing, serialization."""

import numpy as np
import pytest

from repro.nn import (
    Activation,
    Adam,
    CheckpointSequential,
    Dense,
    SGD,
    Sequential,
    Tensor,
    Topology,
    TrainConfig,
    activation_bytes,
    build_mlp,
    checkpoint,
    huber_loss,
    load_mlp,
    mae_loss,
    mse_loss,
    predict,
    relative_l2,
    save_mlp,
    train_model,
)


# ------------------------------------------------------------------- losses


class TestLosses:
    def test_mse_zero_for_equal(self, rng):
        x = Tensor(rng.standard_normal((3, 2)))
        assert mse_loss(x, Tensor(x.data.copy())).item() == 0.0

    def test_mse_value(self):
        assert mse_loss(Tensor([2.0]), Tensor([0.0])).item() == pytest.approx(4.0)

    def test_mae_value(self):
        assert mae_loss(Tensor([2.0, -2.0]), Tensor([0.0, 0.0])).item() == pytest.approx(2.0)

    def test_huber_quadratic_near_zero(self):
        small = huber_loss(Tensor([0.01]), Tensor([0.0])).item()
        assert small == pytest.approx(0.5 * 0.01**2, rel=1e-3)

    def test_huber_linear_in_tails(self):
        big = huber_loss(Tensor([100.0]), Tensor([0.0]), delta=1.0).item()
        assert 90 < big < 101

    def test_losses_differentiable(self, rng):
        for loss in (mse_loss, mae_loss, huber_loss):
            pred = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
            loss(pred, Tensor(rng.standard_normal((4, 2)))).backward()
            assert pred.grad is not None

    def test_relative_l2(self):
        assert relative_l2(np.array([1.0, 0.0]), np.array([1.0, 0.0])) == 0.0
        assert relative_l2(np.array([2.0]), np.array([1.0])) == pytest.approx(1.0)


# ------------------------------------------------------------------- optimizers


class TestOptimizers:
    def _quadratic_descends(self, make_opt, steps=200):
        w = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = make_opt([w])
        for _ in range(steps):
            opt.zero_grad()
            loss = (w * w).sum()
            loss.backward()
            opt.step()
        return np.abs(w.data).max()

    def test_sgd_converges(self):
        assert self._quadratic_descends(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descends(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_descends(lambda p: Adam(p, lr=0.1)) < 1e-3

    def test_adam_weight_decay_shrinks_weights(self):
        w = Tensor(np.ones(4), requires_grad=True)
        opt = Adam([w], lr=0.01, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            (w * 0.0).sum().backward()   # zero loss gradient
            opt.step()
        assert np.all(np.abs(w.data) < 1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_bad_lr_rejected(self):
        w = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([w], lr=0.0)

    def test_bad_momentum_rejected(self):
        w = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([w], lr=0.1, momentum=1.0)

    def test_skips_params_without_grad(self):
        w = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([w], lr=0.1)
        opt.step()  # no grad yet; must not crash
        assert np.allclose(w.data, 1.0)


# ------------------------------------------------------------------- MLP builder


class TestTopologyAndBuilder:
    def test_describe(self):
        t = Topology(hidden=(8, 16), activation="relu", residual=True)
        assert "8x16" in t.describe() and "res" in t.describe()

    def test_invalid_hidden_rejected(self):
        with pytest.raises(ValueError):
            Topology(hidden=(0,), activation="relu")

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            Topology(hidden=(8,), activation="selu")

    def test_build_shapes(self, rng):
        model = build_mlp(5, 3, Topology(hidden=(8, 8), activation="tanh"), rng)
        assert model.output_dim(5) == 3
        out = model(Tensor(rng.standard_normal((4, 5))))
        assert out.shape == (4, 3)

    def test_residual_blocks_used_for_equal_widths(self, rng):
        model = build_mlp(5, 2, Topology(hidden=(8, 8), activation="relu", residual=True), rng)
        from repro.nn.layers import Residual

        assert any(isinstance(layer, Residual) for layer in model)

    def test_sparse_input_first_layer(self, rng):
        from repro.nn.layers import SparseDense

        model = build_mlp(5, 2, Topology(hidden=(8,), activation="relu", sparse_input=True), rng)
        assert isinstance(model.layers[0], SparseDense)


# ------------------------------------------------------------------- training loop


class TestTrainModel:
    def test_learns_linear_map(self, rng):
        x = rng.standard_normal((128, 4))
        y = x @ rng.standard_normal((4, 2))
        model = build_mlp(4, 2, Topology(hidden=(16,), activation="tanh"), rng)
        result = train_model(
            model, x, y, TrainConfig(num_epochs=300, lr=1e-2, patience=50, seed=0)
        )
        assert result.best_val_loss < 2e-2

    def test_early_stopping_on_plateau(self, rng):
        x = rng.standard_normal((32, 3))
        y = np.zeros((32, 2))  # trivially learned, then plateaus
        model = build_mlp(3, 2, Topology(hidden=(4,), activation="relu"), rng)
        result = train_model(
            model, x, y, TrainConfig(num_epochs=500, patience=5, lr=1e-2, seed=0)
        )
        assert result.epochs_run < 500

    def test_empty_data_rejected(self, rng):
        model = build_mlp(3, 2, Topology(hidden=(4,), activation="relu"), rng)
        with pytest.raises(ValueError):
            train_model(model, np.empty((0, 3)), np.empty((0, 2)))

    def test_row_mismatch_rejected(self, rng):
        model = build_mlp(3, 2, Topology(hidden=(4,), activation="relu"), rng)
        with pytest.raises(ValueError):
            train_model(model, np.ones((4, 3)), np.ones((5, 2)))

    def test_bad_train_ratio_rejected(self):
        with pytest.raises(ValueError):
            TrainConfig(train_ratio=0.0)

    def test_predict_runs_without_grad(self, rng):
        model = build_mlp(3, 2, Topology(hidden=(4,), activation="relu"), rng)
        out = predict(model, rng.standard_normal((5, 3)))
        assert out.shape == (5, 2)
        assert all(p.grad is None for p in model.parameters())

    def test_deterministic_given_seed(self, rng):
        x = rng.standard_normal((64, 3))
        y = x @ rng.standard_normal((3, 1))
        losses = []
        for _ in range(2):
            model = build_mlp(3, 1, Topology(hidden=(8,), activation="tanh"),
                              np.random.default_rng(7))
            r = train_model(model, x, y, TrainConfig(num_epochs=20, seed=3))
            losses.append(r.train_losses)
        assert losses[0] == losses[1]


# ------------------------------------------------------------------- checkpointing


class TestCheckpointing:
    def _model(self, rng):
        return Sequential(
            [Dense(4, 8, rng), Activation("relu"),
             Dense(8, 8, rng), Activation("relu"), Dense(8, 2, rng)]
        )

    def test_gradients_match_plain_backward(self, rng):
        model = self._model(rng)
        x = rng.standard_normal((6, 4))
        model(Tensor(x)).sum().backward()
        expected = [p.grad.copy() for p in model.parameters()]
        model.zero_grad()
        CheckpointSequential(model, segments=2)(Tensor(x)).sum().backward()
        actual = [p.grad.copy() for p in model.parameters()]
        assert all(np.allclose(a, b) for a, b in zip(expected, actual))

    def test_checkpoint_single_module(self, rng):
        layer = Dense(3, 3, rng)
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        checkpoint(layer, x).sum().backward()
        assert layer.weight.grad is not None
        assert x.grad is not None

    @pytest.mark.parametrize("segments", [1, 2, 3, 5])
    def test_any_segment_count(self, segments, rng):
        model = self._model(rng)
        ck = CheckpointSequential(model, segments=segments)
        out = ck(Tensor(rng.standard_normal((2, 4))))
        assert out.shape == (2, 2)

    def test_invalid_segments_rejected(self, rng):
        with pytest.raises(ValueError):
            CheckpointSequential(self._model(rng), segments=0)

    def test_activation_bytes_shrink_with_checkpointing(self, rng):
        model = Sequential([Dense(64, 64, rng) for _ in range(6)])
        plain = activation_bytes(model, 64, batch=8)
        ck = activation_bytes(model, 64, batch=8, checkpoint_segments=3)
        assert ck < plain

    def test_checkpoint_flops_double(self, rng):
        model = self._model(rng)
        assert CheckpointSequential(model, 2).flops(4) == 2 * model.flops(4)


# ------------------------------------------------------------------- serialization


class TestSerialization:
    def test_round_trip_predictions(self, rng, tmp_path):
        topo = Topology(hidden=(8, 8), activation="tanh", residual=True)
        model = build_mlp(5, 3, topo, rng)
        path = save_mlp(model, topo, 5, 3, tmp_path / "model.npz")
        loaded, loaded_topo, fin, fout = load_mlp(path)
        assert (fin, fout) == (5, 3)
        assert loaded_topo == topo
        x = rng.standard_normal((4, 5))
        assert np.allclose(predict(model, x), predict(loaded, x))

    def test_appends_npz_suffix(self, rng, tmp_path):
        topo = Topology(hidden=(4,), activation="relu")
        model = build_mlp(2, 1, topo, rng)
        path = save_mlp(model, topo, 2, 1, tmp_path / "model")
        assert path.suffix == ".npz" and path.exists()
