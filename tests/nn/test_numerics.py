"""Numerical-robustness tests for the NN stack."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Adam, SGD, Tensor, Topology, build_mlp, mse_loss, predict


class TestSaturationSafety:
    def test_exp_clamps_extreme_inputs(self):
        x = Tensor(np.array([1e4, -1e4]), requires_grad=True)
        out = x.exp()
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert np.all(np.isfinite(x.grad))

    def test_sigmoid_extremes_finite(self):
        x = Tensor(np.array([1e3, -1e3]), requires_grad=True)
        out = x.sigmoid()
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(1.0)
        assert out.data[1] == pytest.approx(0.0)
        out.sum().backward()
        assert np.all(np.isfinite(x.grad))

    def test_tanh_saturated_gradient_vanishes(self):
        x = Tensor(np.array([50.0]), requires_grad=True)
        x.tanh().sum().backward()
        assert abs(x.grad[0]) < 1e-10

    def test_forward_with_huge_weights_finite(self, rng):
        model = build_mlp(4, 2, Topology(hidden=(8,), activation="tanh"), rng)
        for p in model.parameters():
            p.data = p.data * 1e6
        out = predict(model, rng.standard_normal((3, 4)))
        assert np.all(np.isfinite(out))


class TestOptimizerStability:
    def test_adam_survives_large_gradients(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([w], lr=1e-2)
        for _ in range(10):
            opt.zero_grad()
            (w * 1e12).sum().backward()
            opt.step()
        assert np.all(np.isfinite(w.data))

    def test_sgd_momentum_buffers_isolated_between_params(self, rng):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(5), requires_grad=True)
        opt = SGD([a, b], lr=0.1, momentum=0.9)
        opt.zero_grad()
        (a.sum() * 2.0).backward()
        opt.step()          # only a has a gradient
        assert np.allclose(b.data, 1.0)

    def test_training_loss_finite_even_with_high_lr(self, rng):
        x = rng.standard_normal((32, 3))
        y = rng.standard_normal((32, 1))
        model = build_mlp(3, 1, Topology(hidden=(8,), activation="tanh"), rng)
        opt = Adam(model.parameters(), lr=0.5)
        for _ in range(20):
            opt.zero_grad()
            loss = mse_loss(model(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
        assert np.isfinite(loss.item())


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1), st.floats(-6, 6))
def test_activations_finite_over_wide_range(seed, log_scale):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((4, 4)) * 10**log_scale)
    for op in ("relu", "tanh", "sigmoid", "leaky_relu"):
        assert np.all(np.isfinite(getattr(x, op)().data))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_max_gradient_is_a_partition_of_unity(seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.integers(0, 3, size=(2, 6)).astype(float), requires_grad=True)
    x.max(axis=1).sum().backward()
    # each row's gradient sums to exactly 1 (ties share evenly)
    assert np.allclose(x.grad.sum(axis=1), 1.0)
