"""Conv1d / pooling / CNN-builder tests (the §5.1 CNN family)."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool1d,
    CNNTopology,
    Conv1d,
    Flatten,
    MaxPool1d,
    SignalView,
    Tensor,
    TrainConfig,
    Upsample1d,
    build_cnn,
    build_model,
    load_model,
    predict,
    save_model,
    train_model,
)


class TestConv1d:
    def test_output_shape(self, rng):
        conv = Conv1d(2, 5, 3, rng)
        out = conv(Tensor(rng.standard_normal((4, 2, 16))))
        assert out.shape == (4, 5, 16)

    def test_matches_numpy_correlate(self, rng):
        """Single-channel conv equals same-padded correlation."""
        conv = Conv1d(1, 1, 3, rng)
        x = rng.standard_normal((1, 1, 10))
        out = conv(Tensor(x)).data[0, 0]
        w = conv.weight.data[:, 0, 0]       # (K,) taps
        padded = np.concatenate([[0.0], x[0, 0], [0.0]])
        expected = np.array(
            [padded[i : i + 3] @ w for i in range(10)]
        ) + conv.bias.data[0]
        assert np.allclose(out, expected)

    def test_gradients_match_finite_difference(self, rng):
        conv = Conv1d(2, 3, 3, rng)
        x = rng.standard_normal((2, 2, 8))
        (conv(Tensor(x)) ** 2.0).sum().backward()
        analytic = conv.weight.grad.copy()
        eps = 1e-6
        for idx in [(0, 0, 0), (2, 1, 2), (1, 0, 1)]:
            conv.weight.data[idx] += eps
            up = (conv(Tensor(x)) ** 2.0).sum().item()
            conv.weight.data[idx] -= 2 * eps
            dn = (conv(Tensor(x)) ** 2.0).sum().item()
            conv.weight.data[idx] += eps
            assert analytic[idx] == pytest.approx((up - dn) / (2 * eps), abs=1e-5)

    def test_even_kernel_rejected(self, rng):
        with pytest.raises(ValueError):
            Conv1d(1, 1, 4, rng)

    def test_wrong_channel_count_rejected(self, rng):
        conv = Conv1d(2, 3, 3, rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.standard_normal((1, 5, 8))))

    def test_flops_positive_after_forward(self, rng):
        conv = Conv1d(1, 4, 3, rng)
        conv(Tensor(rng.standard_normal((1, 1, 12))))
        assert conv.flops(2) > 0


class TestPooling:
    def test_max_pool_values(self):
        pool = MaxPool1d(2)
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 0.0]]]))
        assert np.allclose(pool(x).data, [[[3.0, 2.0]]])

    def test_max_pool_gradient_routes_to_argmax(self):
        pool = MaxPool1d(2)
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 0.0]]]), requires_grad=True)
        pool(x).sum().backward()
        assert np.allclose(x.grad, [[[0.0, 1.0, 1.0, 0.0]]])

    def test_avg_pool_values(self):
        pool = AvgPool1d(2)
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 0.0]]]))
        assert np.allclose(pool(x).data, [[[2.0, 1.0]]])

    def test_indivisible_length_rejected(self, rng):
        with pytest.raises(ValueError):
            MaxPool1d(3)(Tensor(rng.standard_normal((1, 1, 8))))

    def test_pool_size_one_is_identity(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 6)))
        assert np.allclose(MaxPool1d(1)(x).data, x.data)

    def test_upsample_repeats(self):
        up = Upsample1d(3)
        x = Tensor(np.array([[[1.0, 2.0]]]))
        assert np.allclose(up(x).data, [[[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]]])

    def test_upsample_gradient_accumulates(self):
        up = Upsample1d(2)
        x = Tensor(np.array([[[1.0, 2.0]]]), requires_grad=True)
        up(x).sum().backward()
        assert np.allclose(x.grad, [[[2.0, 2.0]]])


class TestViews:
    def test_signal_view_round_trip(self, rng):
        x = rng.standard_normal((3, 12))
        signal = SignalView(channels=2)(Tensor(x))
        assert signal.shape == (3, 2, 6)
        flat = Flatten()(signal)
        assert np.allclose(flat.data, x)

    def test_signal_view_indivisible_rejected(self, rng):
        with pytest.raises(ValueError):
            SignalView(channels=5)(Tensor(rng.standard_normal((2, 12))))


class TestCNNTopology:
    def test_describe(self):
        t = CNNTopology(channels=(4,), kernel_sizes=(3,), pools=(2,))
        assert "c4k3p2" in t.describe()

    def test_misaligned_knobs_rejected(self):
        with pytest.raises(ValueError):
            CNNTopology(channels=(4, 8), kernel_sizes=(3,), pools=(1, 1))

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            CNNTopology(channels=(4,), kernel_sizes=(4,), pools=(1,))


class TestBuildCNN:
    def test_end_to_end_shapes(self, rng):
        topo = CNNTopology(channels=(4, 8), kernel_sizes=(3, 3), pools=(2, 2))
        model = build_cnn(32, 6, topo, rng)
        out = model(Tensor(rng.standard_normal((5, 32))))
        assert out.shape == (5, 6)

    def test_upsample_path(self, rng):
        topo = CNNTopology(channels=(4,), kernel_sizes=(3,), pools=(-2,))
        model = build_cnn(8, 3, topo, rng)
        assert model(Tensor(rng.standard_normal((2, 8)))).shape == (2, 3)

    def test_indivisible_pool_rejected(self, rng):
        topo = CNNTopology(channels=(4,), kernel_sizes=(3,), pools=(3,))
        with pytest.raises(ValueError):
            build_cnn(8, 2, topo, rng)

    def test_learns_convolutional_target(self, rng):
        x = rng.standard_normal((150, 32))
        kernel = np.array([0.25, 0.5, 0.25])
        y = np.array([np.convolve(row, kernel, mode="same") for row in x])[:, ::4]
        topo = CNNTopology(channels=(6,), kernel_sizes=(3,), pools=(2,), activation="tanh")
        model = build_cnn(32, 8, topo, rng)
        result = train_model(
            model, x, y, TrainConfig(num_epochs=150, lr=3e-3, patience=40, seed=1)
        )
        assert result.best_val_loss < 0.15

    def test_build_model_dispatches(self, rng):
        from repro.nn import Topology

        mlp = build_model(8, 2, Topology(hidden=(4,), activation="relu"), rng)
        cnn = build_model(
            8, 2, CNNTopology(channels=(2,), kernel_sizes=(3,), pools=(1,)), rng
        )
        assert mlp(Tensor(rng.standard_normal((2, 8)))).shape == (2, 2)
        assert cnn(Tensor(rng.standard_normal((2, 8)))).shape == (2, 2)

    def test_cnn_serialization_round_trip(self, rng, tmp_path):
        topo = CNNTopology(channels=(4,), kernel_sizes=(3,), pools=(2,))
        model = build_cnn(16, 3, topo, rng)
        path = save_model(model, topo, 16, 3, tmp_path / "cnn.npz")
        loaded, loaded_topo, fin, fout = load_model(path)
        assert loaded_topo == topo and (fin, fout) == (16, 3)
        x = rng.standard_normal((4, 16))
        assert np.allclose(predict(model, x), predict(loaded, x))


class TestCNNSpace:
    def test_round_trip_and_legality(self, rng):
        from repro.nas import CNNSpace

        space = CNNSpace(signal_length=24)
        for _ in range(25):
            t = space.sample(rng)
            assert space.decode(space.encode(t)) == t
            # pools always legal for the signal length
            length = 24
            for pool in t.pools:
                assert length % pool == 0
                length //= pool

    def test_grid_topologies_buildable(self, rng):
        from repro.nas import CNNSpace

        space = CNNSpace(signal_length=16, max_layers=1)
        for t in space.grid():
            model = build_cnn(16, 2, t, rng)
            assert model(Tensor(rng.standard_normal((1, 16)))).shape == (1, 2)

    def test_nas_search_over_cnn_space(self, rng):
        from repro.nas import CNNSpace, TopologySearch

        x = rng.standard_normal((80, 16))
        kernel = np.array([0.5, 0.5])
        y = np.array([np.convolve(row, kernel, mode="same") for row in x])[:, ::4]
        space = CNNSpace(signal_length=16, max_layers=1)
        search = TopologySearch(
            space, epsilon=1.0,
            train_config=TrainConfig(num_epochs=40, lr=3e-3, seed=0), seed=0,
        )
        result = search.search(x, y, n_trials=3)
        assert result.best is not None
        assert result.best.topology.describe().startswith("cnn")
