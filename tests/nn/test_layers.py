"""Layer behaviour: shapes, parameters, FLOPs, the sparse input path."""

import numpy as np
import pytest

from repro.nn import Activation, Dense, Residual, Sequential, SparseDense, Tensor
from repro.sparse import from_dense


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 6, rng)
        out = layer(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 6)

    def test_affine_math(self, rng):
        layer = Dense(4, 2, rng)
        x = rng.standard_normal((5, 4))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_parameters_trainable(self, rng):
        layer = Dense(4, 2, rng)
        params = list(layer.parameters())
        assert len(params) == 2
        assert all(p.requires_grad for p in params)

    def test_num_parameters(self, rng):
        assert Dense(4, 6, rng).num_parameters() == 4 * 6 + 6

    def test_flops(self, rng):
        layer = Dense(4, 6, rng)
        assert layer.flops(batch=2) == 2 * (2 * 4 * 6 + 6)

    def test_output_dim_validation(self, rng):
        layer = Dense(4, 6, rng)
        assert layer.output_dim(4) == 6
        with pytest.raises(ValueError):
            layer.output_dim(5)

    def test_invalid_dims_rejected(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 4, rng)


class TestSparseDense:
    def test_csr_forward_matches_dense(self, rng):
        layer = SparseDense(6, 3, rng)
        dense = rng.standard_normal((4, 6)) * (rng.random((4, 6)) < 0.4)
        csr = from_dense(dense, "csr")
        out_sparse = layer(csr)
        out_dense = layer(Tensor(dense))
        assert np.allclose(out_sparse.data, out_dense.data)

    def test_csr_gradients_match_dense_path(self, rng):
        dense = rng.standard_normal((4, 6)) * (rng.random((4, 6)) < 0.4)
        layer = SparseDense(6, 3, rng)

        (layer(Tensor(dense)) ** 2.0).sum().backward()
        g_dense = layer.weight.grad.copy(), layer.bias.grad.copy()
        layer.zero_grad()
        (layer(from_dense(dense, "csr")) ** 2.0).sum().backward()
        assert np.allclose(layer.weight.grad, g_dense[0])
        assert np.allclose(layer.bias.grad, g_dense[1])

    def test_wrong_column_count_rejected(self, rng):
        layer = SparseDense(6, 3, rng)
        with pytest.raises(ValueError):
            layer(from_dense(np.ones((2, 5)), "csr"))

    def test_flops_scale_with_nnz(self, rng):
        layer = SparseDense(100, 4, rng)
        sparse = from_dense(np.eye(10, 100), "csr")  # 10 nonzeros
        layer(sparse)
        sparse_flops = layer.flops(batch=10)
        assert sparse_flops < 10 * (2 * 100 * 4)  # far below the dense cost


class TestActivation:
    @pytest.mark.parametrize("kind", ["relu", "tanh", "sigmoid", "leaky_relu", "identity"])
    def test_kinds(self, kind, rng):
        act = Activation(kind)
        x = rng.standard_normal((2, 3))
        out = act(Tensor(x)).data
        assert out.shape == x.shape

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Activation("swish")

    def test_identity_flops_zero(self, rng):
        act = Activation("identity")
        act(Tensor(rng.standard_normal((2, 3))))
        assert act.flops(2) == 0


class TestResidualAndSequential:
    def test_residual_adds_input(self, rng):
        inner = Dense(4, 4, rng)
        res = Residual(inner)
        x = rng.standard_normal((2, 4))
        assert np.allclose(res(Tensor(x)).data, inner(Tensor(x)).data + x)

    def test_residual_requires_matching_dims(self, rng):
        res = Residual(Dense(4, 5, rng))
        with pytest.raises(ValueError):
            res.output_dim(4)

    def test_sequential_composes(self, rng):
        model = Sequential([Dense(4, 8, rng), Activation("relu"), Dense(8, 2, rng)])
        out = model(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)
        assert model.output_dim(4) == 2
        assert len(model) == 3

    def test_sequential_flops_sum(self, rng):
        a, b = Dense(4, 8, rng), Dense(8, 2, rng)
        model = Sequential([a, b])
        assert model.flops(3) == a.flops(3) + b.flops(3)

    def test_zero_grad_clears(self, rng):
        model = Sequential([Dense(4, 2, rng)])
        (model(Tensor(rng.standard_normal((2, 4)))) ** 2.0).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())
