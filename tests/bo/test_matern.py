"""Matern-5/2 kernel and kernel-selection tests."""

import numpy as np
import pytest

from repro.bo import GaussianProcess, matern52_kernel, rbf_kernel


class TestMaternKernel:
    def test_diagonal_is_variance(self, rng):
        x = rng.standard_normal((5, 2))
        assert np.allclose(np.diag(matern52_kernel(x, x, 1.0, 2.0)), 2.0)

    def test_positive_semidefinite(self, rng):
        x = rng.standard_normal((10, 3))
        k = matern52_kernel(x, x, 1.0, 1.0)
        assert np.all(np.linalg.eigvalsh(k) > -1e-9)

    def test_heavier_tails_than_rbf(self):
        a = np.array([[0.0]])
        b = np.array([[4.0]])
        assert matern52_kernel(a, b, 1.0, 1.0) > rbf_kernel(a, b, 1.0, 1.0)

    def test_invalid_hyperparams_rejected(self):
        with pytest.raises(ValueError):
            matern52_kernel(np.zeros((1, 1)), np.zeros((1, 1)), -1.0, 1.0)


class TestKernelSelection:
    def test_matern_gp_interpolates(self, rng):
        x = rng.uniform(-3, 3, (30, 1))
        y = np.sin(x).ravel()
        gp = GaussianProcess(kernel="matern52").fit(x, y)
        mean, _ = gp.predict(np.linspace(-2.5, 2.5, 30)[:, None])
        assert np.abs(mean - np.sin(np.linspace(-2.5, 2.5, 30))).max() < 0.15

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess(kernel="periodic")

    def test_kernels_give_different_posteriors(self, rng):
        x = rng.uniform(-2, 2, (12, 1))
        y = np.abs(x).ravel()           # non-smooth target
        q = np.array([[0.31]])
        m_rbf, _ = GaussianProcess(kernel="rbf").fit(x, y).predict(q)
        m_mat, _ = GaussianProcess(kernel="matern52").fit(x, y).predict(q)
        assert m_rbf[0] != m_mat[0]
