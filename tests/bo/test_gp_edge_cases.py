"""GP and acquisition edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bo import (
    BayesianOptimizer,
    GaussianProcess,
    expected_improvement,
    probability_feasible,
)


class TestGPEdgeCases:
    def test_single_observation(self):
        gp = GaussianProcess().fit(np.array([[0.5]]), np.array([2.0]))
        mean, std = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(2.0, abs=0.1)

    def test_duplicate_points_handled(self, rng):
        x = np.vstack([np.ones((5, 2)), np.zeros((5, 2))])
        y = np.concatenate([np.ones(5), np.zeros(5)])
        gp = GaussianProcess().fit(x, y)
        mean, _ = gp.predict(np.ones((1, 2)))
        assert mean[0] == pytest.approx(1.0, abs=0.2)

    def test_constant_feature_column(self, rng):
        x = np.column_stack([np.full(10, 3.0), rng.standard_normal(10)])
        gp = GaussianProcess().fit(x, x[:, 1])
        mean, _ = gp.predict(x[:3])
        assert np.all(np.isfinite(mean))

    def test_wide_output_scale(self, rng):
        x = rng.standard_normal((15, 1))
        y = 1e8 * np.sin(x).ravel()
        gp = GaussianProcess().fit(x, y)
        mean, std = gp.predict(x[:5])
        assert np.allclose(mean, y[:5], rtol=0.2)
        assert np.all(std >= 0)

    def test_refit_replaces_state(self, rng):
        gp = GaussianProcess()
        gp.fit(rng.standard_normal((8, 1)), rng.standard_normal(8))
        gp.fit(np.array([[0.0]]), np.array([7.0]))
        mean, _ = gp.predict(np.array([[0.0]]))
        assert mean[0] == pytest.approx(7.0, abs=0.5)


class TestAcquisitionEdgeCases:
    def test_ei_zero_std_at_worse_mean(self):
        ei = expected_improvement(np.array([5.0]), np.array([0.0]), best=1.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-12)

    def test_ei_zero_std_at_better_mean(self):
        ei = expected_improvement(np.array([0.0]), np.array([0.0]), best=1.0)
        assert ei[0] == pytest.approx(1.0, rel=1e-6)

    def test_feasibility_at_threshold_is_half(self):
        p = probability_feasible(np.array([0.5]), np.array([1.0]), threshold=0.5)
        assert p[0] == pytest.approx(0.5)


class TestOptimizerEdgeCases:
    def test_warmup_phase_is_random_choice(self):
        opt = BayesianOptimizer(init_samples=5, rng=np.random.default_rng(0))
        pool = np.arange(10.0)[:, None]
        picks = {opt.ask(pool) for _ in range(20)}
        assert len(picks) > 1  # random, not a fixed argmax

    def test_single_candidate_pool(self):
        opt = BayesianOptimizer(init_samples=1)
        assert opt.ask(np.array([[1.0]])) == 0

    def test_best_updates_with_feasible_improvement(self):
        opt = BayesianOptimizer(threshold=1.0)
        opt.tell([0.0], 5.0, 0.5)
        opt.tell([1.0], 3.0, 0.5)
        opt.tell([2.0], 4.0, 2.0)   # infeasible, better ignored
        assert opt.best.objective == 3.0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(3, 20))
def test_gp_posterior_interpolates_training_points(seed, n):
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(-2, 2, n))[:, None]
    y = np.cos(x).ravel()
    gp = GaussianProcess(noises=(1e-8, 1e-6)).fit(x, y)
    mean, _ = gp.predict(x)
    assert np.allclose(mean, y, atol=0.05)
