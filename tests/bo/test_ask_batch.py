"""q-point batched proposals (constant-liar acquisition)."""

import numpy as np
import pytest

from repro.bo import BayesianOptimizer


def quadratic(x):
    return float(np.sum((x - 0.3) ** 2))


def make_pool(rng, n=32, d=2):
    return rng.uniform(-1, 1, size=(n, d))


class TestAskBatch:
    def test_distinct_indices(self, rng):
        opt = BayesianOptimizer(init_samples=2, rng=np.random.default_rng(0))
        pool = make_pool(rng)
        for _ in range(4):
            idx = opt.ask(pool)
            opt.tell(pool[idx], quadratic(pool[idx]))
        batch = opt.ask_batch(pool, 6)
        assert len(batch) == 6
        assert len(set(batch)) == 6

    def test_q_clamped_to_pool(self, rng):
        opt = BayesianOptimizer(init_samples=1, rng=np.random.default_rng(0))
        pool = make_pool(rng, n=3)
        assert sorted(opt.ask_batch(pool, 10)) == [0, 1, 2]

    def test_invalid_q_rejected(self, rng):
        opt = BayesianOptimizer(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            opt.ask_batch(make_pool(rng), 0)

    def test_observations_not_mutated(self, rng):
        opt = BayesianOptimizer(init_samples=1, rng=np.random.default_rng(0))
        pool = make_pool(rng)
        opt.tell(pool[0], quadratic(pool[0]))
        before = list(opt.observations)
        opt.ask_batch(pool, 5)
        assert opt.observations == before

    def test_q1_matches_single_ask(self, rng):
        """ask() and ask_batch(..., 1) consume rng identically."""
        pool = make_pool(rng)
        a = BayesianOptimizer(init_samples=2, rng=np.random.default_rng(7))
        b = BayesianOptimizer(init_samples=2, rng=np.random.default_rng(7))
        for _ in range(5):
            ia = a.ask(pool)
            [ib] = b.ask_batch(pool, 1)
            assert ia == ib
            a.tell(pool[ia], quadratic(pool[ia]))
            b.tell(pool[ib], quadratic(pool[ib]))

    def test_deterministic_given_seed(self, rng):
        pool = make_pool(rng)

        def propose():
            opt = BayesianOptimizer(init_samples=1, rng=np.random.default_rng(3))
            opt.tell(pool[0], quadratic(pool[0]))
            return opt.ask_batch(pool, 4)

        assert propose() == propose()

    def test_constrained_batch(self, rng):
        opt = BayesianOptimizer(
            threshold=0.5, init_samples=2, rng=np.random.default_rng(0)
        )
        pool = make_pool(rng)
        for i in range(3):
            opt.tell(pool[i], quadratic(pool[i]), constraint=float(i) / 4)
        batch = opt.ask_batch(pool, 4)
        assert len(set(batch)) == 4

    def test_warmup_batch_is_random_and_distinct(self, rng):
        opt = BayesianOptimizer(init_samples=10, rng=np.random.default_rng(1))
        batch = opt.ask_batch(make_pool(rng), 5)
        assert len(set(batch)) == 5

    def test_batch_spreads_beyond_single_argmax(self, rng):
        """The liar must push later picks away from the first argmax."""
        opt = BayesianOptimizer(init_samples=2, rng=np.random.default_rng(0))
        pool = make_pool(rng, n=64)
        for i in (0, 5, 11, 20):
            opt.tell(pool[i], quadratic(pool[i]))
        first = opt.ask(pool)
        batch = opt.ask_batch(pool, 3)
        assert batch[0] == first
        assert batch[1] != first and batch[2] != first
