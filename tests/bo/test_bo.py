"""Gaussian process, acquisition and optimizer tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bo import (
    BayesianOptimizer,
    GaussianProcess,
    Observation,
    constrained_expected_improvement,
    expected_improvement,
    grid_search,
    lower_confidence_bound,
    probability_feasible,
    probability_of_improvement,
    random_search,
    rbf_kernel,
)


class TestKernel:
    def test_diagonal_is_variance(self, rng):
        x = rng.standard_normal((5, 2))
        k = rbf_kernel(x, x, 1.0, 2.5)
        assert np.allclose(np.diag(k), 2.5)

    def test_symmetry(self, rng):
        x = rng.standard_normal((5, 2))
        k = rbf_kernel(x, x, 1.0, 1.0)
        assert np.allclose(k, k.T)

    def test_positive_semidefinite(self, rng):
        x = rng.standard_normal((8, 3))
        k = rbf_kernel(x, x, 1.0, 1.0)
        assert np.all(np.linalg.eigvalsh(k) > -1e-9)

    def test_decays_with_distance(self):
        a = np.array([[0.0]])
        assert rbf_kernel(a, np.array([[3.0]]), 1.0, 1.0) < rbf_kernel(
            a, np.array([[0.5]]), 1.0, 1.0
        )

    def test_invalid_hyperparams_rejected(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((1, 1)), np.zeros((1, 1)), 0.0, 1.0)


class TestGaussianProcess:
    def test_interpolates_smooth_function(self, rng):
        x = rng.uniform(-3, 3, (30, 1))
        y = np.sin(x).ravel()
        gp = GaussianProcess().fit(x, y)
        xt = np.linspace(-2.5, 2.5, 40)[:, None]
        mean, std = gp.predict(xt)
        assert np.abs(mean - np.sin(xt).ravel()).max() < 0.1

    def test_uncertainty_grows_away_from_data(self, rng):
        x = rng.uniform(-1, 1, (15, 1))
        gp = GaussianProcess().fit(x, np.sin(x).ravel())
        _, std_near = gp.predict(np.array([[0.0]]))
        _, std_far = gp.predict(np.array([[10.0]]))
        assert std_far > std_near

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 1)))

    def test_constant_target_handled(self, rng):
        x = rng.standard_normal((10, 2))
        gp = GaussianProcess().fit(x, np.full(10, 3.0))
        mean, _ = gp.predict(x[:3])
        assert np.allclose(mean, 3.0, atol=1e-6)

    def test_log_marginal_likelihood_finite(self, rng):
        x = rng.standard_normal((12, 2))
        gp = GaussianProcess().fit(x, rng.standard_normal(12))
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_mismatched_rows_rejected(self, rng):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 1)), np.zeros(4))


class TestAcquisitions:
    def test_ei_nonnegative(self, rng):
        ei = expected_improvement(rng.standard_normal(20), rng.random(20) + 0.1, 0.0)
        assert np.all(ei >= 0)

    def test_ei_prefers_lower_mean(self):
        ei = expected_improvement(np.array([0.0, 1.0]), np.array([0.1, 0.1]), 2.0)
        assert ei[0] > ei[1]

    def test_ei_prefers_higher_std_at_same_mean(self):
        ei = expected_improvement(np.array([1.0, 1.0]), np.array([0.01, 1.0]), 1.0)
        assert ei[1] > ei[0]

    def test_pi_bounds(self, rng):
        pi = probability_of_improvement(rng.standard_normal(50), rng.random(50) + 0.1, 0.0)
        assert np.all((pi >= 0) & (pi <= 1))

    def test_lcb_monotone_in_kappa(self):
        mean, std = np.array([1.0]), np.array([0.5])
        assert lower_confidence_bound(mean, std, 3.0) > lower_confidence_bound(mean, std, 1.0)

    def test_feasibility_probability(self):
        p = probability_feasible(np.array([0.0, 10.0]), np.array([1.0, 1.0]), 0.5)
        assert p[0] > 0.5 and p[1] < 0.01

    def test_constrained_ei_zero_when_infeasible(self):
        cei = constrained_expected_improvement(
            np.array([0.0]), np.array([0.5]), 1.0,
            c_mean=np.array([100.0]), c_std=np.array([0.1]), threshold=0.0,
        )
        assert cei[0] < 1e-10


class TestBayesianOptimizer:
    def test_unconstrained_finds_minimum(self):
        opt = BayesianOptimizer(init_samples=3, rng=np.random.default_rng(0))
        best = opt.minimize(
            lambda v: ((v[0] - 1.5) ** 2, None),
            lambda r: np.array([r.uniform(-4, 4)]),
            25,
            pool_size=64,
        )
        assert abs(best.x[0] - 1.5) < 0.3

    def test_constrained_respects_threshold(self):
        opt = BayesianOptimizer(threshold=0.0, init_samples=3, rng=np.random.default_rng(1))
        best = opt.minimize(
            lambda v: ((v[0] - 2.0) ** 2, 1.0 - v[0]),
            lambda r: np.array([r.uniform(-4, 4)]),
            30,
            pool_size=64,
        )
        assert best is not None and best.constraint <= 0.0

    def test_outperforms_random_search_on_average(self):
        def evaluate(v):
            return float(np.sum((v - 0.7) ** 2)), None

        def sample(r):
            return r.uniform(-2, 2, size=3)

        bo_scores, rs_scores = [], []
        for seed in range(3):
            opt = BayesianOptimizer(init_samples=4, rng=np.random.default_rng(seed))
            bo_scores.append(opt.minimize(evaluate, sample, 25).objective)
            best, _ = random_search(evaluate, sample, 25, rng=np.random.default_rng(seed))
            rs_scores.append(best.objective)
        assert np.mean(bo_scores) <= np.mean(rs_scores)

    def test_best_none_when_all_infeasible(self):
        opt = BayesianOptimizer(threshold=-1.0, init_samples=1)
        opt.tell([0.0], 1.0, 5.0)
        assert opt.best is None

    def test_constrained_tell_requires_constraint(self):
        opt = BayesianOptimizer(threshold=0.5)
        with pytest.raises(ValueError):
            opt.tell([0.0], 1.0)

    def test_ask_empty_pool_rejected(self):
        opt = BayesianOptimizer()
        with pytest.raises(ValueError):
            opt.ask(np.empty((0, 2)))

    def test_observation_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            Observation((0.0,), float("nan"))


class TestSearchBaselines:
    def test_grid_search_exhaustive(self):
        best, history = grid_search(
            lambda v: (float(v[0] ** 2 + v[1] ** 2), None),
            [[-1, 0, 1], [-1, 0, 1]],
        )
        assert len(history) == 9
        assert best.objective == 0.0

    def test_grid_search_max_evaluations(self):
        _, history = grid_search(
            lambda v: (float(v[0]), None), [list(range(100))], max_evaluations=5
        )
        assert len(history) == 5

    def test_grid_search_threshold(self):
        best, _ = grid_search(
            lambda v: (float(v[0] ** 2), float(-v[0])),
            [[-2, -1, 0, 1, 2]],
            threshold=-0.5,
        )
        assert best.x[0] >= 1  # constraint -x <= -0.5 means x >= 0.5

    def test_grid_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            grid_search(lambda v: (0.0, None), [[]])

    def test_random_search_deterministic_with_seed(self):
        fn = lambda v: (float(v[0] ** 2), None)
        sample = lambda r: np.array([r.uniform(-1, 1)])
        b1, _ = random_search(fn, sample, 10, rng=np.random.default_rng(3))
        b2, _ = random_search(fn, sample, 10, rng=np.random.default_rng(3))
        assert b1.x == b2.x
