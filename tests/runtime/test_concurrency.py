"""Concurrency tests: the orchestrator under parallel clients."""

import threading

import numpy as np
import pytest

from repro.runtime import Client, InferenceRequest, Orchestrator


class TestParallelAccess:
    def test_concurrent_tensor_writes_are_isolated(self, rng):
        orc = Orchestrator()
        errors = []

        def writer(worker_id: int) -> None:
            try:
                for i in range(50):
                    key = f"w{worker_id}_{i}"
                    value = np.full(16, float(worker_id * 1000 + i))
                    orc.put_tensor(key, value)
                    got = orc.get_tensor(key)
                    assert got[0] == worker_id * 1000 + i
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_concurrent_inference_requests(self):
        with Orchestrator() as orc:
            orc.register_model("scale", lambda x: x * 2.0)
            requests = []
            for i in range(20):
                orc.put_tensor(f"in{i}", np.full(4, float(i)))
                requests.append(
                    orc.submit(InferenceRequest("scale", (f"in{i}",), (f"out{i}",)))
                )
            for req in requests:
                assert req.done.wait(timeout=10.0)
                assert req.error is None
            for i in range(20):
                assert np.allclose(orc.get_tensor(f"out{i}"), 2.0 * i)

    def test_parallel_clients_share_models(self, rng):
        orc = Orchestrator()
        primary = Client(orc)
        primary._orc.register_model("neg", lambda x: -x)
        results = []

        def worker(seed: int) -> None:
            client = Client(orc)
            x = np.full(3, float(seed))
            out = client.run_model("neg", inputs=x, outputs=f"o{seed}")
            results.append((seed, out))

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 6
        for seed, out in results:
            assert np.allclose(out, -float(seed))

    def test_interleaved_run_model_outputs_match_inputs(self, rng):
        """Regression for the shared-scratch-key race: N threads pipeline raw
        arrays through one started orchestrator; every response must match
        its own input, not a neighbor's."""
        from repro.nas import evaluate_topology
        from repro.nn import Topology

        x_train = rng.standard_normal((60, 5))
        y_train = x_train @ rng.standard_normal((5, 2))
        pkg = evaluate_topology(
            Topology(hidden=(8,), activation="tanh"), x_train, y_train, rng=rng
        ).package
        inputs = rng.standard_normal((8, 25, 5))
        expected = [[pkg.predict(inputs[w, i]) for i in range(25)] for w in range(8)]
        orc = Orchestrator(max_batch_size=8, max_wait_ms=1.0, num_workers=2)
        primary = Client(orc)
        primary.set_model("m", pkg)
        failures = []

        def worker(w: int) -> None:
            client = Client(orc)
            for i in range(25):
                out = client.run_model("m", inputs[w, i], f"out_{w}_{i}")
                if not np.allclose(out, expected[w][i]):
                    failures.append((w, i))

        with orc:
            threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert failures == []

    def test_concurrent_async_batch_calls(self, rng):
        """Pipelined run_model_batch from several threads at once."""
        orc = Orchestrator(max_batch_size=16, max_wait_ms=1.0, num_workers=2)
        orc.register_model("affine", lambda x: x * 2.0 + 1.0)
        results = {}

        def worker(w: int) -> None:
            client = Client(orc)
            xs = [np.full(4, float(w * 100 + i)) for i in range(10)]
            outs = client.run_model_batch(
                "affine", xs, [f"bo_{w}_{i}" for i in range(10)]
            )
            results[w] = (xs, outs)

        with orc:
            threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 4
        for w, (xs, outs) in results.items():
            for x, out in zip(xs, outs):
                assert np.array_equal(out, x * 2.0 + 1.0)

    def test_stop_drains_cleanly(self):
        orc = Orchestrator()
        orc.start()
        orc.register_model("id", lambda x: x)
        orc.put_tensor("a", np.ones(2))
        req = orc.submit(InferenceRequest("id", ("a",), ("b",)))
        assert req.done.wait(timeout=5.0)
        orc.stop()
        assert not orc.is_running
        orc.stop()  # idempotent
