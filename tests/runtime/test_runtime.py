"""Orchestrator, client and serving-path tests (Listings 1-2 semantics)."""

import numpy as np
import pytest

from repro.autoencoder import Autoencoder
from repro.nas import SurrogatePackage, evaluate_topology
from repro.nn import Topology
from repro.runtime import (
    Client,
    ONLINE_PHASES,
    OnlineCostModel,
    Orchestrator,
    ServingSession,
)
from repro.sparse import from_dense


def make_package(rng, din=6, dout=2, with_ae=False):
    x = rng.standard_normal((60, din))
    y = x @ rng.standard_normal((din, dout))
    ae = None
    if with_ae:
        ae = Autoencoder(din, 3, rng=rng)
        z = ae.encode(x)
        return evaluate_topology(
            Topology(hidden=(8,), activation="tanh"), z, y,
            autoencoder=ae, x_raw=x, rng=rng,
        ).package
    return evaluate_topology(
        Topology(hidden=(8,), activation="tanh"), x, y, rng=rng
    ).package


class TestOrchestrator:
    def test_put_get_round_trip(self, rng):
        orc = Orchestrator()
        t = rng.standard_normal((3, 4))
        orc.put_tensor("k", t)
        assert np.allclose(orc.get_tensor("k"), t)

    def test_put_copies_data(self, rng):
        orc = Orchestrator()
        t = rng.standard_normal(4)
        orc.put_tensor("k", t)
        t[0] = 999.0
        assert orc.get_tensor("k")[0] != 999.0

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Orchestrator().get_tensor("nope")

    def test_delete_tensor(self, rng):
        orc = Orchestrator()
        orc.put_tensor("k", rng.standard_normal(2))
        orc.delete_tensor("k")
        assert not orc.tensor_exists("k")

    def test_run_model_through_store(self, rng):
        orc = Orchestrator()
        orc.register_model("double", lambda x: x * 2.0)
        orc.put_tensor("in", np.ones(3))
        orc.run_model("double", ("in",), ("out",))
        assert np.allclose(orc.get_tensor("out"), 2.0)

    def test_unknown_model_raises(self):
        orc = Orchestrator()
        orc.put_tensor("in", np.ones(1))
        with pytest.raises(KeyError):
            orc.run_model("ghost", ("in",), ("out",))

    def test_non_callable_model_rejected(self):
        with pytest.raises(TypeError):
            Orchestrator().register_model("bad", 42)

    def test_server_mode_processes_queue(self, rng):
        with Orchestrator() as orc:
            orc.register_model("neg", lambda x: -x)
            orc.put_tensor("in", np.ones(4))
            from repro.runtime import InferenceRequest

            req = orc.submit(InferenceRequest("neg", ("in",), ("out",)))
            assert req.done.wait(timeout=5.0)
            assert req.error is None
            assert np.allclose(orc.get_tensor("out"), -1.0)
        assert not orc.is_running

    def test_server_mode_surfaces_errors(self):
        with Orchestrator() as orc:
            from repro.runtime import InferenceRequest

            req = orc.submit(InferenceRequest("missing", ("in",), ("out",)))
            assert req.done.wait(timeout=5.0)
            assert isinstance(req.error, KeyError)

    def test_submit_before_start_raises(self):
        from repro.runtime import InferenceRequest

        with pytest.raises(RuntimeError):
            Orchestrator().submit(InferenceRequest("m", ("a",), ("b",)))


class TestClient:
    def test_listing1_flow(self, rng):
        """Mirror Listing 1: put -> run_model -> unpack."""
        orc = Orchestrator()
        client = Client(orc, cluster=False)
        pkg = make_package(rng)
        client.set_model("AI-CFD-net", pkg)
        x = rng.standard_normal((2, 6))
        client.put_tensor("in_key", x)
        client.run_model("AI-CFD-net", inputs="in_key", outputs="out_key")
        buffer = np.empty((2, 2))
        out = client.unpack_tensor("out_key", out=buffer)
        assert np.allclose(out, pkg.predict(x))
        assert out is buffer

    def test_raw_array_inputs(self, rng):
        orc = Orchestrator()
        client = Client(orc)
        pkg = make_package(rng)
        client.set_model("m", pkg)
        x = rng.standard_normal((3, 6))
        out = client.run_model("m", inputs=x, outputs="out")
        assert np.allclose(out, pkg.predict(x))

    def test_set_model_from_file(self, rng, tmp_path):
        pkg = make_package(rng)
        pkg.save(tmp_path / "net")
        client = Client(Orchestrator())
        loaded = client.set_model_from_file("net", str(tmp_path / "net"), "TORCH", "GPU")
        x = rng.standard_normal((2, 6))
        assert np.allclose(loaded.predict(x), pkg.predict(x))

    def test_autoencoder_reduction_with_sparse(self, rng):
        ae = Autoencoder(8, 3, sparse_input=True, rng=rng)
        client = Client(Orchestrator())
        client.set_autoencoder(ae)
        dense = rng.standard_normal((4, 8)) * (rng.random((4, 8)) < 0.4)
        reduced = client.autoencoder(from_dense(dense, "csr"))
        assert reduced.shape == (4, 3)
        assert np.allclose(reduced, ae.encode(dense))

    def test_autoencoder_without_setting_raises(self):
        with pytest.raises(RuntimeError):
            Client(Orchestrator()).autoencoder(np.ones((1, 4)))

    def test_unpack_shape_mismatch_rejected(self, rng):
        client = Client(Orchestrator())
        client.put_tensor("k", rng.standard_normal((2, 2)))
        with pytest.raises(ValueError):
            client.unpack_tensor("k", out=np.empty((3, 3)))

    def test_server_mode_inference(self, rng):
        with Orchestrator() as orc:
            client = Client(orc)
            pkg = make_package(rng)
            client.set_model("m", pkg)
            x = rng.standard_normal((2, 6))
            out = client.run_model("m", inputs=x, outputs="out")
            assert np.allclose(out, pkg.predict(x))


class TestOnlineCostModel:
    def test_phases_complete_and_positive(self, rng):
        pkg = make_package(rng, with_ae=True)
        phases = OnlineCostModel().phase_times(pkg, input_bytes=1e6)
        assert set(phases) == set(ONLINE_PHASES)
        assert all(v >= 0 for v in phases.values())
        assert phases["encode"] > 0  # autoencoder present

    def test_encode_zero_without_ae(self, rng):
        pkg = make_package(rng, with_ae=False)
        phases = OnlineCostModel().phase_times(pkg, input_bytes=1e6)
        assert phases["encode"] == 0.0

    def test_fetch_scales_with_bytes(self, rng):
        pkg = make_package(rng)
        model = OnlineCostModel()
        small = model.phase_times(pkg, 1e3)["fetch_input"]
        big = model.phase_times(pkg, 1e9)["fetch_input"]
        assert big > small * 100

    def test_total_is_sum(self, rng):
        pkg = make_package(rng)
        model = OnlineCostModel()
        assert model.total_time(pkg, 1e5) == pytest.approx(
            sum(model.phase_times(pkg, 1e5).values())
        )

    def test_negative_bytes_rejected(self, rng):
        with pytest.raises(ValueError):
            OnlineCostModel().phase_times(make_package(rng), -1)


class TestServingSession:
    def test_inference_matches_package(self, rng):
        pkg = make_package(rng, with_ae=True)
        session = ServingSession(pkg)
        x = rng.standard_normal(6)
        out = session.infer(x)
        assert np.allclose(out, pkg.predict(x), atol=1e-9)

    def test_phases_timed(self, rng):
        pkg = make_package(rng, with_ae=True)
        session = ServingSession(pkg)
        for _ in range(3):
            session.infer(rng.standard_normal(6))
        for phase in ONLINE_PHASES:
            assert phase in session.timer.phases
