"""Micro-batched serving: grouping, scatter, bit-identity, async client API."""

import threading
import time
import warnings

import numpy as np
import pytest

from repro import obs
from repro.nas import evaluate_topology
from repro.nn import Topology
from repro.runtime import (
    Client,
    InferenceFuture,
    InferenceRequest,
    Orchestrator,
    OrchestratorStopped,
    measure_serving_throughput,
)


def make_package(rng, din=6, dout=2, hidden=(16,)):
    x = rng.standard_normal((80, din))
    y = x @ rng.standard_normal((din, dout))
    return evaluate_topology(
        Topology(hidden=hidden, activation="tanh"), x, y, rng=rng
    ).package


class TestConstructorKnobs:
    def test_defaults(self):
        orc = Orchestrator()
        assert orc.max_batch_size == 32
        assert orc.max_wait_ms == 2.0
        assert orc.num_workers == 1
        assert orc.batch_invariant

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_ms": -1.0},
            {"num_workers": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Orchestrator(**kwargs)


class TestMicroBatching:
    def test_compatible_requests_batch_into_one_forward(self, rng):
        calls = []

        def model(x):
            calls.append(np.asarray(x).shape)
            return np.asarray(x) * 2.0

        orc = Orchestrator(max_batch_size=16, max_wait_ms=50.0)
        orc.register_model("scale", model, batchable=True)
        for i in range(8):
            orc.put_tensor(f"in{i}", np.full(4, float(i)))
        requests = [
            InferenceRequest("scale", (f"in{i}",), (f"out{i}",)) for i in range(8)
        ]
        # enqueue everything before the worker starts so one drain sees all
        for req in requests:
            orc._queue.put(req)
        orc.start()
        for req in requests:
            assert req.done.wait(timeout=5.0)
            assert req.error is None
        orc.stop()
        assert (8, 4) in calls  # one stacked forward, not 8 singles
        for i in range(8):
            assert np.allclose(orc.get_tensor(f"out{i}"), 2.0 * i)

    def test_incompatible_shapes_grouped_separately(self, rng):
        shapes_seen = []

        def model(x):
            shapes_seen.append(np.asarray(x).shape)
            return np.asarray(x) * -1.0

        orc = Orchestrator(max_batch_size=8, max_wait_ms=50.0)
        orc.register_model("neg", model, batchable=True)
        orc.put_tensor("a", np.ones(3))
        orc.put_tensor("b", np.ones(3))
        orc.put_tensor("c", np.ones(5))
        requests = [
            InferenceRequest("neg", (k,), (f"o_{k}",)) for k in ("a", "b", "c")
        ]
        for req in requests:
            orc._queue.put(req)
        orc.start()
        for req in requests:
            assert req.done.wait(timeout=5.0)
            assert req.error is None
        orc.stop()
        # the two (3,) inputs stack; the (5,) input runs alone
        assert (2, 3) in shapes_seen
        assert (5,) in shapes_seen

    def test_multi_key_inputs_stay_per_request(self, rng):
        shapes_seen = []

        def model(x):
            shapes_seen.append(np.asarray(x).shape)
            return np.asarray(x).sum(keepdims=True)

        orc = Orchestrator(max_batch_size=8, max_wait_ms=50.0)
        orc.register_model("sum", model, batchable=False)
        orc.put_tensor("p", np.ones(2))
        orc.put_tensor("q", np.ones(3))
        req = InferenceRequest("sum", ("p", "q"), ("out",))
        orc._queue.put(req)
        orc.start()
        assert req.done.wait(timeout=5.0)
        orc.stop()
        assert req.error is None
        assert shapes_seen == [(5,)]  # concatenated, per-request path
        assert np.allclose(orc.get_tensor("out"), 5.0)

    def test_non_batchable_model_served_per_request(self, rng):
        shapes_seen = []

        def model(x):
            shapes_seen.append(np.asarray(x).shape)
            return np.asarray(x) * 3.0

        orc = Orchestrator(max_batch_size=8, max_wait_ms=50.0)
        orc.register_model("m", model, batchable=False)
        for i in range(4):
            orc.put_tensor(f"i{i}", np.ones(2))
        requests = [InferenceRequest("m", (f"i{i}",), (f"o{i}",)) for i in range(4)]
        for req in requests:
            orc._queue.put(req)
        orc.start()
        for req in requests:
            assert req.done.wait(timeout=5.0)
            assert req.error is None
        orc.stop()
        assert all(shape == (2,) for shape in shapes_seen)
        assert len(shapes_seen) == 4

    def test_bad_request_does_not_poison_batchmates(self, rng):
        orc = Orchestrator(max_batch_size=8, max_wait_ms=50.0)
        pkg = make_package(rng)
        orc.register_model("m", pkg.predict, batchable=True)
        orc.put_tensor("good1", rng.standard_normal(6))
        orc.put_tensor("bad", rng.standard_normal(9))   # wrong feature count
        orc.put_tensor("good2", rng.standard_normal(6))
        requests = [
            InferenceRequest("m", (k,), (f"o_{k}",))
            for k in ("good1", "bad", "good2")
        ]
        for req in requests:
            orc._queue.put(req)
        orc.start()
        for req in requests:
            assert req.done.wait(timeout=5.0)
        orc.stop()
        assert requests[0].error is None
        assert isinstance(requests[1].error, ValueError)
        assert requests[2].error is None
        assert orc.tensor_exists("o_good1") and orc.tensor_exists("o_good2")

    def test_batching_is_opt_in_for_raw_callables(self):
        # regression (REVIEW high): a non-row-wise model that still returns
        # batch-shaped output (normalizes over the whole stack) must NOT be
        # batched by default — batching it silently corrupts per-request
        # results whenever two same-shape requests share a micro-batch
        def normalize(x):
            x = np.asarray(x)
            return x / np.linalg.norm(x)

        orc = Orchestrator(max_batch_size=8, max_wait_ms=50.0)
        orc.register_model("norm", normalize)  # default: per-request path
        orc.put_tensor("a", np.array([3.0, 4.0]))
        orc.put_tensor("b", np.array([30.0, 40.0]))
        requests = [
            InferenceRequest("norm", (k,), (f"o_{k}",)) for k in ("a", "b")
        ]
        for req in requests:
            orc._queue.put(req)
        orc.start()
        for req in requests:
            assert req.done.wait(timeout=5.0)
            assert req.error is None
        orc.stop()
        # each request normalized by its own norm, not the stacked norm
        assert np.allclose(orc.get_tensor("o_a"), [0.6, 0.8])
        assert np.allclose(orc.get_tensor("o_b"), [0.6, 0.8])

    def test_rowwise_scalar_outputs_batch_and_unpack(self, rng):
        # regression (REVIEW medium): a row-wise model returning one scalar
        # per row — predict((B, F)) -> (B,) — must scatter real 0-d
        # ndarrays, not np.float64 scalars that break get_tensor
        orc = Orchestrator(max_batch_size=8, max_wait_ms=50.0)
        orc.register_model(
            "rowsum", lambda x: np.asarray(x).sum(axis=-1), batchable=True
        )
        client = Client(orc)
        x = rng.standard_normal((6, 4))
        for i in range(6):
            orc.put_tensor(f"i{i}", x[i])
        with orc:
            outs = client.run_model_batch(
                "rowsum",
                [f"i{i}" for i in range(6)],
                [f"o{i}" for i in range(6)],
            )
        for i in range(6):
            assert np.allclose(outs[i], x[i].sum())

    def test_non_rowwise_batchable_model_falls_back(self, rng):
        # claims batchable but returns one row regardless of batch size:
        # the shape check must route every request to the per-request path
        def collapse(x):
            x = np.atleast_2d(np.asarray(x))
            return x.sum(axis=0)

        orc = Orchestrator(max_batch_size=8, max_wait_ms=50.0)
        orc.register_model("collapse", collapse, batchable=True)
        orc.put_tensor("u", np.full(3, 1.0))
        orc.put_tensor("v", np.full(3, 2.0))
        requests = [
            InferenceRequest("collapse", (k,), (f"o_{k}",)) for k in ("u", "v")
        ]
        for req in requests:
            orc._queue.put(req)
        orc.start()
        for req in requests:
            assert req.done.wait(timeout=5.0)
            assert req.error is None
        orc.stop()
        assert np.allclose(orc.get_tensor("o_u"), 1.0)
        assert np.allclose(orc.get_tensor("o_v"), 2.0)

    def test_worker_pool_serves_all_requests(self, rng):
        pkg = make_package(rng)
        orc = Orchestrator(max_batch_size=4, max_wait_ms=1.0, num_workers=4)
        client = Client(orc)
        client.set_model("m", pkg)
        x = rng.standard_normal((40, 6))
        with orc:
            futures = [
                client.run_model_async("m", x[i], f"o{i}") for i in range(40)
            ]
            outs = [f.result(timeout=10.0) for f in futures]
        for i in range(40):
            assert np.allclose(outs[i], pkg.predict(x[i]))

    def test_batch_telemetry_recorded(self, rng):
        registry = obs.get_registry()
        rows_before = registry.counter(
            "repro_orchestrator_batched_rows_total"
        ).total()
        pkg = make_package(rng)
        orc = Orchestrator(max_batch_size=16, max_wait_ms=100.0)
        client = Client(orc)
        client.set_model("m", pkg)
        x = rng.standard_normal((16, 6))
        with orc:
            futures = [
                client.run_model_async("m", x[i], f"o{i}") for i in range(16)
            ]
            for f in futures:
                f.result(timeout=10.0)
        assert registry.counter("repro_orchestrator_batched_rows_total").total() > rows_before
        assert registry.histogram("repro_orchestrator_batch_size").count() > 0
        assert registry.histogram("repro_orchestrator_batch_wait_seconds").count() > 0


class TestPlanGroupedBatching:
    """Non-batchable package models still batch through a resolved plan.

    ``batchable`` is opt-in because an arbitrary callable may mix rows —
    but a compiled plan is row-wise *by construction*, so once a version
    has a plan for a row shape, same-shape bursts vectorize through one
    plan execution instead of falling back to per-request serving.
    """

    def test_warm_plan_vectorizes_a_burst(self, rng):
        registry = obs.get_registry()
        pkg = make_package(rng)
        orc = Orchestrator(max_batch_size=16, max_wait_ms=50.0)
        # deliberately NOT batchable: only the plan legitimizes grouping
        orc.register_model("m", pkg.predict, package=pkg, batchable=False)
        client = Client(orc)
        x = rng.standard_normal((12, 6))
        with orc:
            warm = client.run_model("m", x[0], "warm").copy()  # builds the plan
            rows_before = registry.counter(
                "repro_orchestrator_batched_rows_total"
            ).total()
            futures = [
                client.run_model_async("m", x[i], f"o{i}") for i in range(12)
            ]
            outs = [f.result(timeout=10.0).copy() for f in futures]
            # the burst crossed the vectorized path, not 12 singles
            assert (
                registry.counter("repro_orchestrator_batched_rows_total").total()
                > rows_before
            )
            # bit-identity: the batched rows equal their single-request runs
            assert np.array_equal(outs[0], warm)
            refs = [
                client.run_model("m", x[i], f"r{i}").copy() for i in range(12)
            ]
        for got, ref in zip(outs, refs):
            assert np.array_equal(got, ref)

    def test_without_plans_non_batchable_stays_per_request(self, rng):
        registry = obs.get_registry()
        rows_before = registry.counter(
            "repro_orchestrator_batched_rows_total"
        ).total()
        pkg = make_package(rng)
        orc = Orchestrator(
            max_batch_size=16, max_wait_ms=50.0, compile_plans=False
        )
        orc.register_model("m", pkg.predict, package=pkg, batchable=False)
        client = Client(orc)
        x = rng.standard_normal((6, 6))
        with orc:
            futures = [
                client.run_model_async("m", x[i], f"o{i}") for i in range(6)
            ]
            outs = [f.result(timeout=10.0) for f in futures]
        for i in range(6):
            assert np.allclose(outs[i], pkg.predict(x[i]))
        assert (
            registry.counter("repro_orchestrator_batched_rows_total").total()
            == rows_before
        )


class TestBitIdentity:
    """Batched serving must be bit-identical to per-request serving."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("batch", [2, 7, 32])
    def test_property_batched_equals_per_request(self, seed, batch):
        rng = np.random.default_rng(seed)
        din = int(rng.integers(3, 12))
        hidden = tuple(int(h) for h in rng.integers(4, 24, size=rng.integers(1, 3)))
        pkg = make_package(rng, din=din, hidden=hidden)
        x = rng.standard_normal((batch + 1, din))

        per_request = Orchestrator(max_batch_size=1)
        batched = Orchestrator(max_batch_size=batch, max_wait_ms=100.0)
        c_per, c_bat = Client(per_request), Client(batched)
        c_per.set_model("m", pkg)
        c_bat.set_model("m", pkg)
        with per_request:
            ref = [
                c_per.run_model("m", x[i], f"r{i}").copy() for i in range(len(x))
            ]
        with batched:
            futures = [
                c_bat.run_model_async("m", x[i], f"b{i}") for i in range(len(x))
            ]
            got = [f.result(timeout=10.0).copy() for f in futures]
        for i in range(len(x)):
            assert np.array_equal(ref[i], got[i]), f"row {i} differs"

    def test_direct_run_model_matches_server_mode(self, rng):
        pkg = make_package(rng)
        x = rng.standard_normal(6)
        offline = Orchestrator()
        offline.register_model("m", pkg.predict)
        offline.put_tensor("in", x)
        offline.run_model("m", ("in",), ("out",))
        direct = offline.get_tensor("out").copy()

        served = Orchestrator(max_batch_size=32, max_wait_ms=10.0)
        client = Client(served)
        client.set_model("m", pkg)
        with served:
            out = client.run_model("m", x, "out")
        assert np.array_equal(direct, out)

    def test_float32_rows_batch_bit_identically(self, rng):
        pkg = make_package(rng)
        x = rng.standard_normal((9, 6)).astype(np.float32)
        per_request = Orchestrator(max_batch_size=1)
        batched = Orchestrator(max_batch_size=8, max_wait_ms=100.0)
        c_per, c_bat = Client(per_request), Client(batched)
        c_per.set_model("m", pkg)
        c_bat.set_model("m", pkg)
        with per_request:
            ref = [c_per.run_model("m", x[i], f"r{i}").copy() for i in range(9)]
        with batched:
            futures = [c_bat.run_model_async("m", x[i], f"b{i}") for i in range(9)]
            got = [f.result(timeout=10.0).copy() for f in futures]
        for a, b in zip(ref, got):
            assert np.array_equal(a, b)


class TestAsyncClient:
    def test_future_resolves_with_result(self, rng):
        pkg = make_package(rng)
        orc = Orchestrator(max_batch_size=4, max_wait_ms=1.0)
        client = Client(orc)
        client.set_model("m", pkg)
        x = rng.standard_normal(6)
        with orc:
            future = client.run_model_async("m", x, "out")
            assert isinstance(future, InferenceFuture)
            out = future.result(timeout=5.0)
            assert future.done()
            # repeated result() returns the cached value
            assert np.array_equal(out, future.result())
        # served forwards run batch-invariant (einsum), direct predict on
        # BLAS: equal to rounding, bit-equal only within the serving path
        assert np.allclose(out, pkg.predict(x))

    def test_future_raises_serving_error(self):
        orc = Orchestrator(max_batch_size=4, max_wait_ms=1.0)
        client = Client(orc)
        with orc:
            future = client.run_model_async("ghost", np.ones(3), "out")
            with pytest.raises(KeyError):
                future.result(timeout=5.0)
            # the error is cached too
            with pytest.raises(KeyError):
                future.result()

    def test_future_without_server_resolves_synchronously(self, rng):
        pkg = make_package(rng)
        orc = Orchestrator()
        client = Client(orc)
        client.set_model("m", pkg)
        x = rng.standard_normal(6)
        future = client.run_model_async("m", x, "out")
        assert future.done()
        assert np.allclose(future.result(), pkg.predict(x))

    def test_future_timeout(self, rng):
        stall = threading.Event()

        def slow(x):
            stall.wait(timeout=10.0)
            return np.asarray(x)

        orc = Orchestrator(max_batch_size=1)
        orc.register_model("slow", slow)
        client = Client(orc)
        with orc:
            future = client.run_model_async("slow", np.ones(2), "out")
            with pytest.raises(TimeoutError):
                future.result(timeout=0.05)
            stall.set()
            future.result(timeout=5.0)

    def test_result_timeout_honored_while_another_caller_waits(self):
        # regression (REVIEW low): one caller blocked inside result() must
        # not make a second caller's result(timeout) wait indefinitely
        release = threading.Event()

        def slow(x):
            release.wait(timeout=10.0)
            return np.asarray(x)

        orc = Orchestrator(max_batch_size=1)
        orc.register_model("slow", slow)
        client = Client(orc)
        try:
            with orc:
                future = client.run_model_async("slow", np.ones(2), "out")
                blocker = threading.Thread(
                    target=lambda: future.result(timeout=10.0), daemon=True
                )
                blocker.start()
                time.sleep(0.05)  # let the blocker enter result()
                start = time.monotonic()
                with pytest.raises(TimeoutError):
                    future.result(timeout=0.1)
                assert time.monotonic() - start < 5.0
                release.set()
                blocker.join(timeout=5.0)
                assert not blocker.is_alive()
        finally:
            release.set()

    def test_run_model_batch_timeout(self):
        release = threading.Event()
        orc = Orchestrator(max_batch_size=1)
        orc.register_model(
            "slow", lambda x: (release.wait(timeout=1.0), np.asarray(x))[1]
        )
        client = Client(orc)
        with orc:
            with pytest.raises(TimeoutError):
                client.run_model_batch("slow", [np.ones(2)], ["o"], timeout=0.05)
            release.set()

    def test_run_model_batch_orders_outputs(self, rng):
        pkg = make_package(rng)
        orc = Orchestrator(max_batch_size=8, max_wait_ms=5.0)
        client = Client(orc)
        client.set_model("m", pkg)
        x = rng.standard_normal((12, 6))
        with orc:
            outs = client.run_model_batch(
                "m", [x[i] for i in range(12)], [f"o{i}" for i in range(12)]
            )
        assert len(outs) == 12
        for i in range(12):
            assert np.allclose(outs[i], pkg.predict(x[i]))

    def test_run_model_batch_length_mismatch(self, rng):
        client = Client(Orchestrator())
        with pytest.raises(ValueError):
            client.run_model_batch("m", [np.ones(2)], ["a", "b"])

    def test_scratch_keys_unique_and_cleaned(self, rng):
        pkg = make_package(rng)
        orc = Orchestrator(max_batch_size=8, max_wait_ms=5.0)
        client = Client(orc)
        client.set_model("m", pkg)
        x = rng.standard_normal((6, 6))
        with orc:
            futures = [client.run_model_async("m", x[i], f"o{i}") for i in range(6)]
            # while in flight, every staged scratch key is distinct
            for f in futures:
                f.result(timeout=10.0)
        leftover = [k for k in orc._tensors if k.startswith("__scratch")]
        assert leftover == []

    def test_sync_run_model_cleans_scratch_on_error(self, rng):
        orc = Orchestrator()
        client = Client(orc)
        with pytest.raises(KeyError):
            client.run_model("ghost", np.ones(3), "out")
        assert not [k for k in orc._tensors if k.startswith("__scratch")]


class TestStoreDtypes:
    def test_float32_preserved(self):
        orc = Orchestrator()
        orc.put_tensor("k", np.ones((3, 3), dtype=np.float32))
        assert orc.get_tensor("k").dtype == np.float32

    def test_float64_preserved(self):
        orc = Orchestrator()
        orc.put_tensor("k", np.ones(3))
        assert orc.get_tensor("k").dtype == np.float64

    def test_int_coerced_to_float64(self):
        orc = Orchestrator()
        orc.put_tensor("k", np.arange(4))
        assert orc.get_tensor("k").dtype == np.float64

    def test_defensive_copy_kept_for_float32(self):
        orc = Orchestrator()
        t = np.ones(4, dtype=np.float32)
        orc.put_tensor("k", t)
        t[0] = 99.0
        assert orc.get_tensor("k")[0] == 1.0


class TestStopDiagnostics:
    def test_stuck_worker_warns_and_sets_gauge(self):
        release = threading.Event()

        def wedge(x):
            release.wait(timeout=30.0)
            return np.asarray(x)

        orc = Orchestrator(max_batch_size=1)
        orc.register_model("wedge", wedge)
        orc.put_tensor("in", np.ones(2))
        orc.start()
        orc.submit(InferenceRequest("wedge", ("in",), ("out",)))
        time.sleep(0.05)  # let the worker pick the request up
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            orc.stop(join_timeout=0.1)
        release.set()
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        gauge = obs.get_registry().gauge("repro_orchestrator_stuck_workers")
        assert gauge.value() >= 1
        # a clean stop afterwards resets the gauge
        orc2 = Orchestrator()
        orc2.start()
        orc2.stop()
        assert gauge.value() == 0

    def test_stop_abandons_queued_requests_in_batches(self):
        orc = Orchestrator(max_batch_size=8, max_wait_ms=1.0)
        orc.register_model("id", lambda x: x)
        orc.put_tensor("a", np.ones(2))
        orc.start()
        req = orc.submit(InferenceRequest("id", ("a",), ("b",)))
        assert req.done.wait(timeout=5.0)
        orc.stop()
        with pytest.raises(RuntimeError):
            orc.submit(InferenceRequest("id", ("a",), ("c",)))


class TestThroughputHelper:
    def test_measure_timeout_enforced(self, rng):
        # regression (REVIEW low): the advertised timeout must actually
        # bound the measurement instead of being discarded
        class WedgedPackage:
            def predict(self, x):
                time.sleep(0.3)
                return np.atleast_2d(np.asarray(x)) * 2.0

        with pytest.raises(TimeoutError):
            measure_serving_throughput(
                WedgedPackage(), rng.standard_normal((4, 3)), timeout=0.01
            )

    def test_measure_reports_all_requests(self, rng):
        pkg = make_package(rng)
        rows = rng.standard_normal((32, 6))
        result = measure_serving_throughput(
            pkg, rows, max_batch_size=8, max_wait_ms=1.0
        )
        assert result.requests == 32
        assert result.seconds > 0
        assert result.requests_per_sec > 0
        assert "req/s" in result.format()
