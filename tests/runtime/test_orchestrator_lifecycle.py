"""Orchestrator lifecycle: stop() drains pending work, telemetry reconciles,
and stored tensors cannot be aliased."""

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.runtime import Client, InferenceRequest, Orchestrator, OrchestratorStopped


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def _counter(name: str) -> float:
    metric = obs.get_registry().get(name)
    return metric.total() if metric is not None else 0.0


class TestStopDrainsQueue:
    def test_pending_requests_complete_with_error(self):
        orc = Orchestrator()
        release = threading.Event()

        def slow(x):
            release.wait(timeout=10.0)
            return x

        orc.register_model("slow", slow)
        orc.put_tensor("a", np.ones(2))
        orc.start()
        # first request occupies the worker; the rest stay queued
        requests = [
            orc.submit(InferenceRequest("slow", ("a",), (f"o{i}",)))
            for i in range(5)
        ]
        stopper = threading.Thread(target=orc.stop)
        stopper.start()
        time.sleep(0.05)
        release.set()
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        for request in requests:
            # no waiter hangs forever: every done event fires
            assert request.done.wait(timeout=5.0)
        errors = [r.error for r in requests]
        assert any(isinstance(e, OrchestratorStopped) for e in errors)

    def test_blocked_waiter_unblocks(self):
        orc = Orchestrator()
        hold = threading.Event()
        orc.register_model("hold", lambda x: (hold.wait(10.0), x)[1])
        orc.put_tensor("a", np.ones(1))
        orc.start()
        orc.submit(InferenceRequest("hold", ("a",), ("x",)))
        pending = orc.submit(InferenceRequest("hold", ("a",), ("y",)))

        unblocked = threading.Event()

        def waiter():
            pending.done.wait(timeout=10.0)
            unblocked.set()

        t = threading.Thread(target=waiter)
        t.start()
        hold.set()
        orc.stop()
        assert unblocked.wait(timeout=5.0)
        t.join(timeout=5.0)

    def test_double_stop_is_idempotent_and_restartable(self):
        orc = Orchestrator()
        orc.register_model("id", lambda x: x)
        orc.put_tensor("a", np.ones(2))
        orc.start()
        orc.stop()
        orc.stop()
        assert not orc.is_running
        # a stale None sentinel must not kill the next serving session
        orc.start()
        assert orc.is_running
        req = orc.submit(InferenceRequest("id", ("a",), ("b",)))
        assert req.done.wait(timeout=5.0)
        assert req.error is None
        orc.stop()

    def test_submit_after_stop_raises(self):
        orc = Orchestrator()
        orc.start()
        orc.stop()
        with pytest.raises(RuntimeError):
            orc.submit(InferenceRequest("m", ("a",), ("b",)))


class TestMetricsReconcile:
    def test_submitted_equals_served_plus_failed_under_concurrency(self):
        orc = Orchestrator()
        orc.register_model("double", lambda x: x * 2.0)
        # "broken" raises for some inputs -> failed counter
        orc.register_model("broken", lambda x: 1 / 0)
        n_producers, per_producer = 6, 25
        results: list[InferenceRequest] = []
        lock = threading.Lock()

        def producer(worker: int) -> None:
            rng = np.random.default_rng(worker)
            for i in range(per_producer):
                key = f"in_{worker}_{i}"
                orc.put_tensor(key, rng.standard_normal(8))
                model = "broken" if i % 5 == 0 else "double"
                req = orc.submit(
                    InferenceRequest(model, (key,), (f"out_{worker}_{i}",))
                )
                with lock:
                    results.append(req)
                if i % 7 == 0:
                    orc.delete_tensor(key)  # churn the store concurrently

        with orc:
            threads = [
                threading.Thread(target=producer, args=(w,))
                for w in range(n_producers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for req in results:
                assert req.done.wait(timeout=10.0)

        total = n_producers * per_producer
        assert len(results) == total
        submitted = _counter("repro_orchestrator_submitted_total")
        served = _counter("repro_orchestrator_served_total")
        failed = _counter("repro_orchestrator_failed_total")
        assert submitted == total
        assert served + failed == submitted
        # every completed-without-error request really has its output
        ok = sum(1 for r in results if r.error is None)
        assert served == ok

    def test_queue_depth_returns_to_zero(self):
        orc = Orchestrator()
        orc.register_model("id", lambda x: x)
        orc.put_tensor("a", np.ones(2))
        with orc:
            reqs = [
                orc.submit(InferenceRequest("id", ("a",), (f"o{i}",)))
                for i in range(10)
            ]
            for r in reqs:
                r.done.wait(timeout=5.0)
        gauge = obs.get_registry().get("repro_orchestrator_queue_depth")
        assert gauge.value() == 0

    def test_tensor_store_gauge_tracks_size(self):
        orc = Orchestrator()
        orc.put_tensor("a", np.ones(2))
        orc.put_tensor("b", np.ones(2))
        orc.delete_tensor("a")
        gauge = obs.get_registry().get("repro_orchestrator_tensor_store_size")
        assert gauge.value() == 1


class TestTensorAliasing:
    def test_get_tensor_result_is_read_only(self):
        orc = Orchestrator()
        orc.put_tensor("k", np.arange(4.0))
        view = orc.get_tensor("k")
        with pytest.raises(ValueError):
            view[0] = 99.0
        assert orc.get_tensor("k")[0] == 0.0

    def test_client_get_tensor_cannot_mutate_store(self):
        orc = Orchestrator()
        client = Client(orc)
        client.put_tensor("k", np.arange(3.0))
        got = client.get_tensor("k")
        with pytest.raises(ValueError):
            got += 1.0
        assert np.allclose(orc.get_tensor("k"), [0.0, 1.0, 2.0])

    def test_unpack_tensor_copy_is_writable(self):
        orc = Orchestrator()
        client = Client(orc)
        client.put_tensor("k", np.arange(3.0))
        out = client.unpack_tensor("k")
        out[0] = 42.0   # caller-owned copy
        assert orc.get_tensor("k")[0] == 0.0

    def test_put_tensor_still_copies_in(self):
        orc = Orchestrator()
        src = np.ones(3)
        orc.put_tensor("k", src)
        src[0] = 7.0
        assert orc.get_tensor("k")[0] == 1.0
