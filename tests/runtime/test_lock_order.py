"""Dynamic lock-order recording cross-validated against the static graph,
plus regressions for the races the CC analyzer caught in the serving stack."""

import os
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.obs.locks import LockOrderRecorder, TrackedCondition, instrument_object
from repro.runtime import InferenceRequest, Orchestrator
from repro.runtime.guard import GuardStats
from repro.runtime.orchestrator import _RequestQueue
from repro.static import cross_validate_lock_orders, lock_order_graph

PACKAGE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src", "repro"
)


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


@pytest.fixture(scope="module")
def static_graph():
    return lock_order_graph(PACKAGE_DIR)


class TestLockOrderCrossValidation:
    def test_recorded_serving_edges_subset_of_static_graph(self, static_graph):
        """Every lock nesting real traffic exercises must be a static edge."""
        recorder = LockOrderRecorder()
        orc = Orchestrator(max_batch_size=4, max_wait_ms=5.0, num_workers=2)
        instrument_object(orc, recorder=recorder)
        instrument_object(orc._queue, recorder=recorder)
        orc.register_model("double", lambda x: np.asarray(x) * 2.0)
        orc.start()
        try:
            requests = []
            for i in range(6):
                orc.put_tensor(f"in{i}", np.full(3, float(i)))
                requests.append(
                    InferenceRequest("double", (f"in{i}",), (f"out{i}",))
                )
            orc.submit(requests[0])
            orc.submit_many(requests[1:])
            for req in requests:
                assert req.done.wait(timeout=10.0)
                assert req.error is None
        finally:
            orc.stop()

        recorded = recorder.edges()
        assert recorded, "traffic should nest at least one lock pair"
        xval = cross_validate_lock_orders(static_graph, recorded)
        assert xval.agrees, xval.summary()
        # the submit path's nesting is the edge we specifically modeled
        assert ("Orchestrator._state_lock", "_RequestQueue._cond") in recorded

    def test_static_graph_is_acyclic(self, static_graph):
        assert static_graph.cycles() == []


class TestQsizeRegression:
    def test_qsize_acquires_the_condition(self):
        # regression: qsize() used to read len(self._items) bare; taking
        # the condition shows up as one held-histogram observation
        q = _RequestQueue()
        instrument_object(q, recorder=LockOrderRecorder())
        assert isinstance(q._cond, TrackedCondition)
        held = obs.get_registry().histogram(
            "repro_lock_held_seconds", labels=("lock",)
        )
        before = held.count(lock="_RequestQueue._cond")
        assert q.qsize() == 0
        assert held.count(lock="_RequestQueue._cond") == before + 1


class TestGetBatchTimeoutEdges:
    def test_spurious_wakeups_do_not_extend_the_deadline(self):
        # regression shape: the wait must recompute remaining time from
        # one fixed deadline, not restart max_wait per wakeup
        q = _RequestQueue()
        q.put(InferenceRequest("m", ("a",), ("b",)))
        result = {}

        def drain():
            start = time.monotonic()
            batch, waited = q.get_batch(max_items=8, max_wait=0.3)
            result["elapsed"] = time.monotonic() - start
            result["batch"] = batch
            result["waited"] = waited

        t = threading.Thread(target=drain)
        t.start()
        deadline = time.monotonic() + 2.0
        while not result and time.monotonic() < deadline:
            with q._cond:           # spurious wakeup: notify, no item
                q._cond.notify_all()
            time.sleep(0.02)
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert len(result["batch"]) == 1
        # ~15 spurious wakeups: a per-wakeup restart would take >= 2s
        assert result["elapsed"] < 1.0
        assert 0.0 < result["waited"] < 1.0

    def test_zero_wait_drains_without_blocking(self):
        q = _RequestQueue()
        for i in range(3):
            q.put(InferenceRequest("m", (f"a{i}",), (f"b{i}",)))
        start = time.monotonic()
        batch, waited = q.get_batch(max_items=8, max_wait=0.0)
        assert len(batch) == 3
        assert time.monotonic() - start < 0.1
        assert waited < 0.1

    def test_deep_queue_never_touches_the_clock(self):
        q = _RequestQueue()
        for i in range(8):
            q.put(InferenceRequest("m", (f"a{i}",), (f"b{i}",)))
        batch, waited = q.get_batch(max_items=4, max_wait=10.0)
        assert len(batch) == 4
        assert waited == 0.0

    def test_sentinel_mid_drain_is_pushed_back(self):
        q = _RequestQueue()
        req = InferenceRequest("m", ("a",), ("b",))
        q.put(req)
        q.put(None)
        batch, _ = q.get_batch(max_items=8, max_wait=0.0)
        assert batch == [req]
        # the sentinel is back at the head for the next worker
        assert q.get_batch(max_items=8, max_wait=0.0) == (None, 0.0)

    def test_one_sentinel_wakes_each_blocked_worker(self):
        q = _RequestQueue()
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(q.get_batch(4, 0.1))
            )
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)        # let all three block in wait()
        for _ in threads:
            q.put(None)
        for t in threads:
            t.join(timeout=5.0)
            assert not t.is_alive()
        assert results == [(None, 0.0)] * 3


class TestStartStopRegression:
    def test_blocking_start_survives_concurrent_stop(self):
        # regression: start(block=True) used to iterate self._workers
        # after dropping the state lock, racing stop()'s swap-to-empty
        orc = Orchestrator(num_workers=2)
        blocker = threading.Thread(target=orc.start, kwargs={"block": True})
        blocker.start()
        time.sleep(0.05)
        orc.stop()
        blocker.join(timeout=5.0)
        assert not blocker.is_alive()
        assert not orc.is_running


class TestGuardStatsRegression:
    def test_fallback_rate_never_tears(self):
        # regression: fallback_rate read both counters bare; sampling it
        # mid-record could pair a fresh numerator with a stale denominator
        stats = GuardStats()
        stop = threading.Event()
        samples = []

        def reader():
            while not stop.is_set():
                samples.append(stats.fallback_rate)

        t = threading.Thread(target=reader)
        t.start()
        for _ in range(2000):
            stats.record(fallback=True)
        stop.set()
        t.join(timeout=5.0)
        # every record is a fallback: a coherent snapshot is exactly 1.0
        # (or 0.0 before the first record) at every instant
        assert all(s in (0.0, 1.0) for s in samples)
        assert stats.fallback_rate == 1.0


class TestTracerResetRegression:
    def test_reset_swaps_epoch_and_spans_together(self):
        # regression: reset() cleared _finished under the lock but wrote
        # epoch outside it; both now move in one critical section
        tracer = obs.TELEMETRY.tracer
        with tracer.span("work"):
            pass
        assert tracer.finished_spans()
        old_epoch = tracer.epoch
        time.sleep(0.002)
        tracer.reset()
        assert tracer.finished_spans() == []
        assert tracer.epoch > old_epoch
