"""Admission control: bounded queues, backpressure, load shedding.

Uses deliberately tiny queue depths plus :class:`SleepyModel` to jam a
single worker, so the front end has to choose between waiting
(backpressure) and shedding (:class:`OverloadError`).
"""

import numpy as np
import pytest

from repro import obs
from repro.runtime import Client, Orchestrator, OverloadError

from . import procmodels


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def make_orc(**kwargs):
    kwargs.setdefault("num_processes", 1)
    kwargs.setdefault("max_queue_depth", 2)
    kwargs.setdefault("admission_timeout_ms", 30.0)
    return Orchestrator(**kwargs)


class TestLoadShedding:
    def test_overload_surfaces_through_future_result(self):
        orc = make_orc()
        orc.register_model("slow", procmodels.SleepyModel(0.4), batchable=True)
        try:
            orc.start()
            client = Client(orc)
            futures = [
                client.run_model_async("slow", np.ones(3), f"o{i}")
                for i in range(3)
            ]
            # depth 2 admits the first two; the third sheds after the
            # 30 ms admission wait
            with pytest.raises(OverloadError):
                futures[2].result(timeout=60)
            for future in futures[:2]:
                future.result(timeout=60)
            assert (
                obs.get_registry().get("repro_overload_total").total() >= 1
            )
        finally:
            orc.stop()

    def test_overload_surfaces_through_run_model_batch(self):
        orc = make_orc()
        orc.register_model("slow", procmodels.SleepyModel(0.4), batchable=True)
        try:
            orc.start()
            client = Client(orc)
            jam = [
                client.run_model_async("slow", np.ones(3), f"o{i}")
                for i in range(2)
            ]
            with pytest.raises(OverloadError):
                client.run_model_batch(
                    "slow", [np.ones(3), np.ones(3)], timeout=60
                )
            for future in jam:
                future.result(timeout=60)
        finally:
            orc.stop()

    def test_shed_request_does_not_occupy_the_queue(self):
        orc = make_orc()
        orc.register_model("slow", procmodels.SleepyModel(0.2), batchable=True)
        try:
            orc.start()
            client = Client(orc)
            jam = [
                client.run_model_async("slow", np.ones(3), f"o{i}")
                for i in range(2)
            ]
            shed = client.run_model_async("slow", np.ones(3), "shed")
            with pytest.raises(OverloadError):
                shed.result(timeout=60)
            for future in jam:
                future.result(timeout=60)
            # the shed request left no phantom depth behind: the queue
            # admits a fresh pair immediately
            outs = client.run_model_batch(
                "slow", [np.ones(3), np.ones(3)], timeout=60
            )
            assert len(outs) == 2
        finally:
            orc.stop()


class TestBackpressure:
    def test_admission_waits_for_the_queue_to_drain(self):
        # generous admission window: the third request must *wait* for a
        # slot instead of shedding
        orc = make_orc(admission_timeout_ms=5000.0)
        orc.register_model("slow", procmodels.SleepyModel(0.05), batchable=True)
        try:
            orc.start()
            client = Client(orc)
            futures = [
                client.run_model_async("slow", np.ones(3), f"o{i}")
                for i in range(5)
            ]
            for future in futures:
                np.testing.assert_array_equal(
                    np.ravel(future.result(timeout=60)),
                    procmodels.affine(np.ones(3)),
                )
            assert obs.get_registry().get("repro_overload_total").total() == 0
        finally:
            orc.stop()


class TestAdmissionTimePinning:
    def test_request_admitted_before_deploy_serves_its_pinned_version(self):
        orc = make_orc(admission_timeout_ms=5000.0)
        orc.register_model("m", procmodels.SleepyModel(0.3), batchable=True)
        v2 = orc.register_model(
            "m", procmodels.affine_x10, batchable=True, deploy=False
        )
        try:
            orc.start()
            client = Client(orc)
            x = np.arange(3, dtype=np.float64)
            pinned = client.run_model_async("m", x, "pinned")
            # hot-swap while the pinned request is still being served
            client.deploy_model("m", v2)
            fresh = client.run_model_async("m", x, "fresh")
            np.testing.assert_array_equal(
                np.ravel(pinned.result(timeout=60)), procmodels.affine(x)
            )
            np.testing.assert_array_equal(
                np.ravel(fresh.result(timeout=60)), procmodels.affine_x10(x)
            )
        finally:
            orc.stop()
