"""Canary deploy-policy: deterministic slicing, outcome windows, promotion.

Extends the versioned-serving contract of ``test_hot_swap.py``: admission
pins a version, so a request admitted to the canary finishes on the
canary even if the experiment ends mid-flight — in thread mode and in
process mode alike.
"""

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.runtime import CanaryStatus, Client, Orchestrator

from . import procmodels


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def tagged(value):
    def predict(x):
        return np.asarray(x) * 0.0 + value

    return predict


def two_version_orc(**kwargs):
    orc = Orchestrator(**kwargs)
    orc.register_model("m", tagged(1.0), batchable=True)
    orc.register_model("m", tagged(2.0), batchable=True, deploy=False)
    return orc


def served_versions(orc, n, din=3):
    """Serve ``n`` zero rows synchronously; return the admitted versions."""
    versions = []
    for i in range(n):
        orc.put_tensor("in", np.zeros(din))
        versions.append(orc.run_model("m", ("in",), ("out",)))
        # the result must come from the version the admission chose
        np.testing.assert_array_equal(
            orc.get_tensor("out"), np.full(din, float(versions[-1]))
        )
    return versions


class TestCanaryControls:
    def test_fraction_validated(self):
        orc = two_version_orc()
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                orc.canary("m", 2, bad)

    def test_unknown_version_rejected(self):
        orc = two_version_orc()
        with pytest.raises(ValueError):
            orc.canary("m", 9, 0.25)

    def test_active_version_cannot_canary_itself(self):
        orc = two_version_orc()
        with pytest.raises(ValueError):
            orc.canary("m", 1, 0.25)

    def test_status_none_without_canary(self):
        orc = two_version_orc()
        assert orc.canary_status("m") is None

    def test_deploy_and_rollback_clear_the_canary(self):
        orc = two_version_orc()
        orc.canary("m", 2, 0.25)
        assert orc.canary_status("m") is not None
        orc.deploy("m", 2)  # manual deploy wins over the experiment
        assert orc.canary_status("m") is None
        orc.deploy("m", 1)
        orc.canary("m", 2, 0.25)
        orc.rollback("m")
        assert orc.canary_status("m") is None


class TestDeterministicSlice:
    def test_slice_is_deterministic_and_bounded(self):
        orc1 = two_version_orc()
        orc1.canary("m", 2, 0.25)
        seq1 = served_versions(orc1, 200)
        orc2 = two_version_orc()
        orc2.canary("m", 2, 0.25)
        seq2 = served_versions(orc2, 200)
        # same model name + request ordinal => same slice, every run
        assert seq1 == seq2
        share = seq1.count(2) / len(seq1)
        assert seq1.count(2) > 0 and seq1.count(1) > 0
        # a 25% request slice stays a bounded minority of traffic
        assert 0.10 < share <= 0.40

    def test_full_fraction_routes_everything_to_candidate(self):
        orc = two_version_orc()
        orc.canary("m", 2, 1.0)
        assert set(served_versions(orc, 10)) == {2}

    def test_requests_counted_by_role(self):
        orc = two_version_orc()
        orc.canary("m", 2, 0.25)
        served_versions(orc, 40)
        rendered = obs.get_registry().to_prometheus()
        assert 'repro_canary_requests_total{model="m",role="canary"}' in rendered
        assert 'repro_canary_requests_total{model="m",role="incumbent"}' in rendered


class TestOutcomeWindows:
    def test_record_outcome_feeds_status(self):
        orc = two_version_orc()
        orc.canary("m", 2, 0.25)
        for _ in range(8):
            orc.record_outcome("m", 1, True)
        orc.record_outcome("m", 2, True)
        orc.record_outcome("m", 2, False)
        status = orc.canary_status("m")
        assert isinstance(status, CanaryStatus)
        assert status.incumbent == 1 and status.candidate == 2
        assert status.incumbent_count == 8
        assert status.incumbent_hit_rate == 1.0
        assert status.candidate_count == 2
        assert status.candidate_hit_rate == 0.5

    def test_window_is_bounded(self):
        orc = Orchestrator(outcome_window=4)
        orc.register_model("m", tagged(1.0))
        orc.register_model("m", tagged(2.0), deploy=False)
        orc.canary("m", 2, 0.5)
        for _ in range(10):
            orc.record_outcome("m", 2, False)
        for _ in range(4):
            orc.record_outcome("m", 2, True)
        status = orc.canary_status("m")
        # only the newest `outcome_window` outcomes survive
        assert status.candidate_count == 4
        assert status.candidate_hit_rate == 1.0

    def test_promote_activates_candidate(self):
        orc = two_version_orc()
        orc.canary("m", 2, 0.25)
        assert orc.end_canary("m", promote=True) == 2
        assert orc.active_version("m") == 2
        assert orc.canary_status("m") is None
        assert set(served_versions(orc, 5)) == {2}
        rendered = obs.get_registry().to_prometheus()
        assert 'repro_canary_promotions_total{model="m"} 1' in rendered

    def test_abort_keeps_incumbent(self):
        orc = two_version_orc()
        orc.canary("m", 2, 0.25)
        assert orc.end_canary("m", promote=False) == 1
        assert orc.active_version("m") == 1
        assert set(served_versions(orc, 5)) == {1}
        rendered = obs.get_registry().to_prometheus()
        assert 'repro_canary_rollbacks_total{model="m"} 1' in rendered


class TestCanaryUnderThreadedTraffic:
    """Live pool: admitted requests finish on their admitted version."""

    def _burst(self, client, n, din=3):
        return [
            client.run_model_async("m", np.zeros(din), f"out-{i}")
            for i in range(n)
        ]

    def _assert_pinned(self, futures, din=3):
        for future in futures:
            result = np.asarray(future.result(timeout=30))
            assert future.version in (1, 2)
            np.testing.assert_array_equal(
                result, np.full(din, float(future.version))
            )

    def test_promote_mid_burst(self):
        gate = threading.Event()

        def slow_tagged(value):
            def predict(x):
                gate.wait(5.0)
                return np.asarray(x) * 0.0 + value

            return predict

        orc = Orchestrator(max_batch_size=4, max_wait_ms=1.0)
        orc.register_model("m", slow_tagged(1.0), batchable=True)
        orc.register_model("m", slow_tagged(2.0), batchable=True, deploy=False)
        orc.canary("m", 2, 0.25)
        orc.start()
        try:
            client = Client(orc)
            in_flight = self._burst(client, 24)
            orc.end_canary("m", promote=True)  # decision lands mid-burst
            gate.set()
            # in-flight requests keep their admitted version...
            self._assert_pinned(in_flight)
            assert {f.version for f in in_flight} == {1, 2}
            # ...while everything admitted afterwards serves the promoted one
            after = self._burst(client, 8)
            self._assert_pinned(after)
            assert {f.version for f in after} == {2}
        finally:
            gate.set()
            orc.stop()

    def test_rollback_mid_burst(self):
        gate = threading.Event()

        def slow_tagged(value):
            def predict(x):
                gate.wait(5.0)
                return np.asarray(x) * 0.0 + value

            return predict

        orc = Orchestrator(max_batch_size=4, max_wait_ms=1.0)
        orc.register_model("m", slow_tagged(1.0), batchable=True)
        orc.register_model("m", slow_tagged(2.0), batchable=True, deploy=False)
        orc.canary("m", 2, 0.5)
        orc.start()
        try:
            client = Client(orc)
            in_flight = self._burst(client, 24)
            orc.end_canary("m", promote=False)
            gate.set()
            self._assert_pinned(in_flight)
            assert {f.version for f in in_flight} == {1, 2}
            after = self._burst(client, 8)
            self._assert_pinned(after)
            assert {f.version for f in after} == {1}
        finally:
            gate.set()
            orc.stop()


class TestCanaryProcessMode:
    """The slice crosses the process boundary: same contract, 2 workers."""

    def test_slice_and_promote_under_process_traffic(self):
        orc = Orchestrator(num_processes=2)
        orc.register_model("m", procmodels.Tag(1.0), batchable=True)
        orc.register_model("m", procmodels.Tag(2.0), batchable=True, deploy=False)
        orc.canary("m", 2, 0.25)
        orc.start()
        try:
            client = Client(orc)
            futures = [
                client.run_model_async("m", np.zeros(4), f"out-{i}")
                for i in range(40)
            ]
            versions = []
            for future in futures:
                result = np.ravel(future.result(timeout=60))
                assert future.version in (1, 2)
                assert result[0] == float(future.version)
                versions.append(future.version)
            # zero dropped, both roles served, candidate a bounded minority
            assert len(versions) == 40
            assert set(versions) == {1, 2}
            assert versions.count(2) / len(versions) <= 0.45
            orc.end_canary("m", promote=True)
            after = [
                client.run_model_async("m", np.zeros(4), f"post-{i}")
                for i in range(6)
            ]
            for future in after:
                assert np.ravel(future.result(timeout=60))[0] == 2.0
                assert future.version == 2
        finally:
            orc.stop()

    def test_rollback_under_process_traffic(self):
        orc = Orchestrator(num_processes=2)
        orc.register_model("m", procmodels.Tag(1.0), batchable=True)
        orc.register_model("m", procmodels.Tag(2.0), batchable=True, deploy=False)
        orc.canary("m", 2, 0.5)
        orc.start()
        try:
            client = Client(orc)
            futures = [
                client.run_model_async("m", np.zeros(4), f"out-{i}")
                for i in range(24)
            ]
            orc.end_canary("m", promote=False)  # mid-burst
            for future in futures:
                result = np.ravel(future.result(timeout=60))
                assert result[0] == float(future.version)
            after = client.run_model_async("m", np.zeros(4), "post")
            assert np.ravel(after.result(timeout=60))[0] == 1.0
        finally:
            orc.stop()


class TestClientWrappers:
    def test_client_canary_helpers(self):
        orc = two_version_orc()
        client = Client(orc)
        client.canary_model("m", 2, 0.25)
        assert orc.canary_status("m") is not None
        assert client.promote_canary("m") == 2
        orc.deploy("m", 1)
        client.canary_model("m", 2, 0.25)
        assert client.abort_canary("m") == 1
