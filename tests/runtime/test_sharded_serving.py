"""Process-mode serving: sharded workers + shared-memory transport.

Every test spins up real spawned worker processes, so the suite keeps
the pool count small (2) and reuses one orchestrator per test.  The
contract under test: process mode is observably identical to thread
mode — same client API, same results (bit-identical for
``batch_invariant`` packages), same metric names — while requests cross
process boundaries through the shm tensor store.
"""

import glob

import numpy as np
import pytest

from repro import obs
from repro.nn.tensor import batch_invariant
from repro.runtime import Client, Orchestrator, UnknownModelError

from ..compile.test_conv_plans import cnn_package, make_csr, sparse_ae_package
from ..compile.test_plan import make_package
from . import procmodels


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def shm_entries():
    return glob.glob("/dev/shm/repro_*")


@pytest.fixture
def orc():
    orchestrator = Orchestrator(num_processes=2)
    yield orchestrator
    orchestrator.stop()
    assert shm_entries() == []  # the leak gate: shutdown owns every segment


class TestProcessServing:
    def test_mixed_model_traffic_round_trip(self, orc, rng):
        orc.register_model("aff", procmodels.affine, batchable=True)
        orc.register_model("neg", procmodels.negate, batchable=True)
        orc.start()
        client = Client(orc)
        inputs = [rng.standard_normal(5) for _ in range(12)]
        names = ["aff" if i % 2 == 0 else "neg" for i in range(12)]
        outs = client.run_model_batch(names, inputs, timeout=60)
        assert len(outs) == 12
        for name, x, got in zip(names, inputs, outs):
            want = getattr(procmodels, "affine" if name == "aff" else "negate")(x)
            np.testing.assert_array_equal(np.ravel(got), np.ravel(want))

    def test_single_request_api_works_across_processes(self, orc, rng):
        orc.register_model("aff", procmodels.affine, batchable=True)
        orc.start()
        client = Client(orc)
        x = rng.standard_normal(4)
        future = client.run_model_async("aff", x, "out")
        np.testing.assert_array_equal(
            np.ravel(future.result(timeout=60)), procmodels.affine(x)
        )
        # store-keyed requests cross the boundary too
        orc.put_tensor("staged", x)
        got = client.run_model("aff", ("staged",), ("y",))
        np.testing.assert_array_equal(np.ravel(got), procmodels.affine(x))

    def test_worker_error_propagates_with_type(self, orc):
        orc.register_model("bad", procmodels.FailingModel(), batchable=True)
        orc.start()
        client = Client(orc)
        future = client.run_model_async("bad", np.ones(3), "out")
        with pytest.raises(ValueError, match="synthetic failure"):
            future.result(timeout=60)

    def test_unknown_model_rejected_at_the_front_end(self, orc):
        orc.register_model("aff", procmodels.affine, batchable=True)
        orc.start()
        client = Client(orc)
        with pytest.raises(UnknownModelError):
            client.run_model_batch("nope", [np.ones(3)], timeout=60)

    def test_deploy_and_rollback_flip_serving_version(self, orc):
        client = Client(orc)
        orc.register_model("aff", procmodels.affine, batchable=True)
        v2 = orc.register_model(
            "aff", procmodels.affine_x10, batchable=True, deploy=False
        )
        orc.start()
        x = np.arange(4, dtype=np.float64)
        base = procmodels.affine(x)

        (got,) = client.run_model_batch("aff", [x], timeout=60)
        np.testing.assert_array_equal(np.ravel(got), base)
        client.deploy_model("aff", v2)
        (got,) = client.run_model_batch("aff", [x], timeout=60)
        np.testing.assert_array_equal(np.ravel(got), base * 10.0)
        client.rollback_model("aff")
        (got,) = client.run_model_batch("aff", [x], timeout=60)
        np.testing.assert_array_equal(np.ravel(got), base)

    def test_pinned_version_served_while_another_is_active(self, orc):
        orc.register_model("aff", procmodels.affine, batchable=True)
        orc.register_model("aff", procmodels.affine_x10, batchable=True)
        orc.start()
        x = np.arange(4, dtype=np.float64)
        got = orc.run_rows("aff", x[None, :], version=1, timeout=60)
        np.testing.assert_array_equal(np.ravel(got), procmodels.affine(x))
        got = orc.run_rows("aff", x[None, :], timeout=60)
        np.testing.assert_array_equal(
            np.ravel(got), procmodels.affine_x10(x)
        )

    def test_run_rows_vectorizes_a_stacked_batch(self, orc, rng):
        orc.register_model("aff", procmodels.affine, batchable=True)
        orc.start()
        stacked = rng.standard_normal((16, 5))
        got = orc.run_rows("aff", stacked, timeout=60)
        np.testing.assert_array_equal(np.ravel(got), procmodels.affine(stacked))


class TestSparseAndCnnTraffic:
    def test_csr_batch_served_across_processes(self, orc, rng):
        # the CSR batch rides the request pipe as pickled pattern arrays
        # (no shm segment) and serves through a pattern-keyed plan
        package = sparse_ae_package(rng, 16, 5, 3)
        x = make_csr(rng, 6, 16, empty_rows=(1,))
        client = Client(orc)
        client.set_model("m", package)
        orc.start()
        client.put_tensor("in", x)
        got = client.run_model("m", "in", "out")
        with batch_invariant():
            want = package.predict(x)
        np.testing.assert_array_equal(got, want)

    def test_cnn_package_bit_identical_across_processes(self, orc, rng):
        from repro.nn.cnn import CNNTopology

        topology = CNNTopology(channels=(4, 3), kernel_sizes=(3, 5), pools=(2, -2))
        package = cnn_package(rng, 8, 2, topology)
        client = Client(orc)
        client.set_model("m", package)
        orc.start()
        rows = [rng.standard_normal(8) for _ in range(12)]
        outs = client.run_model_batch("m", rows, timeout=120)
        with batch_invariant():
            expected = package.predict(np.stack(rows))
        for got, want in zip(outs, expected):
            np.testing.assert_array_equal(np.ravel(got), np.ravel(want))


class TestCrossModeIdentity:
    def test_process_mode_bit_identical_to_thread_mode(self, rng):
        package = make_package(rng, hidden=(16, 8), activation="tanh")
        rows = [rng.standard_normal(6) for _ in range(24)]
        results = {}
        for mode, kwargs in {
            "thread": {"num_workers": 2},
            "process": {"num_processes": 2},
        }.items():
            orchestrator = Orchestrator(**kwargs)
            client = Client(orchestrator)
            client.set_model("m", package)
            try:
                orchestrator.start()
                results[mode] = client.run_model_batch("m", rows, timeout=120)
            finally:
                orchestrator.stop()
        with batch_invariant():
            expected = package.predict(np.stack(rows))
        for thread_out, process_out, want in zip(
            results["thread"], results["process"], expected
        ):
            got_t = np.ravel(np.asarray(thread_out))
            got_p = np.ravel(np.asarray(process_out))
            assert got_t.tobytes() == got_p.tobytes()
            np.testing.assert_array_equal(got_p, np.ravel(want))


class TestMergedTelemetry:
    def test_worker_metrics_land_in_front_end_registry(self, orc, rng):
        orc.register_model("aff", procmodels.affine, batchable=True)
        orc.start()
        client = Client(orc)
        inputs = [rng.standard_normal(4) for _ in range(10)]
        client.run_model_batch("aff", inputs, timeout=60)
        orc.stop()  # final worker deltas flush in the farewell message
        registry = obs.get_registry()
        served = registry.get("repro_orchestrator_served_total")
        assert served is not None and served.total() >= 10
        latency = registry.get("repro_orchestrator_inference_seconds")
        assert latency is not None and latency.count(model="aff") >= 1
        # the fleet gauges belong to the front end and exist alongside
        assert registry.get("repro_shard_queue_depth") is not None
        assert registry.get("repro_shm_segments") is not None

    def test_worker_failures_count_once(self, orc):
        orc.register_model("bad", procmodels.FailingModel(), batchable=True)
        orc.start()
        client = Client(orc)
        future = client.run_model_async("bad", np.ones(3), "out")
        with pytest.raises(ValueError):
            future.result(timeout=60)
        orc.stop()
        failed = obs.get_registry().get("repro_orchestrator_failed_total")
        assert failed is not None and failed.total() == 1
