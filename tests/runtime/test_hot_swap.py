"""Versioned serving: deploy/rollback, admission pinning, UnknownModelError."""

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.runtime import (
    Client,
    InferenceRequest,
    Orchestrator,
    UnknownModelError,
)


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def tagged(value):
    """Row-wise model whose every output element is the version tag."""

    def predict(x):
        return np.asarray(x) * 0.0 + value

    return predict


class TestVersionedRegistry:
    def test_register_returns_increasing_versions(self):
        orc = Orchestrator()
        assert orc.register_model("m", tagged(1.0)) == 1
        assert orc.register_model("m", tagged(2.0)) == 2
        assert orc.model_versions("m") == [1, 2]
        assert orc.active_version("m") == 2

    def test_deploy_false_stages_without_serving(self):
        orc = Orchestrator()
        orc.register_model("m", tagged(1.0))
        v2 = orc.register_model("m", tagged(2.0), deploy=False)
        assert orc.active_version("m") == 1
        orc.put_tensor("in", np.zeros(3))
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), np.ones(3))
        orc.deploy("m", v2)
        assert orc.active_version("m") == v2
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), np.full(3, 2.0))

    def test_run_model_can_pin_a_version(self):
        orc = Orchestrator()
        orc.register_model("m", tagged(1.0))
        orc.register_model("m", tagged(2.0))
        orc.put_tensor("in", np.zeros(2))
        orc.run_model("m", ("in",), ("out",), version=1)
        np.testing.assert_array_equal(orc.get_tensor("out"), np.ones(2))
        with pytest.raises(ValueError, match="no version 9"):
            orc.run_model("m", ("in",), ("out",), version=9)

    def test_deploy_unknown_version_rejected(self):
        orc = Orchestrator()
        orc.register_model("m", tagged(1.0))
        with pytest.raises(ValueError, match="no version 5"):
            orc.deploy("m", 5)
        with pytest.raises(UnknownModelError):
            orc.deploy("ghost", 1)

    def test_rollback_toggles_between_last_two(self):
        orc = Orchestrator()
        orc.register_model("m", tagged(1.0))
        orc.register_model("m", tagged(2.0))
        assert orc.rollback("m") == 1
        assert orc.active_version("m") == 1
        assert orc.rollback("m") == 2  # a second rollback undoes the first

    def test_rollback_without_history_rejected(self):
        orc = Orchestrator()
        orc.register_model("m", tagged(1.0))
        with pytest.raises(ValueError, match="no previous version"):
            orc.rollback("m")

    def test_invalid_registrations_rejected(self):
        orc = Orchestrator()
        with pytest.raises(TypeError):
            orc.register_model("m", "not callable")
        with pytest.raises(ValueError, match="start at 1"):
            orc.register_model("m", tagged(1.0), version=0)


class TestUnknownModelError:
    def test_direct_run_model(self):
        orc = Orchestrator()
        orc.register_model("present", tagged(1.0))
        orc.put_tensor("in", np.zeros(2))
        with pytest.raises(UnknownModelError) as excinfo:
            orc.run_model("ghost", ("in",), ("out",))
        assert excinfo.value.model_name == "ghost"
        assert excinfo.value.registered == ("present",)
        assert "present" in str(excinfo.value)
        # still a KeyError for pre-existing handlers
        with pytest.raises(KeyError):
            orc.run_model("ghost", ("in",), ("out",))

    def test_empty_registry_message(self):
        orc = Orchestrator()
        orc.put_tensor("in", np.zeros(2))
        with pytest.raises(UnknownModelError, match="no models are registered"):
            orc.run_model("ghost", ("in",), ("out",))

    def test_surfaces_through_future_result(self):
        orc = Orchestrator()
        client = Client(orc)
        with orc:
            future = client.run_model_async("ghost", np.zeros(3), "out")
            with pytest.raises(UnknownModelError, match="ghost"):
                future.result(timeout=5.0)

    def test_surfaces_through_run_model_batch(self):
        orc = Orchestrator()
        client = Client(orc)
        with orc:
            with pytest.raises(UnknownModelError, match="ghost"):
                client.run_model_batch(
                    "ghost", [np.zeros(3)] * 4, [f"o{i}" for i in range(4)],
                    timeout=5.0,
                )

    def test_surfaces_without_serving_pool(self):
        orc = Orchestrator()
        client = Client(orc)
        future = client.run_model_async("ghost", np.zeros(3), "out")
        with pytest.raises(UnknownModelError):
            future.result()


class TestAdmissionPinning:
    def test_request_admitted_before_deploy_serves_old_version(self):
        """A deploy between admission and serving must not change which
        weights answer the request."""
        started, release = threading.Event(), threading.Event()

        def v1(x):
            started.set()
            assert release.wait(5.0)
            return np.asarray(x) * 0.0 + 1.0

        orc = Orchestrator(max_batch_size=1, max_wait_ms=0.0, num_workers=1)
        orc.register_model("m", v1)
        orc.put_tensor("in", np.zeros(2))
        with orc:
            a = orc.submit(InferenceRequest("m", ("in",), ("out_a",)))
            assert started.wait(5.0)  # worker is inside v1's forward
            v2 = orc.register_model("m", tagged(2.0), deploy=False)
            orc.deploy("m", v2)
            b = orc.submit(InferenceRequest("m", ("in",), ("out_b",)))
            release.set()
            assert a.done.wait(5.0) and b.done.wait(5.0)
            assert a.error is None and b.error is None
            np.testing.assert_array_equal(orc.get_tensor("out_a"), np.ones(2))
            np.testing.assert_array_equal(
                orc.get_tensor("out_b"), np.full(2, 2.0)
            )

    def test_hot_swap_under_traffic(self):
        """Deploy v2 while run_model_batch traffic is in flight: nothing is
        lost or failed, and every response is attributable to exactly one
        version (all elements carry a single version's tag)."""
        orc = Orchestrator(max_batch_size=8, max_wait_ms=1.0, num_workers=2)
        client = Client(orc)
        v1 = orc.register_model("m", tagged(1.0), batchable=True)
        v2 = orc.register_model("m", tagged(2.0), batchable=True, deploy=False)
        outputs: list[np.ndarray] = []
        errors: list[Exception] = []
        lock = threading.Lock()
        stop = threading.Event()
        counter = iter(range(10**9))

        def traffic(tid):
            while not stop.is_set():
                i = next(counter)
                outs = [f"t{tid}_{i}_{j}" for j in range(8)]
                try:
                    got = client.run_model_batch(
                        "m", [np.full(4, 0.5)] * 8, outs, timeout=10.0
                    )
                except Exception as exc:  # noqa: BLE001 - asserted empty below
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    outputs.extend(got)

        threads = [
            threading.Thread(target=traffic, args=(t,)) for t in range(3)
        ]
        with orc:
            for t in threads:
                t.start()
            time.sleep(0.10)
            assert orc.deploy("m", v2) == v2
            time.sleep(0.10)
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
        assert not errors
        assert outputs, "traffic threads never completed a batch"
        tags = set()
        for row in outputs:
            row_tags = set(np.unique(row))
            assert len(row_tags) == 1, "one response mixed two versions"
            tags.add(row_tags.pop())
        assert tags <= {1.0, 2.0}
        assert 2.0 in tags, "no traffic observed the deployed version"
        assert orc.active_version("m") == v2
        assert v1 == 1  # admission-time pinning gave v1 its own tag space

    def test_swap_metrics_reflect_deploys(self):
        registry = obs.get_registry()
        orc = Orchestrator()
        orc.register_model("m", tagged(1.0))
        gauge = registry.get("repro_registry_active_version")
        assert gauge.value(model="m") == 1
        orc.register_model("m", tagged(2.0))  # auto-deploy = swap
        assert gauge.value(model="m") == 2
        assert registry.get("repro_registry_swaps_total").value(model="m") == 1
        orc.rollback("m")
        assert gauge.value(model="m") == 1
        assert (
            registry.get("repro_registry_rollbacks_total").value(model="m") == 1
        )
        # re-deploying the already-active version is not a swap
        orc.deploy("m", 1)
        assert registry.get("repro_registry_swaps_total").value(model="m") == 1


class TestClientVersioning:
    def test_set_model_versions_and_deploy(self, rng):
        from tests.runtime.test_batching import make_package

        package_a = make_package(rng)
        package_b = make_package(np.random.default_rng(999))
        orc = Orchestrator()
        client = Client(orc)
        v1 = client.set_model("s", package_a)
        v2 = client.set_model("s", package_b, deploy=False)
        assert (v1, v2) == (1, 2)
        assert orc.active_version("s") == 1
        x = rng.standard_normal(package_a.input_dim)
        with orc:
            before = client.run_model("s", x, "out1")
            np.testing.assert_allclose(before, package_a.predict(x), rtol=1e-12)
            assert client.deploy_model("s", v2) == 2
            after = client.run_model("s", x, "out2")
            np.testing.assert_allclose(after, package_b.predict(x), rtol=1e-12)
            assert client.rollback_model("s") == 1
            back = client.run_model("s", x, "out3")
            np.testing.assert_allclose(back, package_a.predict(x), rtol=1e-12)

    def test_set_model_from_registry_uses_registry_version(self, rng, tmp_path):
        from repro.registry import ModelRegistry
        from tests.runtime.test_batching import make_package

        package = make_package(rng)
        registry = ModelRegistry(tmp_path / "registry")
        package.publish(registry, "s")
        package.publish(registry, "s")
        orc = Orchestrator()
        client = Client(orc)
        loaded = client.set_model_from_registry("s", registry)
        assert orc.active_version("s") == 2  # matches the registry version
        x = rng.standard_normal(package.input_dim)
        np.testing.assert_array_equal(loaded.predict(x), package.predict(x))
