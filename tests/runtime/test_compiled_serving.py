"""Compiled plans in the serving path: identity, staleness, fallback.

The orchestrator must be allowed to substitute a :class:`CompiledPlan`
for any package forward without observable effect (other than speed):
bit-identical outputs under ``batch_invariant``, correct plan selection
across deploy/rollback, interpreted fallback for anything untraceable,
and zero rebuilds when a warm on-disk cache is present.
"""

import numpy as np
import pytest

from repro import obs
from repro.nn.tensor import batch_invariant
from repro.registry.store import ModelRegistry
from repro.runtime import Client, Orchestrator

from ..compile.test_conv_plans import cnn_package, make_csr, sparse_ae_package
from ..compile.test_plan import make_package


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def reference(package, x):
    with batch_invariant():
        return package.predict(x)


class TestCompiledIdentity:
    def test_direct_run_model_is_bit_identical(self, rng):
        package = make_package(rng)
        orc = Orchestrator()
        Client(orc).set_model("m", package)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(package, x))
        assert len(orc._plans) == 1  # the plan actually served it

    def test_pooled_micro_batches_are_bit_identical(self, rng):
        package = make_package(rng, activation="tanh", hidden=(16, 8))
        orc = Orchestrator(max_batch_size=16, num_workers=2)
        client = Client(orc)
        client.set_model("m", package)
        rows = rng.standard_normal((48, 6))
        with orc:
            outs = client.run_model_batch(
                "m", list(rows), [f"o{i}" for i in range(48)]
            )
        expected = reference(package, rows)
        for got, want in zip(outs, expected):
            np.testing.assert_array_equal(got, want)

    def test_compiled_and_interpreted_orchestrators_agree(self, rng):
        package = make_package(rng, residual=True, hidden=(8, 8))
        x = rng.standard_normal((5, 6))
        results = []
        for compile_plans in (True, False):
            orc = Orchestrator(compile_plans=compile_plans)
            Client(orc).set_model("m", package)
            orc.put_tensor("in", x)
            orc.run_model("m", ("in",), ("out",))
            results.append(orc.get_tensor("out"))
        np.testing.assert_array_equal(results[0], results[1])

    def test_no_compile_builds_no_plans(self, rng):
        package = make_package(rng)
        orc = Orchestrator(compile_plans=False)
        Client(orc).set_model("m", package)
        orc.put_tensor("in", rng.standard_normal(6))
        orc.run_model("m", ("in",), ("out",))
        assert orc._plans == {}


class TestPlanStaleness:
    def test_deploy_switches_to_the_new_versions_plan(self, rng):
        v1_pkg = make_package(rng)
        v2_pkg = make_package(np.random.default_rng(7))
        orc = Orchestrator()
        client = Client(orc)
        client.set_model("m", v1_pkg)
        v2 = client.set_model("m", v2_pkg, deploy=False)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)

        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(v1_pkg, x))
        client.deploy_model("m", v2)
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(v2_pkg, x))
        client.rollback_model("m")
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(v1_pkg, x))
        # version is part of the plan map key: both plans coexist, neither
        # is ever served stale
        assert len(orc._plans) == 2

    def test_pinned_version_uses_its_own_plan(self, rng):
        v1_pkg = make_package(rng)
        v2_pkg = make_package(np.random.default_rng(7))
        orc = Orchestrator()
        client = Client(orc)
        client.set_model("m", v1_pkg)
        client.set_model("m", v2_pkg)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)
        orc.run_model("m", ("in",), ("out",), version=1)
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(v1_pkg, x))


class TestFallback:
    def test_raw_callable_serves_interpreted(self, rng):
        orc = Orchestrator()
        orc.register_model("raw", lambda x: np.asarray(x) * 3.0)
        orc.put_tensor("in", np.ones(4))
        orc.run_model("raw", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), np.full(4, 3.0))
        assert orc._plans == {}  # no package, not even a sentinel entry

    def test_untraceable_package_falls_back_without_failing(self, rng):
        class OpaquePackage:
            """predict works; everything the tracer needs is missing."""

            def predict(self, x):
                return np.asarray(x) * 2.0

        orc = Orchestrator()
        orc.register_model("m", OpaquePackage().predict, package=OpaquePackage())
        orc.put_tensor("in", np.ones(3))
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), np.full(3, 2.0))
        registry = obs.get_registry()
        assert registry.get("repro_compile_untraceable_total").total() == 1
        # the negative result is memoized: serving again compiles nothing
        orc.run_model("m", ("in",), ("out",))
        assert registry.get("repro_compile_untraceable_total").total() == 1


class TestCnnAndCsrServing:
    def test_cnn_package_served_compiled(self, rng):
        from repro.nn.cnn import CNNTopology

        topology = CNNTopology(
            channels=(4, 3), kernel_sizes=(3, 5), pools=(2, -2)
        )
        package = cnn_package(rng, 8, 2, topology)
        orc = Orchestrator()
        Client(orc).set_model("m", package)
        x = rng.standard_normal((5, 8))
        orc.put_tensor("in", x)
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(package, x))
        assert obs.get_registry().get("repro_compile_plans_built_total").total() == 1
        untraceable = obs.get_registry().get("repro_compile_untraceable_total")
        assert untraceable is None or untraceable.total() == 0

    def test_csr_batch_served_compiled(self, rng):
        package = sparse_ae_package(rng, 20, 6, 3)
        orc = Orchestrator()
        Client(orc).set_model("m", package)
        x = make_csr(rng, 8, 20, empty_rows=(2,))
        orc.put_tensor("in", x)
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(package, x))
        # the plan map key carries the pattern digest, not an array shape
        assert any(
            isinstance(key[2], tuple) and key[2][0] == "csr"
            for key in orc._plans
        )
        assert obs.get_registry().get("repro_compile_plans_built_total").total() == 1

    def test_csr_and_dense_traffic_coexist(self, rng):
        # the same model serves dense row batches and CSR batches through
        # two separately keyed plans
        package = sparse_ae_package(rng, 12, 4, 2)
        orc = Orchestrator()
        Client(orc).set_model("m", package)
        dense = rng.standard_normal((3, 12))
        sparse = make_csr(rng, 3, 12)
        orc.put_tensor("d", dense)
        orc.put_tensor("s", sparse)
        orc.run_model("m", ("d",), ("d_out",))
        orc.run_model("m", ("s",), ("s_out",))
        np.testing.assert_array_equal(orc.get_tensor("d_out"), reference(package, dense))
        np.testing.assert_array_equal(orc.get_tensor("s_out"), reference(package, sparse))
        assert len(orc._plans) == 2

    def test_csr_pattern_change_builds_a_second_plan(self, rng):
        package = sparse_ae_package(rng, 12, 4, 2)
        orc = Orchestrator()
        Client(orc).set_model("m", package)
        for i, x in enumerate(
            (make_csr(rng, 3, 12), make_csr(rng, 3, 12, empty_rows=(0,)))
        ):
            orc.put_tensor("in", x)
            orc.run_model("m", ("in",), (f"out{i}",))
            np.testing.assert_array_equal(
                orc.get_tensor(f"out{i}"), reference(package, x)
            )
        assert len(orc._plans) == 2


class TestMemoPurge:
    """deploy()/rollback() clear stale negative compile memos."""

    @staticmethod
    def _flaky_compile(monkeypatch, fail_times):
        import repro.runtime.orchestrator as orch_mod

        real = orch_mod.compile_package
        calls = {"n": 0}

        def flaky(*a, **k):
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise RuntimeError("transient compile failure")
            return real(*a, **k)

        monkeypatch.setattr(orch_mod, "compile_package", flaky)
        return calls

    def test_deploy_retries_untraceable_memo(self, rng, monkeypatch):
        package = make_package(rng)
        orc = Orchestrator()
        client = Client(orc)
        v1 = client.set_model("m", package)
        calls = self._flaky_compile(monkeypatch, 1)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)
        orc.run_model("m", ("in",), ("out",))  # compile fails -> interpreted
        orc.run_model("m", ("in",), ("out",))  # negative memo: no retry
        assert calls["n"] == 1
        client.deploy_model("m", v1)  # hot swap clears the negative memo
        orc.run_model("m", ("in",), ("out",))
        assert calls["n"] == 2  # retried, and this time it compiled
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(package, x))
        orc.run_model("m", ("in",), ("out",))
        assert calls["n"] == 2  # positive result is memoized as before

    def test_rollback_retries_untraceable_memo(self, rng, monkeypatch):
        v1_pkg = make_package(rng)
        v2_pkg = make_package(np.random.default_rng(7))
        orc = Orchestrator()
        client = Client(orc)
        client.set_model("m", v1_pkg)
        client.set_model("m", v2_pkg)
        calls = self._flaky_compile(monkeypatch, 1)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)
        orc.run_model("m", ("in",), ("out",), version=1)  # fails, memoized
        assert calls["n"] == 1
        client.rollback_model("m")  # back to v1: clears v1's negative memo
        orc.run_model("m", ("in",), ("out",))
        assert calls["n"] == 2
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(v1_pkg, x))

    def test_deploy_keeps_positive_plans(self, rng):
        package = make_package(rng)
        orc = Orchestrator()
        client = Client(orc)
        v1 = client.set_model("m", package)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)
        orc.run_model("m", ("in",), ("out",))
        assert obs.get_registry().get("repro_compile_plans_built_total").total() == 1
        client.deploy_model("m", v1)  # redeploy must NOT drop the good plan
        orc.run_model("m", ("in",), ("out",))
        assert obs.get_registry().get("repro_compile_plans_built_total").total() == 1

    def test_memo_purge_is_safe_under_hot_swap_traffic(self, rng):
        import threading

        v1_pkg = make_package(rng)
        v2_pkg = make_package(np.random.default_rng(5))
        orc = Orchestrator()
        client = Client(orc)
        client.set_model("m", v1_pkg)
        v2 = client.set_model("m", v2_pkg, deploy=False)
        x = rng.standard_normal((4, 6))
        expected = {reference(v1_pkg, x).tobytes(), reference(v2_pkg, x).tobytes()}
        orc.put_tensor("in", x)
        stop = threading.Event()
        errors = []

        def traffic():
            i = 0
            while not stop.is_set():
                out = f"out_{threading.get_ident()}_{i % 4}"
                i += 1
                try:
                    orc.run_model("m", ("in",), (out,))
                    if orc.get_tensor(out).tobytes() not in expected:
                        errors.append("served output matches neither version")
                except Exception as exc:  # noqa: BLE001 - fail the test below
                    errors.append(repr(exc))

        threads = [threading.Thread(target=traffic) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                client.deploy_model("m", v2)
                client.rollback_model("m")
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors


class TestUntraceableReasonLabels:
    def test_opaque_package_labeled(self, rng):
        class OpaquePackage:
            def predict(self, x):
                return np.asarray(x) * 2.0

        orc = Orchestrator()
        orc.register_model("m", OpaquePackage().predict, package=OpaquePackage())
        orc.put_tensor("in", np.ones(3))
        orc.run_model("m", ("in",), ("out",))
        counter = obs.get_registry().get("repro_compile_untraceable_total")
        assert counter.value(reason="opaque") == 1

    def test_conv_geometry_mismatch_labeled(self, rng):
        from repro.nas.package import SurrogatePackage
        from repro.nn.cnn import CNNTopology
        from repro.nn.conv import Flatten, SignalView
        from repro.nn.layers import Dense, Sequential

        model = Sequential([SignalView(4), Flatten(), Dense(6, 2, rng)])
        package = SurrogatePackage(
            model=model,
            topology=CNNTopology(channels=(1,), kernel_sizes=(1,), pools=(0,)),
            input_dim=6,
            output_dim=2,
        )
        orc = Orchestrator()
        Client(orc).set_model("m", package)
        orc.put_tensor("in", rng.standard_normal(6))
        # a geometry mismatch fails the interpreted forward too (the
        # package is mis-specified); the label still records why the
        # compiler refused it
        with pytest.raises(ValueError, match="divisible"):
            orc.run_model("m", ("in",), ("out",))
        counter = obs.get_registry().get("repro_compile_untraceable_total")
        assert counter.value(reason="conv") == 1


class TestPersistentCache:
    def test_restart_with_warm_disk_cache_rebuilds_nothing(self, rng, tmp_path):
        package = make_package(rng)
        x = rng.standard_normal(6)

        orc1 = Orchestrator(plan_cache_dir=tmp_path)
        Client(orc1).set_model("m", package)
        orc1.put_tensor("in", x)
        orc1.run_model("m", ("in",), ("out",))
        first = orc1.get_tensor("out")
        assert obs.get_registry().get("repro_compile_plans_built_total").total() == 1

        # "restart": fresh orchestrator + fresh metrics, same cache dir
        obs.configure(enabled=True, reset=True)
        orc2 = Orchestrator(plan_cache_dir=tmp_path)
        Client(orc2).set_model("m", package)
        orc2.put_tensor("in", x)
        orc2.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc2.get_tensor("out"), first)
        registry = obs.get_registry()
        built = registry.get("repro_compile_plans_built_total")
        assert built is None or built.total() == 0
        assert (
            registry.get("repro_compile_cache_hits_total").value(tier="disk") == 1
        )

    def test_registry_digest_flows_through_client(self, rng, tmp_path):
        package = make_package(rng)
        registry = ModelRegistry(tmp_path / "registry")
        ref = package.publish(registry, "app")
        orc = Orchestrator(plan_cache_dir=tmp_path)
        client = Client(orc)
        client.set_model_from_registry("app", registry)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)
        orc.run_model("app", ("in",), ("out",))
        np.testing.assert_array_equal(
            orc.get_tensor("out"), reference(package, x)
        )
        with orc._lock:
            model = orc._resolve_locked("app", None)
        assert model.digest == ref.digest

    def test_telemetry_names_are_exposed(self, rng):
        package = make_package(rng)
        orc = Orchestrator()
        Client(orc).set_model("m", package)
        orc.put_tensor("in", rng.standard_normal(6))
        orc.run_model("m", ("in",), ("out",))
        registry = obs.get_registry()
        assert registry.get("repro_compile_plans_built_total").total() == 1
        assert registry.get("repro_compile_plan_build_seconds").count() == 1
        assert registry.get("repro_compile_plan_exec_seconds").count(model="m") == 1
