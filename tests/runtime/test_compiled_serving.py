"""Compiled plans in the serving path: identity, staleness, fallback.

The orchestrator must be allowed to substitute a :class:`CompiledPlan`
for any package forward without observable effect (other than speed):
bit-identical outputs under ``batch_invariant``, correct plan selection
across deploy/rollback, interpreted fallback for anything untraceable,
and zero rebuilds when a warm on-disk cache is present.
"""

import numpy as np
import pytest

from repro import obs
from repro.nn.tensor import batch_invariant
from repro.registry.store import ModelRegistry
from repro.runtime import Client, Orchestrator

from ..compile.test_plan import make_package


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def reference(package, x):
    with batch_invariant():
        return package.predict(x)


class TestCompiledIdentity:
    def test_direct_run_model_is_bit_identical(self, rng):
        package = make_package(rng)
        orc = Orchestrator()
        Client(orc).set_model("m", package)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(package, x))
        assert len(orc._plans) == 1  # the plan actually served it

    def test_pooled_micro_batches_are_bit_identical(self, rng):
        package = make_package(rng, activation="tanh", hidden=(16, 8))
        orc = Orchestrator(max_batch_size=16, num_workers=2)
        client = Client(orc)
        client.set_model("m", package)
        rows = rng.standard_normal((48, 6))
        with orc:
            outs = client.run_model_batch(
                "m", list(rows), [f"o{i}" for i in range(48)]
            )
        expected = reference(package, rows)
        for got, want in zip(outs, expected):
            np.testing.assert_array_equal(got, want)

    def test_compiled_and_interpreted_orchestrators_agree(self, rng):
        package = make_package(rng, residual=True, hidden=(8, 8))
        x = rng.standard_normal((5, 6))
        results = []
        for compile_plans in (True, False):
            orc = Orchestrator(compile_plans=compile_plans)
            Client(orc).set_model("m", package)
            orc.put_tensor("in", x)
            orc.run_model("m", ("in",), ("out",))
            results.append(orc.get_tensor("out"))
        np.testing.assert_array_equal(results[0], results[1])

    def test_no_compile_builds_no_plans(self, rng):
        package = make_package(rng)
        orc = Orchestrator(compile_plans=False)
        Client(orc).set_model("m", package)
        orc.put_tensor("in", rng.standard_normal(6))
        orc.run_model("m", ("in",), ("out",))
        assert orc._plans == {}


class TestPlanStaleness:
    def test_deploy_switches_to_the_new_versions_plan(self, rng):
        v1_pkg = make_package(rng)
        v2_pkg = make_package(np.random.default_rng(7))
        orc = Orchestrator()
        client = Client(orc)
        client.set_model("m", v1_pkg)
        v2 = client.set_model("m", v2_pkg, deploy=False)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)

        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(v1_pkg, x))
        client.deploy_model("m", v2)
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(v2_pkg, x))
        client.rollback_model("m")
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(v1_pkg, x))
        # version is part of the plan map key: both plans coexist, neither
        # is ever served stale
        assert len(orc._plans) == 2

    def test_pinned_version_uses_its_own_plan(self, rng):
        v1_pkg = make_package(rng)
        v2_pkg = make_package(np.random.default_rng(7))
        orc = Orchestrator()
        client = Client(orc)
        client.set_model("m", v1_pkg)
        client.set_model("m", v2_pkg)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)
        orc.run_model("m", ("in",), ("out",), version=1)
        np.testing.assert_array_equal(orc.get_tensor("out"), reference(v1_pkg, x))


class TestFallback:
    def test_raw_callable_serves_interpreted(self, rng):
        orc = Orchestrator()
        orc.register_model("raw", lambda x: np.asarray(x) * 3.0)
        orc.put_tensor("in", np.ones(4))
        orc.run_model("raw", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), np.full(4, 3.0))
        assert orc._plans == {}  # no package, not even a sentinel entry

    def test_untraceable_package_falls_back_without_failing(self, rng):
        class OpaquePackage:
            """predict works; everything the tracer needs is missing."""

            def predict(self, x):
                return np.asarray(x) * 2.0

        orc = Orchestrator()
        orc.register_model("m", OpaquePackage().predict, package=OpaquePackage())
        orc.put_tensor("in", np.ones(3))
        orc.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc.get_tensor("out"), np.full(3, 2.0))
        registry = obs.get_registry()
        assert registry.get("repro_compile_untraceable_total").total() == 1
        # the negative result is memoized: serving again compiles nothing
        orc.run_model("m", ("in",), ("out",))
        assert registry.get("repro_compile_untraceable_total").total() == 1


class TestPersistentCache:
    def test_restart_with_warm_disk_cache_rebuilds_nothing(self, rng, tmp_path):
        package = make_package(rng)
        x = rng.standard_normal(6)

        orc1 = Orchestrator(plan_cache_dir=tmp_path)
        Client(orc1).set_model("m", package)
        orc1.put_tensor("in", x)
        orc1.run_model("m", ("in",), ("out",))
        first = orc1.get_tensor("out")
        assert obs.get_registry().get("repro_compile_plans_built_total").total() == 1

        # "restart": fresh orchestrator + fresh metrics, same cache dir
        obs.configure(enabled=True, reset=True)
        orc2 = Orchestrator(plan_cache_dir=tmp_path)
        Client(orc2).set_model("m", package)
        orc2.put_tensor("in", x)
        orc2.run_model("m", ("in",), ("out",))
        np.testing.assert_array_equal(orc2.get_tensor("out"), first)
        registry = obs.get_registry()
        built = registry.get("repro_compile_plans_built_total")
        assert built is None or built.total() == 0
        assert (
            registry.get("repro_compile_cache_hits_total").value(tier="disk") == 1
        )

    def test_registry_digest_flows_through_client(self, rng, tmp_path):
        package = make_package(rng)
        registry = ModelRegistry(tmp_path / "registry")
        ref = package.publish(registry, "app")
        orc = Orchestrator(plan_cache_dir=tmp_path)
        client = Client(orc)
        client.set_model_from_registry("app", registry)
        x = rng.standard_normal(6)
        orc.put_tensor("in", x)
        orc.run_model("app", ("in",), ("out",))
        np.testing.assert_array_equal(
            orc.get_tensor("out"), reference(package, x)
        )
        with orc._lock:
            model = orc._resolve_locked("app", None)
        assert model.digest == ref.digest

    def test_telemetry_names_are_exposed(self, rng):
        package = make_package(rng)
        orc = Orchestrator()
        Client(orc).set_model("m", package)
        orc.put_tensor("in", rng.standard_normal(6))
        orc.run_model("m", ("in",), ("out",))
        registry = obs.get_registry()
        assert registry.get("repro_compile_plans_built_total").total() == 1
        assert registry.get("repro_compile_plan_build_seconds").count() == 1
        assert registry.get("repro_compile_plan_exec_seconds").count(model="m") == 1
