"""Handle-pooled shared-memory tensor store (owner + reader sides)."""

import glob

import numpy as np
import pytest

from repro.runtime.shm_store import (
    MIN_SEGMENT_BYTES,
    SegmentAttachments,
    ShmHandle,
    ShmTensorStore,
    _size_class,
    unlink_segments,
)


@pytest.fixture
def store():
    s = ShmTensorStore(prefix="repro_test")
    yield s
    s.unlink_all()


class TestSizeClasses:
    def test_power_of_two_with_page_floor(self):
        assert _size_class(1) == MIN_SEGMENT_BYTES
        assert _size_class(MIN_SEGMENT_BYTES) == MIN_SEGMENT_BYTES
        assert _size_class(MIN_SEGMENT_BYTES + 1) == 2 * MIN_SEGMENT_BYTES
        assert _size_class(100_000) == 131072

    def test_handle_is_a_small_named_tuple(self):
        handle = ShmHandle("seg", (3, 4), "<f8")
        assert handle.segment == "seg"
        assert handle.shape == (3, 4)
        assert handle.dtype == "<f8"


class TestStoreRoundTrip:
    def test_put_take_round_trip(self, store, rng):
        arr = rng.normal(size=(7, 5))
        handle = store.put(arr)
        att = SegmentAttachments()
        try:
            out = att.take(handle)
        finally:
            att.close_all()
        assert out.dtype == arr.dtype
        np.testing.assert_array_equal(out, arr)

    def test_view_is_read_only_zero_copy(self, store):
        arr = np.arange(6, dtype=np.float32).reshape(2, 3)
        handle = store.put(arr)
        att = SegmentAttachments()
        try:
            view = att.view(handle)
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1.0
            np.testing.assert_array_equal(view, arr)
        finally:
            att.close_all()

    def test_non_contiguous_input_is_copied_correctly(self, store):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        arr = base[:, ::2]  # non-contiguous slice
        handle = store.put(arr)
        att = SegmentAttachments()
        try:
            np.testing.assert_array_equal(att.take(handle), arr)
        finally:
            att.close_all()


class TestLeaseRecycle:
    def test_release_recycles_within_size_class(self, store):
        h1 = store.put(np.zeros(8))
        store.release(h1.segment)
        h2 = store.put(np.ones(16))  # same 4 KiB class
        assert h2.segment == h1.segment
        assert store.stats() == {"segments": 1, "leased": 1, "free": 0}

    def test_distinct_size_classes_use_distinct_segments(self, store):
        small = store.put(np.zeros(8))
        store.release(small.segment)
        big = store.put(np.zeros(MIN_SEGMENT_BYTES))  # 32 KiB of float64
        assert big.segment != small.segment
        assert store.stats()["segments"] == 2

    def test_release_is_idempotent(self, store):
        handle = store.put(np.zeros(4))
        store.release(handle.segment)
        store.release(handle.segment)
        store.release("repro_never_existed")
        assert store.stats()["free"] == 1

    def test_reader_cache_hits_on_recycled_segment(self, store):
        att = SegmentAttachments()
        try:
            h1 = store.put(np.full(4, 1.0))
            np.testing.assert_array_equal(att.take(h1), np.full(4, 1.0))
            store.release(h1.segment)
            h2 = store.put(np.full(4, 2.0))
            assert h2.segment == h1.segment
            # second read resolves through the cached attachment
            np.testing.assert_array_equal(att.take(h2), np.full(4, 2.0))
            assert len(att._attached) == 1
        finally:
            att.close_all()


class TestLifecycle:
    def _on_disk(self, store):
        return [
            p for p in glob.glob("/dev/shm/*") if store.prefix in p
        ]

    def test_unlink_all_removes_segments_and_is_idempotent(self):
        store = ShmTensorStore(prefix="repro_test")
        store.put(np.zeros(4))
        assert self._on_disk(store)
        store.unlink_all()
        assert not self._on_disk(store)
        store.unlink_all()
        with pytest.raises(RuntimeError, match="closed"):
            store.put(np.zeros(4))

    def test_detach_all_transfers_ownership(self):
        store = ShmTensorStore(prefix="repro_test", tracked=False)
        store.put(np.zeros(4))
        store.put(np.zeros(MIN_SEGMENT_BYTES))
        names = store.detach_all()
        assert len(names) == 2
        # segments survive the detach (the new owner unlinks them) ...
        assert self._on_disk(store)
        unlink_segments(names)
        assert not self._on_disk(store)
        # ... and unlinking unknown names is silently skipped
        unlink_segments(names)

    def test_attachments_close_all_can_unlink_for_dead_owner(self):
        store = ShmTensorStore(prefix="repro_test", tracked=False)
        handle = store.put(np.zeros(4))
        att = SegmentAttachments()
        att.view(handle)
        store.detach_all()  # owner gone without unlinking
        names = att.close_all(unlink=True)
        assert names == [handle.segment]
        assert not self._on_disk(store)

    def test_segment_names_prefixed_with_pid_for_leak_audit(self, store):
        import os

        handle = store.put(np.zeros(4))
        assert handle.segment.startswith(f"repro_test_{os.getpid()}_")
        assert store.segment_names() == [handle.segment]
