"""Consistent-hash ring assigning (model, version) replicas to shards."""

from collections import Counter

import pytest

from repro.runtime.sharding import ShardRing


class TestShardRing:
    def test_single_shard_owns_everything(self):
        ring = ShardRing(1)
        assert {ring.shard_for(f"m{i}", 1) for i in range(50)} == {0}

    def test_deterministic_across_instances(self):
        a = ShardRing(4)
        b = ShardRing(4)
        for i in range(100):
            assert a.shard_for(f"model_{i}", i % 3) == b.shard_for(
                f"model_{i}", i % 3
            )

    def test_assignment_in_range(self):
        ring = ShardRing(3)
        for i in range(200):
            assert 0 <= ring.shard_for(f"m{i}", 1) < 3

    def test_versions_of_one_model_spread_across_shards(self):
        # versions hash independently: a hot model's replicas should not
        # all pile onto one shard
        ring = ShardRing(4)
        owners = {ring.shard_for("hot_model", v) for v in range(32)}
        assert len(owners) > 1

    def test_distribution_is_roughly_balanced(self):
        ring = ShardRing(4, vnodes=64)
        counts = Counter(
            ring.shard_for(f"model_{i}", 1) for i in range(2000)
        )
        assert set(counts) == {0, 1, 2, 3}
        # 64 vnodes/shard keeps the spread well inside 2x of fair share
        assert max(counts.values()) < 2 * (2000 / 4)
        assert min(counts.values()) > (2000 / 4) / 2

    def test_growing_the_ring_moves_few_keys(self):
        # the consistent-hash property: adding a shard remaps roughly
        # 1/N of the keyspace, not all of it
        small = ShardRing(3)
        large = ShardRing(4)
        keys = [(f"model_{i}", 1) for i in range(1000)]
        moved = sum(
            small.shard_for(n, v) != large.shard_for(n, v) for n, v in keys
        )
        assert moved < 1000 * 0.5

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardRing(0)
