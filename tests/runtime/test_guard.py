"""Guarded-surrogate (restart mechanism) tests."""

import numpy as np
import pytest

from repro import AutoHPCnet, AutoHPCnetConfig
from repro.apps import CGApplication
from repro.runtime import GuardedSurrogate, bounds_validator, residual_validator


FAST = AutoHPCnetConfig(
    n_samples=120, outer_iterations=1, inner_trials=2, num_epochs=50,
    quality_problems=4, quality_loss=0.9, qoi_mu=0.5, seed=0,
)


@pytest.fixture(scope="module")
def cg_guarded():
    app = CGApplication()
    build = AutoHPCnet(FAST).build(app)
    return GuardedSurrogate(
        build.surrogate, residual_validator("A", "b", "x", rtol=0.25)
    )


class TestResidualValidator:
    def test_accepts_exact_solution(self, cg_guarded, rng):
        app = cg_guarded.surrogate.app
        problem = app.example_problem(rng)
        exact = app.run_exact(problem).outputs
        validate = residual_validator("A", "b", "x", rtol=0.05)
        assert validate(problem, exact)

    def test_rejects_garbage_solution(self, cg_guarded, rng):
        app = cg_guarded.surrogate.app
        problem = app.example_problem(rng)
        validate = residual_validator("A", "b", "x", rtol=0.05)
        assert not validate(problem, {"x": rng.standard_normal(app.n) * 100})

    def test_dense_matrix_supported(self, rng):
        a = np.eye(3) * 2.0
        validate = residual_validator()
        assert validate({"A": a, "b": np.ones(3)}, {"x": np.full(3, 0.5)})


class TestBoundsValidator:
    def test_within_bounds(self):
        validate = bounds_validator("prices", low=0.0)
        assert validate({}, {"prices": np.array([1.0, 2.0])})
        assert not validate({}, {"prices": np.array([-1.0, 2.0])})

    def test_rejects_nonfinite(self):
        validate = bounds_validator("v")
        assert not validate({}, {"v": np.array([np.nan])})

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            bounds_validator("v", low=1.0, high=0.0)


class TestGuardedExecution:
    def test_valid_outputs_pass_through(self, cg_guarded, rng):
        app = cg_guarded.surrogate.app
        problems = app.generate_problems(5, rng)
        for p in problems:
            outputs = cg_guarded.run(p)
            # guarded output always satisfies the validity check
            assert residual_validator("A", "b", "x", rtol=0.25)(p, outputs)
        assert cg_guarded.stats.invocations == 5

    def test_fallback_engages_on_broken_surrogate(self, cg_guarded, rng):
        app = cg_guarded.surrogate.app
        # sabotage the surrogate: zero out the model head
        for param in cg_guarded.surrogate.package.model.parameters():
            param.data[:] = 0.0
        problem = app.example_problem(rng)
        before = cg_guarded.stats.fallbacks
        outputs = cg_guarded.run(problem)
        assert cg_guarded.stats.fallbacks == before + 1
        # the restart produced the exact result
        exact = app.run_exact(problem).outputs
        assert np.allclose(outputs["x"], exact["x"])

    def test_qoi_valid_even_with_broken_surrogate(self, cg_guarded, rng):
        app = cg_guarded.surrogate.app
        problem = app.example_problem(rng)
        qoi = cg_guarded.qoi(problem)
        assert qoi == pytest.approx(app.run_exact(problem).qoi)

    def test_stats_rates(self):
        from repro.runtime import GuardStats

        stats = GuardStats(invocations=10, fallbacks=3)
        assert stats.fallback_rate == pytest.approx(0.3)
        assert stats.surrogate_rate == pytest.approx(0.7)


class TestDefaultValidators:
    def test_every_app_has_a_default(self):
        from repro.apps import ALL_APPLICATIONS
        from repro.runtime import default_validator

        for cls in ALL_APPLICATIONS:
            assert callable(default_validator(cls.name))

    def test_defaults_accept_exact_outputs(self):
        from repro.apps import ALL_APPLICATIONS
        from repro.runtime import default_validator

        for cls in ALL_APPLICATIONS:
            app = cls()
            problem = app.example_problem(np.random.default_rng(0))
            run = app.run_exact(problem)
            assert default_validator(app.name)(problem, run.outputs), app.name

    def test_unknown_app_rejected(self):
        from repro.runtime import default_validator

        with pytest.raises(ValueError):
            default_validator("doom")


class TestSplitLatencyAndWindow:
    def test_surrogate_and_fallback_seconds_accumulate(self, cg_guarded, rng):
        app = cg_guarded.surrogate.app
        problem = app.example_problem(rng)
        stats = cg_guarded.stats
        before_s, before_f = stats.surrogate_seconds, stats.fallback_seconds
        cg_guarded.run(problem)  # surrogate is sabotaged by an earlier test
        assert stats.surrogate_seconds > before_s
        if stats.fallbacks:
            assert stats.fallback_seconds > before_f
            assert stats.time_ratio is not None and stats.time_ratio > 0

    def test_windowed_hit_rate_tracks_recent_traffic(self):
        from repro.runtime import GuardStats

        stats = GuardStats(window=4)
        assert stats.windowed_hit_rate is None
        for fallback in (True, True, True, True):
            stats.record(fallback=fallback)
        assert stats.windowed_hit_rate == 0.0
        for fallback in (False, False, False, False):
            stats.record(fallback=fallback)
        # the early misses aged out of the window
        assert stats.windowed_hit_rate == 1.0
        assert stats.window_count == 4
        # lifetime counters still remember everything
        assert stats.invocations == 8 and stats.fallbacks == 4

    def test_split_histograms_exported(self, rng):
        from repro import obs
        from repro.apps import CGApplication
        from repro.core import AutoHPCnet
        from repro.runtime import GuardedSurrogate, residual_validator

        obs.configure(enabled=True, reset=True)
        try:
            app = CGApplication()
            build = AutoHPCnet(FAST).build(app)
            guarded = GuardedSurrogate(
                build.surrogate, residual_validator("A", "b", "x", rtol=0.25)
            )
            guarded.run(app.example_problem(rng))
            rendered = obs.get_registry().to_prometheus()
            assert "repro_guard_surrogate_seconds" in rendered
        finally:
            obs.configure(enabled=False, reset=True)


class TestGuardHooks:
    def test_capture_fires_only_on_fallback(self, rng):
        from repro.apps import CGApplication
        from repro.core import AutoHPCnet
        from repro.runtime import GuardedSurrogate, residual_validator

        app = CGApplication()
        build = AutoHPCnet(FAST).build(app)
        captured = []
        guarded = GuardedSurrogate(
            build.surrogate,
            residual_validator("A", "b", "x", rtol=0.25),
            capture=lambda problem, x, outputs: captured.append((x, outputs)),
        )
        problem = app.example_problem(rng)
        guarded.run(problem)
        assert len(captured) == guarded.stats.fallbacks
        # now sabotage: every run falls back and must be captured
        for param in guarded.surrogate.package.model.parameters():
            param.data[:] = 0.0
        before = len(captured)
        guarded.run(problem)
        assert len(captured) == before + 1
        x, outputs = captured[-1]
        assert x.ndim == 1  # flattened model-space feature row
        exact = app.run_exact(problem).outputs
        assert np.allclose(outputs["x"], exact["x"])

    def test_drift_detector_observes_every_invocation(self, rng):
        from repro.apps import CGApplication
        from repro.core import AutoHPCnet
        from repro.runtime import GuardedSurrogate, residual_validator

        class Recorder:
            def __init__(self):
                self.calls = []

            def observe(self, x, *, fallback=False):
                self.calls.append((np.asarray(x).copy(), fallback))

        app = CGApplication()
        build = AutoHPCnet(FAST).build(app)
        recorder = Recorder()
        guarded = GuardedSurrogate(
            build.surrogate,
            residual_validator("A", "b", "x", rtol=0.25),
            drift_detector=recorder,
        )
        for problem in app.generate_problems(3, rng):
            guarded.run(problem)
        assert len(recorder.calls) == 3
        assert recorder.calls[0][0].ndim == 1
