"""Module-level models for process-mode tests.

Worker processes are spawned, so registered models cross the boundary
by pickle — which serializes functions and classes *by reference*.
Anything served with ``num_processes > 0`` therefore has to live in an
importable module; test functions defined inline would not unpickle in
the worker.  These helpers are deliberately tiny and deterministic.
"""

from __future__ import annotations

import time

import numpy as np


def affine(x: np.ndarray) -> np.ndarray:
    """Row-wise ``sum(2x + 1)``; accepts a single row or a stacked batch."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    return (2.0 * x + 1.0).sum(axis=1)


def affine_x10(x: np.ndarray) -> np.ndarray:
    """Scaled variant used as a distinguishable second version."""
    return affine(x) * 10.0


def negate(x: np.ndarray) -> np.ndarray:
    """Row-wise ``-sum(x)`` — a second model for mixed traffic."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    return -x.sum(axis=1)


class SleepyModel:
    """Batchable model that sleeps per call — for jamming worker queues."""

    def __init__(self, delay: float = 0.05) -> None:
        self.delay = delay

    def __call__(self, x: np.ndarray) -> np.ndarray:
        time.sleep(self.delay)
        return affine(x)


class FailingModel:
    """Raises a deterministic error so tests can assert propagation."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        raise ValueError("synthetic failure from FailingModel")


class Tag:
    """Constant-output model: every element equals the version tag.

    Canary tests register ``Tag(1.0)`` / ``Tag(2.0)`` as two versions of
    one model so the served version is readable off the result.
    """

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return np.full(x.shape[0], self.value)
