"""GuardedSurrogate under concurrent invocations: no lost counts."""

from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import numpy as np
import pytest

from repro import obs
from repro.runtime import GuardedSurrogate, GuardStats


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


class _StubApp:
    name = "stub"

    def run_exact(self, problem):
        return SimpleNamespace(outputs={"v": np.zeros(1)}, qoi=0.0)

    def qoi_from_outputs(self, problem, outputs):
        return float(outputs["v"][0])


class _StubSurrogate:
    """Duck-typed DeployedSurrogate: app + run()."""

    def __init__(self):
        self.app = _StubApp()

    def run(self, problem):
        return {"v": np.array([float(problem["val"])])}


def _make_guarded():
    # valid iff val <= 0.5 — the caller controls the fallback pattern
    def validator(problem, outputs):
        return float(outputs["v"][0]) <= 0.5

    return GuardedSurrogate(_StubSurrogate(), validator)


class TestGuardStatsThreadSafety:
    def test_record_is_atomic(self):
        stats = GuardStats()
        n_threads, per_thread = 8, 5000

        def hammer(worker):
            for i in range(per_thread):
                stats.record(fallback=(i % 4 == 0))

        with ThreadPoolExecutor(n_threads) as pool:
            list(pool.map(hammer, range(n_threads)))
        assert stats.invocations == n_threads * per_thread
        assert stats.fallbacks == n_threads * (per_thread // 4)

    def test_positional_construction_still_works(self):
        stats = GuardStats(10, 3)
        assert stats.fallback_rate == pytest.approx(0.3)
        assert stats.surrogate_rate == pytest.approx(0.7)


class TestGuardedConcurrency:
    def test_thread_pool_hammer_counts_exactly(self):
        guarded = _make_guarded()
        n_threads, per_thread = 8, 400

        def hammer(worker):
            rng = np.random.default_rng(worker)
            fallbacks = 0
            for _ in range(per_thread):
                val = float(rng.uniform(0.0, 1.0))
                out = guarded.run({"val": val})
                if val > 0.5:
                    fallbacks += 1
                    assert out["v"][0] == 0.0   # exact restart result
                else:
                    assert out["v"][0] == pytest.approx(val)
            return fallbacks

        with ThreadPoolExecutor(n_threads) as pool:
            expected_fallbacks = sum(pool.map(hammer, range(n_threads)))

        total = n_threads * per_thread
        assert guarded.stats.invocations == total
        assert guarded.stats.fallbacks == expected_fallbacks
        assert guarded.stats.fallback_rate == pytest.approx(expected_fallbacks / total)
        # telemetry counters agree with the stats object
        registry = obs.get_registry()
        assert registry.get("repro_guard_invocations_total").value(app="stub") == total
        assert (
            registry.get("repro_guard_fallbacks_total").value(app="stub")
            == expected_fallbacks
        )

    def test_counters_skipped_when_disabled(self):
        guarded = _make_guarded()
        with obs.disabled():
            guarded.run({"val": 0.1})
            guarded.run({"val": 0.9})
        # stats are functional output and still accumulate...
        assert guarded.stats.invocations == 2
        assert guarded.stats.fallbacks == 1
        # ...but no telemetry was written
        assert obs.get_registry().get("repro_guard_invocations_total").total() == 0
