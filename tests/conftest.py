"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic per-test random generator."""
    return np.random.default_rng(12345)
