"""Shared region functions for extractor tests.

They live in a real module (not a test body) because the tracer needs
``inspect.getsource`` to work.
"""

import numpy as np

from repro.extract import code_region


@code_region(name="saxpy", live_after=("y",))
def saxpy(a, x, y0):
    y = y0 + a * x
    return y


@code_region(name="loop_sum", live_after=("total",))
def loop_sum(values, n):
    total = 0.0
    for i in range(n):
        total = total + values[i]
    return total


@code_region(name="pcg_like", live_after=("x",))
def pcg_like(A, b, x0, iters, tol):
    x = x0.copy()
    r = b - A @ x
    p = r.copy()
    rs = r @ r
    for i in range(iters):
        Ap = A @ p
        alpha = rs / (p @ Ap)
        x = x + alpha * p
        r = r - alpha * Ap
        rs_new = r @ r
        if rs_new < tol:
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x


@code_region(name="branchy", live_after=("out",))
def branchy(x, flag):
    if flag > 0:
        out = x * 2.0
    else:
        out = x - 1.0
    return out


@code_region(name="nested_loops", live_after=("acc",))
def nested_loops(matrix, reps):
    acc = 0.0
    for r in range(reps):
        for i in range(matrix.shape[0]):
            acc = acc + matrix[i, 0]
    return acc


@code_region(name="two_outputs", live_after=("u", "s"))
def two_outputs(a, b):
    u = a + b
    s = float((a * b).sum())
    internal = u * 2.0
    del internal
    return u, s


def undecorated(x):
    return x + 1
