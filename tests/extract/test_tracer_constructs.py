"""Tracer coverage of additional Python constructs."""

import numpy as np
import pytest

from repro.extract import RegionTracer, build_dddg, classify_io, code_region


@code_region(name="while_region", live_after=("total",))
def while_region(limit, step):
    total = 0.0
    count = 0
    while total < limit:
        total = total + step
        count = count + 1
    return total, count


@code_region(name="continue_break", live_after=("acc",))
def continue_break(values, cap):
    acc = 0.0
    for i in range(values.shape[0]):
        if values[i] < 0:
            continue
        acc = acc + values[i]
        if acc > cap:
            break
    return acc


@code_region(name="try_region", live_after=("result",))
def try_region(a, b):
    try:
        result = a / b
    except ZeroDivisionError:
        result = 0.0
    return result


@code_region(name="with_region", live_after=("out",))
def with_region(x):
    import contextlib

    with contextlib.nullcontext():
        out = x * 2.0
    return out


@code_region(name="aug_region", live_after=("buf",))
def aug_region(buf, delta, n):
    for i in range(n):
        buf[i] += delta
    return buf


class TestWhileLoops:
    def test_result_correct(self):
        total, count = while_region(1.0, 0.3)
        r_total, trace = RegionTracer(while_region).trace(limit=1.0, step=0.3)
        assert r_total[0] == total

    def test_while_compresses(self):
        _, trace = RegionTracer(while_region).trace(limit=100.0, step=0.5)
        assert trace.compression_ratio() > 10

    def test_classification(self):
        _, trace = RegionTracer(while_region).trace(limit=1.0, step=0.3)
        io = classify_io(build_dddg(trace), dict(limit=1.0, step=0.3), {"total"})
        assert set(io.inputs) == {"limit", "step"}
        assert io.outputs == ("total",)


class TestControlFlowExits:
    def test_continue_and_break_traced(self, rng):
        values = rng.standard_normal(20)
        result, trace = RegionTracer(continue_break).trace(values=values, cap=1.5)
        assert result == continue_break(values, 1.5)
        assert trace.dynamic_length() > 0

    def test_break_terminates_loop_probes_cleanly(self, rng):
        # break exits via loop_exit; the recorder must stay balanced
        values = np.abs(rng.standard_normal(50)) + 1.0  # breaks immediately
        _, trace = RegionTracer(continue_break).trace(values=values, cap=0.5)
        assert trace.stored_length() > 0


class TestTryAndWith:
    def test_try_happy_path(self):
        result, _ = RegionTracer(try_region).trace(a=6.0, b=3.0)
        assert result == 2.0

    def test_try_exception_path(self):
        result, trace = RegionTracer(try_region).trace(a=6.0, b=0)
        assert result == 0.0
        assert trace.dynamic_length() > 0

    def test_with_block(self, rng):
        x = rng.standard_normal(4)
        result, trace = RegionTracer(with_region).trace(x=x)
        assert np.allclose(result, x * 2.0)


class TestAugmentedArrayWrites:
    def test_in_place_element_updates(self, rng):
        buf = np.zeros(6)
        result, trace = RegionTracer(aug_region).trace(buf=buf.copy(), delta=2.0, n=6)
        assert np.allclose(result, 2.0)

    def test_array_classified_as_input_and_output(self, rng):
        buf = np.zeros(6)
        _, trace = RegionTracer(aug_region).trace(buf=buf.copy(), delta=2.0, n=6)
        io = classify_io(
            build_dddg(trace), dict(buf=buf, delta=2.0, n=6), {"buf"}
        )
        # read-modify-write array: both an input and an output
        assert "buf" in io.inputs
        assert "buf" in io.outputs
