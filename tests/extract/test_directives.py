"""Region-directive (annotation) tests."""

import pytest

from repro.extract import RegionSpec, code_region, get_region_spec


class TestCodeRegion:
    def test_attaches_spec(self):
        @code_region(name="demo", live_after=("out",), description="d")
        def region(x):
            out = x + 1
            return out

        spec = get_region_spec(region)
        assert spec.name == "demo"
        assert spec.live_after == ("out",)
        assert spec.description == "d"
        assert spec.fn is region

    def test_function_still_callable(self):
        @code_region(name="demo2", live_after=("y",))
        def region(x):
            y = x * 2
            return y

        assert region(3) == 6

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            @code_region(name="")
            def region(x):
                return x

    def test_unannotated_function_rejected(self):
        def plain(x):
            return x

        with pytest.raises(ValueError, match="not an annotated code region"):
            get_region_spec(plain)

    def test_continuation_source_stored(self):
        @code_region(name="demo3", continuation_source="print(z)")
        def region(x):
            z = x
            return z

        assert get_region_spec(region).continuation_source == "print(z)"

    def test_spec_is_frozen(self):
        spec = RegionSpec(name="n", fn=lambda: None)
        with pytest.raises(AttributeError):
            spec.name = "other"


class TestContinuationValidation:
    def test_invalid_continuation_rejected_at_decoration(self):
        with pytest.raises(ValueError, match="continuation_source is not valid"):
            @code_region(name="bad", continuation_source="def broken(:")
            def region(x):
                z = x
                return z

    def test_error_names_the_region(self):
        with pytest.raises(ValueError, match="'bad2'"):
            @code_region(name="bad2", continuation_source="x ===== 1")
            def region(x):
                return x

    def test_indented_continuation_accepted(self):
        # continuations captured from inside a function body arrive indented
        @code_region(name="ok", continuation_source="    print(z)\n    z += 1")
        def region(x):
            z = x
            return z

        assert get_region_spec(region).continuation_source is not None

    def test_direct_regionspec_construction_validated(self):
        with pytest.raises(ValueError, match="continuation_source"):
            RegionSpec(name="n", fn=lambda: None, continuation_source="if :")
