"""Trace save/load tests."""

import numpy as np
import pytest

from repro.extract import RegionTracer, Trace, build_dddg, classify_io

from . import regions


class TestTracePersistence:
    def test_round_trip_preserves_everything(self, rng, tmp_path):
        n = 6
        m = rng.random((n, n))
        A = m @ m.T + n * np.eye(n)
        inputs = dict(A=A, b=rng.random(n), x0=np.zeros(n), iters=30, tol=1e-14)
        _, trace = RegionTracer(regions.pcg_like).trace(**inputs)
        path = trace.save(tmp_path / "trace.json")
        loaded = Trace.load(path)

        assert loaded.dynamic_length() == trace.dynamic_length()
        assert loaded.stored_length() == trace.stored_length()
        assert list(loaded.flatten()) == list(trace.flatten())
        assert loaded.stmt_table.keys() == trace.stmt_table.keys()
        for sid in trace.stmt_table:
            assert loaded.stmt_table[sid] == trace.stmt_table[sid]

    def test_loaded_trace_builds_identical_dddg(self, rng, tmp_path):
        vals = rng.random(25)
        _, trace = RegionTracer(regions.loop_sum).trace(values=vals, n=25)
        loaded = Trace.load(trace.save(tmp_path / "t.json"))
        original = build_dddg(trace)
        rebuilt = build_dddg(loaded)
        assert set(original.graph.edges) == set(rebuilt.graph.edges)
        assert original.root_reads == rebuilt.root_reads

    def test_loaded_trace_classifies_identically(self, rng, tmp_path):
        x = rng.random(4)
        _, trace = RegionTracer(regions.two_outputs).trace(a=x, b=x + 1)
        loaded = Trace.load(trace.save(tmp_path / "t.json"))
        namespace = dict(a=x, b=x + 1)
        io1 = classify_io(build_dddg(trace), namespace, {"u", "s"})
        io2 = classify_io(build_dddg(loaded), namespace, {"u", "s"})
        assert io1 == io2

    def test_unsupported_version_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text('{"version": 99}')
        with pytest.raises(ValueError):
            Trace.load(tmp_path / "bad.json")
