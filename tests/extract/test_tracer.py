"""Tracer tests: instrumentation, loop compression, trace accounting."""

import numpy as np
import pytest

from repro.extract import RegionTracer, StmtHit, LoopTrace

from . import regions


class TestBasicTracing:
    def test_result_matches_uninstrumented(self, rng):
        x = rng.standard_normal(5)
        tracer = RegionTracer(regions.saxpy)
        result, trace = tracer.trace(a=2.0, x=x, y0=np.zeros(5))
        assert np.allclose(result, regions.saxpy(2.0, x, np.zeros(5)))

    def test_trace_records_statements(self, rng):
        _, trace = RegionTracer(regions.saxpy).trace(
            a=1.0, x=rng.standard_normal(3), y0=np.zeros(3)
        )
        assert trace.dynamic_length() >= 2  # assignment + return

    def test_stmt_table_has_read_write_sets(self, rng):
        tracer = RegionTracer(regions.saxpy)
        _, trace = tracer.trace(a=1.0, x=rng.standard_normal(3), y0=np.zeros(3))
        infos = list(trace.stmt_table.values())
        assign = next(i for i in infos if i.kind == "assign")
        assert {"a", "x", "y0"} <= set(assign.reads)
        assert "y" in assign.writes

    def test_non_function_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            RegionTracer(42)

    def test_pcg_region_traces(self, rng):
        n = 8
        m = rng.random((n, n))
        A = m @ m.T + n * np.eye(n)
        b = rng.random(n)
        result, trace = RegionTracer(regions.pcg_like).trace(
            A=A, b=b, x0=np.zeros(n), iters=50, tol=1e-18
        )
        assert np.allclose(A @ result, b, atol=1e-6)
        assert trace.dynamic_length() > 20


class TestLoopCompression:
    def test_uniform_loop_compresses_to_one_iteration(self, rng):
        vals = rng.random(50)
        _, trace = RegionTracer(regions.loop_sum).trace(values=vals, n=50)
        # 50 dynamic iterations, ~1 stored
        assert trace.dynamic_length() > 40
        assert trace.stored_length() < 12
        assert trace.compression_ratio() > 5

    def test_compression_preserves_dynamic_count(self, rng):
        vals = rng.random(20)
        _, compressed = RegionTracer(regions.loop_sum).trace(values=vals, n=20)
        _, full = RegionTracer(regions.loop_sum).trace(values=vals, n=20, compress=False)
        assert compressed.dynamic_length() == full.dynamic_length()
        assert compressed.stored_length() < full.stored_length()

    def test_flatten_multiplicities_sum_correctly(self, rng):
        vals = rng.random(10)
        _, trace = RegionTracer(regions.loop_sum).trace(values=vals, n=10)
        body_mults = [m for sid, m in trace.flatten()
                      if "total + values" in trace.stmt_table[sid].source]
        assert sum(body_mults) == 10

    def test_nested_loops_compress(self, rng):
        m = rng.random((6, 3))
        _, trace = RegionTracer(regions.nested_loops).trace(matrix=m, reps=4)
        assert trace.dynamic_length() >= 24
        assert trace.compression_ratio() > 3

    def test_loop_trace_structure(self, rng):
        _, trace = RegionTracer(regions.loop_sum).trace(values=rng.random(5), n=5)
        loops = [e for e in trace.events if isinstance(e, LoopTrace)]
        assert len(loops) == 1
        assert loops[0].total_iterations == 5
        assert loops[0].stored_iterations == 1

    def test_divergent_loop_stores_divergent_iterations(self, rng):
        # pcg_like's loop has a data-dependent break: iterations diverge only
        # at the final one, so stored iterations stay small but > 0
        n = 6
        m = rng.random((n, n))
        A = m @ m.T + n * np.eye(n)
        _, trace = RegionTracer(regions.pcg_like).trace(
            A=A, b=rng.random(n), x0=np.zeros(n), iters=30, tol=1e-20
        )
        loops = [e for e in trace.events if isinstance(e, LoopTrace)]
        assert loops and loops[0].stored_iterations <= loops[0].total_iterations


class TestBranches:
    def test_both_branch_paths_trace(self, rng):
        x = rng.random(3)
        tracer = RegionTracer(regions.branchy)
        r_pos, t_pos = tracer.trace(x=x, flag=1.0)
        r_neg, t_neg = tracer.trace(x=x, flag=-1.0)
        assert np.allclose(r_pos, x * 2.0)
        assert np.allclose(r_neg, x - 1.0)
        # divergent control flow -> different statement sequences
        assert [s for s, _ in t_pos.flatten()] != [s for s, _ in t_neg.flatten()]

    def test_signature_stability(self, rng):
        x = rng.random(3)
        tracer = RegionTracer(regions.branchy)
        _, t1 = tracer.trace(x=x, flag=1.0)
        _, t2 = tracer.trace(x=x + 1.0, flag=1.0)
        assert [s for s, _ in t1.flatten()] == [s for s, _ in t2.flatten()]
