"""Trace event model tests: signatures, flattening, compression accounting."""

import pytest

from repro.extract import LoopTrace, StmtHit, StmtInfo, Trace


def info(stmt_id, reads=(), writes=(), kind="assign"):
    return StmtInfo(
        stmt_id=stmt_id, lineno=stmt_id, kind=kind,
        reads=frozenset(reads), writes=frozenset(writes),
        arrays_read=frozenset(), arrays_written=frozenset(),
        op_count=1, source=f"s{stmt_id}",
    )


def make_trace(events, ids):
    return Trace(events=events, stmt_table={i: info(i) for i in ids})


class TestSignatures:
    def test_stmt_hit_signature(self):
        assert StmtHit(3).signature() == ("s", 3)
        assert StmtHit(3).signature() != StmtHit(4).signature()

    def test_loop_signature_includes_counts(self):
        a = LoopTrace(0, [([StmtHit(1)], 2)])
        b = LoopTrace(0, [([StmtHit(1)], 3)])
        assert a.signature() != b.signature()

    def test_nested_loop_signature(self):
        inner = LoopTrace(1, [([StmtHit(2)], 5)])
        outer_a = LoopTrace(0, [([StmtHit(1), inner], 2)])
        inner_b = LoopTrace(1, [([StmtHit(2)], 6)])
        outer_b = LoopTrace(0, [([StmtHit(1), inner_b], 2)])
        assert outer_a.signature() != outer_b.signature()


class TestFlattening:
    def test_simple_multiplicity(self):
        loop = LoopTrace(0, [([StmtHit(1)], 4)])
        trace = make_trace([StmtHit(0), loop], [0, 1])
        flat = list(trace.flatten())
        assert flat == [(0, 1), (1, 4)]

    def test_nested_multiplicities_multiply(self):
        inner = LoopTrace(1, [([StmtHit(2)], 3)])
        outer = LoopTrace(0, [([StmtHit(1), inner], 5)])
        trace = make_trace([outer], [1, 2])
        flat = dict(trace.flatten())
        assert flat[1] == 5
        assert flat[2] == 15

    def test_heterogeneous_iterations(self):
        loop = LoopTrace(0, [([StmtHit(1)], 2), ([StmtHit(1), StmtHit(2)], 1)])
        trace = make_trace([loop], [1, 2])
        assert trace.dynamic_length() == 4  # 2*1 + 1*2
        assert trace.stored_length() == 3


class TestAccounting:
    def test_compression_ratio(self):
        loop = LoopTrace(0, [([StmtHit(1), StmtHit(2)], 10)])
        trace = make_trace([loop], [1, 2])
        assert trace.dynamic_length() == 20
        assert trace.stored_length() == 2
        assert trace.compression_ratio() == pytest.approx(10.0)

    def test_empty_trace(self):
        trace = make_trace([], [])
        assert trace.dynamic_length() == 0
        assert trace.compression_ratio() == 1.0

    def test_loop_iteration_counters(self):
        loop = LoopTrace(0, [([StmtHit(1)], 7), ([StmtHit(2)], 1)])
        assert loop.total_iterations == 8
        assert loop.stored_iterations == 2
