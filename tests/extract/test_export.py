"""DDDG export tests."""

import numpy as np
import pytest

from repro.extract import (
    RegionTracer,
    build_dddg,
    classify_io,
    summarize_dddg,
    to_dot,
    write_dot,
)

from . import regions


@pytest.fixture
def pcg_graph(rng):
    n = 6
    m = rng.random((n, n))
    A = m @ m.T + n * np.eye(n)
    inputs = dict(A=A, b=rng.random(n), x0=np.zeros(n), iters=30, tol=1e-14)
    _, trace = RegionTracer(regions.pcg_like).trace(**inputs)
    dddg = build_dddg(trace)
    io = classify_io(dddg, inputs, {"x"})
    return dddg, io


class TestDotExport:
    def test_valid_dot_structure(self, pcg_graph):
        dddg, io = pcg_graph
        dot = to_dot(dddg, io)
        assert dot.startswith("digraph dddg {")
        assert dot.rstrip().endswith("}")
        assert '"A@0"' in dot
        assert "->" in dot

    def test_io_styling(self, pcg_graph):
        dddg, io = pcg_graph
        dot = to_dot(dddg, io)
        assert "shape=box" in dot          # inputs
        assert "shape=doublecircle" in dot  # outputs

    def test_edge_weights_labelled(self, pcg_graph):
        dddg, io = pcg_graph
        assert 'label="x' in to_dot(dddg, io)

    def test_truncation(self, pcg_graph):
        dddg, io = pcg_graph
        dot = to_dot(dddg, io, max_nodes=5)
        assert "truncated" in dot
        node_lines = [l for l in dot.splitlines() if "shape=" in l]
        assert len(node_lines) <= 5

    def test_write_dot(self, pcg_graph, tmp_path):
        dddg, io = pcg_graph
        path = write_dot(dddg, tmp_path / "g.dot", io)
        assert path.exists()
        assert path.read_text().startswith("digraph")


class TestSummary:
    def test_summary_mentions_counts_and_io(self, pcg_graph):
        dddg, io = pcg_graph
        text = summarize_dddg(dddg, io)
        assert "nodes" in text and "edges" in text
        assert "classified inputs" in text
        assert "x" in text

    def test_summary_without_io(self, pcg_graph):
        dddg, _ = pcg_graph
        text = summarize_dddg(dddg)
        assert "classified inputs" not in text
        assert "roots" in text
