"""Static-analysis and liveness tests."""

import ast

import pytest

from repro.extract import analyze_statement, count_ops, live_in, names_read


def stmt(source: str) -> ast.stmt:
    return ast.parse(source).body[0]


class TestAnalyzeStatement:
    def test_simple_assign(self):
        info = analyze_statement(stmt("y = a + b"), 0)
        assert info.kind == "assign"
        assert info.reads == frozenset({"a", "b"})
        assert info.writes == frozenset({"y"})

    def test_augassign_reads_and_writes_target(self):
        info = analyze_statement(stmt("y += a"), 0)
        assert "y" in info.reads and "y" in info.writes
        assert "a" in info.reads

    def test_subscript_read_groups_to_array(self):
        info = analyze_statement(stmt("y = arr[i] + arr[j]"), 0)
        assert "arr" in info.arrays_read
        assert {"i", "j"} <= info.reads

    def test_subscript_write_is_read_modify_write(self):
        info = analyze_statement(stmt("arr[i] = v"), 0)
        assert "arr" in info.arrays_written
        assert "arr" in info.reads  # element write reads the array object

    def test_tuple_unpacking(self):
        info = analyze_statement(stmt("a, b = f(x)"), 0)
        assert info.writes == frozenset({"a", "b"})
        assert {"f", "x"} <= info.reads

    def test_method_call_reads_receiver(self):
        info = analyze_statement(stmt("y = A.matvec(p)"), 0)
        assert {"A", "p"} <= info.reads

    def test_for_header(self):
        info = analyze_statement(stmt("for i in range(n):\n    pass"), 0)
        assert info.kind == "for"
        assert "n" in info.reads
        assert "i" in info.writes

    def test_while_header(self):
        info = analyze_statement(stmt("while x < 3:\n    pass"), 0)
        assert info.kind == "while"
        assert "x" in info.reads

    def test_if_header(self):
        info = analyze_statement(stmt("if cond:\n    pass"), 0)
        assert info.kind == "if"
        assert "cond" in info.reads

    def test_return_reads_value(self):
        info = analyze_statement(stmt("return x + y"), 0)
        assert info.kind == "return"
        assert {"x", "y"} <= info.reads

    def test_op_count(self):
        info = analyze_statement(stmt("y = a * b + c - d"), 0)
        assert info.op_count == 3

    def test_names_read_helper(self):
        assert names_read(ast.parse("a + b[c]", mode="eval").body) >= {"a", "b", "c"}

    def test_count_ops_helper(self):
        assert count_ops(ast.parse("a*b + c", mode="eval").body) == 2


class TestLiveness:
    def test_read_variable_is_live(self):
        assert "x" in live_in("print(x)")

    def test_overwritten_variable_not_live(self):
        assert "y" not in live_in("y = 1\nprint(y)")

    def test_read_then_written_is_live(self):
        assert "z" in live_in("z = z + 1\nprint(z)")

    def test_live_through_if_branches(self):
        src = "if c:\n    print(a)\nelse:\n    print(b)"
        live = live_in(src)
        assert {"a", "b", "c"} <= live

    def test_defined_in_one_branch_still_live_via_other(self):
        # v is killed in the if-branch but read directly in the else-branch
        src = "if c:\n    v = 1\nprint(v)"
        assert "v" in live_in(src)

    def test_loop_body_uses_are_live(self):
        src = "for i in range(3):\n    total = total + data[i]\nprint(total)"
        live = live_in(src)
        assert "data" in live and "total" in live
        assert "i" not in live  # defined by the loop itself

    def test_array_element_write_keeps_array_live(self):
        assert "arr" in live_in("arr[0] = 1.0\nprint(arr)")

    def test_empty_continuation(self):
        assert live_in("") == frozenset()

    def test_function_defs_skipped(self):
        src = "def helper(q):\n    return q\nprint(helper(w))"
        live = live_in(src)
        assert "w" in live
        assert "q" not in live
