"""Static-analysis and liveness tests."""

import ast

import pytest

from repro.extract import analyze_statement, count_ops, live_in, names_read


def stmt(source: str) -> ast.stmt:
    return ast.parse(source).body[0]


class TestAnalyzeStatement:
    def test_simple_assign(self):
        info = analyze_statement(stmt("y = a + b"), 0)
        assert info.kind == "assign"
        assert info.reads == frozenset({"a", "b"})
        assert info.writes == frozenset({"y"})

    def test_augassign_reads_and_writes_target(self):
        info = analyze_statement(stmt("y += a"), 0)
        assert "y" in info.reads and "y" in info.writes
        assert "a" in info.reads

    def test_subscript_read_groups_to_array(self):
        info = analyze_statement(stmt("y = arr[i] + arr[j]"), 0)
        assert "arr" in info.arrays_read
        assert {"i", "j"} <= info.reads

    def test_subscript_write_is_read_modify_write(self):
        info = analyze_statement(stmt("arr[i] = v"), 0)
        assert "arr" in info.arrays_written
        assert "arr" in info.reads  # element write reads the array object

    def test_tuple_unpacking(self):
        info = analyze_statement(stmt("a, b = f(x)"), 0)
        assert info.writes == frozenset({"a", "b"})
        assert {"f", "x"} <= info.reads

    def test_method_call_reads_receiver(self):
        info = analyze_statement(stmt("y = A.matvec(p)"), 0)
        assert {"A", "p"} <= info.reads

    def test_for_header(self):
        info = analyze_statement(stmt("for i in range(n):\n    pass"), 0)
        assert info.kind == "for"
        assert "n" in info.reads
        assert "i" in info.writes

    def test_while_header(self):
        info = analyze_statement(stmt("while x < 3:\n    pass"), 0)
        assert info.kind == "while"
        assert "x" in info.reads

    def test_if_header(self):
        info = analyze_statement(stmt("if cond:\n    pass"), 0)
        assert info.kind == "if"
        assert "cond" in info.reads

    def test_return_reads_value(self):
        info = analyze_statement(stmt("return x + y"), 0)
        assert info.kind == "return"
        assert {"x", "y"} <= info.reads

    def test_op_count(self):
        info = analyze_statement(stmt("y = a * b + c - d"), 0)
        assert info.op_count == 3

    def test_names_read_helper(self):
        assert names_read(ast.parse("a + b[c]", mode="eval").body) >= {"a", "b", "c"}

    def test_count_ops_helper(self):
        assert count_ops(ast.parse("a*b + c", mode="eval").body) == 2


class TestLiveness:
    def test_read_variable_is_live(self):
        assert "x" in live_in("print(x)")

    def test_overwritten_variable_not_live(self):
        assert "y" not in live_in("y = 1\nprint(y)")

    def test_read_then_written_is_live(self):
        assert "z" in live_in("z = z + 1\nprint(z)")

    def test_live_through_if_branches(self):
        src = "if c:\n    print(a)\nelse:\n    print(b)"
        live = live_in(src)
        assert {"a", "b", "c"} <= live

    def test_defined_in_one_branch_still_live_via_other(self):
        # v is killed in the if-branch but read directly in the else-branch
        src = "if c:\n    v = 1\nprint(v)"
        assert "v" in live_in(src)

    def test_loop_body_uses_are_live(self):
        src = "for i in range(3):\n    total = total + data[i]\nprint(total)"
        live = live_in(src)
        assert "data" in live and "total" in live
        assert "i" not in live  # defined by the loop itself

    def test_array_element_write_keeps_array_live(self):
        assert "arr" in live_in("arr[0] = 1.0\nprint(arr)")

    def test_empty_continuation(self):
        assert live_in("") == frozenset()

    def test_function_defs_skipped(self):
        src = "def helper(q):\n    return q\nprint(helper(w))"
        live = live_in(src)
        assert "w" in live
        assert "q" not in live


class TestLivenessLoopTargets:
    """Regression: the for-loop target must be killed from body liveness."""

    def test_loop_target_shadowing_region_output_not_live(self):
        # the continuation's own loop redefines `x`; a region output named
        # `x` must NOT be forced live by the body's uses of it
        src = "for x in data:\n    acc = acc + x\nprint(acc)"
        live = live_in(src)
        assert "x" not in live
        assert {"data", "acc"} <= live

    def test_fallthrough_use_of_target_stays_live(self):
        # zero-iteration path: if `data` is empty, the `x` read after the
        # loop is the region's `x`, so it must remain live
        src = "for x in data:\n    pass\nprint(x)"
        live = live_in(src)
        assert "x" in live
        assert "data" in live

    def test_tuple_target_killed(self):
        src = "for k, v in pairs:\n    total = total + k * v\nprint(total)"
        live = live_in(src)
        assert "k" not in live and "v" not in live
        assert {"pairs", "total"} <= live

    def test_target_read_in_iter_stays_live(self):
        # `range(i)` reads the *outer* i before the loop rebinds it
        src = "for i in range(i):\n    s = s + i\nprint(s)"
        live = live_in(src)
        assert "i" in live


class TestLivenessCornerCases:
    def test_augassign_keeps_target_live(self):
        # x += 1 is a read-modify-write: the pre-region x is consumed
        assert "x" in live_in("x += 1\nprint(x)")

    def test_augassign_on_array_element(self):
        assert "arr" in live_in("arr[0] += 1.0\nprint(arr)")

    def test_nested_if_inside_for(self):
        src = (
            "for i in range(n):\n"
            "    if flags[i]:\n"
            "        pos = pos + step\n"
            "    else:\n"
            "        neg = neg + step\n"
            "print(pos + neg)"
        )
        live = live_in(src)
        assert {"n", "flags", "step", "pos", "neg"} <= live
        assert "i" not in live

    def test_nested_for_targets_all_killed(self):
        src = (
            "for i in range(n):\n"
            "    for j in range(m):\n"
            "        acc = acc + grid[i] * grid[j]\n"
            "print(acc)"
        )
        live = live_in(src)
        assert {"n", "m", "grid", "acc"} <= live
        assert "i" not in live and "j" not in live

    def test_while_loop_test_and_body_reads(self):
        src = "while err > tol:\n    err = err * decay\nprint(err)"
        live = live_in(src)
        assert {"err", "tol", "decay"} <= live

    def test_while_body_write_does_not_kill(self):
        # the body may run zero times, so a pre-loop `u` can reach print(u)
        src = "while cond:\n    u = 0.0\nprint(u)"
        live = live_in(src)
        assert "u" in live and "cond" in live

    def test_tuple_unpacking_assignment_kills_targets(self):
        src = "a, b = f(z)\nprint(a + b)"
        live = live_in(src)
        assert "a" not in live and "b" not in live
        assert "z" in live

    def test_starred_unpacking(self):
        src = "a, *rest = items\nprint(a, rest)"
        live = live_in(src)
        assert "a" not in live and "rest" not in live
        assert "items" in live
