"""DDDG construction and input/output classification tests."""

import numpy as np
import pytest

from repro.extract import RegionTracer, build_dddg, classify_io

from . import regions


def trace_pcg(rng, n=8):
    m = rng.random((n, n))
    A = m @ m.T + n * np.eye(n)
    inputs = dict(A=A, b=rng.random(n), x0=np.zeros(n), iters=40, tol=1e-16)
    _, trace = RegionTracer(regions.pcg_like).trace(**inputs)
    return trace, inputs


class TestConstruction:
    def test_roots_are_inputs(self, rng):
        trace, inputs = trace_pcg(rng)
        dddg = build_dddg(trace)
        assert {"A", "b", "x0"} <= dddg.root_reads

    def test_written_vars_tracked(self, rng):
        trace, _ = trace_pcg(rng)
        dddg = build_dddg(trace)
        assert {"x", "r", "p", "alpha"} <= dddg.written

    def test_versions_in_graph(self, rng):
        trace, _ = trace_pcg(rng)
        dddg = build_dddg(trace)
        # x is written repeatedly: multiple version nodes exist
        x_versions = [n for n in dddg.graph.nodes if n.startswith("x@")]
        assert len(x_versions) >= 2

    def test_leaves_exist(self, rng):
        trace, _ = trace_pcg(rng)
        dddg = build_dddg(trace)
        assert dddg.leaves

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_parallel_build_identical_to_sequential(self, workers, rng):
        trace, _ = trace_pcg(rng)
        seq = build_dddg(trace, workers=1)
        par = build_dddg(trace, workers=workers)
        assert set(seq.graph.edges) == set(par.graph.edges)
        for edge in seq.graph.edges:
            assert seq.graph.edges[edge]["weight"] == par.graph.edges[edge]["weight"]
        assert seq.root_reads == par.root_reads
        assert seq.written == par.written

    def test_edge_weights_reflect_loop_multiplicity(self, rng):
        vals = rng.random(30)
        _, trace = RegionTracer(regions.loop_sum).trace(values=vals, n=30)
        dddg = build_dddg(trace)
        weights = [d["weight"] for _, _, d in dddg.graph.edges(data=True)]
        assert max(weights) >= 30  # the compressed loop body edge


class TestClassification:
    def test_pcg_classification(self, rng):
        trace, inputs = trace_pcg(rng)
        io = classify_io(build_dddg(trace), inputs, {"x"})
        assert set(io.inputs) >= {"A", "b", "x0"}
        assert io.outputs == ("x",)
        assert "r" in io.internals and "p" in io.internals

    def test_modules_excluded_from_inputs(self, rng):
        trace, inputs = trace_pcg(rng)
        namespace = dict(inputs)
        namespace["np"] = np  # module must not become a feature
        io = classify_io(build_dddg(trace), namespace, {"x"})
        assert "np" not in io.inputs

    def test_builtins_excluded_from_internals(self, rng):
        trace, inputs = trace_pcg(rng)
        io = classify_io(build_dddg(trace), inputs, {"x"})
        assert "range" not in io.internals
        assert "float" not in io.internals

    def test_live_after_filters_outputs(self, rng):
        x = rng.random(4)
        _, trace = RegionTracer(regions.two_outputs).trace(a=x, b=x + 1)
        dddg = build_dddg(trace)
        io_both = classify_io(dddg, dict(a=x, b=x + 1), {"u", "s"})
        assert set(io_both.outputs) == {"u", "s"}
        io_one = classify_io(dddg, dict(a=x, b=x + 1), {"u"})
        assert io_one.outputs == ("u",)
        assert "s" in io_one.internals

    def test_scalar_inputs_classified(self, rng):
        trace, inputs = trace_pcg(rng)
        io = classify_io(build_dddg(trace), inputs, {"x"})
        assert "iters" in io.inputs and "tol" in io.inputs
