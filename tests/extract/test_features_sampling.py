"""Feature-schema and sample-generation tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.extract import (
    FeatureSchema,
    Perturbation,
    SampleGenerator,
    acquire,
    batch_to_csr,
    build_schema,
    perturb_value,
    returned_names,
)
from repro.sparse import from_dense

from . import regions


class TestSchema:
    def test_build_and_flatten(self, rng):
        example = {"a": rng.random((2, 3)), "b": rng.random(4), "c": 1.5}
        schema = build_schema(["a", "b", "c"], example)
        assert schema.total_size == 6 + 4 + 1
        vec = schema.flatten(example)
        assert vec[:6].reshape(2, 3) == pytest.approx(example["a"])
        assert vec[-1] == 1.5

    def test_unflatten_round_trip(self, rng):
        example = {"a": rng.random((2, 3)), "b": rng.random(4)}
        schema = build_schema(["a", "b"], example)
        back = schema.unflatten(schema.flatten(example))
        assert np.allclose(back["a"], example["a"])
        assert np.allclose(back["b"], example["b"])

    def test_sparse_field_round_trip(self, rng):
        dense = rng.random((3, 4)) * (rng.random((3, 4)) < 0.5)
        example = {"m": from_dense(dense, "csr")}
        schema = build_schema(["m"], example)
        assert schema.has_sparse
        back = schema.unflatten(schema.flatten(example))
        assert np.allclose(back["m"].to_dense(), dense)

    def test_shape_mismatch_rejected(self, rng):
        schema = build_schema(["a"], {"a": rng.random((2, 2))})
        with pytest.raises(ValueError):
            schema.flatten({"a": rng.random((3, 3))})

    def test_wrong_vector_length_rejected(self, rng):
        schema = build_schema(["a"], {"a": rng.random(4)})
        with pytest.raises(ValueError):
            schema.unflatten(np.zeros(5))

    def test_missing_example_rejected(self):
        with pytest.raises(KeyError):
            build_schema(["missing"], {})

    def test_field_lookup(self, rng):
        schema = build_schema(["a", "b"], {"a": rng.random(3), "b": rng.random(2)})
        assert schema.field("b").offset == 3
        with pytest.raises(KeyError):
            schema.field("zzz")

    def test_density(self, rng):
        schema = build_schema(["a"], {"a": np.array([1.0, 0.0, 0.0, 2.0])})
        assert schema.density({"a": np.array([1.0, 0.0, 0.0, 2.0])}) == 0.5

    def test_batch_to_csr(self, rng):
        batch = rng.random((5, 8)) * (rng.random((5, 8)) < 0.3)
        csr = batch_to_csr(batch)
        assert np.allclose(csr.to_dense(), batch)


class TestPerturbation:
    def test_gaussian_changes_values(self, rng):
        x = rng.random(10) + 1.0
        out = perturb_value(x, Perturbation("gaussian", 0.1), rng)
        assert not np.allclose(out, x)
        assert np.all(np.abs(out - x) < 2.0)

    def test_uniform_multiplicative(self, rng):
        x = np.full(10, 4.0)
        out = perturb_value(x, Perturbation("uniform", 0.2), rng)
        assert np.all(out >= 4.0 * 0.8 - 1e-12)
        assert np.all(out <= 4.0 * 1.2 + 1e-12)

    def test_sparse_structure_preserved(self, rng):
        dense = rng.random((4, 4)) * (rng.random((4, 4)) < 0.4)
        csr = from_dense(dense, "csr")
        out = perturb_value(csr, Perturbation("gaussian", 0.05), rng)
        assert np.array_equal(out.indices, csr.indices)
        assert np.array_equal(out.indptr, csr.indptr)
        assert not np.allclose(out.data, csr.data)

    def test_int_stays_int(self, rng):
        out = perturb_value(50, Perturbation("gaussian", 0.05), rng)
        assert isinstance(out, int) and out >= 0

    def test_bool_rejected(self, rng):
        with pytest.raises(TypeError):
            perturb_value(True, Perturbation(), rng)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Perturbation(kind="levy")

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            Perturbation(scale=-0.1)


class TestReturnedNames:
    def test_single_name(self):
        assert returned_names(regions.saxpy) == ("y",)

    def test_tuple_names(self):
        assert returned_names(regions.two_outputs) == ("u", "s")

    def test_undecorated_expression_return(self):
        assert returned_names(regions.undecorated) == ()


class TestSampleGenerator:
    def test_generates_requested_count(self, rng):
        a, b = rng.random(4), rng.random(4)
        in_schema = build_schema(["a", "b"], {"a": a, "b": b})
        out_schema = build_schema(["u", "s"], {"u": a + b, "s": 1.0})
        gen = SampleGenerator(regions.two_outputs, in_schema, out_schema)
        x, y = gen.generate({"a": a, "b": b}, 12, rng=rng)
        assert x.shape == (12, 8)
        assert y.shape == (12, 5)

    def test_outputs_are_ground_truth(self, rng):
        a, b = rng.random(3), rng.random(3)
        in_schema = build_schema(["a", "b"], {"a": a, "b": b})
        out_schema = build_schema(["u"], {"u": a + b})
        gen = SampleGenerator(regions.two_outputs, in_schema, out_schema,
                              output_names=("u", "s"))
        x, y = gen.generate({"a": a, "b": b}, 5, rng=rng)
        for i in range(5):
            vars_in = in_schema.unflatten(x[i])
            assert np.allclose(y[i], vars_in["a"] + vars_in["b"])

    def test_zero_samples_rejected(self, rng):
        a = rng.random(3)
        schema = build_schema(["a"], {"a": a})
        gen = SampleGenerator(regions.saxpy, schema, schema, output_names=("y",))
        with pytest.raises(ValueError):
            gen.generate({"a": a}, 0)


class TestAcquire:
    def test_end_to_end_pcg(self, rng):
        n = 6
        m = rng.random((n, n))
        A = m @ m.T + n * np.eye(n)
        result = acquire(
            regions.pcg_like,
            dict(A=A, b=rng.random(n), x0=np.zeros(n), iters=30, tol=1e-16),
            n_samples=15,
            rng=rng,
        )
        assert result.x.shape[0] == 15
        assert result.output_dim == n
        assert "A" in result.io.inputs
        assert result.io.outputs == ("x",)
        assert "compression" in result.summary()

    def test_scalar_knobs_not_perturbed_by_default(self, rng):
        n = 5
        m = rng.random((n, n))
        A = m @ m.T + n * np.eye(n)
        result = acquire(
            regions.pcg_like,
            dict(A=A, b=rng.random(n), x0=np.zeros(n), iters=20, tol=1e-14),
            n_samples=8,
            rng=rng,
        )
        tol_field = result.input_schema.field("tol")
        tol_column = result.x[:, tol_field.offset]
        assert np.all(tol_column == tol_column[0])  # never perturbed
