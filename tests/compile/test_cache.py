"""Persistence, crash-safety, and keying of the plan cache."""

import numpy as np
import pytest

from repro import obs
from repro.compile import (
    PlanCache,
    compile_package,
    csr_pattern_key,
    package_digest,
    plan_from_payload,
    plan_key,
    plan_payload,
    warm_plan_cache,
)
from repro.nn.tensor import batch_invariant
from repro.registry.formats import write_plan_npz

from .test_conv_plans import make_csr, sparse_ae_package
from .test_plan import make_package


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def key_for(package, *, batch_invariant=True):
    return plan_key(
        package_digest(package),
        input_shape=(package.input_dim,),
        dtype="<f8",
        batch_invariant=batch_invariant,
    )


class TestKeying:
    def test_key_depends_on_every_specialization_field(self, rng):
        package = make_package(rng)
        digest = package_digest(package)
        base = plan_key(digest, input_shape=(6,), dtype="<f8", batch_invariant=True)
        assert base != plan_key(
            digest, input_shape=(7,), dtype="<f8", batch_invariant=True
        )
        assert base != plan_key(
            digest, input_shape=(6,), dtype="<f4", batch_invariant=True
        )
        assert base != plan_key(
            digest, input_shape=(6,), dtype="<f8", batch_invariant=False
        )
        assert base != plan_key(
            "other-digest", input_shape=(6,), dtype="<f8", batch_invariant=True
        )

    def test_digest_tracks_parameter_bytes(self, rng):
        package = make_package(rng)
        before = package_digest(package)
        param = next(iter(package.model.parameters()))
        param.data = param.data + 1.0
        assert package_digest(package) != before

    def test_equal_packages_share_a_digest(self, rng):
        a = make_package(rng)
        b = make_package(np.random.default_rng(12345))
        np.testing.assert_array_equal(
            next(iter(a.model.parameters())).data,
            next(iter(b.model.parameters())).data,
        )
        assert package_digest(a) == package_digest(b)


class TestTwoTiers:
    def test_memory_tier_round_trip(self, rng, tmp_path):
        package = make_package(rng)
        cache = PlanCache(tmp_path)
        key = key_for(package)
        assert cache.get(key) is None
        cache.put(key, compile_package(package))
        assert cache.get(key) is not None

    def test_disk_tier_survives_restart_bit_identically(self, rng, tmp_path):
        package = make_package(rng, activation="sigmoid", residual=True, hidden=(8, 8))
        key = key_for(package)
        PlanCache(tmp_path).put(key, compile_package(package))
        # a new cache instance = a new process: must hit disk, not recompile
        reloaded = PlanCache(tmp_path).get(key)
        assert reloaded is not None
        x = rng.standard_normal((6, 6))
        with batch_invariant():
            ref = package.predict(x)
        np.testing.assert_array_equal(reloaded.predict(x), ref)

    def test_memoryless_cache_without_directory(self, rng):
        package = make_package(rng)
        cache = PlanCache(None)
        key = key_for(package)
        cache.put(key, compile_package(package))
        assert cache.get(key) is not None
        assert cache.directory is None

    def test_disabled_cache_is_inert(self, rng, tmp_path):
        package = make_package(rng)
        cache = PlanCache(tmp_path, enabled=False)
        key = key_for(package)
        cache.put(key, compile_package(package))
        assert cache.get(key) is None
        assert not (tmp_path / "plan_cache").exists()

    def test_keys_and_clear_cover_both_tiers(self, rng, tmp_path):
        package = make_package(rng)
        cache = PlanCache(tmp_path)
        for invariant in (True, False):
            cache.put(
                key_for(package, batch_invariant=invariant),
                compile_package(package, batch_invariant=invariant),
            )
        assert len(cache.keys()) == 2
        assert PlanCache(tmp_path).keys() == cache.keys()  # from disk alone
        assert cache.clear() == 2
        assert cache.keys() == []
        assert PlanCache(tmp_path).keys() == []

    def test_hit_miss_counters(self, rng, tmp_path):
        package = make_package(rng)
        cache = PlanCache(tmp_path)
        key = key_for(package)
        cache.get(key)                    # miss
        cache.put(key, compile_package(package))
        cache.get(key)                    # memory hit
        PlanCache(tmp_path).get(key)      # disk hit
        registry = obs.get_registry()
        assert registry.get("repro_compile_cache_misses_total").total() == 1
        hits = registry.get("repro_compile_cache_hits_total")
        assert hits.value(tier="memory") == 1
        assert hits.value(tier="disk") == 1


class TestCrashSafety:
    def test_kill_mid_write_leaves_no_poisoned_entry(self, rng, tmp_path):
        """A simulated crash between payload write and publish must read
        as a miss, and a later put() must still land a good entry."""
        package = make_package(rng)
        key = key_for(package)
        cache = PlanCache(tmp_path)
        # the registry stages payloads in a temp dir and renames; a kill
        # mid-write leaves only stray temp state, never a resolvable
        # version — emulate the closest on-disk wreckage by hand
        stranded = cache.directory / key / ".staging-killed"
        stranded.mkdir(parents=True)
        (stranded / "plan.npz").write_bytes(b"partial garbage")
        assert cache.get(key) is None
        cache.put(key, compile_package(package))
        assert PlanCache(tmp_path).get(key) is not None

    def test_corrupt_published_payload_reads_as_miss(self, rng, tmp_path):
        package = make_package(rng)
        key = key_for(package)
        PlanCache(tmp_path).put(key, compile_package(package))
        cache = PlanCache(tmp_path)  # no memory tier: must go to disk
        payload = next((cache.directory / key).rglob("plan.npz"))
        payload.write_bytes(b"\x00" * 16)
        assert cache.get(key) is None  # treated as a miss, no crash


class TestSchemaAndCsr:
    def test_old_schema_disk_entry_reads_as_miss(self, rng, tmp_path):
        # a plan written by an older code version carries an older schema
        # number in its payload: the loader must treat it as a miss (and
        # recompile), never crash or serve a stale-format plan
        package = make_package(rng)
        key = key_for(package)
        cache = PlanCache(tmp_path)
        cache.put(key, compile_package(package))
        payload = next((cache.directory / key).rglob("plan.npz"))
        meta, arrays = plan_payload(compile_package(package))
        write_plan_npz(payload, dict(meta, schema=1), arrays)
        assert PlanCache(tmp_path).get(key) is None

    def test_plan_from_payload_rejects_old_schema(self, rng):
        plan = compile_package(make_package(rng))
        meta, arrays = plan_payload(plan)
        with pytest.raises(ValueError, match="schema"):
            plan_from_payload(dict(meta, schema=1), arrays)

    def test_csr_key_tracks_the_sparsity_pattern(self, rng):
        a = make_csr(rng, 5, 12)
        b = make_csr(rng, 5, 12, empty_rows=(1,))
        assert csr_pattern_key(a) != csr_pattern_key(b)
        # same structure, different values: one pattern, one plan
        from repro.sparse.formats import CSRMatrix

        fresh = CSRMatrix(
            indptr=a.indptr,
            indices=a.indices,
            data=rng.standard_normal(a.nnz),
            shape=a.shape,
        )
        assert csr_pattern_key(a) == csr_pattern_key(fresh)
        base = plan_key("d", input_shape=(12,), dtype="<f8", batch_invariant=True)
        keyed = plan_key(
            "d",
            input_shape=(12,),
            dtype="<f8",
            batch_invariant=True,
            csr=csr_pattern_key(a),
        )
        assert base != keyed

    def test_csr_plan_round_trips_through_disk(self, rng, tmp_path):
        package = sparse_ae_package(rng, 16, 5, 3)
        x = make_csr(rng, 6, 16, empty_rows=(2,))
        plan = compile_package(package, csr_pattern=x)
        key = plan_key(
            package_digest(package),
            input_shape=(16,),
            dtype="<f8",
            batch_invariant=True,
            csr=csr_pattern_key(x),
        )
        PlanCache(tmp_path).put(key, plan)
        reloaded = PlanCache(tmp_path).get(key)  # disk tier only
        assert reloaded is not None
        np.testing.assert_array_equal(reloaded.predict(x), plan.predict(x))

    def test_describe_reports_step_kinds_from_disk(self, rng, tmp_path):
        package = make_package(rng)
        key = key_for(package)
        PlanCache(tmp_path).put(key, compile_package(package))
        info = PlanCache(tmp_path).describe(key)
        assert info is not None
        assert info["batch_invariant"] is True
        assert "gemm" in info["step_kinds"]
        assert info["csr"] is False


class TestWarm:
    def test_warm_covers_both_invariance_modes(self, rng, tmp_path):
        package = make_package(rng)
        cache = PlanCache(tmp_path)
        keys = warm_plan_cache(cache, package)
        assert len(keys) == 2
        assert sorted(keys) == cache.keys()

    def test_rewarm_after_restart_compiles_nothing(self, rng, tmp_path):
        package = make_package(rng)
        warm_plan_cache(PlanCache(tmp_path), package)
        obs.configure(enabled=True, reset=True)
        warm_plan_cache(PlanCache(tmp_path), package)
        registry = obs.get_registry()
        assert registry.get("repro_compile_cache_misses_total") is None or (
            registry.get("repro_compile_cache_misses_total").total() == 0
        )
        assert registry.get("repro_compile_cache_hits_total").value(tier="disk") == 2

    def test_warm_honors_registry_digest(self, rng, tmp_path):
        package = make_package(rng)
        cache = PlanCache(tmp_path)
        keys = warm_plan_cache(cache, package, digest="artifact-digest")
        assert keys[0] == plan_key(
            "artifact-digest", input_shape=(6,), dtype="<f8", batch_invariant=True
        )
