"""Bit-identity of compiled plans against the interpreted forward path.

The compiler's whole contract is "same floats, less Python": under
``batch_invariant()`` a plan's outputs must be *byte-identical* to
``SurrogatePackage.predict`` for every layer kind, batch size, and
payload round-trip.  ``np.testing.assert_array_equal`` (exact equality,
no tolerance) is deliberate throughout.
"""

import numpy as np
import pytest

from repro.autoencoder.model import Autoencoder
from repro.compile import (
    UntraceableModelError,
    compile_package,
    plan_from_payload,
    plan_payload,
)
from repro.nas.package import SurrogatePackage
from repro.nn.cnn import CNNTopology, build_model
from repro.nn.mlp import Topology
from repro.nn.tensor import batch_invariant

ACTIVATIONS = ("relu", "tanh", "sigmoid", "leaky_relu")
BATCHES = (1, 3, 32, 57)


def make_package(
    rng,
    *,
    input_dim=6,
    output_dim=2,
    hidden=(16, 8),
    activation="relu",
    residual=False,
    sparse_input=False,
    latent_dim=None,
):
    """A small package with randomized (non-degenerate) weights."""
    topology = Topology(
        hidden=hidden,
        activation=activation,
        residual=residual,
        sparse_input=sparse_input,
    )
    model_in = latent_dim if latent_dim is not None else input_dim
    model = build_model(model_in, output_dim, topology)
    for p in model.parameters():
        p.data = rng.standard_normal(p.data.shape)
    ae = None
    if latent_dim is not None:
        ae = Autoencoder(input_dim, latent_dim, depth=1)
        for p in ae.parameters():
            p.data = rng.standard_normal(p.data.shape)
    return SurrogatePackage(
        model=model,
        topology=topology,
        input_dim=input_dim,
        output_dim=output_dim,
        autoencoder=ae,
    )


def assert_bit_identical(package, plan, x):
    with batch_invariant():
        ref = package.predict(x)
    np.testing.assert_array_equal(plan.predict(x), ref)


class TestBitIdentity:
    @pytest.mark.parametrize("activation", ACTIVATIONS)
    @pytest.mark.parametrize("batch", BATCHES)
    def test_every_activation_batched(self, rng, activation, batch):
        package = make_package(rng, activation=activation)
        plan = compile_package(package)
        assert_bit_identical(package, plan, rng.standard_normal((batch, 6)))

    @pytest.mark.parametrize("activation", ACTIVATIONS)
    def test_every_activation_single_row(self, rng, activation):
        package = make_package(rng, activation=activation)
        plan = compile_package(package)
        x = rng.standard_normal(6)
        assert_bit_identical(package, plan, x)
        assert plan.predict(x).shape == (2,)

    @pytest.mark.parametrize("batch", BATCHES)
    def test_residual_topology(self, rng, batch):
        package = make_package(rng, hidden=(8, 8, 8), residual=True)
        plan = compile_package(package)
        assert_bit_identical(package, plan, rng.standard_normal((batch, 6)))

    def test_sparse_input_topology_dense_batch(self, rng):
        # SparseDense first layers trace like Dense; the compiled path only
        # ever sees the orchestrator's dense row batches
        package = make_package(rng, sparse_input=True)
        plan = compile_package(package)
        assert_bit_identical(package, plan, rng.standard_normal((5, 6)))

    @pytest.mark.parametrize("batch", (1, 32))
    def test_autoencoder_chain(self, rng, batch):
        package = make_package(rng, input_dim=10, latent_dim=4)
        plan = compile_package(package)
        assert plan.input_dim == 10
        assert_bit_identical(package, plan, rng.standard_normal((batch, 10)))

    def test_float32_input(self, rng):
        package = make_package(rng)
        plan = compile_package(package)
        x = rng.standard_normal((4, 6)).astype(np.float32)
        assert_bit_identical(package, plan, x)

    def test_payload_round_trip_is_bit_identical(self, rng):
        package = make_package(
            rng, hidden=(8, 8), activation="sigmoid", residual=True
        )
        plan = compile_package(package)
        reloaded = plan_from_payload(*plan_payload(plan))
        x = rng.standard_normal((7, 6))
        np.testing.assert_array_equal(reloaded.predict(x), plan.predict(x))
        assert reloaded.num_steps() == plan.num_steps()
        assert reloaded.batch_invariant == plan.batch_invariant

    def test_blas_mode_plan_matches_blas_interpreter(self, rng):
        # without batch_invariant only allclose is promised (BLAS gemm may
        # reassociate), but the plan must still track the fast interpreter
        package = make_package(rng, hidden=(32, 16))
        plan = compile_package(package, batch_invariant=False)
        x = rng.standard_normal((16, 6))
        np.testing.assert_allclose(
            plan.predict(x), package.predict(x), rtol=1e-12, atol=1e-12
        )

    def test_batch_result_matches_row_results(self, rng):
        # the invariant-mode plan inherits the interpreter's batch
        # invariance: row i of a batch equals serving row i alone
        package = make_package(rng, activation="tanh")
        plan = compile_package(package)
        rows = rng.standard_normal((9, 6))
        batched = plan.predict(rows)
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(plan.predict(row), batched[i])


class TestPlanSemantics:
    def test_fusion_flattens_dense_activation_pairs(self, rng):
        package = make_package(rng, hidden=(16, 8))
        plan = compile_package(package)
        # 3 Dense layers, each fused with its activation (last has none)
        assert plan.num_steps() == 3

    def test_wrong_feature_count_matches_package_error(self, rng):
        package = make_package(rng)
        plan = compile_package(package)
        bad = rng.standard_normal((3, 5))
        with pytest.raises(ValueError, match="expects 6 input features"):
            package.predict(bad)
        with pytest.raises(ValueError, match="expects 6 input features"):
            plan.predict(bad)

    def test_output_is_fresh_per_call(self, rng):
        package = make_package(rng)
        plan = compile_package(package)
        x = rng.standard_normal((3, 6))
        first = plan.predict(x)
        keep = first.copy()
        second = plan.predict(x)
        assert first is not second
        second[:] = 0.0
        np.testing.assert_array_equal(first, keep)

    def test_cnn_family_compiles_bit_identically(self, rng):
        # was untraceable before the conv/pool lowering landed; now the
        # whole CNN family compiles and stays on the compiled fast path
        topology = CNNTopology(
            channels=(4,), kernel_sizes=(3,), pools=(1,), activation="relu"
        )
        model = build_model(8, 2, topology)
        package = SurrogatePackage(
            model=model, topology=topology, input_dim=8, output_dim=2
        )
        plan = compile_package(package)
        assert "conv1d" in plan.step_kinds()
        assert_bit_identical(package, plan, rng.standard_normal((5, 8)))

    def test_recurrent_style_module_is_untraceable(self, rng):
        # a module with no trace_spec lowering still falls back, tagged
        # with a reason the serving counter can label
        from repro.compile import untraceable_reason
        from repro.nn.layers import Module, Sequential

        class Opaque(Module):
            def forward(self, x):
                return x

        package = make_package(rng)
        package.model = Sequential([Opaque()])
        with pytest.raises(UntraceableModelError) as excinfo:
            compile_package(package)
        assert untraceable_reason(excinfo.value) == "unknown-module"

    def test_plan_ignores_runtime_thread_mode(self, rng):
        # specialization is fixed at compile time: an invariant plan keeps
        # its einsum reduction order even when called outside the context
        package = make_package(rng)
        plan = compile_package(package, batch_invariant=True)
        x = rng.standard_normal((4, 6))
        inside = None
        with batch_invariant():
            inside = plan.predict(x)
        np.testing.assert_array_equal(plan.predict(x), inside)

    def test_callable_alias(self, rng):
        package = make_package(rng)
        plan = compile_package(package)
        x = rng.standard_normal((2, 6))
        np.testing.assert_array_equal(plan(x), plan.predict(x))

    def test_threaded_execution_is_race_free(self, rng):
        # scratch buffers are thread-local: concurrent predict() calls on
        # one plan must not corrupt each other
        import threading

        package = make_package(rng, hidden=(16, 16, 8))
        plan = compile_package(package)
        rows = rng.standard_normal((64, 6))
        with batch_invariant():
            expected = package.predict(rows)
        failures = []

        def worker():
            for _ in range(20):
                got = plan.predict(rows)
                if not np.array_equal(got, expected):
                    failures.append(got)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
