"""Bit-identity of the conv/pool/upsample and CSR plan steps.

Every lowered step must reproduce the interpreter byte-for-byte under
``batch_invariant()``: the im2col gathers, per-tap accumulation order,
staged pool reductions and CSR scatter all replay the interpreted
arithmetic exactly, so ``np.testing.assert_array_equal`` (no tolerance)
is the bar throughout — across batch sizes, odd spatial dims, float32
inputs and payload round-trips.
"""

import numpy as np
import pytest

from repro.autoencoder.model import Autoencoder
from repro.compile import (
    UntraceableModelError,
    compile_package,
    plan_from_payload,
    plan_payload,
    untraceable_reason,
)
from repro.nas.package import SurrogatePackage
from repro.nn.cnn import CNNTopology, build_model
from repro.nn.conv import Flatten, SignalView
from repro.nn.conv2d import (
    AvgPool2d,
    Conv2d,
    Deconv2d,
    ImageView,
    MaxPool2d,
    Upsample2d,
)
from repro.nn.layers import Activation, Dense, Sequential
from repro.nn.mlp import Topology, build_mlp
from repro.nn.tensor import batch_invariant
from repro.sparse.formats import COOMatrix, CSRMatrix

ACTIVATIONS = ("relu", "tanh", "sigmoid", "leaky_relu")
BATCHES = (1, 3, 32)


def randomize(model, rng):
    for p in model.parameters():
        p.data = rng.standard_normal(p.data.shape)


def cnn_package(rng, in_dim, out_dim, topology):
    model = build_model(in_dim, out_dim, topology)
    randomize(model, rng)
    return SurrogatePackage(
        model=model, topology=topology, input_dim=in_dim, output_dim=out_dim
    )


def chain_package(rng, layers, in_dim, out_dim):
    """A hand-built 2-D chain packaged under a placeholder topology."""
    model = Sequential(layers)
    randomize(model, rng)
    topology = CNNTopology(channels=(1,), kernel_sizes=(1,), pools=(0,))
    return SurrogatePackage(
        model=model, topology=topology, input_dim=in_dim, output_dim=out_dim
    )


def assert_bit_identical(package, plan, x):
    with batch_invariant():
        ref = package.predict(x)
    np.testing.assert_array_equal(plan.predict(x), ref)


class TestConv1dFamily:
    @pytest.mark.parametrize("activation", ACTIVATIONS)
    @pytest.mark.parametrize("batch", BATCHES)
    def test_conv_pool_upsample_chain(self, rng, activation, batch):
        # pool by 2, then unpool by 2: exercises conv1d, pool1d and
        # upsample1d steps in one compiled plan
        topology = CNNTopology(
            channels=(4, 3),
            kernel_sizes=(3, 5),
            pools=(2, -2),
            activation=activation,
        )
        package = cnn_package(rng, 8, 2, topology)
        plan = compile_package(package)
        assert {"conv1d", "pool1d", "upsample1d"} <= set(plan.step_kinds())
        assert_bit_identical(package, plan, rng.standard_normal((batch, 8)))

    @pytest.mark.parametrize("pool_kind", ("max", "avg"))
    def test_both_pool_kinds(self, rng, pool_kind):
        topology = CNNTopology(
            channels=(4,), kernel_sizes=(3,), pools=(2,), pool_kind=pool_kind
        )
        package = cnn_package(rng, 10, 3, topology)
        plan = compile_package(package)
        assert_bit_identical(package, plan, rng.standard_normal((7, 10)))

    def test_odd_length_no_pooling(self, rng):
        # odd signal length with same-padding: the gather indices cover
        # the asymmetric pad bands exactly
        topology = CNNTopology(channels=(3,), kernel_sizes=(5,), pools=(0,))
        package = cnn_package(rng, 7, 2, topology)
        plan = compile_package(package)
        assert_bit_identical(package, plan, rng.standard_normal((5, 7)))

    def test_kernel_wider_than_signal(self, rng):
        # kernel 5 over length 3: every tap reads into the zero pad
        topology = CNNTopology(channels=(2,), kernel_sizes=(5,), pools=(0,))
        package = cnn_package(rng, 3, 2, topology)
        plan = compile_package(package)
        assert_bit_identical(package, plan, rng.standard_normal((4, 3)))

    def test_single_row_and_float32(self, rng):
        topology = CNNTopology(channels=(4,), kernel_sizes=(3,), pools=(2,))
        package = cnn_package(rng, 8, 2, topology)
        plan = compile_package(package)
        row = rng.standard_normal(8)
        assert_bit_identical(package, plan, row)
        assert plan.predict(row).shape == (2,)
        assert_bit_identical(
            package, plan, rng.standard_normal((6, 8)).astype(np.float32)
        )

    def test_payload_round_trip(self, rng):
        topology = CNNTopology(
            channels=(4, 3), kernel_sizes=(3, 3), pools=(2, -2), pool_kind="avg"
        )
        package = cnn_package(rng, 12, 2, topology)
        plan = compile_package(package)
        reloaded = plan_from_payload(*plan_payload(plan))
        x = rng.standard_normal((9, 12))
        np.testing.assert_array_equal(reloaded.predict(x), plan.predict(x))
        assert reloaded.step_kinds() == plan.step_kinds()


class TestConv2dFamily:
    @pytest.mark.parametrize("activation", ACTIVATIONS)
    @pytest.mark.parametrize("batch", BATCHES)
    def test_full_image_chain(self, rng, activation, batch):
        # odd 5x7 grid -> conv -> upsample -> pool back down -> dense head
        in_dim, out_dim = 5 * 7, 3
        package = chain_package(
            rng,
            [
                ImageView(5, 7),
                Conv2d(1, 4, 3, rng),
                Activation(activation),
                Upsample2d(2),
                MaxPool2d(2),
                Flatten(),
                Dense(4 * 5 * 7, out_dim, rng),
            ],
            in_dim,
            out_dim,
        )
        plan = compile_package(package)
        assert {"conv2d", "pool2d", "upsample2d"} <= set(plan.step_kinds())
        assert_bit_identical(
            package, plan, rng.standard_normal((batch, in_dim))
        )

    def test_deconv_and_avg_pool(self, rng):
        in_dim, out_dim = 6 * 8, 2
        package = chain_package(
            rng,
            [
                ImageView(6, 8),
                Conv2d(1, 4, 3, rng),
                Activation("relu"),
                AvgPool2d(2),
                Deconv2d(4, 2, 5, 2, rng),
                Activation("sigmoid"),
                Flatten(),
                Dense(2 * 6 * 8, out_dim, rng),
            ],
            in_dim,
            out_dim,
        )
        plan = compile_package(package)
        for batch in BATCHES:
            assert_bit_identical(
                package, plan, rng.standard_normal((batch, in_dim))
            )

    def test_one_by_one_kernel(self, rng):
        # kernel 1 = zero padding: the degenerate im2col case
        in_dim = 3 * 5
        package = chain_package(
            rng,
            [
                ImageView(3, 5),
                Conv2d(1, 2, 1, rng),
                Flatten(),
                Dense(2 * 3 * 5, 2, rng),
            ],
            in_dim,
            2,
        )
        plan = compile_package(package)
        assert_bit_identical(package, plan, rng.standard_normal((4, in_dim)))

    def test_kernel_wider_than_image(self, rng):
        in_dim = 3 * 3
        package = chain_package(
            rng,
            [
                ImageView(3, 3),
                Conv2d(1, 2, 5, rng),
                Activation("tanh"),
                Flatten(),
                Dense(2 * 3 * 3, 2, rng),
            ],
            in_dim,
            2,
        )
        plan = compile_package(package)
        assert_bit_identical(package, plan, rng.standard_normal((3, in_dim)))

    def test_float32_and_payload_round_trip(self, rng):
        in_dim = 4 * 6
        package = chain_package(
            rng,
            [
                ImageView(4, 6),
                Conv2d(1, 3, 3, rng),
                Activation("relu"),
                MaxPool2d(2),
                Flatten(),
                Dense(3 * 2 * 3, 2, rng),
            ],
            in_dim,
            2,
        )
        plan = compile_package(package)
        assert_bit_identical(
            package, plan, rng.standard_normal((5, in_dim)).astype(np.float32)
        )
        reloaded = plan_from_payload(*plan_payload(plan))
        x = rng.standard_normal((5, in_dim))
        np.testing.assert_array_equal(reloaded.predict(x), plan.predict(x))


def make_csr(rng, rows, cols, *, density=0.3, empty_rows=()):
    """A random CSR batch; listed rows are forced completely empty."""
    mask = rng.random((rows, cols)) < density
    for r in empty_rows:
        mask[r] = False
    dense = np.where(mask, rng.standard_normal((rows, cols)), 0.0)
    r, c = np.nonzero(mask)
    return COOMatrix(r, c, dense[mask], (rows, cols)).to_csr()


def sparse_ae_package(rng, in_dim, latent, out_dim):
    ae = Autoencoder(in_dim, latent, depth=1, sparse_input=True)
    randomize(ae, rng)
    topology = Topology(hidden=(8,), sparse_input=True)
    model = build_mlp(latent, out_dim, topology)
    randomize(model, rng)
    return SurrogatePackage(
        model=model,
        topology=topology,
        input_dim=in_dim,
        output_dim=out_dim,
        autoencoder=ae,
    )


class TestCsrPlans:
    def test_sparse_ae_bit_identical(self, rng):
        package = sparse_ae_package(rng, 20, 6, 3)
        x = make_csr(rng, 8, 20)
        plan = compile_package(package, csr_pattern=x)
        assert "csr_gemm" in plan.step_kinds()
        assert_bit_identical(package, plan, x)

    def test_empty_rows(self, rng):
        package = sparse_ae_package(rng, 15, 4, 2)
        x = make_csr(rng, 6, 15, empty_rows=(0, 3, 5))
        plan = compile_package(package, csr_pattern=x)
        assert_bit_identical(package, plan, x)

    def test_all_empty_batch(self, rng):
        package = sparse_ae_package(rng, 10, 4, 2)
        x = make_csr(rng, 4, 10, empty_rows=range(4))
        assert x.nnz == 0
        plan = compile_package(package, csr_pattern=x)
        assert_bit_identical(package, plan, x)

    def test_duplicate_column_coo_round_trip(self, rng):
        # duplicate (row, col) coordinates accumulate on to_csr(); the
        # canonicalized pattern must compile and serve bit-identically
        package = sparse_ae_package(rng, 12, 4, 2)
        row = np.array([0, 0, 0, 1, 2, 2])
        col = np.array([3, 3, 7, 1, 5, 5])
        data = rng.standard_normal(6)
        x = COOMatrix(row, col, data, (3, 12)).to_csr()
        plan = compile_package(package, csr_pattern=x)
        assert_bit_identical(package, plan, x)

    def test_densify_prelude_without_autoencoder(self, rng):
        # no encoder: the plan densifies the CSR batch exactly like
        # package.predict's to_dense() and runs the dense steps
        topology = Topology(hidden=(8,))
        model = build_mlp(10, 2, topology)
        randomize(model, rng)
        package = SurrogatePackage(
            model=model, topology=topology, input_dim=10, output_dim=2
        )
        x = make_csr(rng, 5, 10, empty_rows=(2,))
        plan = compile_package(package, csr_pattern=x)
        assert "csr_densify" in plan.step_kinds()
        assert_bit_identical(package, plan, x)

    def test_dense_ae_with_csr_pattern_is_untraceable(self, rng):
        ae = Autoencoder(10, 4, depth=1, sparse_input=False)
        randomize(ae, rng)
        topology = Topology(hidden=(8,))
        model = build_mlp(4, 2, topology)
        randomize(model, rng)
        package = SurrogatePackage(
            model=model,
            topology=topology,
            input_dim=10,
            output_dim=2,
            autoencoder=ae,
        )
        x = make_csr(rng, 3, 10)
        with pytest.raises(UntraceableModelError) as excinfo:
            compile_package(package, csr_pattern=x)
        assert untraceable_reason(excinfo.value) == "csr"

    def test_pattern_mismatch_rejected(self, rng):
        package = sparse_ae_package(rng, 12, 4, 2)
        x = make_csr(rng, 5, 12)
        plan = compile_package(package, csr_pattern=x)
        other = make_csr(rng, 5, 12, empty_rows=(1,))
        with pytest.raises(ValueError, match="sparsity pattern"):
            plan.predict(other)

    def test_dense_input_to_csr_plan_rejected(self, rng):
        package = sparse_ae_package(rng, 12, 4, 2)
        x = make_csr(rng, 5, 12)
        plan = compile_package(package, csr_pattern=x)
        with pytest.raises(ValueError, match="CSR"):
            plan.predict(rng.standard_normal((5, 12)))

    def test_same_pattern_new_values(self, rng):
        # the plan is keyed to the sparsity pattern, not the values:
        # a batch with the same structure but fresh values serves fine
        package = sparse_ae_package(rng, 12, 4, 2)
        x = make_csr(rng, 5, 12)
        plan = compile_package(package, csr_pattern=x)
        fresh = CSRMatrix(
            indptr=x.indptr,
            indices=x.indices,
            data=rng.standard_normal(x.nnz),
            shape=x.shape,
        )
        assert_bit_identical(package, plan, fresh)

    def test_csr_payload_round_trip(self, rng):
        package = sparse_ae_package(rng, 14, 5, 3)
        x = make_csr(rng, 6, 14, empty_rows=(4,))
        plan = compile_package(package, csr_pattern=x)
        reloaded = plan_from_payload(*plan_payload(plan))
        np.testing.assert_array_equal(reloaded.predict(x), plan.predict(x))


class TestUntraceableReasons:
    def test_geometry_mismatch_reports_conv(self, rng):
        # SignalView(4) over 6 features: 6 % 4 != 0 is a conv-family
        # geometry error, labeled so operators can see why it interprets
        model = Sequential([SignalView(4), Flatten(), Dense(6, 2, rng)])
        topology = CNNTopology(channels=(1,), kernel_sizes=(1,), pools=(0,))
        package = SurrogatePackage(
            model=model, topology=topology, input_dim=6, output_dim=2
        )
        with pytest.raises(UntraceableModelError) as excinfo:
            compile_package(package)
        assert untraceable_reason(excinfo.value) == "conv"

    def test_plain_typeerror_reports_opaque(self):
        assert untraceable_reason(TypeError("boom")) == "opaque"
