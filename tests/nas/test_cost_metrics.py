"""Energy-vs-time cost metric tests (§5.1's alternative f_c)."""

import numpy as np
import pytest

from repro.nas import evaluate_topology
from repro.nn import Topology
from repro.perf import TESLA_V100_NN, XEON_E5_2698V4, DeviceModel


def toy(rng, n=60):
    x = rng.standard_normal((n, 6))
    return x, x @ rng.standard_normal((6, 2))


class TestKernelEnergy:
    def test_energy_is_power_times_time(self):
        t = TESLA_V100_NN.kernel_time(1e9, 1e6)
        assert TESLA_V100_NN.kernel_energy(1e9, 1e6) == pytest.approx(t * 300.0)

    def test_two_socket_cpu_power(self):
        assert XEON_E5_2698V4.tdp_watts == 270.0

    def test_custom_tdp(self):
        dev = DeviceModel("x", 1e9, 1e9, 0.0, tdp_watts=42.0)
        assert dev.kernel_energy(1e9, 0.0) == pytest.approx(42.0)


class TestCostMetricInNAS:
    def test_energy_fc_scales_with_power(self, rng):
        x, y = toy(rng)
        topo = Topology(hidden=(8,), activation="relu")
        common = dict(rng=np.random.default_rng(0))
        time_cand = evaluate_topology(topo, x, y, cost_metric="time", **common)
        energy_cand = evaluate_topology(topo, x, y, cost_metric="energy", **common)
        assert energy_cand.f_c == pytest.approx(
            time_cand.f_c * TESLA_V100_NN.tdp_watts, rel=1e-9
        )

    def test_unknown_metric_rejected(self, rng):
        x, y = toy(rng)
        with pytest.raises(ValueError):
            evaluate_topology(
                Topology(hidden=(8,), activation="relu"), x, y, cost_metric="carbon"
            )

    def test_config_threads_metric_through(self):
        from repro.core import AutoHPCnetConfig

        cfg = AutoHPCnetConfig(cost_metric="energy")
        assert cfg.to_search_config(sparse_input=False).cost_metric == "energy"
