"""Algorithm 2's early-termination-on-stall tests."""

import numpy as np
import pytest

from repro.nas import Hierarchical2DSearch, InputDimSpace, SearchConfig, TopologySpace


SPACE = TopologySpace(max_layers=1, width_choices=(4, 8),
                      activations=("relu",), allow_residual=False)


def toy(rng, n=60):
    x = rng.standard_normal((n, 12))
    return x, x @ rng.standard_normal((12, 2))


class TestStallTermination:
    def test_stops_early_when_not_improving(self, rng):
        x, y = toy(rng)
        cfg = SearchConfig(
            outer_iterations=6, inner_trials=1, quality_loss=2.0,
            encoding_loss=1.0, num_epochs=10, ae_epochs=5,
            stall_iterations=1, seed=0,
        )
        space = InputDimSpace(choices=(3, 6, 12))
        result = Hierarchical2DSearch(SPACE, space, cfg).run(x, y)
        assert result.best is not None
        # with a 1-iteration stall budget the loop cannot run all 6 rounds
        assert len(result.outer_history) < 6

    def test_disabled_by_default(self, rng):
        x, y = toy(rng)
        cfg = SearchConfig(
            outer_iterations=3, inner_trials=1, quality_loss=2.0,
            encoding_loss=1.0, num_epochs=10, ae_epochs=5, seed=0,
        )
        space = InputDimSpace(choices=(3, 6, 12))
        result = Hierarchical2DSearch(SPACE, space, cfg).run(x, y)
        assert len(result.outer_history) == 3


class TestParallelAcquire:
    def test_sample_workers_equivalent(self):
        from repro.apps import MGApplication

        app = MGApplication()
        serial = app.acquire(n_samples=10, rng=np.random.default_rng(3))
        parallel = app.acquire(
            n_samples=10, rng=np.random.default_rng(3), sample_workers=4
        )
        assert np.allclose(serial.x, parallel.x)
        assert np.allclose(serial.y, parallel.y)
