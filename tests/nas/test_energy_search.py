"""Energy-objective search integration."""

import numpy as np
import pytest

from repro.nas import Hierarchical2DSearch, InputDimSpace, SearchConfig, TopologySpace
from repro.perf import TESLA_V100_NN


class TestEnergySearch:
    def test_hierarchical_search_with_energy_metric(self, rng):
        x = rng.standard_normal((60, 10))
        y = x @ rng.standard_normal((10, 2))
        space = TopologySpace(max_layers=1, width_choices=(4, 8),
                              activations=("relu",), allow_residual=False)
        cfg = SearchConfig(
            outer_iterations=1, inner_trials=2, quality_loss=2.0,
            encoding_loss=1.0, num_epochs=10, ae_epochs=5,
            cost_metric="energy", seed=0,
        )
        result = Hierarchical2DSearch(space, InputDimSpace(choices=(5, 10)), cfg).run(x, y)
        assert result.best is not None
        # f_c is joules: time-scale values multiplied by board power
        assert result.best.f_c > 1e-4      # micro-seconds x 300 W >> 1e-4 J? keep loose
        assert result.best.f_c < 1.0

    def test_energy_and_time_rank_consistently_single_device(self, rng):
        from repro.nas import evaluate_topology
        from repro.nn import Topology

        x = rng.standard_normal((50, 6))
        y = x @ rng.standard_normal((6, 2))
        small_t = evaluate_topology(Topology((4,), "relu"), x, y,
                                    cost_metric="time", rng=np.random.default_rng(0))
        big_t = evaluate_topology(Topology((128, 128), "relu"), x, y,
                                  cost_metric="time", rng=np.random.default_rng(0))
        small_e = evaluate_topology(Topology((4,), "relu"), x, y,
                                    cost_metric="energy", rng=np.random.default_rng(0))
        big_e = evaluate_topology(Topology((128, 128), "relu"), x, y,
                                  cost_metric="energy", rng=np.random.default_rng(0))
        assert (small_t.f_c < big_t.f_c) == (small_e.f_c < big_e.f_c)
