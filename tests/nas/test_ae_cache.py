"""Autoencoder artifact cache: keying, tiers, and search integration."""

import numpy as np
import pytest

import repro.nas.hierarchical as hier_mod
from repro import obs
from repro.autoencoder import Autoencoder
from repro.autoencoder.training import AETrainConfig, train_autoencoder
from repro.nas import (
    AutoencoderCache,
    CachedEncoding,
    Hierarchical2DSearch,
    InputDimSpace,
    SearchConfig,
    TopologySpace,
    fingerprint_array,
)


SMALL_SPACE = TopologySpace(
    max_layers=2, width_choices=(4, 8), activations=("relu", "tanh"), allow_residual=False
)


def toy_data(rng, n=60, din=10, dout=2):
    x = rng.standard_normal((n, din))
    w = rng.standard_normal((din, dout))
    return x, x @ w


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def base_key_kwargs():
    return dict(depth=2, ae_epochs=10, lr=1e-3, encoding_loss=0.9, seed=0)


class TestKeying:
    def test_key_is_stable(self, rng):
        x = rng.standard_normal((20, 6))
        assert AutoencoderCache.key(x, 3, **base_key_kwargs()) == AutoencoderCache.key(
            x, 3, **base_key_kwargs()
        )

    def test_every_knob_changes_key(self, rng):
        x = rng.standard_normal((20, 6))
        base = AutoencoderCache.key(x, 3, **base_key_kwargs())
        variants = [
            AutoencoderCache.key(x, 4, **base_key_kwargs()),
            AutoencoderCache.key(x, 3, **{**base_key_kwargs(), "depth": 3}),
            AutoencoderCache.key(x, 3, **{**base_key_kwargs(), "ae_epochs": 11}),
            AutoencoderCache.key(x, 3, **{**base_key_kwargs(), "lr": 2e-3}),
            AutoencoderCache.key(x, 3, **{**base_key_kwargs(), "encoding_loss": 0.5}),
            AutoencoderCache.key(x, 3, **{**base_key_kwargs(), "seed": 1}),
            AutoencoderCache.key(x, 3, activation="tanh", **base_key_kwargs()),
            AutoencoderCache.key(x, 3, sparse_input=True, **base_key_kwargs()),
            AutoencoderCache.key(x + 1e-9, 3, **base_key_kwargs()),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_fingerprint_sees_dtype_and_shape(self):
        a = np.zeros((4, 3))
        assert fingerprint_array(a) != fingerprint_array(a.astype(np.float32))
        assert fingerprint_array(a) != fingerprint_array(a.reshape(3, 4))


class TestTiers:
    def _trained_entry(self, rng, x):
        ae = Autoencoder(x.shape[1], 3, rng=np.random.default_rng(0))
        result = train_autoencoder(ae, x, AETrainConfig(num_epochs=5, seed=0))
        return CachedEncoding(ae, result.final_sigma, ae.encode(x))

    def test_memory_round_trip(self, rng):
        x = rng.standard_normal((30, 6))
        cache = AutoencoderCache()
        key = AutoencoderCache.key(x, 3, **base_key_kwargs())
        assert cache.get(key) is None
        entry = self._trained_entry(rng, x)
        cache.put(key, entry)
        assert cache.get(key) is entry

    def test_disk_round_trip_restores_exact_params(self, rng, tmp_path):
        x = rng.standard_normal((30, 6))
        key = AutoencoderCache.key(x, 3, **base_key_kwargs())
        entry = self._trained_entry(rng, x)
        AutoencoderCache(tmp_path).put(key, entry)

        fresh = AutoencoderCache(tmp_path)   # empty memory tier
        loaded = fresh.get(key)
        assert loaded is not None
        assert loaded.sigma == entry.sigma
        np.testing.assert_array_equal(loaded.z, entry.z)
        for p_new, p_old in zip(
            loaded.autoencoder.parameters(), entry.autoencoder.parameters()
        ):
            np.testing.assert_array_equal(p_new.data, p_old.data)
        np.testing.assert_allclose(
            loaded.autoencoder.encode(x), entry.autoencoder.encode(x)
        )

    def test_disabled_cache_is_inert(self, rng, tmp_path):
        x = rng.standard_normal((30, 6))
        cache = AutoencoderCache(tmp_path, enabled=False)
        key = AutoencoderCache.key(x, 3, **base_key_kwargs())
        cache.put(key, self._trained_entry(rng, x))
        assert cache.get(key) is None
        assert not (tmp_path / "ae_cache").exists()

    def test_hit_miss_counters(self, rng, tmp_path):
        x = rng.standard_normal((30, 6))
        cache = AutoencoderCache(tmp_path)
        key = AutoencoderCache.key(x, 3, **base_key_kwargs())
        cache.get(key)                                 # miss
        cache.put(key, self._trained_entry(rng, x))
        cache.get(key)                                 # memory hit
        AutoencoderCache(tmp_path).get(key)            # disk hit
        registry = obs.get_registry()
        assert registry.get("repro_nas_ae_cache_misses_total").total() == 1
        hits = registry.get("repro_nas_ae_cache_hits_total")
        assert hits.value(tier="memory") == 1
        assert hits.value(tier="disk") == 1


def make_search(**overrides):
    params = dict(
        outer_iterations=3, inner_trials=2, quality_loss=0.9,
        encoding_loss=0.99, num_epochs=15, ae_epochs=10,
        bayesian_init=1, seed=0,
    )
    params.update(overrides)
    return Hierarchical2DSearch(
        SMALL_SPACE, InputDimSpace(choices=(3, 6)), SearchConfig(**params)
    )


@pytest.fixture
def count_trainings(monkeypatch):
    calls = []
    real = hier_mod.train_autoencoder

    def counting(ae, x, cfg):
        calls.append(ae.latent_dim)
        return real(ae, x, cfg)

    monkeypatch.setattr(hier_mod, "train_autoencoder", counting)
    return calls


class TestSearchIntegration:
    def test_revisited_k_hits_cache(self, rng, count_trainings):
        """3 outer iterations over 2 K choices: the revisit trains nothing."""
        x, y = toy_data(rng)
        result = make_search().run(x, y)
        assert len(result.outer_history) == 3
        distinct_k = {o.k for o in result.outer_history}
        assert len(count_trainings) == len(distinct_k) <= 2

    def test_cache_off_retrains_every_iteration(self, rng, count_trainings):
        x, y = toy_data(rng)
        result = make_search(ae_cache=False).run(x, y)
        assert len(count_trainings) == len(result.outer_history) == 3

    def test_cache_does_not_change_results(self, rng):
        x, y = toy_data(rng)
        with_cache = make_search().run(x, y)
        without = make_search(ae_cache=False).run(x, y)
        assert [(o.k, o.f_c, o.f_e) for o in with_cache.outer_history] == [
            (o.k, o.f_c, o.f_e) for o in without.outer_history
        ]
        assert with_cache.best.f_c == without.best.f_c


class _Bomb(Exception):
    pass


class TestResume:
    """Kill a checkpointed search mid-iteration, resume, match the clean run."""

    @staticmethod
    def _quality(x, y):
        # relative error, so trained candidates land under quality_loss and
        # the search exercises the feasible path (the fallback path keeps no
        # per-trial state, so it is *not* covered by the resume guarantee)
        scale = float(np.mean(np.abs(y[:8])))

        def fn(pkg):
            return float(np.mean(np.abs(pkg.predict(x[:8]) - y[:8]))) / scale

        return fn

    def test_resume_skips_ae_training_and_matches(
        self, rng, tmp_path, count_trainings
    ):
        x, y = toy_data(rng)
        quality = self._quality(x, y)

        # quality_fn is called once per inner trial (2 per iteration); the
        # third call lands in iteration 1, after its autoencoder was trained
        # and written to the disk cache
        calls = {"n": 0}

        def bombing(pkg):
            calls["n"] += 1
            if calls["n"] == 3:
                raise _Bomb()
            return quality(pkg)

        with pytest.raises(_Bomb):
            make_search().run(x, y, quality_fn=bombing, checkpoint_dir=tmp_path)
        assert len(count_trainings) == 2   # iterations 0 and 1 trained AEs
        assert (tmp_path / "search_state.json").exists()

        count_trainings.clear()
        resumed = make_search().run(x, y, quality_fn=quality, checkpoint_dir=tmp_path)
        # both K values were trained (and disk-cached) before the crash
        assert count_trainings == []

        # rerunning the now-complete search is a no-op that still returns
        # the stored best without retraining anything
        count_trainings.clear()
        rerun = make_search().run(x, y, quality_fn=quality, checkpoint_dir=tmp_path)
        assert count_trainings == []
        assert rerun.best_k == resumed.best_k
        assert rerun.best.f_c == resumed.best.f_c

        uninterrupted = make_search().run(x, y, quality_fn=quality)
        assert [(o.k, o.f_c, o.f_e, o.ae_sigma) for o in resumed.outer_history] == [
            (o.k, o.f_c, o.f_e, o.ae_sigma) for o in uninterrupted.outer_history
        ]
        assert resumed.best_k == uninterrupted.best_k
        assert resumed.best.f_c == uninterrupted.best.f_c
        assert resumed.best.f_e == uninterrupted.best.f_e
        assert resumed.best.topology == uninterrupted.best.topology

    def test_completed_infeasible_search_rerun_returns_fallback(
        self, rng, tmp_path
    ):
        """quality_loss no candidate can meet → fallback best; a rerun of
        the finished checkpointed search must return it, not None."""
        x, y = toy_data(rng)
        first = make_search(quality_loss=1e-9, outer_iterations=2).run(
            x, y, checkpoint_dir=tmp_path
        )
        assert first.best is not None and first.best.f_e > 1e-9
        rerun = make_search(quality_loss=1e-9, outer_iterations=2).run(
            x, y, checkpoint_dir=tmp_path
        )
        assert rerun.best is not None
        assert rerun.best_k == first.best_k
        assert rerun.best.f_c == first.best.f_c
        assert rerun.best.f_e == first.best.f_e
