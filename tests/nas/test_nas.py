"""2D NAS tests: spaces, candidate evaluation, inner loop, Algorithm 2."""

import numpy as np
import pytest

from repro.autoencoder import Autoencoder
from repro.nas import (
    CandidateResult,
    Hierarchical2DSearch,
    InputDimSpace,
    SearchConfig,
    SurrogatePackage,
    TopologySearch,
    TopologySpace,
    evaluate_topology,
    validation_quality,
)
from repro.nn import Topology


SMALL_SPACE = TopologySpace(
    max_layers=2, width_choices=(4, 8), activations=("relu", "tanh"), allow_residual=False
)


def toy_data(rng, n=80, din=10, dout=2):
    x = rng.standard_normal((n, din))
    w = rng.standard_normal((din, dout))
    return x, x @ w


class TestTopologySpace:
    def test_sample_in_space(self, rng):
        for _ in range(20):
            t = SMALL_SPACE.sample(rng)
            assert 1 <= t.depth <= 2
            assert all(h in (4, 8) for h in t.hidden)
            assert t.activation in ("relu", "tanh")

    def test_encode_decode_round_trip(self, rng):
        for _ in range(20):
            t = SMALL_SPACE.sample(rng)
            assert SMALL_SPACE.decode(SMALL_SPACE.encode(t)) == t

    def test_encoded_dim_fixed(self, rng):
        dims = {SMALL_SPACE.encode(SMALL_SPACE.sample(rng)).size for _ in range(10)}
        assert dims == {SMALL_SPACE.encoded_dim}

    def test_grid_size_matches_enumeration(self):
        assert len(list(SMALL_SPACE.grid())) == SMALL_SPACE.size()

    def test_grid_covers_space(self):
        grid = set(t.describe() for t in SMALL_SPACE.grid())
        assert "mlp[4](relu)" in grid and "mlp[8x8](tanh)" in grid

    def test_invalid_space_rejected(self):
        with pytest.raises(ValueError):
            TopologySpace(max_layers=0)


class TestInputDimSpace:
    def test_geometric_levels(self):
        space = InputDimSpace.geometric(128, levels=4, min_dim=4)
        assert min(space.choices) == 4
        assert max(space.choices) <= 128
        assert list(space.choices) == sorted(space.choices)

    def test_encode_decode(self):
        space = InputDimSpace(choices=(4, 16, 64))
        for k in space.choices:
            assert space.decode(space.encode(k)) == k

    def test_invalid_choices_rejected(self):
        with pytest.raises(ValueError):
            InputDimSpace(choices=(0, 4))

    def test_single_level(self):
        space = InputDimSpace.geometric(50, levels=1)
        assert len(space.choices) == 1


class TestEvaluateTopology:
    def test_returns_trained_candidate(self, rng):
        x, y = toy_data(rng)
        candidate = evaluate_topology(
            Topology(hidden=(8,), activation="tanh"), x, y, rng=rng
        )
        assert isinstance(candidate, CandidateResult)
        assert candidate.f_c > 0
        assert candidate.f_e >= 0
        assert candidate.epochs > 0

    def test_fc_grows_with_model_size(self, rng):
        x, y = toy_data(rng)
        small = evaluate_topology(Topology(hidden=(4,), activation="relu"), x, y, rng=rng)
        big = evaluate_topology(
            Topology(hidden=(128, 128), activation="relu"), x, y, rng=rng
        )
        assert big.f_c > small.f_c

    def test_custom_quality_fn_used(self, rng):
        x, y = toy_data(rng)
        candidate = evaluate_topology(
            Topology(hidden=(4,), activation="relu"),
            x,
            y,
            quality_fn=lambda pkg: 0.42,
            rng=rng,
        )
        assert candidate.f_e == 0.42

    def test_validation_quality_zero_for_perfect(self, rng):
        x, y = toy_data(rng, n=20)

        class Perfect:
            def predict(self, xq):
                w = np.linalg.lstsq(x, y, rcond=None)[0]
                return xq @ w

        assert validation_quality(Perfect(), x, y) < 1e-6


class TestInnerSearch:
    def test_finds_feasible_model(self, rng):
        x, y = toy_data(rng, n=120)
        search = TopologySearch(SMALL_SPACE, epsilon=0.5, seed=0)
        result = search.search(x, y, n_trials=4)
        assert result.n_trials == 4
        assert result.best is not None

    def test_best_is_cheapest_feasible(self, rng):
        x, y = toy_data(rng, n=120)
        search = TopologySearch(SMALL_SPACE, epsilon=0.9, seed=0)
        result = search.search(x, y, n_trials=5)
        feasible = result.feasible(0.9)
        assert result.best.f_c == min(c.f_c for c in feasible)

    def test_user_model_seeds_search(self, rng):
        x, y = toy_data(rng, n=60)
        seed_topology = Topology(hidden=(8, 8), activation="tanh")
        search = TopologySearch(SMALL_SPACE, epsilon=1.0, seed=0)
        result = search.search(x, y, n_trials=2, initial_topology=seed_topology)
        assert result.history[0].topology == seed_topology


class TestHierarchical:
    def _search(self, **overrides):
        params = dict(
            outer_iterations=2, inner_trials=2, quality_loss=0.9,
            encoding_loss=0.99, num_epochs=15, ae_epochs=10, seed=0,
        )
        params.update(overrides)
        cfg = SearchConfig(**params)
        return Hierarchical2DSearch(
            SMALL_SPACE, InputDimSpace(choices=(3, 6)), cfg
        )

    def test_runs_and_produces_package(self, rng):
        x, y = toy_data(rng, n=60)
        result = self._search().run(x, y)
        assert result.best is not None
        assert result.best_k in (3, 6)
        assert result.models_trained == 4
        pred = result.best.package.predict(x[:3])
        assert pred.shape == (3, 2)

    def test_outer_history_recorded(self, rng):
        x, y = toy_data(rng, n=60)
        result = self._search().run(x, y)
        assert len(result.outer_history) == 2
        assert all(o.ae_sigma >= 0 for o in result.outer_history)

    def test_timers_populated(self, rng):
        x, y = toy_data(rng, n=60)
        result = self._search().run(x, y)
        assert result.timers.phases["autoencoder_training"] > 0
        assert result.timers.phases["bayesian_optimization"] > 0

    def test_full_input_skips_autoencoder(self, rng):
        x, y = toy_data(rng, n=60)
        result = self._search(search_type="fullInput").run(x, y)
        assert result.best is not None
        assert result.best_k == x.shape[1]
        assert result.best.package.autoencoder is None

    def test_user_model_requires_init_model(self):
        with pytest.raises(ValueError):
            SearchConfig(search_type="userModel")

    def test_checkpoint_restore_continues(self, rng, tmp_path):
        x, y = toy_data(rng, n=60)
        first = self._search(outer_iterations=1)
        r1 = first.run(x, y, checkpoint_dir=tmp_path)
        assert len(r1.outer_history) == 1
        second = self._search(outer_iterations=2)
        r2 = second.run(x, y, checkpoint_dir=tmp_path)
        assert len(r2.outer_history) == 2
        assert (tmp_path / "best_package" / "package.json").exists()

    def test_summary_mentions_k(self, rng):
        x, y = toy_data(rng, n=60)
        result = self._search().run(x, y)
        assert "K=" in result.summary()


class TestSurrogatePackage:
    def test_save_load_round_trip(self, rng, tmp_path):
        x, y = toy_data(rng, n=60)
        ae = Autoencoder(10, 4, rng=rng)
        candidate = evaluate_topology(
            Topology(hidden=(8,), activation="tanh"),
            ae.encode(x),
            y,
            autoencoder=ae,
            x_raw=x,
            rng=rng,
        )
        pkg = candidate.package
        pkg.save(tmp_path / "pkg")
        loaded = SurrogatePackage.load(tmp_path / "pkg")
        assert np.allclose(pkg.predict(x[:5]), loaded.predict(x[:5]))
        assert loaded.latent_dim == 4

    def test_inference_flops_include_encoder(self, rng):
        x, y = toy_data(rng, n=40)
        ae = Autoencoder(10, 4, rng=rng)
        with_ae = evaluate_topology(
            Topology(hidden=(8,), activation="relu"), ae.encode(x), y,
            autoencoder=ae, x_raw=x, rng=rng,
        ).package
        without = evaluate_topology(
            Topology(hidden=(8,), activation="relu"), x[:, :4], y, rng=rng
        ).package
        assert with_ae.inference_flops(1) > without.model.flops(1)

    def test_single_row_predict(self, rng):
        x, y = toy_data(rng, n=40)
        pkg = evaluate_topology(
            Topology(hidden=(4,), activation="relu"), x, y, rng=rng
        ).package
        assert pkg.predict(x[0]).shape == (2,)
