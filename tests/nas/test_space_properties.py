"""Property tests on the search-space encodings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nas import CNNSpace, InputDimSpace, TopologySpace
from repro.nn import CNNTopology, Topology, build_model


MLP_SPACE = TopologySpace(max_layers=3, width_choices=(8, 16, 32, 64))
CNN_SPACE = CNNSpace(signal_length=48, max_layers=2)
K_SPACE = InputDimSpace(choices=(4, 12, 48))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=6, max_size=6))
def test_mlp_decode_always_valid(vec):
    """Any 6-vector decodes to a buildable topology (GP proposals are
    arbitrary points of the embedding space)."""
    topology = MLP_SPACE.decode(np.array(vec))
    assert isinstance(topology, Topology)
    model = build_model(5, 2, topology, np.random.default_rng(0))
    from repro.nn import Tensor

    assert model(Tensor(np.zeros((1, 5)))).shape == (1, 2)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=8, max_size=8))
def test_cnn_decode_always_legal(vec):
    topology = CNN_SPACE.decode(np.array(vec))
    assert isinstance(topology, CNNTopology)
    # pool factors stay legal for the signal length
    length = CNN_SPACE.signal_length
    for pool in topology.pools:
        assert length % pool == 0
        length //= pool
    model = build_model(48, 3, topology, np.random.default_rng(0))
    from repro.nn import Tensor

    assert model(Tensor(np.zeros((1, 48)))).shape == (1, 3)


@settings(max_examples=50, deadline=None)
@given(st.floats(-5, 20, allow_nan=False))
def test_input_dim_decode_always_in_choices(value):
    assert K_SPACE.decode(np.array([value])) in K_SPACE.choices


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_encode_decode_idempotent(seed):
    rng = np.random.default_rng(seed)
    t = MLP_SPACE.sample(rng)
    once = MLP_SPACE.decode(MLP_SPACE.encode(t))
    twice = MLP_SPACE.decode(MLP_SPACE.encode(once))
    assert once == twice == t
