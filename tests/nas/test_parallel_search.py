"""Batched parallel inner search: determinism, seeding, pruning, telemetry."""

import numpy as np
import pytest

import repro.nas.inner as inner_mod
from repro import obs
from repro.nas import TopologySearch, TopologySpace
from repro.parallel.pool import parallel_map


SMALL_SPACE = TopologySpace(
    max_layers=2, width_choices=(4, 8), activations=("relu", "tanh"), allow_residual=False
)


def toy_data(rng, n=100, din=8, dout=2):
    x = rng.standard_normal((n, din))
    w = rng.standard_normal((din, dout))
    return x, x @ w


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.configure(enabled=True, reset=True)
    yield
    obs.configure(enabled=True, reset=True)


def run_search(x, y, n_trials=4, **kwargs):
    params = dict(epsilon=0.9, seed=0)
    params.update(kwargs)
    return TopologySearch(SMALL_SPACE, **params).search(x, y, n_trials=n_trials)


def histories_equal(a, b):
    assert len(a.history) == len(b.history)
    for ca, cb in zip(a.history, b.history):
        assert ca.topology == cb.topology
        assert ca.f_c == cb.f_c
        assert ca.f_e == cb.f_e


class TestWorkerInvariance:
    def test_parallel_matches_single_worker(self, rng):
        """Same batch size, different worker counts → bit-identical search."""
        x, y = toy_data(rng)
        one = run_search(x, y, parallel_trials=2, trial_workers=1)
        two = run_search(x, y, parallel_trials=2, trial_workers=2)
        histories_equal(one, two)
        assert one.best.f_c == two.best.f_c
        assert one.best.topology == two.best.topology

    def test_out_of_order_completion_is_harmless(self, rng, monkeypatch):
        """Regression: reversing evaluation order must not change results.

        Before trial identity moved to proposal time, the per-trial seed was
        ``seed + 100 + len(history)`` — whichever trial *finished* first got
        the lower seed.  A parallel_map that evaluates the batch backwards
        simulates the worst-case completion order.
        """
        x, y = toy_data(rng)
        baseline = run_search(x, y, parallel_trials=2, trial_workers=1)

        def reversed_map(fn, items, workers=1):
            results = [fn(item) for item in reversed(list(items))]
            return list(reversed(results))

        monkeypatch.setattr(inner_mod, "parallel_map", reversed_map)
        shuffled = run_search(x, y, parallel_trials=2, trial_workers=1)
        histories_equal(baseline, shuffled)

    def test_batch_size_one_matches_sequential_default(self, rng):
        x, y = toy_data(rng)
        default = run_search(x, y)
        explicit = run_search(x, y, parallel_trials=1, trial_workers=1)
        histories_equal(default, explicit)


class TestPruning:
    def test_median_rule_prunes_and_counts(self, rng):
        x, y = toy_data(rng, n=120)
        result = run_search(
            x, y, n_trials=6,
            parallel_trials=1, prune=True, prune_warmup_epochs=2,
            train_config=inner_mod.TrainConfig(num_epochs=30, patience=30),
        )
        assert result.n_pruned >= 1
        assert all(c.val_curve for c in result.history)
        counter = obs.get_registry().get("repro_nas_trials_pruned_total")
        assert counter is not None and counter.total() == result.n_pruned

    def test_first_round_never_pruned(self, rng):
        """No reference curves yet → the opening batch always runs full."""
        x, y = toy_data(rng)
        result = run_search(
            x, y, n_trials=2, parallel_trials=2, prune=True, prune_warmup_epochs=0
        )
        assert result.n_pruned == 0

    def test_pruned_trials_still_feed_history(self, rng):
        x, y = toy_data(rng, n=120)
        result = run_search(
            x, y, n_trials=6,
            parallel_trials=1, prune=True, prune_warmup_epochs=2,
            train_config=inner_mod.TrainConfig(num_epochs=30, patience=30),
        )
        assert result.n_trials == 6  # pruned candidates counted, not dropped


class TestTelemetry:
    def test_batch_ask_histogram_observed(self, rng):
        x, y = toy_data(rng)
        run_search(x, y, n_trials=4, parallel_trials=2)
        hist = obs.get_registry().get("repro_nas_batch_ask_size")
        assert hist is not None
        assert hist.count() == 2  # two rounds of q=2
        assert hist.sum() == 4.0

    def test_trial_spans_carry_index(self, rng):
        x, y = toy_data(rng)
        run_search(x, y, n_trials=3, parallel_trials=3)
        spans = [s for s in obs.get_tracer().finished_spans() if s.name == "nas.trial"]
        assert sorted(s.attributes["trial"] for s in spans) == [0, 1, 2]


class TestValidation:
    def test_bad_parallel_trials_rejected(self):
        with pytest.raises(ValueError):
            TopologySearch(SMALL_SPACE, parallel_trials=0)

    def test_bad_trial_workers_rejected(self):
        with pytest.raises(ValueError):
            TopologySearch(SMALL_SPACE, trial_workers=0)

    def test_parallel_map_preserves_input_order(self):
        """The determinism argument leans on this contract."""
        out = parallel_map(lambda v: v * v, list(range(10)), workers=3)
        assert out == [v * v for v in range(10)]
