"""Tests for the synthetic sparse-problem generators."""

import numpy as np
import pytest

from repro.sparse import banded_spd, npb_cg_matrix, poisson_1d, poisson_2d, random_sparse


class TestRandomSparse:
    def test_density_respected(self, rng):
        m = random_sparse(20, 20, 0.25, rng)
        assert abs(m.density - 0.25) < 0.05

    def test_formats(self, rng):
        for fmt, cls_name in (("coo", "COOMatrix"), ("csr", "CSRMatrix"), ("csc", "CSCMatrix")):
            m = random_sparse(5, 5, 0.5, rng, fmt=fmt)
            assert type(m).__name__ == cls_name

    def test_invalid_density_rejected(self, rng):
        with pytest.raises(ValueError):
            random_sparse(5, 5, 1.5, rng)

    def test_unknown_format_rejected(self, rng):
        with pytest.raises(ValueError):
            random_sparse(5, 5, 0.5, rng, fmt="ell")


class TestSPDGenerators:
    def test_banded_is_spd(self, rng):
        dense = banded_spd(12, 2, rng).to_dense()
        assert np.allclose(dense, dense.T)
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_npb_cg_is_spd(self, rng):
        dense = npb_cg_matrix(16, 5, rng).to_dense()
        assert np.allclose(dense, dense.T)
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_npb_cg_seeded_determinism(self):
        a = npb_cg_matrix(10, 3, np.random.default_rng(7)).to_dense()
        b = npb_cg_matrix(10, 3, np.random.default_rng(7)).to_dense()
        assert np.array_equal(a, b)


class TestPoisson:
    def test_poisson_1d_stencil(self):
        dense = poisson_1d(5).to_dense()
        assert np.allclose(np.diag(dense), 2.0)
        assert np.allclose(np.diag(dense, 1), -1.0)
        assert np.allclose(np.diag(dense, -1), -1.0)

    def test_poisson_2d_row_sums(self):
        # interior rows sum to 0, boundary rows are positive
        dense = poisson_2d(4, 4).to_dense()
        sums = dense.sum(axis=1)
        assert np.all(sums >= 0)
        assert np.allclose(np.diag(dense), 4.0)

    def test_poisson_2d_symmetry_and_spd(self):
        dense = poisson_2d(5, 4).to_dense()
        assert np.allclose(dense, dense.T)
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_poisson_2d_shape(self):
        assert poisson_2d(3, 7).shape == (21, 21)
