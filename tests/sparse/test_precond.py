"""Preconditioner tests: correctness and convergence acceleration."""

import numpy as np
import pytest

from repro.sparse import banded_spd, poisson_2d
from repro.sparse.precond import (
    ICPreconditioner,
    JacobiPreconditioner,
    SSORPreconditioner,
    pcg,
)


@pytest.fixture
def spd(rng):
    return banded_spd(24, 3, rng)


class TestJacobi:
    def test_apply_is_diag_inverse(self, spd, rng):
        pre = JacobiPreconditioner(spd)
        r = rng.standard_normal(24)
        assert np.allclose(pre.apply(r), r / spd.diagonal())

    def test_zero_diagonal_rejected(self):
        from repro.sparse import from_dense

        m = from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]), "csr")
        with pytest.raises(ValueError):
            JacobiPreconditioner(m)


class TestSSOR:
    def test_identity_matrix_is_identity_map(self, rng):
        from repro.sparse import from_dense

        m = from_dense(np.eye(6), "csr")
        pre = SSORPreconditioner(m)
        r = rng.standard_normal(6)
        assert np.allclose(pre.apply(r), r)

    def test_apply_matches_dense_formula(self, spd, rng):
        omega = 1.2
        pre = SSORPreconditioner(spd, omega=omega)
        a = spd.to_dense()
        d = np.diag(np.diag(a))
        lower = np.tril(a, -1)
        upper = np.triu(a, 1)
        m = (omega / (2 - omega)) * (
            (d / omega + lower) @ np.linalg.inv(d) @ (d / omega + upper)
        )
        r = rng.standard_normal(spd.shape[0])
        assert np.allclose(pre.apply(r), np.linalg.solve(m, r), atol=1e-8)

    def test_invalid_omega_rejected(self, spd):
        with pytest.raises(ValueError):
            SSORPreconditioner(spd, omega=2.0)


class TestIC0:
    def test_exact_for_full_pattern(self, rng):
        # a dense SPD matrix has no fill-in to drop: IC(0) = exact Cholesky
        m = rng.standard_normal((8, 8))
        a = m @ m.T + 8 * np.eye(8)
        from repro.sparse import from_dense

        csr = from_dense(a, "csr")
        pre = ICPreconditioner(csr)
        r = rng.standard_normal(8)
        assert np.allclose(pre.apply(r), np.linalg.solve(a, r), atol=1e-8)

    def test_factor_respects_sparsity(self):
        matrix = poisson_2d(4, 4)
        pre = ICPreconditioner(matrix)
        dense = matrix.to_dense()
        fill = (pre._lower != 0) & (np.tril(dense) == 0)
        assert not fill.any()

    def test_asymmetric_rejected(self, rng):
        from repro.sparse import from_dense

        m = from_dense(np.triu(np.ones((4, 4))) + np.eye(4) * 3, "csr")
        with pytest.raises(ValueError):
            ICPreconditioner(m)


class TestPCG:
    @pytest.mark.parametrize("precond_cls", [JacobiPreconditioner, SSORPreconditioner, ICPreconditioner])
    def test_solves_poisson(self, precond_cls, rng):
        matrix = poisson_2d(5, 5)
        b = rng.standard_normal(25)
        x, iters = pcg(matrix, b, precond_cls(matrix), tol=1e-10)
        assert np.allclose(matrix.matvec(x), b, atol=1e-7)
        assert iters <= 100

    def test_better_preconditioners_converge_faster(self, rng):
        matrix = poisson_2d(7, 7)
        b = rng.standard_normal(49)
        _, it_jacobi = pcg(matrix, b, JacobiPreconditioner(matrix), tol=1e-10)
        _, it_ic = pcg(matrix, b, ICPreconditioner(matrix), tol=1e-10)
        assert it_ic <= it_jacobi

    def test_honours_initial_guess(self, rng):
        matrix = poisson_2d(4, 4)
        b = rng.standard_normal(16)
        exact, _ = pcg(matrix, b, JacobiPreconditioner(matrix), tol=1e-12)
        warm, iters = pcg(
            matrix, b, JacobiPreconditioner(matrix), x0=exact, tol=1e-10
        )
        assert iters == 0
        assert np.allclose(warm, exact)
