"""Unit and property tests for the sparse-matrix formats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix, from_dense


def random_dense(rng, rows=7, cols=5, density=0.4):
    mask = rng.random((rows, cols)) < density
    return rng.standard_normal((rows, cols)) * mask


# ---------------------------------------------------------------- COO basics


class TestCOO:
    def test_to_dense_round_trip(self, rng):
        d = random_dense(rng)
        assert np.allclose(from_dense(d, "coo").to_dense(), d)

    def test_duplicate_coordinates_accumulate(self):
        coo = COOMatrix([0, 0], [1, 1], [2.0, 3.0], (2, 2))
        assert coo.to_dense()[0, 1] == 5.0

    def test_sum_duplicates_merges(self):
        coo = COOMatrix([0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0], (2, 2))
        merged = coo.sum_duplicates()
        assert merged.nnz == 2
        assert np.allclose(merged.to_dense(), coo.to_dense())

    def test_nnz_and_density(self):
        coo = COOMatrix([0], [0], [1.0], (2, 2))
        assert coo.nnz == 1
        assert coo.density == 0.25

    def test_empty_matrix(self):
        coo = COOMatrix([], [], [], (3, 3))
        assert coo.nnz == 0
        assert np.allclose(coo.to_dense(), np.zeros((3, 3)))

    def test_transpose(self, rng):
        d = random_dense(rng)
        assert np.allclose(from_dense(d, "coo").transpose().to_dense(), d.T)

    def test_out_of_bounds_row_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([5], [0], [1.0], (2, 2))

    def test_out_of_bounds_col_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([0], [9], [1.0], (2, 2))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 1], [0], [1.0], (2, 2))

    def test_dense_blowup_sparse_case(self):
        # one nonzero in a 100x100 matrix: dense is vastly larger
        coo = COOMatrix([0], [0], [1.0], (100, 100))
        assert coo.dense_blowup() > 1000


# ---------------------------------------------------------------- CSR basics


class TestCSR:
    def test_round_trip(self, rng):
        d = random_dense(rng)
        assert np.allclose(from_dense(d, "csr").to_dense(), d)

    def test_matvec_matches_dense(self, rng):
        d = random_dense(rng)
        csr = from_dense(d, "csr")
        x = rng.standard_normal(d.shape[1])
        assert np.allclose(csr.matvec(x), d @ x)

    def test_matvec_wrong_length_rejected(self, rng):
        csr = from_dense(random_dense(rng), "csr")
        with pytest.raises(ValueError):
            csr.matvec(np.zeros(csr.shape[1] + 1))

    def test_matmul_dense_matches(self, rng):
        d = random_dense(rng)
        csr = from_dense(d, "csr")
        w = rng.standard_normal((d.shape[1], 3))
        assert np.allclose(csr.matmul_dense(w), d @ w)

    def test_matmul_dense_dim_mismatch(self, rng):
        csr = from_dense(random_dense(rng), "csr")
        with pytest.raises(ValueError):
            csr.matmul_dense(np.zeros((csr.shape[1] + 2, 3)))

    def test_transpose(self, rng):
        d = random_dense(rng)
        assert np.allclose(from_dense(d, "csr").transpose().to_dense(), d.T)

    def test_diagonal(self, rng):
        d = random_dense(rng, rows=5, cols=5)
        assert np.allclose(from_dense(d, "csr").diagonal(), np.diag(d))

    def test_row_slice(self, rng):
        d = random_dense(rng)
        csr = from_dense(d, "csr")
        cols, vals = csr.row_slice(2)
        row = np.zeros(d.shape[1])
        row[cols] = vals
        assert np.allclose(row, d[2])

    def test_csr_to_coo_round_trip(self, rng):
        d = random_dense(rng)
        assert np.allclose(from_dense(d, "csr").to_coo().to_dense(), d)

    def test_csr_to_csc_round_trip(self, rng):
        d = random_dense(rng)
        assert np.allclose(from_dense(d, "csr").to_csc().to_dense(), d)

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 2, 1], [0, 1], [1.0, 2.0], (2, 2))

    def test_indptr_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 1], [0], [1.0], (2, 2))

    def test_nnz_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 1, 3], [0, 1], [1.0, 2.0], (2, 2))


# ---------------------------------------------------------------- CSC basics


class TestCSC:
    def test_round_trip(self, rng):
        d = random_dense(rng)
        assert np.allclose(from_dense(d, "csc").to_dense(), d)

    def test_csc_to_csr(self, rng):
        d = random_dense(rng)
        assert np.allclose(from_dense(d, "csc").to_csr().to_dense(), d)

    def test_csc_to_coo(self, rng):
        d = random_dense(rng)
        assert np.allclose(from_dense(d, "csc").to_coo().to_dense(), d)

    def test_invalid_row_index_rejected(self):
        with pytest.raises(ValueError):
            CSCMatrix([0, 1, 1], [7], [1.0], (2, 2))


def test_from_dense_rejects_unknown_format(rng):
    with pytest.raises(ValueError):
        from_dense(random_dense(rng), "bsr")


def test_from_dense_rejects_1d():
    with pytest.raises(ValueError):
        from_dense(np.zeros(4))


# ---------------------------------------------------------------- properties


@st.composite
def dense_matrices(draw):
    rows = draw(st.integers(1, 8))
    cols = draw(st.integers(1, 8))
    values = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False).map(lambda v: 0.0 if abs(v) < 1 else v),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    return np.array(values).reshape(rows, cols)


@settings(max_examples=50, deadline=None)
@given(dense_matrices())
def test_all_formats_round_trip(dense):
    for fmt in ("coo", "csr", "csc"):
        assert np.allclose(from_dense(dense, fmt).to_dense(), dense)


@settings(max_examples=50, deadline=None)
@given(dense_matrices(), st.integers(0, 2**31 - 1))
def test_csr_matvec_property(dense, seed):
    x = np.random.default_rng(seed).standard_normal(dense.shape[1])
    csr = from_dense(dense, "csr")
    assert np.allclose(csr.matvec(x), dense @ x, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(dense_matrices())
def test_transpose_involution(dense):
    csr = from_dense(dense, "csr")
    assert np.allclose(csr.transpose().transpose().to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(dense_matrices())
def test_nnz_preserved_across_conversions(dense):
    coo = from_dense(dense, "coo")
    assert coo.nnz == coo.to_csr().nnz == coo.to_csc().nnz
