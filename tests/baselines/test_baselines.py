"""Baseline tests: ACCEPT, loop perforation, Autokeras substitute."""

import numpy as np
import pytest

from repro.apps import (
    ALL_APPLICATIONS,
    BlackscholesApplication,
    CGApplication,
    FFTApplication,
    FluidanimateApplication,
    MGApplication,
    StreamclusterApplication,
    X264Application,
)
from repro.baselines import (
    ACCEPT_TOPOLOGIES,
    PERFORATABLE,
    build_accept_surrogate,
    build_autokeras_surrogate,
    evaluate_perforation,
    find_max_rate,
    perforated_run,
)


class TestAcceptBaseline:
    def test_topology_table_covers_type2(self):
        type2 = {c.name for c in ALL_APPLICATIONS if c.app_type == "II"}
        assert set(ACCEPT_TOPOLOGIES) == type2

    def test_builds_for_type2(self):
        app = BlackscholesApplication()
        surrogate = build_accept_surrogate(app, n_samples=60, num_epochs=15, seed=0)
        problem = app.example_problem(np.random.default_rng(1))
        outputs = surrogate.run(problem)
        assert "prices" in outputs

    def test_rejected_for_type1(self):
        with pytest.raises(ValueError, match="Type-II"):
            build_accept_surrogate(CGApplication(), n_samples=40, num_epochs=5)

    def test_no_feature_reduction(self):
        app = StreamclusterApplication()
        surrogate = build_accept_surrogate(app, n_samples=60, num_epochs=10, seed=0)
        assert surrogate.package.autoencoder is None


class TestPerforation:
    def test_strategy_table_covers_all_apps(self):
        assert set(PERFORATABLE) == {c.name for c in ALL_APPLICATIONS}

    def test_rate_zero_matches_exact(self, rng):
        for cls in (CGApplication, MGApplication, X264Application):
            app = cls()
            problem = app.example_problem(rng)
            exact = app.run_exact(problem)
            outputs, cost = perforated_run(app, problem, 0.0)
            assert app.qoi_from_outputs(problem, outputs) == pytest.approx(
                exact.qoi, rel=1e-9
            )

    def test_perforation_reduces_cost(self, rng):
        app = FluidanimateApplication()
        problem = app.example_problem(rng)
        _, full = perforated_run(app, problem, 0.0)
        _, half = perforated_run(app, problem, 0.5)
        assert half.flops < full.flops

    def test_inadmissible_rate_rejected(self, rng):
        app = CGApplication()
        with pytest.raises(ValueError):
            perforated_run(app, app.example_problem(rng), 0.9)

    def test_unperforatable_apps_only_rate_zero(self, rng):
        app = FFTApplication()
        problem = app.example_problem(rng)
        outputs, _ = perforated_run(app, problem, 0.0)
        assert app.qoi_from_outputs(problem, outputs) == pytest.approx(
            app.run_exact(problem).qoi
        )
        with pytest.raises(ValueError):
            perforated_run(app, problem, 0.25)

    def test_find_max_rate_respects_quality(self):
        app = FluidanimateApplication()
        rate = find_max_rate(app, mu=0.10, n_problems=4, rng=np.random.default_rng(0))
        assert 0.0 <= rate <= 0.75
        # the found rate must actually keep quality on fresh problems
        result = evaluate_perforation(
            app, rate, n_problems=10, rng=np.random.default_rng(9)
        )
        assert result.hit_rate >= 0.7

    def test_fft_max_rate_is_zero(self):
        assert find_max_rate(FFTApplication(), n_problems=3) == 0.0

    def test_speedup_bounded_by_iteration_ceiling(self):
        # perforation at rate r on the region alone cannot exceed
        # (solver+other)/(solver*(1-r)+other)
        app = FluidanimateApplication()
        result = evaluate_perforation(app, 0.5, n_problems=6)
        assert result.speedup < 2.5

    def test_blackscholes_strided_fill(self, rng):
        app = BlackscholesApplication()
        problem = app.example_problem(rng)
        outputs, cost = perforated_run(app, problem, 0.5)
        exact = app.run_exact(problem)
        assert outputs["prices"].shape == exact.outputs["prices"].shape
        assert cost.flops < exact.region_cost.flops


class TestAutokerasBaseline:
    def test_builds_and_predicts(self):
        app = FFTApplication()
        surrogate = build_autokeras_surrogate(
            app, n_trials=2, n_samples=60, num_epochs=10, seed=0
        )
        problem = app.example_problem(np.random.default_rng(1))
        outputs = surrogate.run(problem)
        assert set(outputs) == {"re_out", "im_out"}

    def test_never_reduces_features(self):
        app = FFTApplication()
        surrogate = build_autokeras_surrogate(
            app, n_trials=2, n_samples=60, num_epochs=10, seed=0
        )
        assert surrogate.package.autoencoder is None
        assert surrogate.package.input_dim == 64

    def test_sparse_apps_skip_standardization(self):
        app = CGApplication()
        surrogate = build_autokeras_surrogate(
            app, n_trials=1, n_samples=40, num_epochs=5, seed=0
        )
        assert surrogate.x_scaler.is_identity
