"""Fig. 6 comparison-harness mechanics (fast budgets)."""

import math

import numpy as np
import pytest

from repro.apps import FFTApplication
from repro.baselines import METHODS, MethodRow, compare_methods
from repro.core import AutoHPCnetConfig


FAST = AutoHPCnetConfig(
    n_samples=120, outer_iterations=1, inner_trials=2, num_epochs=30,
    quality_problems=4, quality_loss=0.9, qoi_mu=0.5, seed=0,
)


@pytest.fixture(scope="module")
def fft_rows():
    return compare_methods(FFTApplication(), config=FAST, n_problems=10, seed=0)


class TestCompareMethods:
    def test_one_row_per_method(self, fft_rows):
        assert [r.method for r in fft_rows] == list(METHODS)

    def test_accept_not_applicable_for_type1(self, fft_rows):
        accept = next(r for r in fft_rows if r.method == "ACCEPT")
        assert math.isnan(accept.speedup)
        assert "not applicable" in accept.note

    def test_all_rows_same_app(self, fft_rows):
        assert {r.app_name for r in fft_rows} == {"FFT"}

    def test_effective_never_exceeds_raw(self, fft_rows):
        for row in fft_rows:
            if not math.isnan(row.speedup):
                assert row.speedup <= row.raw_speedup + 1e-9

    def test_perforation_rate_in_note(self, fft_rows):
        perf = next(r for r in fft_rows if r.method == "LoopPerforation")
        assert "rate" in perf.note

    def test_rows_format(self, fft_rows):
        for row in fft_rows:
            text = row.format()
            assert row.method in text and "FFT" in text
