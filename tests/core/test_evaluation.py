"""Evaluation-harness unit tests (Fig. 5 protocol mechanics)."""

import numpy as np
import pytest

from repro import AutoHPCnet, AutoHPCnetConfig, evaluate_surrogate
from repro.apps import LaghosApplication

FAST = AutoHPCnetConfig(
    n_samples=120, outer_iterations=1, inner_trials=2, num_epochs=40,
    quality_problems=4, quality_loss=0.9, qoi_mu=0.5, seed=0,
)


@pytest.fixture(scope="module")
def laghos_build():
    return AutoHPCnet(FAST).build(LaghosApplication())


class TestEvaluateSurrogate:
    def test_deterministic_given_rng(self, laghos_build):
        a = evaluate_surrogate(
            laghos_build.surrogate, n_problems=10, rng=np.random.default_rng(5)
        )
        b = evaluate_surrogate(
            laghos_build.surrogate, n_problems=10, rng=np.random.default_rng(5)
        )
        assert a.speedup == b.speedup
        assert a.hit_rate == b.hit_rate

    def test_stricter_mu_never_raises_hit_rate(self, laghos_build):
        loose = evaluate_surrogate(
            laghos_build.surrogate, n_problems=15, mu=0.5,
            rng=np.random.default_rng(1),
        )
        strict = evaluate_surrogate(
            laghos_build.surrogate, n_problems=15, mu=0.01,
            rng=np.random.default_rng(1),
        )
        assert strict.hit_rate <= loose.hit_rate

    def test_transfer_blowup_lowers_speedup(self, laghos_build):
        base = evaluate_surrogate(
            laghos_build.surrogate, n_problems=8, rng=np.random.default_rng(2)
        )
        inflated = evaluate_surrogate(
            laghos_build.surrogate, n_problems=8, rng=np.random.default_rng(2),
            transfer_blowup=1000.0,
        )
        assert inflated.speedup < base.speedup
        assert inflated.breakdown.t_data_load > base.breakdown.t_data_load

    def test_breakdown_terms_consistent(self, laghos_build):
        row = evaluate_surrogate(
            laghos_build.surrogate, n_problems=5, rng=np.random.default_rng(3)
        )
        b = row.breakdown
        assert row.speedup == pytest.approx(b.value)
        assert b.t_original == pytest.approx(b.t_numerical_solver + b.t_other)

    def test_zero_problems_rejected(self, laghos_build):
        with pytest.raises(ValueError):
            evaluate_surrogate(laghos_build.surrogate, n_problems=0)

    def test_row_format_readable(self, laghos_build):
        row = evaluate_surrogate(
            laghos_build.surrogate, n_problems=5, rng=np.random.default_rng(4)
        )
        text = row.format()
        assert "Laghos" in text and "speedup" in text and "HitRate" in text
