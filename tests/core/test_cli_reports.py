"""CLI and report-formatting tests."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.reports import (
    format_build_report,
    format_evaluation_table,
    format_phase_table,
)
from repro.core.evaluation import EvaluationRow
from repro.perf.metrics import SpeedupBreakdown


def make_row(name="CG", speedup=3.0, hit=0.95):
    b = SpeedupBreakdown(10.0, 0.5, 0.5, 2.0)
    return EvaluationRow(
        app_name=name, app_type="I", speedup=speedup, hit_rate=hit,
        breakdown=b, measured_speedup=1.2, n_problems=10, mu=0.1,
    )


class TestReports:
    def test_evaluation_table_contains_rows_and_hmean(self):
        text = format_evaluation_table([make_row("CG"), make_row("FFT", 6.0)])
        assert "CG" in text and "FFT" in text
        assert "harmonic mean" in text

    def test_evaluation_table_empty_rejected(self):
        with pytest.raises(ValueError):
            format_evaluation_table([])

    def test_phase_table(self):
        text = format_phase_table(
            {"simulated": {"fetch": 0.2, "run": 0.8},
             "measured": {"fetch": 0.3, "run": 0.7}}
        )
        assert "simulated" in text and "measured" in text
        assert "fetch" in text and "run" in text

    def test_phase_table_empty_rejected(self):
        with pytest.raises(ValueError):
            format_phase_table({})


class TestCLIParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["list-apps"]).command == "list-apps"
        args = parser.parse_args(["trace", "CG", "--samples", "5"])
        assert args.app == "CG" and args.samples == 5
        args = parser.parse_args(
            ["build", "FFT", "--samples", "100", "--outer", "1", "--inner", "2"]
        )
        assert args.outer == 1
        args = parser.parse_args(["evaluate", "MG", "--problems", "7"])
        assert args.problems == 7
        args = parser.parse_args(["compare", "FFT", "--problems", "5"])
        assert args.command == "compare" and args.problems == 5

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCLIExecution:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "Blackscholes" in out and "Laghos" in out

    def test_trace(self, capsys):
        assert main(["trace", "Laghos", "--samples", "4"]) == 0
        out = capsys.readouterr().out
        assert "inputs:" in out and "outputs:" in out

    def test_unknown_app_raises(self):
        with pytest.raises(ValueError):
            main(["trace", "doom"])
