"""Config, scaler and pipeline-component tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AutoHPCnetConfig, Scaler
from repro.nn import Topology


class TestConfig:
    def test_defaults_valid(self):
        cfg = AutoHPCnetConfig()
        assert cfg.quality_loss == 0.10
        assert cfg.search_type == "autokeras"

    def test_lowers_to_search_config(self):
        cfg = AutoHPCnetConfig(quality_loss=0.2, inner_trials=7)
        sc = cfg.to_search_config(sparse_input=True)
        assert sc.quality_loss == 0.2
        assert sc.inner_trials == 7
        assert sc.sparse_input is True

    def test_overrides_applied(self):
        cfg = AutoHPCnetConfig()
        sc = cfg.to_search_config(sparse_input=False, inner_trials=11)
        assert sc.inner_trials == 11

    def test_user_model_round_trip(self):
        topo = Topology(hidden=(8,), activation="relu")
        cfg = AutoHPCnetConfig(search_type="userModel", init_model=topo)
        assert cfg.to_search_config(sparse_input=False).init_model == topo

    def test_invalid_preprocessing_rejected(self):
        with pytest.raises(ValueError):
            AutoHPCnetConfig(preprocessing="pca")

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            AutoHPCnetConfig(n_samples=5)


class TestScaler:
    def test_fit_transform_standardizes(self, rng):
        x = rng.standard_normal((100, 4)) * 5 + 3
        scaler = Scaler.fit(x)
        z = scaler.transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_round_trip(self, rng):
        x = rng.standard_normal((30, 3)) * 2 + 1
        scaler = Scaler.fit(x)
        assert np.allclose(scaler.inverse(scaler.transform(x)), x)

    def test_constant_feature_safe(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        scaler = Scaler.fit(x)
        z = scaler.transform(x)
        assert np.all(np.isfinite(z))

    def test_identity(self):
        scaler = Scaler.identity(3)
        x = np.arange(6.0).reshape(2, 3)
        assert np.allclose(scaler.transform(x), x)
        assert scaler.is_identity

    def test_fitted_not_identity(self, rng):
        assert not Scaler.fit(rng.standard_normal((10, 2)) + 5).is_identity


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 5))
def test_scaler_round_trip_property(seed, dim):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((20, dim)) * rng.uniform(0.5, 10) + rng.uniform(-5, 5)
    scaler = Scaler.fit(x)
    assert np.allclose(scaler.inverse(scaler.transform(x)), x, atol=1e-9)
