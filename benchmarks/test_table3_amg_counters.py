"""Table 3: AMG hardware-counter study (CPU vs GPU-original vs surrogate).

Paper numbers:

| metric                | CPU-only | original on GPU | Auto-HPCnet on GPU |
|-----------------------|----------|-----------------|--------------------|
| FP operations         | 30.66 G  | 72.82 G         | 21.97 G            |
| L2 cache-miss rate    | 37.47 %  | 26.31 %         | 17.81 %            |
| Mem bandwidth (MB/s)  | 3523     | 7519            | 6736               |
| Wall clock (s)        | 2.47     | 2.11            | 0.51               |

Substitutions (DESIGN.md §2):

* **FP counts** — analytic cost model projected to proxy-app scale; the
  ported GPU solver (AMGX stand-in) does redundant work to expose
  parallelism, modelled as the paper's own FP-ops ratio.
* **L2 miss rates** — *proportionally scaled* cache simulation: real
  working sets (GBs) against MB-scale L2s are replayed as a
  representative-geometry working set against caches shrunk by the same
  factor, preserving the working-set : capacity ratios that determine the
  miss behaviour.  The solver stream interleaves streaming CSR values with
  irregular x-gathers; the surrogate stream is dense weight streaming with
  a reused activation buffer.
* **bandwidth / wall clock** — roofline device models; the surrogate's wall
  clock uses the full online path (fetch + encode + load + run), matching
  the paper's "data preparation cost included".

Shape: surrogate has the fewest FP ops and lowest miss rate and is the
fastest; the GPU solver does *more* FP ops than the CPU yet is only
slightly faster; CPU has the worst locality.
"""

from __future__ import annotations

import numpy as np

from repro.apps import make_application
from repro.perf import (
    CacheConfig,
    SetAssociativeCache,
    TESLA_V100_NN,
    TESLA_V100_SOLVER,
    XEON_E5_2698V4,
)
from repro.runtime import OnlineCostModel
from repro.sparse import poisson_2d

from conftest import eval_rng

#: Table 3's FP-ops ratio pins the GPU solver's redundancy factor
GPU_SOLVER_REDUNDANCY = 72.82 / 30.66

#: proportionally scaled L2 geometries (capacities shrunk ~64x so the
#: representative working set below stresses them like the real app
#: stresses the real L2s)
XEON_L2_SCALED = CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=8)
V100_L2_SCALED = CacheConfig(size_bytes=96 * 1024, line_bytes=64, ways=16)

#: representative solver working-set bytes (scaled like the caches): the
#: CSR value array streams, the solution vector is gathered irregularly
#: (matrix-ordering indirection at paper scale), work vectors sweep
_VALUES_BYTES = 64 * 1024
_GATHER_REGION_BYTES = 48 * 1024
_VECTOR_BYTES = 16 * 1024


def _solver_stream(iterations: int = 3, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x_base = 0
    values_base = _GATHER_REGION_BYTES
    vec_base = values_base + _VALUES_BYTES
    streams = []
    n_gather = _VALUES_BYTES // 8
    for _ in range(iterations):
        # SpMV: sequential walk of CSR values + irregular gathers of x
        # (at paper scale the gather order follows the matrix ordering, not
        # memory order — modelled as uniform accesses over the x region)
        streams.append(values_base + np.arange(0, _VALUES_BYTES, 8))
        streams.append(x_base + rng.integers(0, _GATHER_REGION_BYTES // 8, n_gather) * 8)
        # vector updates: contiguous sweeps over three work vectors
        for v in range(3):
            streams.append(vec_base + v * _VECTOR_BYTES + np.arange(0, _VECTOR_BYTES, 8))
    return np.concatenate(streams)


def _surrogate_stream(package, repeats: int = 8) -> np.ndarray:
    """Dense NN inference: weights streamed in order, activations reused."""
    param_bytes = min(max(package.num_parameters() * 8, 48 * 1024), 80 * 1024)
    activation_bytes = 4 * 1024
    streams = []
    for _ in range(repeats):
        streams.append(np.arange(0, param_bytes, 8, dtype=np.int64))
        streams.append(
            np.arange(param_bytes, param_bytes + activation_bytes, 8, dtype=np.int64)
        )
    return np.concatenate(streams)


def _miss_rate(config: CacheConfig, stream: np.ndarray) -> float:
    cache = SetAssociativeCache(config)
    return cache.access_stream(stream.tolist()).miss_rate


def _run_table3(amg_build):
    app = make_application("AMG")
    surrogate = amg_build.surrogate
    problem = app.example_problem(eval_rng())
    run = app.run_exact(problem)
    region = run.region_cost.scaled(app.cost_scale)

    # --- FP operations ---
    cpu_flops = region.flops
    gpu_flops = region.flops * GPU_SOLVER_REDUNDANCY
    online = OnlineCostModel(compute_scale=app.data_scale)
    phases = online.phase_times(
        surrogate.package, surrogate.input_bytes(problem) * app.data_scale
    )
    from repro.perf import nn_inference_cost

    nn_flops_mini, nn_traffic_mini = nn_inference_cost(surrogate.package.model, 1)
    if surrogate.package.autoencoder is not None:
        enc = surrogate.package.autoencoder.encode_flops(1)
        nn_flops_mini += enc
        nn_traffic_mini += enc
    surrogate_flops = nn_flops_mini * app.data_scale

    # --- L2 miss rates (proportionally scaled cache simulation) ---
    solver_stream = _solver_stream()
    cpu_miss = _miss_rate(XEON_L2_SCALED, solver_stream)
    gpu_miss = _miss_rate(V100_L2_SCALED, solver_stream)
    nn_miss = _miss_rate(V100_L2_SCALED, _surrogate_stream(surrogate.package))

    # --- wall clock + achieved bandwidth ---
    t_cpu = XEON_E5_2698V4.kernel_time(region.flops, region.bytes_moved)
    gpu_bytes = region.bytes_moved * GPU_SOLVER_REDUNDANCY
    t_gpu = TESLA_V100_SOLVER.kernel_time(gpu_flops, gpu_bytes)
    t_nn = sum(phases.values())          # data preparation cost included
    nn_bytes = nn_traffic_mini * app.data_scale

    bw = lambda nbytes, t: nbytes / t / 1e6
    return {
        "CPU-only": dict(flops=cpu_flops, miss=cpu_miss,
                         bandwidth=bw(region.bytes_moved, t_cpu), wall=t_cpu),
        "Original code on GPU": dict(flops=gpu_flops, miss=gpu_miss,
                                     bandwidth=bw(gpu_bytes, t_gpu), wall=t_gpu),
        "Auto-HPCnet on GPU": dict(flops=surrogate_flops, miss=nn_miss,
                                   bandwidth=bw(nn_bytes, phases["run_model"] + 1e-12),
                                   wall=t_nn),
    }


def test_table3_amg_counters(amg_build, benchmark):
    table = benchmark.pedantic(lambda: _run_table3(amg_build), rounds=1, iterations=1)

    print("\n=== Table 3: AMG on CPU vs GPU-solver vs surrogate ===")
    print(f"{'metric':<28}{'CPU-only':>16}{'GPU solver':>16}{'Auto-HPCnet':>16}")
    modes = ("CPU-only", "Original code on GPU", "Auto-HPCnet on GPU")
    print(f"{'FP operations':<28}" + "".join(f"{table[m]['flops']/1e9:>14.2f}G " for m in modes))
    print(f"{'L2 miss rate':<28}" + "".join(f"{table[m]['miss']:>15.2%} " for m in modes))
    print(f"{'Mem bandwidth (MB/s)':<28}" + "".join(f"{table[m]['bandwidth']:>15.0f} " for m in modes))
    print(f"{'Wall clock (s)':<28}" + "".join(f"{table[m]['wall']:>15.2f} " for m in modes))
    cpu, gpu, nn = (table[m] for m in modes)
    print(f"speedup over GPU solver: {gpu['wall']/nn['wall']:.2f}x  (paper: 4.14x)")
    print(f"FP-op reduction vs GPU solver: {1 - nn['flops']/gpu['flops']:.1%}  (paper: 69.8%)")
    print(f"miss-rate reduction vs GPU solver: {1 - nn['miss']/gpu['miss']:.1%}  (paper: 52.5%)")

    # --- shape assertions ---
    assert nn["flops"] < cpu["flops"] < gpu["flops"]
    assert nn["miss"] < gpu["miss"] < cpu["miss"]
    assert nn["wall"] < gpu["wall"] < cpu["wall"]
    assert 2.0 <= gpu["wall"] / nn["wall"] <= 120.0
    assert gpu["bandwidth"] > cpu["bandwidth"]