"""Figure 5: whole-application speedup and prediction HitRate, 11 apps.

Paper result: 1.89x-16.8x speedup, harmonic mean 5.50x, Blackscholes the
largest; HitRate 93 % (MG, Canneal), 94 % (AMG), 98 % (streamcluster) and
100 % elsewhere, at mu = 10 % over 2000 input problems per app.

This bench reruns the protocol at reproduction scale (100 problems per app,
simulated devices) and asserts the *shape*: every app speeds up,
Blackscholes leads, the harmonic mean lands in the same order of magnitude,
and hit rates are high across the board.
"""

from __future__ import annotations

import numpy as np

from repro.core import evaluate_surrogate
from repro.perf import harmonic_mean

from conftest import APP_NAMES, MU, N_EVAL_PROBLEMS, eval_rng


def _evaluate_all(all_builds):
    rows = {}
    for name in APP_NAMES:
        rows[name] = evaluate_surrogate(
            all_builds[name].surrogate,
            n_problems=N_EVAL_PROBLEMS,
            mu=MU,
            rng=eval_rng(),
        )
    return rows


def test_fig5_speedup_and_hitrate(all_builds, benchmark):
    rows = benchmark.pedantic(
        lambda: _evaluate_all(all_builds), rounds=1, iterations=1
    )

    speedups = {name: rows[name].speedup for name in APP_NAMES}
    hits = {name: rows[name].hit_rate for name in APP_NAMES}
    hmean = harmonic_mean(list(speedups.values()))

    print("\n=== Fig. 5: speedup and prediction HitRate (mu=10%) ===")
    print(f"{'application':<14} {'type':<5} {'speedup':>9} {'HitRate':>9}")
    for name in APP_NAMES:
        row = rows[name]
        print(f"{name:<14} {row.app_type:<5} {row.speedup:>8.2f}x {row.hit_rate:>8.1%}")
    print(f"{'harmonic mean':<20} {hmean:>8.2f}x")
    print(f"paper: 1.89x-16.8x, harmonic mean 5.50x; HitRate 93-100%")

    # --- shape assertions (see DESIGN.md §6) ---
    assert all(s > 1.0 for s in speedups.values()), speedups
    assert max(speedups, key=speedups.get) == "Blackscholes"
    assert speedups["Blackscholes"] > 8.0
    assert 1.5 <= hmean <= 20.0
    assert all(h >= 0.7 for h in hits.values()), hits
    assert np.mean(list(hits.values())) >= 0.85
