"""Ablation: hierarchical 2D search vs a flattened single-loop BO (§5.2).

The paper argues that arithmetically mixing the feature-reduction knob K
and the topology parameters θ in one Euclidean optimization vector "loses
the parameter semantics, which leads to a suboptimal selection".  This
ablation runs both under the same trial budget on the same data:

* **2D**: Algorithm 2 (outer BO over K, inner BO over θ);
* **flat**: one BO over the concatenated [K-encoding | θ-encoding] vector,
  training an autoencoder per evaluated point.

Reported: best feasible inference cost f_c and quality f_e per strategy.
Shape: the 2D search finds a feasible surrogate at least as cheap/good as
the flat search under the equal budget.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps import make_application
from repro.autoencoder import AETrainConfig, Autoencoder, train_autoencoder
from repro.bo import BayesianOptimizer
from repro.core.scaling import Scaler
from repro.nas import (
    Hierarchical2DSearch,
    InputDimSpace,
    SearchConfig,
    TopologySpace,
    evaluate_topology,
)
from repro.nn import TrainConfig

BUDGET = 8               # total model trainings per strategy
EPSILON = 0.30
SPACE = TopologySpace(max_layers=2, width_choices=(8, 16, 32, 64),
                      activations=("relu", "tanh"), allow_residual=False)
TRAIN = TrainConfig(num_epochs=200, lr=1e-3, patience=40, weight_decay=1e-4)


def _data():
    app = make_application("FFT")
    acq = app.acquire(n_samples=400, rng=np.random.default_rng(0))
    x = Scaler.fit(acq.x).transform(acq.x)
    y = Scaler.fit(acq.y).transform(acq.y)
    return x, y


def _run_2d(x, y):
    cfg = SearchConfig(
        outer_iterations=2, inner_trials=BUDGET // 2, quality_loss=EPSILON,
        encoding_loss=1.0, num_epochs=TRAIN.num_epochs, lr=TRAIN.lr,
        patience=TRAIN.patience, ae_epochs=40, seed=0,
    )
    ks = InputDimSpace.geometric(x.shape[1], levels=3, min_dim=4)
    result = Hierarchical2DSearch(SPACE, ks, cfg).run(x, y)
    best = result.best
    return (best.f_c, best.f_e) if best else (math.inf, math.inf)


def _run_flat(x, y):
    """Single BO over the concatenated [log2(K), theta] vector."""
    ks = InputDimSpace.geometric(x.shape[1], levels=3, min_dim=4)
    optimizer = BayesianOptimizer(threshold=EPSILON, init_samples=2,
                                  rng=np.random.default_rng(7))
    rng = np.random.default_rng(8)
    best = (math.inf, math.inf)
    ae_cache: dict[int, Autoencoder] = {}
    for trial in range(BUDGET):
        pool = np.array([
            np.concatenate([ks.encode(ks.sample(rng)), SPACE.encode(SPACE.sample(rng))])
            for _ in range(32)
        ])
        idx = optimizer.ask(pool)
        k = ks.decode(pool[idx][:1])
        topology = SPACE.decode(pool[idx][1:])
        if k >= x.shape[1]:
            ae = None                        # K = input dim: no reduction
        else:
            if k not in ae_cache:
                new_ae = Autoencoder(x.shape[1], k, depth=2, rng=np.random.default_rng(k))
                train_autoencoder(new_ae, x, AETrainConfig(num_epochs=40, lr=1e-3, seed=k))
                ae_cache[k] = new_ae
            ae = ae_cache[k]
        candidate = evaluate_topology(
            topology, ae.encode(x) if ae else x, y, autoencoder=ae, x_raw=x,
            train_config=TRAIN, rng=np.random.default_rng(100 + trial),
        )
        optimizer.tell(pool[idx], math.log(candidate.f_c), candidate.f_e)
        if candidate.f_e <= EPSILON and candidate.f_c < best[0]:
            best = (candidate.f_c, candidate.f_e)
    return best


def test_ablation_2d_vs_flat(benchmark):
    x, y = _data()
    results = benchmark.pedantic(
        lambda: {"2D": _run_2d(x, y), "flat": _run_flat(x, y)},
        rounds=1, iterations=1,
    )

    print("\n=== ablation: hierarchical 2D vs flattened BO (equal budget) ===")
    for name, (f_c, f_e) in results.items():
        print(f"{name:<6} best feasible f_c={f_c:.3e}s  f_e={f_e:.3f}")

    f_c_2d, f_e_2d = results["2D"]
    f_c_flat, _ = results["flat"]
    assert math.isfinite(f_c_2d), "2D search found no feasible surrogate"
    assert f_e_2d <= EPSILON
    # 2D finds a model at least roughly as cheap as the flat mixing
    if math.isfinite(f_c_flat):
        assert f_c_2d <= f_c_flat * 1.5
