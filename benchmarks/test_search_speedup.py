"""2D-NAS throughput benchmark: sequential vs parallel + warm AE cache.

The ISSUE-4 acceptance bar: with >= 2 trial workers and a warm autoencoder
artifact cache, the hierarchical search must finish in at most half the
wall-clock of the sequential cold configuration — while producing the
*identical* best candidate (same f_c, same f_e, same topology).

Where the speedup comes from:

* the warm ``ae_cache`` skips every outer iteration's autoencoder training
  and encode pass (the dominant fixed cost of an iteration — the input here
  is 64-dimensional and the AE budget deliberately generous), and
* the batch of ``parallel_trials`` proposed per constant-liar ask is
  evaluated over 2 thread ranks instead of 1.

Both configurations run the same ``parallel_trials`` so the proposal
schedule is identical; the determinism contract (trial identity fixed at
ask time, results told in index order, per-K AE seeds) guarantees the
bit-identical best.  The parallel run's cache is pre-warmed by a throwaway
search into the same checkpoint directory, after which the search state and
best package are deleted so the measured run performs the full search with
only the ``ae_cache/`` tier retained.

Results are written to ``BENCH_search.json`` (override with
``REPRO_SEARCH_BENCH_JSON``).

Environment knobs (the CI smoke job runs a reduced configuration):

* ``REPRO_SEARCH_BENCH_MIN_SPEEDUP`` — assertion threshold (default 2.0)
* ``REPRO_SEARCH_BENCH_AE_EPOCHS``   — AE training budget (default 150)
* ``REPRO_SEARCH_BENCH_WORKERS``     — parallel config's trial workers (default 2)

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_search_speedup.py -q -s
"""

from __future__ import annotations

import json
import os
import shutil
import time

import numpy as np
import pytest

from repro.nas import Hierarchical2DSearch, InputDimSpace, SearchConfig, TopologySpace

MIN_SPEEDUP = float(os.environ.get("REPRO_SEARCH_BENCH_MIN_SPEEDUP", "2.0"))
AE_EPOCHS = int(os.environ.get("REPRO_SEARCH_BENCH_AE_EPOCHS", "150"))
WORKERS = int(os.environ.get("REPRO_SEARCH_BENCH_WORKERS", "2"))
JSON_PATH = os.environ.get("REPRO_SEARCH_BENCH_JSON", "BENCH_search.json")

DIN, N_SAMPLES = 64, 240
SPACE = TopologySpace(
    max_layers=2, width_choices=(8, 16), activations=("relu", "tanh"),
    allow_residual=False,
)
K_CHOICES = (4, 8, 16)


def search_config(**overrides) -> SearchConfig:
    params = dict(
        outer_iterations=3, inner_trials=4, parallel_trials=2,
        # the tight sigma bound keeps the AE training at its full epoch
        # budget — the workload the cache exists to absorb
        quality_loss=0.9, encoding_loss=0.01,
        num_epochs=8, ae_epochs=AE_EPOCHS,
        bayesian_init=1, seed=0,
    )
    params.update(overrides)
    return SearchConfig(**params)


def run_search(x, y, *, checkpoint_dir=None, **overrides):
    search = Hierarchical2DSearch(
        SPACE, InputDimSpace(choices=K_CHOICES), search_config(**overrides)
    )
    start = time.perf_counter()
    result = search.run(x, y, checkpoint_dir=checkpoint_dir)
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def search_data():
    rng = np.random.default_rng(42)
    x = rng.standard_normal((N_SAMPLES, DIN))
    w = rng.standard_normal((DIN, 2))
    return x, x @ w


class TestSearchSpeedup:
    def test_parallel_cached_vs_sequential(self, search_data, tmp_path):
        x, y = search_data
        cache_dir = tmp_path / "ckpt"

        # warm the artifact cache, then forget everything but ae_cache/ so
        # the measured run repeats the full search with warm artifacts
        run_search(x, y, checkpoint_dir=cache_dir, trial_workers=1)
        (cache_dir / "search_state.json").unlink()
        shutil.rmtree(cache_dir / "best_package")

        sequential, t_seq = run_search(x, y, ae_cache=False, trial_workers=1)
        parallel, t_par = run_search(
            x, y, checkpoint_dir=cache_dir, trial_workers=WORKERS
        )
        speedup = t_seq / t_par

        assert parallel.best is not None and sequential.best is not None
        assert parallel.best.f_c == sequential.best.f_c
        assert parallel.best.f_e == sequential.best.f_e
        assert parallel.best.topology == sequential.best.topology
        assert parallel.best_k == sequential.best_k

        report = {
            "sequential_s": t_seq,
            "parallel_s": t_par,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "trial_workers": WORKERS,
            "parallel_trials": 2,
            "ae_epochs": AE_EPOCHS,
            "outer_iterations": 3,
            "inner_trials": 4,
            "input_dim": DIN,
            "k_choices": list(K_CHOICES),
            "best": {
                "k": parallel.best_k,
                "f_c": parallel.best.f_c,
                "f_e": parallel.best.f_e,
                "topology": parallel.best.topology.describe(),
            },
        }
        with open(JSON_PATH, "w") as fh:
            json.dump(report, fh, indent=2)
        print(
            f"\nsequential: {t_seq:.2f}s | parallel+cache ({WORKERS} workers): "
            f"{t_par:.2f}s | speedup {speedup:.2f}x -> {JSON_PATH}"
        )
        assert speedup >= MIN_SPEEDUP, (
            f"parallel+cached search only {speedup:.2f}x faster than "
            f"sequential (required {MIN_SPEEDUP}x with {WORKERS} workers)"
        )
