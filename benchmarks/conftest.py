"""Shared fixtures for the evaluation benchmarks (§7 of the paper).

Every bench regenerates one table or figure.  Surrogate builds are
expensive, so they happen once per pytest session in the ``all_builds``
fixture and are shared by Fig. 5, Fig. 6, Table 3 and the overhead benches.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AutoHPCnet, AutoHPCnetConfig
from repro.apps import ALL_APPLICATIONS, make_application

#: evaluation protocol constants (paper: 2000 problems, mu = 10 %)
N_EVAL_PROBLEMS = 100
MU = 0.10
EVAL_SEED = 2023

#: full-budget configuration used by every bench build
BENCH_CONFIG = AutoHPCnetConfig(
    n_samples=600,
    outer_iterations=3,
    inner_trials=4,
    num_epochs=150,
    ae_epochs=50,
    quality_problems=20,
    quality_loss=MU,
    encoding_loss=0.6,
    seed=0,
)

APP_NAMES = tuple(cls.name for cls in ALL_APPLICATIONS)


def eval_rng() -> np.random.Generator:
    """Fresh generator for the shared evaluation problem set."""
    return np.random.default_rng(EVAL_SEED)


@pytest.fixture(scope="session")
def all_builds():
    """Auto-HPCnet surrogates for all 11 applications (built once)."""
    builds = {}
    for name in APP_NAMES:
        app = make_application(name)
        builds[name] = AutoHPCnet(BENCH_CONFIG).build(app)
    return builds


@pytest.fixture(scope="session")
def amg_build(all_builds):
    return all_builds["AMG"]
