"""Serving-throughput benchmark: micro-batched vs per-request orchestration.

The ISSUE-3 acceptance bar: dynamic micro-batching at ``max_batch_size=32``
must serve at least 5x the requests/sec of strict per-request serving
(``max_batch_size=1``) on the quickstart (Blackscholes) MLP surrogate.
The speedup comes from one vectorized ``(B, F)`` forward pass — plus one
queue drain, one telemetry update — amortizing the per-request Python and
store overhead across the whole batch.

Both configurations run with ``batch_invariant=False`` (plain BLAS
``gemm``), the throughput-oriented serving mode.  The default
``batch_invariant=True`` mode trades some batched-forward speed for
bit-identical outputs across batch slicings (its ``einsum`` kernel caps
the forward-only speedup near 3.5x on this surrogate); bit-identity is
asserted separately by the property tests in
``tests/runtime/test_batching.py``.

Environment knobs (the CI smoke job runs a reduced configuration):

* ``REPRO_SERVING_BENCH_REQUESTS``    — requests per measurement (default 1024)
* ``REPRO_SERVING_BENCH_BATCH``       — batched config's max_batch_size (default 32)
* ``REPRO_SERVING_BENCH_MIN_SPEEDUP`` — assertion threshold (default 5.0)

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_serving_throughput.py -q -s
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import AutoHPCnet, AutoHPCnetConfig
from repro.apps import BlackscholesApplication
from repro.runtime import measure_serving_throughput

N_REQUESTS = int(os.environ.get("REPRO_SERVING_BENCH_REQUESTS", "1024"))
BATCH = int(os.environ.get("REPRO_SERVING_BENCH_BATCH", "32"))
MIN_SPEEDUP = float(os.environ.get("REPRO_SERVING_BENCH_MIN_SPEEDUP", "5.0"))
#: best-of-N trials per configuration to absorb scheduler noise
TRIALS = 2


@pytest.fixture(scope="module")
def quickstart_rows():
    """The quickstart surrogate plus a request stream of scaled input rows."""
    app = BlackscholesApplication()
    build = AutoHPCnet(
        AutoHPCnetConfig(
            n_samples=200, outer_iterations=1, inner_trials=2, seed=0
        )
    ).build(app)
    surrogate = build.surrogate
    rng = np.random.default_rng(7)
    flat = np.stack(
        [surrogate.input_schema.flatten(p) for p in app.generate_problems(64, rng)]
    )
    scaled = surrogate.x_scaler.transform(flat)
    reps = -(-N_REQUESTS // len(scaled))
    return surrogate.package, np.tile(scaled, (reps, 1))[:N_REQUESTS]


def best_throughput(package, rows, **kwargs) -> float:
    return max(
        measure_serving_throughput(package, rows, **kwargs).requests_per_sec
        for _ in range(TRIALS)
    )


class TestServingThroughput:
    def test_batched_speedup_over_per_request(self, quickstart_rows):
        package, rows = quickstart_rows
        per_request = best_throughput(
            package, rows, max_batch_size=1, max_wait_ms=0.0,
            batch_invariant=False,
        )
        batched = best_throughput(
            package, rows, max_batch_size=BATCH, max_wait_ms=2.0,
            batch_invariant=False,
        )
        speedup = batched / per_request
        print(
            f"\nper-request: {per_request:,.0f} req/s | "
            f"batch {BATCH}: {batched:,.0f} req/s | speedup {speedup:.1f}x "
            f"({N_REQUESTS} requests)"
        )
        assert speedup >= MIN_SPEEDUP, (
            f"batched serving only {speedup:.2f}x faster than per-request "
            f"(required {MIN_SPEEDUP}x at max_batch_size={BATCH})"
        )

    def test_batched_outputs_match_per_request(self, quickstart_rows):
        """Throughput must not buy wrong answers: spot-check equivalence."""
        package, rows = quickstart_rows
        sample = rows[:8]
        batched = package.predict(np.asarray(sample))
        for i, row in enumerate(sample):
            assert np.allclose(batched[i], package.predict(row))
