"""§7.2 "Effectiveness of Bayesian Optimization": BO vs grid search.

Paper result (search steps per hour to reach the same model quality):

| app type | Bayesian optimization | grid search |
|----------|----------------------:|------------:|
| Type I   | 3.3                   | 1.6         |
| Type II  | 6.5                   | 3.2         |
| Type III | 2.1                   | 1.9         |

We measure, for one representative app per type, how many search steps each
strategy needs before producing a model that reaches a common quality
target.  The target is self-calibrating — beat the median validation error
of a small random pilot by 20 % — so the comparison measures *guidance*,
not an arbitrary absolute threshold.  Under a fixed per-step cost,
steps-to-quality is inversely proportional to the paper's steps/hour, so
the comparable quantity is the BO : grid ratio.  Shape: the quality-guided
BO reaches the target in no more steps than grid's fixed enumeration, and
strictly fewer for most types.
"""

from __future__ import annotations

import numpy as np

from repro.apps import make_application
from repro.core.scaling import Scaler
from repro.nas import TopologySearch, TopologySpace, evaluate_topology
from repro.nn import TrainConfig

REPRESENTATIVES = {"I": "FFT", "II": "Blackscholes", "III": "Laghos"}
MAX_STEPS = 14
PILOT_SIZE = 6
SPACE = TopologySpace(
    max_layers=3, width_choices=(8, 16, 32, 64), activations=("relu", "tanh")
)
TRAIN = TrainConfig(num_epochs=120, lr=1e-3, patience=25, weight_decay=1e-4)


def _prepare(name):
    app = make_application(name)
    acq = app.acquire(n_samples=400, rng=np.random.default_rng(0))
    xs = Scaler.identity(acq.input_dim) if app.sparse_input() else Scaler.fit(acq.x)
    ys = Scaler.fit(acq.y)
    return xs.transform(acq.x), ys.transform(acq.y)


def _quality_target(x, y) -> float:
    """Beat the random-pilot median validation error by 20%."""
    rng = np.random.default_rng(77)
    errors = []
    for i in range(PILOT_SIZE):
        candidate = evaluate_topology(
            SPACE.sample(rng), x, y, train_config=TRAIN,
            rng=np.random.default_rng(500 + i),
        )
        errors.append(candidate.val_error)
    return 0.8 * float(np.median(errors))


def _steps_to_quality_bo(x, y, target: float) -> int:
    from repro.nn import Topology

    search = TopologySearch(
        SPACE, epsilon=target, train_config=TRAIN, init_samples=2, seed=0
    )
    # the production search (searchType=autokeras) seeds the inner loop
    # with the default topology; the comparison uses the same behaviour
    default = Topology(hidden=(64, 64), activation="tanh")
    result = search.search(x, y, n_trials=MAX_STEPS, initial_topology=default)
    for i, candidate in enumerate(result.history, start=1):
        if candidate.f_e <= target:
            return i
    return MAX_STEPS + 1


def _steps_to_quality_grid(x, y, target: float) -> int:
    for i, topology in enumerate(SPACE.grid(), start=1):
        if i > MAX_STEPS:
            break
        candidate = evaluate_topology(
            topology, x, y, train_config=TRAIN, rng=np.random.default_rng(100 + i)
        )
        if candidate.val_error <= target:
            return i
    return MAX_STEPS + 1


def _run():
    table = {}
    for app_type, name in REPRESENTATIVES.items():
        x, y = _prepare(name)
        target = _quality_target(x, y)
        bo_steps = _steps_to_quality_bo(x, y, target)
        grid_steps = _steps_to_quality_grid(x, y, target)
        table[app_type] = (name, target, bo_steps, grid_steps)
    return table


def test_bo_vs_grid_efficiency(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== §7.2: search steps to reach the common quality target ===")
    print(f"{'type':<6}{'app':<14}{'target':>9}{'BO steps':>10}{'grid steps':>12}"
          f"{'BO rate / grid rate':>22}")
    for app_type, (name, target, bo_steps, grid_steps) in table.items():
        ratio = grid_steps / bo_steps
        print(f"{app_type:<6}{name:<14}{target:>9.3f}{bo_steps:>10}{grid_steps:>12}"
              f"{ratio:>21.2f}x")
    print("paper steps/hour: BO 3.3/6.5/2.1 vs grid 1.6/3.2/1.9 (types I/II/III)")

    # --- shape assertions: quality-guided BO is never slower than grid ---
    for app_type, (name, target, bo_steps, grid_steps) in table.items():
        assert bo_steps <= MAX_STEPS, f"BO never reached the target on {name}"
        assert bo_steps <= grid_steps, (app_type, name, bo_steps, grid_steps)
    strict = sum(
        1 for _, _, bo_steps, grid_steps in table.values() if bo_steps < grid_steps
    )
    assert strict >= 1
