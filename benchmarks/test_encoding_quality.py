"""Eqn 1 study: error-bounded feature reduction in the autoencoder.

The paper's customized autoencoder exposes σ_y (Eqn 1) so the user can put
a lower bound on encoding quality (Table 1's ``encodingLoss``) and the
outer search can trade reduction ratio against it.  This bench sweeps the
latent dimension K on a real app's inputs and reports σ_y per K: quality
must improve (σ_y fall) as K grows, and the error-bounded trainer must
stop early once the bound is met.
"""

from __future__ import annotations

import numpy as np

from repro.apps import make_application
from repro.autoencoder import AETrainConfig, Autoencoder, train_autoencoder
from repro.core.scaling import Scaler


def _sweep(ks=(4, 16, 64, 160)):
    # X264's frame inputs are smooth structure + small sensor noise, the
    # compressible regime the autoencoder targets
    app = make_application("X264")
    acq = app.acquire(n_samples=400, rng=np.random.default_rng(0))
    x = acq.x                           # raw scale: sigma_y tolerances are relative
    ks = tuple(k for k in ks if k <= x.shape[1])
    sigmas = {}
    for k in ks:
        ae = Autoencoder(x.shape[1], k, depth=2, activation="tanh",
                         rng=np.random.default_rng(1))
        result = train_autoencoder(
            ae, x, AETrainConfig(num_epochs=150, lr=3e-3,
                                 encoding_loss_bound=0.0, seed=2)
        )
        sigmas[k] = result.final_sigma
    return sigmas


def _early_stop_epochs(bound: float) -> tuple[int, bool]:
    app = make_application("X264")
    acq = app.acquire(n_samples=300, rng=np.random.default_rng(0))
    ae = Autoencoder(acq.x.shape[1], 64, depth=2, activation="tanh",
                     rng=np.random.default_rng(1))
    result = train_autoencoder(
        ae, acq.x, AETrainConfig(num_epochs=300, lr=3e-3,
                                 encoding_loss_bound=bound, seed=2)
    )
    return result.epochs_run, result.met_bound


def test_encoding_quality_vs_k(benchmark):
    sigmas = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    bounded_epochs, met = _early_stop_epochs(bound=0.5)
    unbounded_epochs, _ = _early_stop_epochs(bound=0.0)

    print("\n=== Eqn 1: sigma_y vs reduced dimension K (X264 frame inputs) ===")
    for k, sigma in sorted(sigmas.items()):
        print(f"K={k:<5} sigma_y={sigma:.3f}")
    print(f"error-bounded training (sigma_y<=0.5): stopped at epoch "
          f"{bounded_epochs} (bound met: {met}); unbounded ran {unbounded_epochs}")

    # --- shape assertions ---
    ks = sorted(sigmas)
    assert all(0.0 <= sigmas[k] <= 1.0 for k in ks)
    # the inputs are genuinely encodable: some K reaches a good sigma_y
    # (the curve plateaus at the input's noise floor rather than falling
    # monotonically — extra latent capacity buys nothing past that)
    assert min(sigmas.values()) < 0.5
    assert max(sigmas.values()) - min(sigmas.values()) < 0.5
    assert met and bounded_epochs < unbounded_epochs
