"""Ablation: loop-compressed vs full trace generation (§3.1).

Auto-HPCnet stores one iteration of a loop whose control flow and accessed
array variables are invariant across iterations.  This bench traces the
iterative solver regions with and without compression and reports the
stored-trace reduction and the classification invariance (the compressed
trace must yield the same DDDG input/output sets).
"""

from __future__ import annotations

import numpy as np

from repro.apps import make_application
from repro.extract import RegionTracer, build_dddg, classify_io, get_region_spec

APPS = ("CG", "FFT", "MG", "AMG")


def _trace_both(name):
    app = make_application(name)
    problem = app.example_problem(np.random.default_rng(0))
    tracer = RegionTracer(app.region_fn)
    _, compressed = tracer.trace(**problem, compress=True)
    _, full = tracer.trace(**problem, compress=False)
    live = frozenset(get_region_spec(app.region_fn).live_after)
    io_c = classify_io(build_dddg(compressed), problem, live)
    io_f = classify_io(build_dddg(full), problem, live)
    return {
        "stored_compressed": compressed.stored_length(),
        "stored_full": full.stored_length(),
        "dynamic": full.dynamic_length(),
        "io_match": (io_c.inputs == io_f.inputs and io_c.outputs == io_f.outputs),
    }


def test_ablation_trace_compression(benchmark):
    table = benchmark.pedantic(
        lambda: {name: _trace_both(name) for name in APPS}, rounds=1, iterations=1
    )

    print("\n=== ablation: loop-compressed vs full traces ===")
    print(f"{'region':<8}{'dynamic stmts':>14}{'full stored':>13}{'compressed':>12}{'reduction':>11}")
    for name, row in table.items():
        reduction = row["stored_full"] / row["stored_compressed"]
        print(
            f"{name:<8}{row['dynamic']:>14}{row['stored_full']:>13}"
            f"{row['stored_compressed']:>12}{reduction:>10.1f}x"
        )

    # --- shape assertions ---
    for name, row in table.items():
        assert row["io_match"], f"{name}: compression changed the classification"
        assert row["stored_compressed"] <= row["stored_full"]
    # the iterative solvers must compress substantially
    assert table["CG"]["stored_full"] / table["CG"]["stored_compressed"] > 2.0
    assert table["FFT"]["stored_full"] / table["FFT"]["stored_compressed"] > 1.5
