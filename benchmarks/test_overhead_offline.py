"""§7.3 offline-overhead analysis: trace generation, BO, autoencoder training.

Paper result: trace generation 24-59 min, Bayesian optimization 6-13 h,
autoencoder training 1.4-2.2 h per application — BO dominates, trace
generation is the smallest phase, and the whole offline cost amortizes
because it is paid once.

At reproduction scale absolute times are seconds, but the ordering must
hold: BO (which trains a model per trial) > autoencoder training (one AE
per outer iteration) > trace generation (one instrumented run).
"""

from __future__ import annotations

from conftest import APP_NAMES

PHASES = ("trace_generation", "autoencoder_training", "bayesian_optimization")


def _collect(all_builds):
    table = {}
    for name in APP_NAMES:
        timers = all_builds[name].timers
        table[name] = {phase: timers.phases.get(phase, 0.0) for phase in PHASES}
    return table


def test_offline_overheads(all_builds, benchmark):
    table = benchmark.pedantic(lambda: _collect(all_builds), rounds=1, iterations=1)

    print("\n=== §7.3 offline phases (seconds at reproduction scale) ===")
    print(f"{'application':<14}{'trace':>10}{'AE train':>12}{'BO':>12}{'BO share':>10}")
    totals = {phase: 0.0 for phase in PHASES}
    for name in APP_NAMES:
        row = table[name]
        total = sum(row.values())
        print(
            f"{name:<14}{row['trace_generation']:>10.2f}"
            f"{row['autoencoder_training']:>12.2f}"
            f"{row['bayesian_optimization']:>12.2f}"
            f"{row['bayesian_optimization'] / total:>9.1%}"
        )
        for phase in PHASES:
            totals[phase] += row[phase]
    print("paper: trace 24-59 min | BO 6-13 h | AE 1.4-2.2 h  (BO dominates)")

    # --- shape assertions (aggregate, since per-app budgets vary) ---
    assert totals["bayesian_optimization"] > totals["autoencoder_training"]
    assert totals["bayesian_optimization"] > totals["trace_generation"]
    assert totals["trace_generation"] < totals["autoencoder_training"]
    for name in APP_NAMES:
        assert all(table[name][phase] > 0 for phase in PHASES), name
