"""Compiled-plan inference benchmark: trace-and-compile vs interpreted.

One row per surrogate family, all sharing the same bar: the compiled
plan must serve single-row and batch-32 inference strictly faster than
the interpreted ``SurrogatePackage.predict`` path while staying
bit-identical under ``batch_invariant()``.

* ``mlp`` — the ISSUE-7 chain (encoder + Dense/activation surrogate);
  speedup comes from dropping ``Tensor``/autograd bookkeeping and
  fusing Dense+activation steps.
* ``cnn`` — the ISSUE-9 conv/pool family; on top of the interpreter
  overhead, the plan bakes the im2col gather indices at compile time,
  so the per-call cost is pure takes, matmuls and in-order adds.  The
  acceptance bar here is 2x single-row by default.
* ``csr`` — a sparse-input encoder chain served straight from CSR; the
  plan pre-gathers the needed weight rows for the fixed sparsity
  pattern.

Results accumulate into ``BENCH_infer.json`` (override with
``REPRO_INFER_BENCH_JSON``): each test rewrites the file with its
family's row added, so running the whole module yields all rows.

Environment knobs (the CI smoke job runs the defaults):

* ``REPRO_INFER_BENCH_MIN_SPEEDUP``     — baseline threshold (default
  1.0, i.e. compiled must be strictly better)
* ``REPRO_INFER_BENCH_MIN_CNN_SPEEDUP`` — single-row CNN threshold
  (default 2.0)
* ``REPRO_INFER_BENCH_ITERS``           — timed iterations per
  measurement (default 300)

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_compile_speedup.py -q -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.autoencoder.model import Autoencoder
from repro.compile import compile_package
from repro.nas.package import SurrogatePackage
from repro.nn.cnn import CNNTopology, build_model
from repro.nn.mlp import Topology
from repro.nn.tensor import batch_invariant
from repro.sparse.formats import COOMatrix

MIN_SPEEDUP = float(os.environ.get("REPRO_INFER_BENCH_MIN_SPEEDUP", "1.0"))
MIN_CNN_SPEEDUP = float(os.environ.get("REPRO_INFER_BENCH_MIN_CNN_SPEEDUP", "2.0"))
ITERS = int(os.environ.get("REPRO_INFER_BENCH_ITERS", "300"))
JSON_PATH = os.environ.get("REPRO_INFER_BENCH_JSON", "BENCH_infer.json")

#: paper-shaped serving chain: 64 raw features -> 16 latent -> (64, 32) MLP
DIN, LATENT, DOUT = 64, 16, 8
HIDDEN = (64, 32)
BATCH = 32
#: best-of-N repetitions per configuration to absorb scheduler noise
TRIALS = 5

#: accumulated report: one row per family, rewritten after each test
REPORT: dict = {
    "iters": ITERS,
    "trials": TRIALS,
    "min_speedup": MIN_SPEEDUP,
    "min_cnn_speedup": MIN_CNN_SPEEDUP,
    "batch": BATCH,
    "families": {},
}


def randomized(module, rng, scale=0.1):
    for p in module.parameters():
        p.data = rng.standard_normal(p.data.shape) * scale
    return module


@pytest.fixture(scope="module")
def mlp_package():
    rng = np.random.default_rng(11)
    topology = Topology(hidden=HIDDEN, activation="relu")
    model = randomized(build_model(LATENT, DOUT, topology), rng)
    ae = randomized(Autoencoder(DIN, LATENT, depth=1), rng)
    return SurrogatePackage(
        model=model, topology=topology, input_dim=DIN, output_dim=DOUT,
        autoencoder=ae,
    )


@pytest.fixture(scope="module")
def cnn_package():
    rng = np.random.default_rng(12)
    topology = CNNTopology(
        channels=(8, 4), kernel_sizes=(5, 3), pools=(2, 2), activation="relu"
    )
    model = randomized(build_model(DIN, DOUT, topology), rng)
    return SurrogatePackage(
        model=model, topology=topology, input_dim=DIN, output_dim=DOUT
    )


@pytest.fixture(scope="module")
def csr_setup():
    """A sparse-input encoder chain plus a fixed-pattern CSR batch."""
    rng = np.random.default_rng(13)
    topology = Topology(hidden=HIDDEN, activation="relu", sparse_input=True)
    model = randomized(build_model(LATENT, DOUT, topology), rng)
    ae = randomized(Autoencoder(DIN, LATENT, depth=1, sparse_input=True), rng)
    package = SurrogatePackage(
        model=model, topology=topology, input_dim=DIN, output_dim=DOUT,
        autoencoder=ae,
    )
    mask = rng.random((BATCH, DIN)) < 0.08  # ~sparse HPC region features
    r, c = np.nonzero(mask)
    x = COOMatrix(r, c, rng.standard_normal(r.size), (BATCH, DIN)).to_csr()
    return package, x


def best_latency(fn, x) -> float:
    """Best-of-TRIALS mean seconds per call over ITERS timed iterations."""
    fn(x)  # warm scratch buffers and any lazy state before the clock
    best = float("inf")
    for _ in range(TRIALS):
        start = time.perf_counter()
        for _ in range(ITERS):
            fn(x)
        best = min(best, (time.perf_counter() - start) / ITERS)
    return best


def interpreted(package):
    def run(x):
        with batch_invariant():
            return package.predict(x)

    return run


def measure(package, plan, shapes) -> dict:
    """Bit-identity check + timed rows for each (label, input) pair."""
    row: dict = {"plan_steps": plan.num_steps(), "step_kinds": plan.step_kinds()}
    baseline = interpreted(package)
    for label, x in shapes.items():
        with batch_invariant():
            np.testing.assert_array_equal(plan.predict(x), package.predict(x))
        t_interp = best_latency(baseline, x)
        t_plan = best_latency(plan.predict, x)
        speedup = t_interp / t_plan
        print(
            f"\n{label}: interpreted {t_interp * 1e6:.1f}us | "
            f"compiled {t_plan * 1e6:.1f}us | {speedup:.2f}x"
        )
        row[label] = {
            "interpreted_s": t_interp,
            "compiled_s": t_plan,
            "speedup": speedup,
        }
    row["bit_identical"] = True
    return row


def emit(family: str, row: dict) -> None:
    REPORT["families"][family] = row
    with open(JSON_PATH, "w") as fh:
        json.dump(REPORT, fh, indent=2)
        fh.write("\n")
    print(f"{family} row written to {JSON_PATH}")


class TestCompiledInference:
    def test_mlp_compiled_beats_interpreted(self, mlp_package):
        plan = compile_package(mlp_package, batch_invariant=True)
        row = measure(
            mlp_package,
            plan,
            {
                "single_row": np.random.default_rng(3).standard_normal(DIN),
                "batch_32": np.random.default_rng(4).standard_normal((BATCH, DIN)),
            },
        )
        row.update(input_dim=DIN, latent_dim=LATENT, hidden=list(HIDDEN))
        emit("mlp", row)
        assert row["single_row"]["speedup"] > MIN_SPEEDUP
        assert row["batch_32"]["speedup"] > MIN_SPEEDUP

    def test_cnn_compiled_beats_interpreted_2x_single_row(self, cnn_package):
        plan = compile_package(cnn_package, batch_invariant=True)
        row = measure(
            cnn_package,
            plan,
            {
                "single_row": np.random.default_rng(5).standard_normal(DIN),
                "batch_32": np.random.default_rng(6).standard_normal((BATCH, DIN)),
            },
        )
        row.update(input_dim=DIN, topology=cnn_package.topology.describe())
        emit("cnn", row)
        assert row["single_row"]["speedup"] > MIN_CNN_SPEEDUP, (
            f"compiled single-row CNN inference only "
            f"{row['single_row']['speedup']:.2f}x the interpreted path "
            f"(required > {MIN_CNN_SPEEDUP}x)"
        )
        assert row["batch_32"]["speedup"] > MIN_SPEEDUP

    def test_csr_compiled_beats_interpreted(self, csr_setup):
        package, x = csr_setup
        plan = compile_package(package, batch_invariant=True, csr_pattern=x)
        row = measure(package, plan, {"batch_32": x})
        row.update(input_dim=DIN, nnz=x.nnz, density=x.density)
        emit("csr", row)
        assert row["batch_32"]["speedup"] > MIN_SPEEDUP
