"""Compiled-plan inference benchmark: trace-and-compile vs interpreted.

The ISSUE-7 acceptance bar: on a realistic MLP surrogate (encoder +
surrogate chain), the compiled plan must serve both single-row and
batch-32 inference strictly faster than the interpreted
``SurrogatePackage.predict`` path — while staying bit-identical under
``batch_invariant()``.  The speedup comes purely from partial
evaluation: no ``Tensor`` wrappers, no autograd bookkeeping, fused
Dense/activation steps, and preallocated scratch — the float ops are
unchanged, which is what makes the bit-identity assertion possible.

Results are written to ``BENCH_infer.json`` (override with
``REPRO_INFER_BENCH_JSON``).

Environment knobs (the CI smoke job runs the defaults):

* ``REPRO_INFER_BENCH_MIN_SPEEDUP`` — assertion threshold (default 1.0,
  i.e. compiled must be strictly better)
* ``REPRO_INFER_BENCH_ITERS``       — timed iterations per measurement
  (default 300)

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_compile_speedup.py -q -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.autoencoder.model import Autoencoder
from repro.compile import compile_package
from repro.nas.package import SurrogatePackage
from repro.nn.cnn import build_model
from repro.nn.mlp import Topology
from repro.nn.tensor import batch_invariant

MIN_SPEEDUP = float(os.environ.get("REPRO_INFER_BENCH_MIN_SPEEDUP", "1.0"))
ITERS = int(os.environ.get("REPRO_INFER_BENCH_ITERS", "300"))
JSON_PATH = os.environ.get("REPRO_INFER_BENCH_JSON", "BENCH_infer.json")

#: paper-shaped serving chain: 64 raw features -> 16 latent -> (64, 32) MLP
DIN, LATENT, DOUT = 64, 16, 8
HIDDEN = (64, 32)
BATCH = 32
#: best-of-N repetitions per configuration to absorb scheduler noise
TRIALS = 5


@pytest.fixture(scope="module")
def package():
    rng = np.random.default_rng(11)
    topology = Topology(hidden=HIDDEN, activation="relu")
    model = build_model(LATENT, DOUT, topology)
    for p in model.parameters():
        p.data = rng.standard_normal(p.data.shape) * 0.1
    ae = Autoencoder(DIN, LATENT, depth=1)
    for p in ae.parameters():
        p.data = rng.standard_normal(p.data.shape) * 0.1
    return SurrogatePackage(
        model=model, topology=topology, input_dim=DIN, output_dim=DOUT,
        autoencoder=ae,
    )


def best_latency(fn, x) -> float:
    """Best-of-TRIALS mean seconds per call over ITERS timed iterations."""
    fn(x)  # warm scratch buffers and any lazy state before the clock
    best = float("inf")
    for _ in range(TRIALS):
        start = time.perf_counter()
        for _ in range(ITERS):
            fn(x)
        best = min(best, (time.perf_counter() - start) / ITERS)
    return best


def interpreted(package):
    def run(x):
        with batch_invariant():
            return package.predict(x)

    return run


class TestCompiledInference:
    def test_compiled_beats_interpreted_and_is_bit_identical(self, package):
        plan = compile_package(package, batch_invariant=True)
        single = np.random.default_rng(3).standard_normal(DIN)
        batch = np.random.default_rng(4).standard_normal((BATCH, DIN))

        # correctness first: byte-identical outputs on both shapes
        with batch_invariant():
            np.testing.assert_array_equal(plan.predict(single), package.predict(single))
            np.testing.assert_array_equal(plan.predict(batch), package.predict(batch))

        baseline = interpreted(package)
        t_single_interp = best_latency(baseline, single)
        t_single_plan = best_latency(plan.predict, single)
        t_batch_interp = best_latency(baseline, batch)
        t_batch_plan = best_latency(plan.predict, batch)

        speedup_single = t_single_interp / t_single_plan
        speedup_batch = t_batch_interp / t_batch_plan
        print(
            f"\nsingle-row: interpreted {t_single_interp * 1e6:.1f}us | "
            f"compiled {t_single_plan * 1e6:.1f}us | {speedup_single:.2f}x"
        )
        print(
            f"batch-{BATCH}:   interpreted {t_batch_interp * 1e6:.1f}us | "
            f"compiled {t_batch_plan * 1e6:.1f}us | {speedup_batch:.2f}x"
        )

        report = {
            "input_dim": DIN,
            "latent_dim": LATENT,
            "hidden": list(HIDDEN),
            "output_dim": DOUT,
            "batch": BATCH,
            "iters": ITERS,
            "trials": TRIALS,
            "min_speedup": MIN_SPEEDUP,
            "single_row": {
                "interpreted_s": t_single_interp,
                "compiled_s": t_single_plan,
                "speedup": speedup_single,
            },
            "batch_32": {
                "interpreted_s": t_batch_interp,
                "compiled_s": t_batch_plan,
                "speedup": speedup_batch,
            },
            "bit_identical": True,
            "plan_steps": plan.num_steps(),
        }
        with open(JSON_PATH, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {JSON_PATH}")

        assert speedup_single > MIN_SPEEDUP, (
            f"compiled single-row inference only {speedup_single:.2f}x the "
            f"interpreted path (required > {MIN_SPEEDUP}x)"
        )
        assert speedup_batch > MIN_SPEEDUP, (
            f"compiled batch-{BATCH} inference only {speedup_batch:.2f}x the "
            f"interpreted path (required > {MIN_SPEEDUP}x)"
        )
