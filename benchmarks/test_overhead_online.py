"""§7.3 online-overhead analysis: the four serving phases.

Paper result (share of one online invocation, averaged over the apps):

1. fetch input to GPU memory     21.2 %
2. encode to low-dim features    10.1 %
3. load pre-trained model         1.6 %
4. run model + retrieve output   67.1 %

The bench reports the simulated breakdown (device/link cost models, the
same models Fig. 5 uses) and the wall-clock breakdown measured through the
orchestrator on this machine.  Shape: running the model dominates, model
load is the smallest phase, fetch > encode.
"""

from __future__ import annotations

import numpy as np

from repro.apps import make_application
from repro.runtime import ONLINE_PHASES, OnlineCostModel, ServingSession

from conftest import APP_NAMES, eval_rng

PAPER_SHARES = {
    "fetch_input": 0.212,
    "encode": 0.101,
    "load_model": 0.016,
    "run_model": 0.671,
}


def _simulated_breakdown(all_builds):
    totals = {phase: 0.0 for phase in ONLINE_PHASES}
    for name in APP_NAMES:
        build = all_builds[name]
        app = make_application(name)
        model = OnlineCostModel(compute_scale=app.data_scale)
        problem = app.example_problem(eval_rng())
        input_bytes = build.surrogate.input_bytes(problem) * app.data_scale
        for phase, seconds in model.phase_times(build.surrogate.package, input_bytes).items():
            totals[phase] += seconds
    total = sum(totals.values())
    return {phase: totals[phase] / total for phase in ONLINE_PHASES}


def _measured_breakdown(all_builds, invocations: int = 20):
    build = all_builds["FFT"]
    session = ServingSession(build.surrogate.package)
    app = make_application("FFT")
    rng = eval_rng()
    for _ in range(invocations):
        problem = app.example_problem(rng)
        x = build.surrogate.input_schema.flatten(problem)
        session.infer(build.surrogate.x_scaler.transform(x))
    return session.timer.breakdown()


def test_online_overheads(all_builds, benchmark):
    simulated = benchmark.pedantic(
        lambda: _simulated_breakdown(all_builds), rounds=1, iterations=1
    )
    measured = _measured_breakdown(all_builds)

    print("\n=== §7.3 online-time breakdown per invocation ===")
    print(f"{'phase':<14}{'paper':>9}{'simulated':>12}{'measured':>11}")
    for phase in ONLINE_PHASES:
        print(
            f"{phase:<14}{PAPER_SHARES[phase]:>8.1%}"
            f"{simulated[phase]:>11.1%}{measured.get(phase, 0.0):>10.1%}"
        )
    print("shape asserted on the *measured* split (the simulated one skews")
    print("toward fetch because our surrogates are far smaller than the")
    print("paper's relative to their inputs — see EXPERIMENTS.md)")

    # --- shape assertions: running the model dominates, loading it is the
    # smallest phase (the paper's 67.1% / 1.6% split) ---
    assert measured["run_model"] == max(measured.values())
    assert measured["run_model"] > 0.4
    assert measured["load_model"] == min(measured.values())
    assert measured["fetch_input"] > measured["load_model"]
    # and the simulated transfer/encode ordering still holds
    assert simulated["fetch_input"] > simulated["encode"]
