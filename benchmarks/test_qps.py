"""Sustained-QPS benchmark: sharded process pool vs thread-pool serving.

The ISSUE-8 acceptance bar: at 4 worker processes the sharded serving
pool must sustain at least 2x the mixed-traffic QPS of the thread-pool
baseline — with byte-identical outputs, since every model here runs
``batch_invariant``.  On a single-core box the win comes from *doing
less per request*, not from parallelism: the process pool's bulk path
groups each burst by (model, shape, dtype) and crosses the process
boundary as one shared-memory block plus one vectorized compiled-plan
forward per group, where the thread pool pays per-request store
staging, queue/condvar wakeups, and scatter bookkeeping.

Both sides are measured through the identical ``Client.run_model_batch``
API by :func:`measure_sustained_qps`, over the same three-model traffic
mix, so the comparison isolates the serving runtime.

Results are written to ``BENCH_qps.json`` (override with
``REPRO_QPS_BENCH_JSON``).  Environment knobs (the CI smoke job runs a
reduced configuration):

* ``REPRO_QPS_BENCH_DURATION``    — seconds measured per config (default 2.0)
* ``REPRO_QPS_BENCH_BURST``       — requests per burst (default 384)
* ``REPRO_QPS_BENCH_PROCESSES``   — process counts swept (default "1,2,4")
* ``REPRO_QPS_BENCH_MIN_SPEEDUP`` — assertion threshold at the highest
  process count (default 2.0)

Run standalone with::

    PYTHONPATH=src python -m pytest benchmarks/test_qps.py -q -s
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.runtime import measure_sustained_qps

from tests.compile.test_plan import make_package

DURATION = float(os.environ.get("REPRO_QPS_BENCH_DURATION", "2.0"))
BURST = int(os.environ.get("REPRO_QPS_BENCH_BURST", "384"))
PROCESS_COUNTS = tuple(
    int(p)
    for p in os.environ.get("REPRO_QPS_BENCH_PROCESSES", "1,2,4").split(",")
)
MIN_SPEEDUP = float(os.environ.get("REPRO_QPS_BENCH_MIN_SPEEDUP", "2.0"))
JSON_PATH = os.environ.get("REPRO_QPS_BENCH_JSON", "BENCH_qps.json")

#: three paper-shaped surrogates of different widths — the traffic mixes
#: models so shard routing and per-model plan caches are both exercised
MODEL_SPECS = {
    "blackscholes": dict(input_dim=6, output_dim=2, hidden=(16, 8)),
    "fft": dict(input_dim=12, output_dim=4, hidden=(32, 16)),
    "amg": dict(input_dim=8, output_dim=1, hidden=(24,)),
}
TRAFFIC_LEN = 96


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(2023)
    packages = {
        name: make_package(rng, activation="tanh", **spec)
        for name, spec in MODEL_SPECS.items()
    }
    names = sorted(packages)
    traffic = [
        (
            names[i % len(names)],
            rng.standard_normal(MODEL_SPECS[names[i % len(names)]]["input_dim"]),
        )
        for i in range(TRAFFIC_LEN)
    ]
    return packages, traffic


class TestSustainedQPS:
    def test_process_pool_beats_thread_pool(self, workload):
        packages, traffic = workload
        results = []
        baseline = measure_sustained_qps(
            packages, traffic, num_processes=0, duration_s=DURATION, burst=BURST
        )
        results.append(baseline)
        print(f"\n{baseline.format()}")
        for count in PROCESS_COUNTS:
            measured = measure_sustained_qps(
                packages,
                traffic,
                num_processes=count,
                duration_s=DURATION,
                burst=BURST,
            )
            results.append(measured)
            print(measured.format())

        speedup_at = {
            r.num_processes: r.qps / baseline.qps
            for r in results
            if r.num_processes
        }
        report = {
            "traffic": {
                "models": {n: dict(s) for n, s in MODEL_SPECS.items()},
                "requests_in_mix": TRAFFIC_LEN,
                "burst": BURST,
                "duration_s": DURATION,
            },
            "min_speedup": MIN_SPEEDUP,
            "configs": [
                {
                    "mode": r.mode,
                    "num_processes": r.num_processes,
                    "requests": r.requests,
                    "seconds": r.seconds,
                    "qps": r.qps,
                    "p50_ms": r.p50_ms,
                    "p99_ms": r.p99_ms,
                    "speedup_vs_threads": (
                        r.qps / baseline.qps if r.num_processes else 1.0
                    ),
                    "output_digest": r.output_digest,
                }
                for r in results
            ],
            "bit_identical_across_modes": all(
                r.output_digest == baseline.output_digest for r in results
            ),
        }
        with open(JSON_PATH, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {JSON_PATH}")

        # every mode must produce byte-identical outputs on the probe pass
        for r in results:
            assert r.output_digest == baseline.output_digest, (
                f"{r.mode} x{r.num_processes} outputs diverge from the "
                "thread baseline — batch_invariant bit-identity is broken"
            )
        top = max(speedup_at)
        assert speedup_at[top] >= MIN_SPEEDUP, (
            f"process pool at {top} workers only {speedup_at[top]:.2f}x the "
            f"thread baseline (required >= {MIN_SPEEDUP}x)"
        )
