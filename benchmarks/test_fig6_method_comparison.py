"""Figure 6: Auto-HPCnet vs ACCEPT vs loop perforation vs Autokeras.

Paper result: Auto-HPCnet consistently wins on all 11 applications; ACCEPT
and loop perforation exceed 2x on only a few apps (Blackscholes for ACCEPT,
fluidanimate and X264 for perforation); Autokeras reaches 12.8x/10.89x on
Blackscholes/fluidanimate but *slows down* the applications whose inputs
are high-dimensional sparse matrices (CG, AMG here) because it cannot
consume sparse formats and is blind to the final quality.

All methods are quality-enforced: per §7.1 a problem that misses the
quality requirement restarts on the original code (restart-adjusted
effective speedup).
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps import make_application
from repro.baselines import (
    build_accept_surrogate,
    build_autokeras_surrogate,
    evaluate_perforation,
    find_max_rate,
)
from repro.core import evaluate_surrogate
from repro.perf import effective_speedup

from conftest import APP_NAMES, BENCH_CONFIG, MU, N_EVAL_PROBLEMS, eval_rng

#: comparison subset keeps the bench affordable while covering all types
#: and both Autokeras behaviours (dense win, sparse slowdown)
FIG6_APPS = ("CG", "FFT", "MG", "Blackscholes", "fluidanimate",
             "streamcluster", "X264", "AMG", "Laghos")


def _compare(all_builds):
    table = {}
    for name in FIG6_APPS:
        app = make_application(name)
        rows = {}

        build = all_builds[name]
        auto = evaluate_surrogate(
            build.surrogate, n_problems=N_EVAL_PROBLEMS, mu=MU, rng=eval_rng()
        )
        rows["Auto-HPCnet"] = (
            effective_speedup(auto.breakdown, auto.hit_rate), auto.hit_rate
        )

        if app.app_type == "II":
            accept = build_accept_surrogate(
                app, n_samples=BENCH_CONFIG.n_samples,
                num_epochs=BENCH_CONFIG.num_epochs, seed=0,
            )
            arow = evaluate_surrogate(
                accept, n_problems=N_EVAL_PROBLEMS, mu=MU, rng=eval_rng()
            )
            rows["ACCEPT"] = (
                effective_speedup(arow.breakdown, arow.hit_rate), arow.hit_rate
            )
        else:
            rows["ACCEPT"] = (float("nan"), float("nan"))

        rate = find_max_rate(app, mu=MU, rng=np.random.default_rng(5))
        perf = evaluate_perforation(
            app, rate, n_problems=N_EVAL_PROBLEMS, mu=MU, rng=eval_rng()
        )
        rows["LoopPerforation"] = (perf.speedup, perf.hit_rate)

        autokeras = build_autokeras_surrogate(
            app, n_trials=6, n_samples=BENCH_CONFIG.n_samples,
            num_epochs=BENCH_CONFIG.num_epochs, seed=0,
        )
        krow = evaluate_surrogate(
            autokeras, n_problems=N_EVAL_PROBLEMS, mu=MU, rng=eval_rng(),
            transfer_blowup=app.unrolled_blowup,
        )
        rows["Autokeras"] = (
            effective_speedup(krow.breakdown, krow.hit_rate), krow.hit_rate
        )
        table[name] = rows
    return table


def test_fig6_method_comparison(all_builds, benchmark):
    table = benchmark.pedantic(lambda: _compare(all_builds), rounds=1, iterations=1)

    methods = ("Auto-HPCnet", "ACCEPT", "LoopPerforation", "Autokeras")
    print("\n=== Fig. 6: quality-enforced speedup by method ===")
    header = f"{'application':<14}" + "".join(f"{m:>18}" for m in methods)
    print(header)
    for name in FIG6_APPS:
        cells = []
        for m in methods:
            s, h = table[name][m]
            cells.append("       n/a        " if math.isnan(s) else f"{s:7.2f}x ({h:4.0%}) ")
        print(f"{name:<14}" + "".join(f"{c:>18}" for c in cells))
    print("paper: Auto-HPCnet wins everywhere; Autokeras slows down sparse-input apps")

    # --- shape assertions ---
    for name in FIG6_APPS:
        auto_s = table[name]["Auto-HPCnet"][0]
        for m in ("ACCEPT", "LoopPerforation", "Autokeras"):
            other = table[name][m][0]
            if not math.isnan(other):
                assert auto_s >= other * 0.95, (name, m, auto_s, other)
    # Autokeras pays the dense-unroll transfer on the sparse-matrix apps
    for sparse_app in ("CG", "AMG"):
        assert table[sparse_app]["Autokeras"][0] < 1.2, table[sparse_app]
    # perforation stays modest: its granularity is the loop iteration
    perf_values = [table[n]["LoopPerforation"][0] for n in FIG6_APPS]
    assert max(perf_values) < max(table[n]["Auto-HPCnet"][0] for n in FIG6_APPS)
