"""Ablation: gradient checkpointing's memory/compute trade (§4.2).

The paper adopts gradient checkpointing during autoencoder training to fit
unrolled sparse inputs into device memory, trading recomputation time for
activation storage.  This bench measures both sides of the trade on an
autoencoder sized like the AMG app's input: estimated peak activation
bytes (less with checkpointing) and wall-clock per epoch (more with
checkpointing), with identical training losses either way.
"""

from __future__ import annotations

import time

import numpy as np

from repro.autoencoder import AETrainConfig, Autoencoder, train_autoencoder
from repro.nn import activation_bytes


def _train(ckpt: bool, x: np.ndarray):
    ae = Autoencoder(x.shape[1], 64, depth=6, activation="relu",
                     rng=np.random.default_rng(0))
    start = time.perf_counter()
    result = train_autoencoder(
        ae,
        x,
        AETrainConfig(num_epochs=10, lr=1e-3, gradient_checkpointing=ckpt,
                      checkpoint_segments=3, seed=1),
    )
    seconds = time.perf_counter() - start
    mem = activation_bytes(
        ae.encoder, x.shape[1], batch=32,
        checkpoint_segments=3 if ckpt else 0,
    )
    return result.train_losses, seconds, mem


def test_ablation_gradient_checkpointing(benchmark):
    rng = np.random.default_rng(3)
    x = np.tanh(rng.standard_normal((256, 8)) @ rng.standard_normal((8, 256)))

    (plain_losses, plain_s, plain_mem), (ckpt_losses, ckpt_s, ckpt_mem) = (
        benchmark.pedantic(
            lambda: (_train(False, x), _train(True, x)), rounds=1, iterations=1
        )
    )

    print("\n=== ablation: gradient checkpointing (paper §4.2) ===")
    print(f"{'mode':<16}{'epoch-10 loss':>15}{'wall (s)':>10}{'activation bytes':>18}")
    print(f"{'plain':<16}{plain_losses[-1]:>15.5f}{plain_s:>10.2f}{plain_mem:>18,}")
    print(f"{'checkpointed':<16}{ckpt_losses[-1]:>15.5f}{ckpt_s:>10.2f}{ckpt_mem:>18,}")
    print(f"memory saved: {1 - ckpt_mem / plain_mem:.1%}; "
          f"time overhead: {ckpt_s / plain_s - 1:+.1%}")

    # --- shape assertions: same math, less memory, more compute ---
    assert np.allclose(plain_losses, ckpt_losses, rtol=1e-8)
    assert ckpt_mem < plain_mem
    assert ckpt_s > plain_s * 0.9  # recompute never makes it faster
