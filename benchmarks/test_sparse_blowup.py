"""§1/§4 motivation: sparse-to-dense unrolling blow-up.

The paper motivates the sparse-input autoencoder with the observation that
unrolling the NPB CG sparse matrix to a dense representation grows it ~14x
(and forces format transformations on every inference).  This bench
measures the blow-up for NPB-CG-style matrices and the 2-D Poisson
operator at growing sizes, plus the time cost of the densify-compress
round trip vs operating natively on CSR.
"""

from __future__ import annotations

import time

import numpy as np

from repro.sparse import npb_cg_matrix, poisson_2d


def _blowup_table():
    rows = []
    rng = np.random.default_rng(0)
    for n, nonzer in ((256, 8), (512, 8), (1024, 8)):
        m = npb_cg_matrix(n, nonzer, rng)
        rows.append((f"NPB-CG n={n}", m.density, m.dense_blowup()))
    for grid in (16, 32, 48):
        m = poisson_2d(grid, grid)
        rows.append((f"Poisson {grid}x{grid}", m.density, m.dense_blowup()))
    return rows


def _roundtrip_vs_native(n: int = 512) -> tuple[float, float]:
    """Seconds for densify->matmul vs native CSR matmul (20 reps)."""
    rng = np.random.default_rng(1)
    m = npb_cg_matrix(n, 8, rng)
    w = rng.standard_normal((n, 16))
    reps = 20

    start = time.perf_counter()
    for _ in range(reps):
        dense = m.to_dense()           # the unroll the paper complains about
        dense @ w
    densify = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(reps):
        m.matmul_dense(w)              # the sparse embedding-API path
    native = time.perf_counter() - start
    return densify, native


def test_sparse_dense_blowup(benchmark):
    rows = benchmark.pedantic(_blowup_table, rounds=1, iterations=1)
    densify_s, native_s = _roundtrip_vs_native()

    print("\n=== sparse->dense unrolling blow-up (paper: ~14x for NPB CG) ===")
    print(f"{'matrix':<18}{'density':>10}{'dense blow-up':>15}")
    for name, density, blowup in rows:
        print(f"{name:<18}{density:>9.2%}{blowup:>14.1f}x")
    print(f"densify+matmul: {densify_s:.4f}s vs native CSR matmul: {native_s:.4f}s")
    print("(the wall-clock comparison is indicative only: the dense path "
          "calls BLAS while the native path is pure NumPy scatter-adds)")

    # --- shape assertions ---
    cg_blowups = [b for name, _, b in rows if name.startswith("NPB-CG")]
    assert all(b > 3.0 for b in cg_blowups)
    assert cg_blowups[-1] > 14.0     # the paper's 14x at the largest CG size
    assert max(b for _, _, b in rows) > 50.0   # Poisson stencils blow up worse
    # blow-up grows with problem size (density falls)
    assert cg_blowups == sorted(cg_blowups)
