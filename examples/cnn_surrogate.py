"""CNN surrogates and the energy cost metric (§5.1 / Table 1 extensions).

The paper's topology space includes convolutional knobs (#kernel sizes,
#channel, #pooling/#unpooling size) and lets f_c be "the running time,
energy or other execution metric".  This script exercises both:

1. builds an **MLP** surrogate and a **CNN** surrogate for the FFT region
   (the Fourier transform is a structured signal→signal map, the regime
   convolutions suit);
2. compares their architecture, inference cost and QoI quality;
3. re-runs the topology search with the **energy** objective and shows the
   selected model minimizes joules rather than seconds.

Run:  python examples/cnn_surrogate.py
"""

import numpy as np

from repro import AutoHPCnet, AutoHPCnetConfig, evaluate_surrogate
from repro.apps import FFTApplication
from repro.perf import TESLA_V100_NN


def build(model_type: str, cost_metric: str = "time"):
    config = AutoHPCnetConfig(
        n_samples=300,
        outer_iterations=1 if model_type == "cnn" else 2,
        inner_trials=4,
        num_epochs=80,
        quality_problems=8,
        quality_loss=0.25,
        model_type=model_type,
        cost_metric=cost_metric,
        seed=0,
    )
    return AutoHPCnet(config).build(FFTApplication())


def main() -> None:
    print("=== MLP vs CNN surrogate families on the FFT region ===\n")
    rows = {}
    for model_type in ("mlp", "cnn"):
        build_result = build(model_type)
        pkg = build_result.surrogate.package
        row = evaluate_surrogate(
            build_result.surrogate, n_problems=30, rng=np.random.default_rng(7)
        )
        rows[model_type] = (pkg, row, build_result)
        print(f"[{model_type}] selected: {pkg.topology.describe()}")
        print(f"      parameters: {pkg.num_parameters()}, "
              f"inference FLOPs: {pkg.inference_flops(1)}")
        print(f"      f_e (validation violations): {build_result.f_e:.3f}")
        print(f"      {row.format()}\n")

    print("=== energy as the search objective (§5.1) ===\n")
    energy_build = build("mlp", cost_metric="energy")
    best = energy_build.search.best
    joules = best.f_c
    seconds = joules / TESLA_V100_NN.tdp_watts
    print(f"energy-optimal model: {best.topology.describe()}")
    print(f"f_c = {joules:.3e} J per inference "
          f"(= {seconds:.3e} s at {TESLA_V100_NN.tdp_watts:.0f} W board power)")
    print("\nthe time- and energy-optimal models may differ when a slightly")
    print("slower architecture runs on a lower-power configuration; with a")
    print("single device model the rankings coincide, which the paper's")
    print("formulation allows (any execution metric can be plugged in).")


if __name__ == "__main__":
    main()
