"""Sparse CG solver served through the orchestrator (Listings 1-2).

This scenario covers the parts of Auto-HPCnet the other examples don't:

* the **extractor** output on a real sparse-solver region — which variables
  it classified as inputs/outputs, and how much the loop compression saved;
* the **sparse code path** — the CG matrix stays in CSR through the client
  (``client.autoencoder(sparse_tensor)`` never densifies);
* **online serving** — the surrogate is saved to disk, reloaded through
  ``Client.set_model_from_file`` (Listing 2), and invoked through the
  in-memory tensor store with per-phase timing (§7.3 online overheads).

Run:  python examples/sparse_solver_serving.py
"""

import tempfile

import numpy as np

from repro import AutoHPCnet, AutoHPCnetConfig
from repro.apps import CGApplication
from repro.runtime import Client, Orchestrator, ServingSession


def main() -> None:
    app = CGApplication()

    # --- the extractor view of the region (§3) ---
    acq = app.acquire(n_samples=50, rng=np.random.default_rng(0))
    print("extractor summary:")
    print(" ", acq.summary())
    print(f"  inputs:  {list(acq.io.inputs)}")
    print(f"  outputs: {list(acq.io.outputs)}")
    print(f"  internals: {list(acq.io.internals)}")
    print(f"  mini-scale matrix density: {app.matrix.density:.2%} "
          f"(at NPB class-B scale the dense unroll costs ~{app.unrolled_blowup:.0f}x, §1)\n")

    # --- build the surrogate ---
    config = AutoHPCnetConfig(
        n_samples=400, outer_iterations=2, inner_trials=3,
        quality_loss=0.10, seed=0,
    )
    print("building the CG surrogate ...")
    build = AutoHPCnet(config).build(app)
    print(build.search.summary(), "\n")

    # --- save / reload through the client (Listing 2) ---
    workdir = tempfile.mkdtemp(prefix="autohpcnet_")
    build.surrogate.package.save(f"{workdir}/AI-CFD-net")

    orchestrator = Orchestrator(port=6379)
    client = Client(orchestrator, cluster=False)
    package = client.set_model_from_file(
        "AI-CFD-net", f"{workdir}/AI-CFD-net", "TORCH", "GPU"
    )
    print(f"model re-loaded from {workdir}/AI-CFD-net "
          f"({package.num_parameters()} parameters)\n")

    # --- Listing 1 flow: put_tensor -> run_model -> unpack_tensor ---
    problem = app.example_problem(np.random.default_rng(5))
    x = build.surrogate.input_schema.flatten(problem)
    client.put_tensor("in_key", build.surrogate.x_scaler.transform(x[None, :]))
    client.run_model("AI-CFD-net", inputs="in_key", outputs="out_key")
    out = client.unpack_tensor("out_key")
    solution = build.surrogate.y_scaler.inverse(out)[0]

    exact, _ = app.region_fn(**problem)
    rel = np.linalg.norm(solution - exact) / np.linalg.norm(exact)
    qoi_exact = app.qoi_from_outputs(problem, {"x": exact})
    qoi_sur = app.qoi_from_outputs(problem, {"x": solution})
    print(f"surrogate vs exact CG solution: vector L2 error {rel:.2%}, "
          f"QoI error {abs(qoi_sur - qoi_exact) / qoi_exact:.2%}")
    print("(the search optimizes the application's QoI under its quality bound,")
    print(" not the raw vector error — §6.2's quality-oriented optimization)\n")

    # --- phase-timed serving loop (§7.3) ---
    session = ServingSession(build.surrogate.package, model_name="AI-CFD-net")
    rng = np.random.default_rng(9)
    for _ in range(20):
        p = app.example_problem(rng)
        xv = build.surrogate.x_scaler.transform(
            build.surrogate.input_schema.flatten(p)[None, :]
        )
        session.infer(xv[0])
    print("measured online phase breakdown over 20 invocations:")
    print(session.timer.report())


if __name__ == "__main__":
    main()
