"""Fluid simulation with a surrogate Navier-Stokes step (paper §2.1).

The paper's running example is replacing the pressure-projection solve of
an Eulerian fluid simulation with an NN.  This script:

1. builds a surrogate for fluidanimate's ``NS_equation`` region;
2. runs a short *multi-step* simulation twice — exact solver vs surrogate
   in the loop — advecting marker particles through each flow;
3. reports the particle-distance QoI divergence step by step, which is the
   quantity a fluid animator actually cares about.

Run:  python examples/fluid_simulation.py
"""

import numpy as np

from repro import AutoHPCnet, AutoHPCnetConfig
from repro.apps import FluidanimateApplication
from repro.apps.fluidanimate import ns_equation


def advect_particles(particles, u, v, dt, n):
    out = particles.copy()
    gx = np.clip(out[:, 0].astype(np.int64), 0, n - 1)
    gy = np.clip(out[:, 1].astype(np.int64), 0, n - 1)
    out[:, 0] = (out[:, 0] + dt * n * u[gy, gx]) % n
    out[:, 1] = (out[:, 1] + dt * n * v[gy, gx]) % n
    return out


def mean_pairwise_distance(points):
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    m = points.shape[0]
    return dist.sum() / (m * (m - 1))


def main() -> None:
    app = FluidanimateApplication()
    config = AutoHPCnetConfig(
        n_samples=400, outer_iterations=2, inner_trials=3,
        quality_loss=0.10, seed=0,
    )
    print("building the NS-step surrogate ...")
    build = AutoHPCnet(config).build(app)
    print(build.search.summary(), "\n")

    steps = 8
    rng = np.random.default_rng(3)
    problem = app.example_problem(rng)
    u_exact = problem["u"].copy()
    v_exact = problem["v"].copy()
    u_sur = problem["u"].copy()
    v_sur = problem["v"].copy()
    particles_exact = app.particles.copy()
    particles_sur = app.particles.copy()

    print(f"{'step':<6}{'QoI exact':>12}{'QoI surrogate':>15}{'rel diff':>10}")
    for step in range(steps):
        u_exact, v_exact = ns_equation(u_exact, v_exact, app.dt, app.jacobi_iters)
        outputs = build.surrogate.run(
            {"u": u_sur, "v": v_sur, "dt": app.dt, "jacobi_iters": app.jacobi_iters}
        )
        u_sur, v_sur = outputs["u_out"], outputs["v_out"]

        particles_exact = advect_particles(particles_exact, u_exact, v_exact, app.dt, app.n)
        particles_sur = advect_particles(particles_sur, u_sur, v_sur, app.dt, app.n)
        q_exact = mean_pairwise_distance(particles_exact)
        q_sur = mean_pairwise_distance(particles_sur)
        print(f"{step:<6}{q_exact:>12.4f}{q_sur:>15.4f}"
              f"{abs(q_sur - q_exact) / q_exact:>9.2%}")

    print("\nnote: each surrogate step feeds the next (errors compound);")
    print("the paper's hit-rate protocol evaluates single-invocation quality.")


if __name__ == "__main__":
    main()
