"""Checkpoint / restore of the architecture search (§6.1).

Auto-HPCnet lets the user stop the (long) model-architecture search and
resume it later, and share the trained autoencoder + surrogate across
applications.  This script:

1. runs the first outer iteration of the 2D NAS for the MG application and
   checkpoints it;
2. "comes back later": a fresh ``AutoHPCnet`` instance resumes from the
   checkpoint and finishes the remaining iterations (the completed
   iteration is not re-run — watch the outer history);
3. saves the final surrogate package and re-loads it into a *different*
   process-level object, demonstrating the save/share path.

Run:  python examples/search_checkpointing.py
"""

import tempfile

import numpy as np

from repro import AutoHPCnet, AutoHPCnetConfig
from repro.apps import MGApplication
from repro.nas import SurrogatePackage


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="autohpcnet_ckpt_")
    app = MGApplication()

    base = dict(
        n_samples=300, inner_trials=3, num_epochs=80, ae_epochs=40,
        quality_loss=0.10, seed=4,
    )

    print("phase 1: run ONE outer iteration, then stop ...")
    cfg1 = AutoHPCnetConfig(outer_iterations=1, **base)
    build1 = AutoHPCnet(cfg1).build(app, checkpoint_dir=workdir)
    print(f"  outer iterations completed: {len(build1.search.outer_history)}")
    print(f"  checkpoint written to {workdir}\n")

    print("phase 2: resume and finish the search (3 iterations total) ...")
    cfg2 = AutoHPCnetConfig(outer_iterations=3, **base)
    build2 = AutoHPCnet(cfg2).build(app, checkpoint_dir=workdir)
    history = build2.search.outer_history
    print(f"  outer iterations in history: {len(history)}")
    for obs in history:
        print(f"    K={obs.k:<5} f_c={obs.f_c:.3e}s f_e={obs.f_e:.3f} "
              f"(sigma_y={obs.ae_sigma:.2f}, {obs.inner_trials} inner trials)")
    print(f"  {build2.search.summary()}\n")

    print("phase 3: share the surrogate ...")
    package_dir = f"{workdir}/best_package"
    loaded = SurrogatePackage.load(package_dir)
    problem = app.example_problem(np.random.default_rng(11))
    x = build2.surrogate.input_schema.flatten(problem)
    z = build2.surrogate.x_scaler.transform(x[None, :])
    assert np.allclose(loaded.predict(z), build2.surrogate.package.predict(z))
    print(f"  package re-loaded from {package_dir}: predictions identical")


if __name__ == "__main__":
    main()
