"""Two-tier persistent compilation cache for serving plans.

A compiled plan is a pure function of ``(package bytes, specialization
key)`` — the same shape of problem the NAS autoencoder cache already
solves for trained artifacts, so this cache follows the identical
pattern: an in-process dict for hot lookups plus an optional on-disk
tier under ``<dir>/plan_cache/`` backed by a
:class:`~repro.registry.ModelRegistry` of ``compiled-plan`` artifacts::

    plan_cache/<key>/v0001/{manifest.json, plan.npz}

Keys come from :mod:`repro.core.digest`: the registry artifact digest of
the package (or a content digest computed from its parameters when the
package never touched a registry), folded with the input shape, dtype,
``batch_invariant`` flag and the plan schema version.  Consequences:

* plans survive restarts — a warm disk tier means **zero** trace/compile
  work across process boundaries;
* ``deploy``/``rollback`` invalidation is free — a different package
  digest is simply a different key, and stale entries are never
  consulted;
* a kill mid-write can never poison the cache — entries publish through
  the registry's atomic temp-dir + rename protocol.

Hits and misses are counted as ``repro_compile_cache_hits_total`` /
``repro_compile_cache_misses_total`` (labelled by tier) in
:mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .. import obs
from ..core.digest import content_key, fingerprint_array
from ..registry import formats
from ..registry.artifacts import KIND_PLAN
from ..registry.store import ArtifactNotFoundError, ModelRegistry, RegistryError
from .plan import (
    PLAN_SCHEMA_VERSION,
    CompiledPlan,
    compile_package,
    plan_from_payload,
    plan_payload,
)

__all__ = [
    "PlanCache",
    "csr_pattern_key",
    "package_digest",
    "plan_key",
    "warm_plan_cache",
]


def csr_pattern_key(csr) -> str:
    """Content digest of a CSR *sparsity pattern* (structure, not values).

    CSR-specialized plans fold the row-pointer/column-index arrays into
    the plan as constants, so the cache key must distinguish patterns:
    two batches with the same shape but different nonzero layouts need
    different plans.  Values are deliberately excluded — they vary per
    request and the plan does not depend on them.
    """
    return content_key(
        {
            "shape": [int(s) for s in csr.shape],
            "indptr": fingerprint_array(np.ascontiguousarray(csr.indptr, dtype=np.int64)),
            "indices": fingerprint_array(np.ascontiguousarray(csr.indices, dtype=np.int64)),
        }
    )


def package_digest(package) -> str:
    """Content digest of a package that never saw a registry.

    Prefer the registry artifact's manifest digest when one exists (the
    orchestrator carries it through ``register_model(digest=...)``); this
    fallback hashes the same information — every parameter array plus the
    structural metadata — so in-memory and registry-loaded copies of one
    package land on equivalent keys.
    """
    fields = {
        "meta": package.payload_meta(),
        "params": [fingerprint_array(p.data) for p in package.model.parameters()],
    }
    if package.autoencoder is not None:
        fields["encoder_params"] = [
            fingerprint_array(p.data)
            for p in package.autoencoder.encoder.parameters()
        ]
    return content_key(fields)


def plan_key(
    digest: str,
    *,
    input_shape,
    dtype: str,
    batch_invariant: bool,
    csr: Optional[str] = None,
) -> str:
    """Content address of one specialization: package digest + key fields.

    ``csr`` carries a :func:`csr_pattern_key` digest for CSR-specialized
    plans; dense plans leave it ``None`` so existing keys are unchanged.
    The schema version is part of the key, so a schema bump orphans every
    previously persisted plan (they become unreachable keys and the next
    lookup recompiles) instead of risking misinterpretation.
    """
    fields = {
        "artifact": digest,
        "input_shape": [int(s) for s in input_shape],
        "dtype": str(dtype),
        "batch_invariant": bool(batch_invariant),
        "schema": PLAN_SCHEMA_VERSION,
    }
    if csr is not None:
        fields["csr"] = str(csr)
    return content_key(fields)


class PlanCache:
    """Two-tier (memory + optional registry-on-disk) store of compiled plans."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        enabled: bool = True,
    ) -> None:
        self.directory = Path(directory) / "plan_cache" if directory else None
        self.enabled = enabled
        self._registry = ModelRegistry(self.directory) if self.directory else None
        self._memory: dict[str, CompiledPlan] = {}  # cc: guarded-by(_lock)
        self._lock = threading.Lock()

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def key(
        digest: str,
        *,
        input_shape,
        dtype: str,
        batch_invariant: bool,
        csr: Optional[str] = None,
    ) -> str:
        return plan_key(
            digest,
            input_shape=input_shape,
            dtype=dtype,
            batch_invariant=batch_invariant,
            csr=csr,
        )

    # -- lookup ----------------------------------------------------------------

    def get(self, key: str) -> Optional[CompiledPlan]:
        if not self.enabled:
            return None
        with self._lock:
            plan = self._memory.get(key)
        if plan is not None:
            self._count("hit", "memory")
            return plan
        plan = self._load_disk(key)
        if plan is not None:
            with self._lock:
                self._memory[key] = plan
            self._count("hit", "disk")
            return plan
        self._count("miss", "any")
        return None

    def put(self, key: str, plan: CompiledPlan) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._memory[key] = plan
        self._store_disk(key, plan)

    def keys(self) -> list[str]:
        """Every cached key across both tiers (for ``repro compile list``)."""
        found = set(self._registry.names()) if self._registry else set()
        with self._lock:
            found.update(self._memory)
        return sorted(found)

    def describe(self, key: str) -> Optional[dict]:
        """Summary of one entry for ``repro compile list`` (no plan load).

        Memory-tier entries answer from the live plan; disk-only entries
        answer from the published manifest meta.  Returns ``None`` for an
        unknown or unreadable key.
        """
        with self._lock:
            plan = self._memory.get(key)
        if plan is not None:
            return {
                "batch_invariant": plan.batch_invariant,
                "step_kinds": plan.step_kinds(),
                "csr": plan.csr is not None,
            }
        if self._registry is None or not self._registry.exists(key):
            return None
        try:
            meta = dict(self._registry.resolve(key).meta)
        except (RegistryError, ArtifactNotFoundError, OSError, ValueError, KeyError):
            return None
        return {
            "batch_invariant": meta.get("batch_invariant"),
            "step_kinds": meta.get("step_kinds", []),
            "csr": bool(meta.get("csr", False)),
        }

    def clear(self) -> int:
        """Drop every entry from both tiers; returns distinct keys removed."""
        with self._lock:
            cleared = set(self._memory)
            self._memory.clear()
        if self._registry is not None:
            for name in self._registry.names():
                for version in self._registry.versions(name):
                    self._registry.delete(name, version)
                cleared.add(name)
        return len(cleared)

    # -- disk tier (registry artifacts) ----------------------------------------

    def _load_disk(self, key: str) -> Optional[CompiledPlan]:
        if self._registry is None or not self._registry.exists(key):
            return None
        try:
            ref = self._registry.resolve(key)
            meta, arrays = formats.read_plan_npz(ref.payload_path("plan.npz"))
            return plan_from_payload(meta, arrays)
        except (RegistryError, ArtifactNotFoundError, OSError, ValueError, KeyError):
            # an unreadable or stale-schema entry behaves as a miss; the
            # caller recompiles and put() publishes a fresh version
            return None

    def _store_disk(self, key: str, plan: CompiledPlan) -> None:
        if self._registry is None or self._registry.exists(key):
            return  # entries are content-addressed: one version is enough
        meta, arrays = plan_payload(plan)
        self._registry.publish(
            key,
            KIND_PLAN,
            lambda staged: formats.write_plan_npz(staged / "plan.npz", meta, arrays),
            input_dim=plan.input_dim,
            output_dim=plan.output_dim,
            meta={
                "key": key,
                "batch_invariant": plan.batch_invariant,
                "step_kinds": plan.step_kinds(),
                "csr": plan.csr is not None,
            },
        )

    # -- telemetry ---------------------------------------------------------------

    @staticmethod
    def _count(outcome: str, tier: str) -> None:
        if not obs.is_enabled():
            return
        registry = obs.get_registry()
        if outcome == "hit":
            registry.counter(
                "repro_compile_cache_hits_total",
                "Compiled-plan cache hits",
                labels=("tier",),
            ).inc(tier=tier)
        else:
            registry.counter(
                "repro_compile_cache_misses_total",
                "Compiled-plan cache misses",
            ).inc()


def warm_plan_cache(
    cache: PlanCache,
    package,
    *,
    digest: Optional[str] = None,
    modes: tuple[bool, ...] = (True, False),
    dtype: str = "<f8",
) -> list[str]:
    """Pre-compile a package's natural serving specializations into ``cache``.

    The natural key uses the package's own input width as the per-request
    row shape and float64 rows (what the orchestrator's tensor store
    holds for surrogate inputs); ``modes`` covers both batch-invariant
    and BLAS serving by default.  Returns the warmed keys.  Raises
    :class:`~repro.compile.plan.UntraceableModelError` for model families
    the compiler cannot trace.
    """
    digest = digest or package_digest(package)
    shape = (package.input_dim,)
    keys = []
    for invariant in modes:
        key = plan_key(
            digest, input_shape=shape, dtype=dtype, batch_invariant=invariant
        )
        if cache.get(key) is None:
            cache.put(key, compile_package(package, batch_invariant=invariant))
        keys.append(key)
    return keys
