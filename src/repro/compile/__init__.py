"""Trace-and-compile inference for the surrogate serving hot path.

JAX-style trace -> specialize -> cache, scaled to this repo's NumPy
stack: :func:`compile_package` partially evaluates a surrogate package
into a flat :class:`CompiledPlan` (weights folded, Dense/activation
fused, scratch preallocated) and :class:`PlanCache` persists plans
across restarts, content-addressed by registry digest + specialization
key.  The orchestrator consults both transparently and falls back to
the interpreted path on :class:`UntraceableModelError`.
"""

from .cache import PlanCache, package_digest, plan_key, warm_plan_cache
from .plan import (
    PLAN_SCHEMA_VERSION,
    CompiledPlan,
    UntraceableModelError,
    compile_package,
    plan_from_payload,
    plan_payload,
)

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "CompiledPlan",
    "UntraceableModelError",
    "compile_package",
    "plan_payload",
    "plan_from_payload",
    "PlanCache",
    "package_digest",
    "plan_key",
    "warm_plan_cache",
]
