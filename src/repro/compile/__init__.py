"""Trace-and-compile inference for the surrogate serving hot path.

JAX-style trace -> specialize -> cache, scaled to this repo's NumPy
stack: :func:`compile_package` partially evaluates a surrogate package
into a flat :class:`CompiledPlan` (weights folded, Dense/activation and
conv/activation fused, conv gather indices and CSR sparsity patterns
baked as constants, scratch preallocated) and :class:`PlanCache`
persists plans across restarts, content-addressed by registry digest +
specialization key.  The orchestrator consults both transparently and
falls back to the interpreted path on :class:`UntraceableModelError`,
counting each fallback by its ``reason``.
"""

from .cache import (
    PlanCache,
    csr_pattern_key,
    package_digest,
    plan_key,
    warm_plan_cache,
)
from .plan import (
    PLAN_SCHEMA_VERSION,
    UNTRACEABLE_KINDS,
    CompiledPlan,
    UntraceableModelError,
    compile_package,
    plan_from_payload,
    plan_payload,
    untraceable_reason,
)

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "UNTRACEABLE_KINDS",
    "CompiledPlan",
    "UntraceableModelError",
    "untraceable_reason",
    "compile_package",
    "plan_payload",
    "plan_from_payload",
    "PlanCache",
    "csr_pattern_key",
    "package_digest",
    "plan_key",
    "warm_plan_cache",
]
