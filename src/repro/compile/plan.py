"""Plan IR + compiler: partial evaluation of a surrogate forward pass.

The serving hot path interprets the autograd layer graph on every
micro-batch: each ``Dense`` builds ``Tensor`` wrappers, allocates an
output for the matmul, another for the bias add, and each ``Activation``
allocates again.  None of that bookkeeping depends on the input — only
on the *specialization key* ``(model, version, input shape, dtype,
batch_invariant)`` — so it can all be done once, ahead of time.

``compile_package`` traces a :class:`~repro.nas.package.SurrogatePackage`
through the declarative ``trace_spec`` hooks on :mod:`repro.nn.layers`
and partially evaluates the module tree into a :class:`CompiledPlan`: a
flat list of steps with the weights and biases captured as plain
``ndarray`` constants, each adjacent Dense/Activation pair fused into a
single gemm step, and scratch buffers preallocated per thread and
reused across calls.  Only the autograd/Python overhead is compiled
away — **every floating-point operation runs in the exact order the
interpreted path runs it**, so under :func:`repro.nn.batch_invariant`
the compiled outputs are bit-identical to ``package.predict``:

* ``x @ W`` executes as the same ``np.einsum("ij,jk->ik")`` (invariant
  mode) or BLAS ``matmul`` (fast mode), merely writing into a
  preallocated ``out`` instead of allocating;
* ``+ bias`` is the same broadcast add, in place;
* activations replay the exact expressions of
  :class:`repro.nn.tensor.Tensor` (e.g. sigmoid's clip/negate/exp/add/
  divide chain) element-wise in place.

The conv/pool family lowers to **im2col with precomputed gather-index
plans**: every tap of a same-padded convolution becomes one gather
through an index array baked at compile time, followed by the exact
per-tap einsum/matmul the interpreter runs, accumulated tap-by-tap in
the interpreter's order (a single fused im2col gemm would *reorder* the
accumulation and break bit-identity, so we never do that).  Pooling and
upsampling lower to the same staged reductions and index gathers the
``Tensor`` graph performs — ``mean`` replays as ``sum``-then-scale with
the identical reciprocal, never ``np.mean``.

CSR sparse-input packages compile through ``csr_pattern``: the sparsity
*pattern* (row pointers, column indices, the expanded row map and the
gathered weight rows) is folded into the plan as constants, so serving
one request only multiplies the value vector against prebaked operands
— exactly ``CSRMatrix.matmul_dense`` restaged.  A plan compiled for one
pattern only accepts inputs with that pattern; the cache key carries
the pattern digest.

No algebraic rewrites (no ``W1 @ W2`` folding) are performed — those
would change summation orders and break the bit-identity guarantee the
micro-batching server is built on.

A module that exposes no usable ``trace_spec`` raises
:class:`UntraceableModelError` (tagged with a ``reason``); the
orchestrator catches it and keeps serving that model on the interpreted
path.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from ..sparse.formats import CSRMatrix

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "UNTRACEABLE_KINDS",
    "UntraceableModelError",
    "untraceable_reason",
    "CompiledPlan",
    "compile_package",
    "plan_payload",
    "plan_from_payload",
]

#: bump when the step semantics or payload layout change — the schema
#: version is folded into every cache key, so old persisted plans are
#: invalidated for free instead of misinterpreted.  v2 added the
#: conv/pool/upsample and CSR step kinds.
PLAN_SCHEMA_VERSION = 2

#: matches the default of :meth:`repro.nn.tensor.Tensor.leaky_relu`
_LEAKY_SLOPE = 0.01

#: what still serves interpreted, by the ``reason`` label each fallback
#: is counted under (``repro_compile_untraceable_total``); surfaced by
#: ``repro compile list`` so operators can see the remaining gaps
UNTRACEABLE_KINDS = {
    "opaque": "callables without trace_spec hooks (raw lambdas, foreign models)",
    "unknown-module": "module kinds with no plan lowering yet (e.g. recurrent layers)",
    "conv": "conv/pool geometries the lowering rejects (non-dividing pool or view sizes)",
    "csr": "CSR inputs whose package lacks a sparse-input first layer",
}


class UntraceableModelError(TypeError):
    """The module tree cannot lower to a plan; serve interpreted.

    ``reason`` is one of the :data:`UNTRACEABLE_KINDS` keys and feeds
    the ``reason`` label on ``repro_compile_untraceable_total``.
    """

    def __init__(self, message: str, *, reason: str = "unknown-module") -> None:
        super().__init__(message)
        self.reason = reason


def untraceable_reason(exc: BaseException) -> str:
    """Map a compile failure to its counter ``reason`` label.

    Foreign exceptions (a package without ``payload_meta``, a pickling
    surprise) classify as ``opaque``: the model is not something the
    tracer can even inspect.
    """
    reason = getattr(exc, "reason", None)
    if isinstance(reason, str) and reason in UNTRACEABLE_KINDS:
        return reason
    return "unknown-module" if isinstance(exc, UntraceableModelError) else "opaque"


def _act_inplace(kind: str, out: np.ndarray) -> None:
    """Apply an activation in place, replaying the Tensor op expressions."""
    if kind == "relu":
        np.multiply(out, out > 0, out=out)
    elif kind == "tanh":
        np.tanh(out, out=out)
    elif kind == "sigmoid":
        # 1 / (1 + exp(-clip(x))) with the same clip bounds as Tensor.sigmoid
        np.clip(out, -60.0, 60.0, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)
    elif kind == "leaky_relu":
        np.multiply(out, np.where(out > 0, 1.0, _LEAKY_SLOPE), out=out)
    # identity: nothing to do


def _matmul_into(x: np.ndarray, w: np.ndarray, out: np.ndarray, invariant: bool) -> None:
    """The interpreter's 2-D product, written into ``out``."""
    if invariant:
        # fixed per-element reduction order: rows are independent of
        # batch size, exactly like the interpreted batch_invariant path
        np.einsum("ij,jk->ik", x, w, out=out)
    else:
        np.matmul(x, w, out=out)


class _GemmStep:
    """Fused ``y = act(x @ W + b)`` with weights folded as constants.

    The fusion removes three intermediate allocations per layer pair but
    keeps the float ops verbatim: einsum/matmul into ``out``, in-place
    broadcast bias add, in-place activation.
    """

    kind = "gemm"
    __slots__ = ("weight", "bias", "act", "out_dim")

    def __init__(self, weight: np.ndarray, bias: np.ndarray, act: str = "identity") -> None:
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.bias = np.ascontiguousarray(bias, dtype=np.float64)
        self.act = act
        self.out_dim = int(self.weight.shape[1])

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        _matmul_into(x, self.weight, out, invariant)
        out += self.bias
        _act_inplace(self.act, out)


class _ActStep:
    """A standalone activation (no preceding Dense/conv to fuse into)."""

    kind = "act"
    __slots__ = ("act", "out_dim")

    def __init__(self, act: str, out_dim: int) -> None:
        self.act = act
        self.out_dim = int(out_dim)

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        if self.act == "relu":
            np.multiply(x, x > 0, out=out)
        elif self.act == "tanh":
            np.tanh(x, out=out)
        elif self.act == "sigmoid":
            np.clip(x, -60.0, 60.0, out=out)
            np.negative(out, out=out)
            np.exp(out, out=out)
            out += 1.0
            np.divide(1.0, out, out=out)
        elif self.act == "leaky_relu":
            np.multiply(x, np.where(x > 0, 1.0, _LEAKY_SLOPE), out=out)
        else:
            np.copyto(out, x)


class _ResidualStep:
    """``y = inner(x) + x`` with the inner chain compiled recursively.

    The inner steps write their final result straight into ``out`` and
    the skip connection is added in place — the same elementwise add the
    interpreted ``Residual.forward`` performs.
    """

    kind = "residual"
    __slots__ = ("steps", "out_dim", "_tls")

    def __init__(self, steps: list, out_dim: int) -> None:
        self.steps = list(steps)
        self.out_dim = int(out_dim)
        self._tls = threading.local()

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        if not self.steps:
            np.add(x, x, out=out)  # Residual(identity): inner(x) + x == 2x
            return
        _run_steps(self.steps, x, out, invariant, self._tls)
        out += x


class _ConvScratch:
    """Per-thread working set of one conv step (padded/gather/tap/acc)."""

    __slots__ = ("capacity", "padded", "gathered", "tap", "acc")

    def __init__(self, batch: int, pad_shape: tuple, gat: int, accw: int) -> None:
        self.capacity = max(batch, 32)
        # the pad bands must read as the interpreter's concatenated zeros;
        # they are written once here and never touched again (only the
        # center region is overwritten per call)
        self.padded = np.zeros((self.capacity,) + pad_shape)
        self.gathered = np.empty((self.capacity, gat))
        self.tap = np.empty((self.capacity, accw))
        self.acc = np.empty((self.capacity, accw))


class _Conv1dStep:
    """Same-padded Conv1d as per-tap gathers + the interpreter's matmuls.

    ``taps_idx[k]`` maps the flattened padded signal to the im2col
    matrix of tap ``k`` — precomputed at compile time, so each tap is
    one ``np.take`` plus the exact einsum/matmul the autograd layer
    runs, accumulated tap-by-tap in the interpreter's order.
    """

    kind = "conv1d"
    __slots__ = (
        "weight", "bias", "act", "channels", "length",
        "out_channels", "taps_idx", "out_dim", "_tls",
    )

    def __init__(
        self, weight: np.ndarray, bias: np.ndarray, act: str,
        channels: int, length: int,
    ) -> None:
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.bias = np.ascontiguousarray(bias, dtype=np.float64)
        self.act = act
        self.channels = int(channels)
        self.length = int(length)
        kernel, c_in, c_out = self.weight.shape
        if c_in != self.channels:
            raise UntraceableModelError(
                f"Conv1d weight expects {c_in} channels, signal has "
                f"{self.channels}", reason="conv",
            )
        self.out_channels = int(c_out)
        self.out_dim = self.out_channels * self.length
        pad = kernel // 2
        padded_len = self.length + 2 * pad
        l_idx = np.arange(self.length)
        c_idx = np.arange(self.channels)
        self.taps_idx = np.stack([
            (c_idx[None, :] * padded_len + (k + l_idx)[:, None]).ravel()
            for k in range(kernel)
        ])
        self._tls = threading.local()

    def _scratch(self, batch: int) -> _ConvScratch:
        scratch = getattr(self._tls, "s", None)
        if scratch is None or scratch.capacity < batch:
            pad = self.weight.shape[0] // 2
            scratch = _ConvScratch(
                batch,
                (self.channels, self.length + 2 * pad),
                self.length * self.channels,
                self.length * self.out_channels,
            )
            self._tls.s = scratch
        return scratch

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        batch, length = x.shape[0], self.length
        kernel = self.weight.shape[0]
        pad = kernel // 2
        s = self._scratch(batch)
        s.padded[:batch, :, pad:pad + length] = x.reshape(
            batch, self.channels, length
        )
        flat_padded = s.padded[:batch].reshape(batch, -1)
        gathered = s.gathered[:batch]
        gmat = gathered.reshape(batch * length, self.channels)
        acc = s.acc[:batch].reshape(batch * length, self.out_channels)
        tap = s.tap[:batch].reshape(batch * length, self.out_channels)
        for k in range(kernel):
            np.take(flat_padded, self.taps_idx[k], axis=1, out=gathered)
            target = acc if k == 0 else tap
            _matmul_into(gmat, self.weight[k], target, invariant)
            if k:
                np.add(acc, tap, out=acc)
        acc3 = s.acc[:batch].reshape(batch, length, self.out_channels)
        acc3 += self.bias
        _act_inplace(self.act, acc3)
        np.copyto(
            out.reshape(batch, self.out_channels, length),
            acc3.transpose(0, 2, 1),
        )


class _Conv2dStep:
    """Same-padded Conv2d via per-tap precomputed gathers (see Conv1d)."""

    kind = "conv2d"
    __slots__ = (
        "weight", "bias", "act", "channels", "height", "width",
        "kernel", "out_channels", "taps_idx", "out_dim", "_tls",
    )

    def __init__(
        self, weight: np.ndarray, bias: np.ndarray, act: str,
        kernel: int, channels: int, height: int, width: int,
    ) -> None:
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.bias = np.ascontiguousarray(bias, dtype=np.float64)
        self.act = act
        self.kernel = int(kernel)
        self.channels = int(channels)
        self.height = int(height)
        self.width = int(width)
        taps, c_in, c_out = self.weight.shape
        if taps != self.kernel * self.kernel or c_in != self.channels:
            raise UntraceableModelError(
                f"Conv2d weight {self.weight.shape} does not match kernel "
                f"{self.kernel} over {self.channels} channels", reason="conv",
            )
        self.out_channels = int(c_out)
        self.out_dim = self.out_channels * self.height * self.width
        pad = self.kernel // 2
        ph, pw = self.height + 2 * pad, self.width + 2 * pad
        y_idx = np.arange(self.height)
        x_idx = np.arange(self.width)
        c_idx = np.arange(self.channels)
        rows = []
        for dy in range(self.kernel):
            for dx in range(self.kernel):
                spatial = (
                    (dy + y_idx)[:, None] * pw + (dx + x_idx)[None, :]
                ).reshape(-1)
                rows.append(
                    (c_idx[None, :] * (ph * pw) + spatial[:, None]).ravel()
                )
        self.taps_idx = np.stack(rows)
        self._tls = threading.local()

    def _scratch(self, batch: int) -> _ConvScratch:
        scratch = getattr(self._tls, "s", None)
        if scratch is None or scratch.capacity < batch:
            pad = self.kernel // 2
            points = self.height * self.width
            scratch = _ConvScratch(
                batch,
                (self.channels, self.height + 2 * pad, self.width + 2 * pad),
                points * self.channels,
                points * self.out_channels,
            )
            self._tls.s = scratch
        return scratch

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        batch = x.shape[0]
        height, width = self.height, self.width
        points = height * width
        pad = self.kernel // 2
        s = self._scratch(batch)
        s.padded[:batch, :, pad:pad + height, pad:pad + width] = x.reshape(
            batch, self.channels, height, width
        )
        flat_padded = s.padded[:batch].reshape(batch, -1)
        gathered = s.gathered[:batch]
        gmat = gathered.reshape(batch * points, self.channels)
        acc = s.acc[:batch].reshape(batch * points, self.out_channels)
        tap = s.tap[:batch].reshape(batch * points, self.out_channels)
        for k in range(self.taps_idx.shape[0]):
            np.take(flat_padded, self.taps_idx[k], axis=1, out=gathered)
            target = acc if k == 0 else tap
            _matmul_into(gmat, self.weight[k], target, invariant)
            if k:
                np.add(acc, tap, out=acc)
        acc3 = s.acc[:batch].reshape(batch, points, self.out_channels)
        acc3 += self.bias
        _act_inplace(self.act, acc3)
        np.copyto(
            out.reshape(batch, self.out_channels, height, width),
            s.acc[:batch].reshape(
                batch, height, width, self.out_channels
            ).transpose(0, 3, 1, 2),
        )


class _Pool1dStep:
    """Non-overlapping 1-D pooling as the interpreter's staged reduction.

    ``avg`` replays ``Tensor.mean`` exactly: a ``sum`` over the pool
    axis followed by a multiply with the same ``1.0 / pool`` reciprocal
    — never ``np.mean``, whose division differs in the last ulp.
    """

    kind = "pool1d"
    __slots__ = ("op", "pool", "channels", "length", "out_dim")

    def __init__(self, op: str, pool: int, channels: int, length: int) -> None:
        self.op = op
        self.pool = int(pool)
        self.channels = int(channels)
        self.length = int(length)
        self.out_dim = self.channels * (self.length // self.pool)

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        batch = x.shape[0]
        blocks = x.reshape(
            batch, self.channels, self.length // self.pool, self.pool
        )
        target = out.reshape(batch, self.channels, self.length // self.pool)
        if self.op == "max":
            np.max(blocks, axis=3, out=target)
        else:
            np.sum(blocks, axis=3, out=target)
            target *= 1.0 / self.pool


class _Pool2dStep:
    """Non-overlapping 2-D pooling: reduce axis 5 then axis 3, in order."""

    kind = "pool2d"
    __slots__ = ("op", "pool", "channels", "height", "width", "out_dim", "_tls")

    def __init__(
        self, op: str, pool: int, channels: int, height: int, width: int
    ) -> None:
        self.op = op
        self.pool = int(pool)
        self.channels = int(channels)
        self.height = int(height)
        self.width = int(width)
        self.out_dim = self.channels * (self.height // self.pool) * (
            self.width // self.pool
        )
        self._tls = threading.local()

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        batch = x.shape[0]
        p = self.pool
        h2, w2 = self.height // p, self.width // p
        stage = getattr(self._tls, "stage", None)
        if stage is None or stage.shape[0] < batch:
            stage = np.empty((max(batch, 32), self.channels, h2, p, w2))
            self._tls.stage = stage
        blocks = x.reshape(batch, self.channels, h2, p, w2, p)
        mid = stage[:batch]
        target = out.reshape(batch, self.channels, h2, w2)
        if self.op == "max":
            np.max(blocks, axis=5, out=mid)
            np.max(mid, axis=3, out=target)
        else:
            np.sum(blocks, axis=5, out=mid)
            mid *= 1.0 / p
            np.sum(mid, axis=3, out=target)
            target *= 1.0 / p


class _Upsample1dStep:
    """Nearest-neighbour repeat as a single precomputed index gather."""

    kind = "upsample1d"
    __slots__ = ("factor", "channels", "length", "idx", "out_dim")

    def __init__(self, factor: int, channels: int, length: int) -> None:
        self.factor = int(factor)
        self.channels = int(channels)
        self.length = int(length)
        self.idx = np.repeat(np.arange(self.length), self.factor)
        self.out_dim = self.channels * self.length * self.factor

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        batch = x.shape[0]
        np.take(
            x.reshape(batch, self.channels, self.length),
            self.idx,
            axis=2,
            out=out.reshape(batch, self.channels, self.length * self.factor),
        )


class _Upsample2dStep:
    """2-D nearest-neighbour repeat: rows-then-cols folded into one gather."""

    kind = "upsample2d"
    __slots__ = ("factor", "channels", "height", "width", "idx", "out_dim")

    def __init__(self, factor: int, channels: int, height: int, width: int) -> None:
        self.factor = int(factor)
        self.channels = int(channels)
        self.height = int(height)
        self.width = int(width)
        rows = np.repeat(np.arange(self.height), self.factor)
        cols = np.repeat(np.arange(self.width), self.factor)
        self.idx = (rows[:, None] * self.width + cols[None, :]).ravel()
        self.out_dim = (
            self.channels * self.height * self.factor * self.width * self.factor
        )

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        batch = x.shape[0]
        np.take(
            x.reshape(batch, self.channels, self.height * self.width),
            self.idx,
            axis=2,
            out=out.reshape(batch, self.channels, self.idx.size),
        )


class _CsrPattern:
    """One folded CSR sparsity pattern (structure only, no values)."""

    __slots__ = ("indptr", "indices", "shape", "rows")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, shape) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self.rows = np.repeat(
            np.arange(self.shape[0]), np.diff(self.indptr)
        )

    @classmethod
    def from_matrix(cls, csr: CSRMatrix) -> "_CsrPattern":
        return cls(csr.indptr, csr.indices, csr.shape)

    def matches(self, csr: CSRMatrix) -> bool:
        return (
            self.shape == tuple(csr.shape)
            and np.array_equal(self.indptr, csr.indptr)
            and np.array_equal(self.indices, csr.indices)
        )


class _CsrGemmStep:
    """``act(X_csr @ W + b)`` with the pattern AND gathered rows folded.

    ``CSRMatrix.matmul_dense`` gathers ``W[indices]`` per call; for a
    fixed pattern that gather is a compile-time constant, so serving a
    request is one multiply of the value vector against prebaked rows
    plus the same ``np.add.at`` scatter the interpreter runs.
    """

    kind = "csr_gemm"
    __slots__ = ("weight", "bias", "act", "pattern", "_wrows", "out_dim")

    def __init__(
        self, weight: np.ndarray, bias: np.ndarray, act: str, pattern: _CsrPattern
    ) -> None:
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.bias = np.ascontiguousarray(bias, dtype=np.float64)
        self.act = act
        self.pattern = pattern
        if self.weight.shape[0] != pattern.shape[1]:
            raise UntraceableModelError(
                f"CSR pattern has {pattern.shape[1]} columns; first layer "
                f"expects {self.weight.shape[0]}", reason="csr",
            )
        self._wrows = self.weight[pattern.indices]
        self.out_dim = int(self.weight.shape[1])

    def run_values(self, values: np.ndarray, out: np.ndarray) -> None:
        out.fill(0.0)
        contrib = values[:, None] * self._wrows
        np.add.at(out, self.pattern.rows, contrib)
        out += self.bias
        _act_inplace(self.act, out)


class _CsrDensifyStep:
    """``CSRMatrix.to_dense`` restaged: the no-encoder CSR prelude.

    ``SurrogatePackage.predict`` densifies CSR inputs when there is no
    autoencoder; this step replays that exact scatter into plan scratch
    so the rest of the dense chain runs unchanged.
    """

    kind = "csr_densify"
    __slots__ = ("pattern", "out_dim")

    def __init__(self, pattern: _CsrPattern) -> None:
        self.pattern = pattern
        self.out_dim = int(pattern.shape[1])

    def run_values(self, values: np.ndarray, out: np.ndarray) -> None:
        out.fill(0.0)
        out[self.pattern.rows, self.pattern.indices] = values


def _scratch_buffers(tls: threading.local, steps: list, batch: int) -> list:
    """Per-thread intermediate buffers, regrown when a deeper batch arrives.

    Buffers are thread-local so concurrent serving workers never share a
    scratch array — the executor takes no lock on the hot path.
    """
    bufs = getattr(tls, "bufs", None)
    if bufs is None or any(b.shape[0] < batch for b in bufs):
        capacity = max(batch, 32)
        bufs = [np.empty((capacity, step.out_dim)) for step in steps[:-1]]
        tls.bufs = bufs
    return bufs


def _run_steps(
    steps: list,
    x: np.ndarray,
    out: np.ndarray,
    invariant: bool,
    tls: threading.local,
) -> None:
    """Run a step chain: intermediates into scratch, the last into ``out``."""
    batch = x.shape[0]
    bufs = _scratch_buffers(tls, steps, batch)
    cur = x
    last = len(steps) - 1
    for i, step in enumerate(steps):
        target = out if i == last else bufs[i][:batch]
        step.run(cur, target, invariant)
        cur = target


class CompiledPlan:
    """A specialized, flat executable form of one surrogate package.

    ``predict`` replicates the :meth:`SurrogatePackage.predict` contract
    exactly — 1-D input is one sample returning ``(output_dim,)``, 2-D
    input is a stacked batch, wrong feature counts raise ``ValueError``
    — so the orchestrator can substitute a plan for the package without
    any caller noticing (except in the latency histograms).

    A plan compiled with a ``csr_pattern`` instead consumes
    :class:`~repro.sparse.formats.CSRMatrix` batches whose sparsity
    pattern matches the folded one, returning stacked rows like the
    interpreter does for CSR input.

    The plan is specialized on ``batch_invariant`` at compile time; it
    does not consult the thread-local mode at run time.  The returned
    output array is freshly allocated per call (never a view of the
    plan's scratch), so callers may keep or mutate it freely.
    """

    def __init__(
        self,
        steps: list,
        *,
        input_dim: int,
        output_dim: int,
        batch_invariant: bool = True,
        csr: Optional[_CsrPattern] = None,
    ) -> None:
        self.steps = list(steps)
        self.input_dim = int(input_dim)
        self.output_dim = int(output_dim)
        self.batch_invariant = bool(batch_invariant)
        self.csr = csr
        self._tls = threading.local()
        self._tls_head = threading.local()

    def predict(self, x) -> np.ndarray:
        if isinstance(x, CSRMatrix):
            return self._predict_csr(x)
        if self.csr is not None:
            raise ValueError(
                "this plan is specialized for CSR input; pass a CSRMatrix"
            )
        x = np.asarray(x)
        single = x.ndim == 1
        if x.shape[-1] != self.input_dim:
            raise ValueError(
                f"surrogate expects {self.input_dim} input features, "
                f"got input of shape {x.shape}"
            )
        x2 = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float64)
        if not self.steps:
            out = x2.copy()
        else:
            out = np.empty((x2.shape[0], self.output_dim))
            _run_steps(self.steps, x2, out, self.batch_invariant, self._tls)
        return out[0] if single else out

    __call__ = predict

    def _predict_csr(self, x: CSRMatrix) -> np.ndarray:
        if self.csr is None:
            raise ValueError(
                "this plan was not compiled for CSR input "
                "(compile with csr_pattern=...)"
            )
        if not self.csr.matches(x):
            raise ValueError(
                "CSR input's sparsity pattern differs from the pattern "
                "this plan folded at compile time"
            )
        head, rest = self.steps[0], self.steps[1:]
        batch = x.shape[0]
        out = np.empty((batch, self.output_dim))
        if not rest:
            head.run_values(x.data, out)
            return out
        buf = getattr(self._tls_head, "buf", None)
        if buf is None or buf.shape[0] < batch:
            buf = np.empty((max(batch, 32), head.out_dim))
            self._tls_head.buf = buf
        cur = buf[:batch]
        head.run_values(x.data, cur)
        _run_steps(rest, cur, out, self.batch_invariant, self._tls)
        return out

    def num_steps(self) -> int:
        """Flat step count (residual inners included), for introspection."""

        def count(steps: list) -> int:
            total = 0
            for step in steps:
                total += 1
                if isinstance(step, _ResidualStep):
                    total += count(step.steps)
            return total

        return count(self.steps)

    def step_kinds(self) -> list[str]:
        """Sorted distinct step kinds (residual inners included)."""

        def walk(steps: list):
            for step in steps:
                yield step.kind
                if isinstance(step, _ResidualStep):
                    yield from walk(step.steps)

        return sorted(set(walk(self.steps)))


# -- tracing ---------------------------------------------------------------


def _flatten_spec(module) -> list:
    """Lower a module tree to a flat op list via its ``trace_spec`` hooks."""
    if not hasattr(module, "trace_spec"):
        raise UntraceableModelError(
            f"{type(module).__name__} declares no trace_spec; "
            "this model serves on the interpreted path",
            reason="opaque",
        )
    spec = module.trace_spec()
    if spec is None:
        raise UntraceableModelError(
            f"{type(module).__name__} declares no trace_spec; "
            "this model serves on the interpreted path",
            reason="unknown-module",
        )
    kind = spec[0]
    if kind == "sequential":
        ops: list = []
        for child in spec[1]:
            ops.extend(_flatten_spec(child))
        return ops
    if kind == "residual":
        return [("residual", _flatten_spec(spec[1]))]
    if kind in (
        "dense", "activation", "conv1d", "conv2d", "pool1d", "pool2d",
        "upsample1d", "upsample2d", "signal_view", "image_view", "flatten",
    ):
        return [spec]
    raise UntraceableModelError(
        f"unknown trace spec kind {kind!r}", reason="unknown-module"
    )


def _fused_act(ops: list, i: int) -> tuple[str, int]:
    """Activation fused into the op at ``i`` (and the index consumed to)."""
    if i + 1 < len(ops) and ops[i + 1][0] == "activation":
        return ops[i + 1][1], i + 1
    return "identity", i


def _lower(ops: list, in_dim: int, layout) -> tuple[list, int, Optional[tuple]]:
    """Partial evaluation with layout inference.

    ``layout`` tracks how the flat ``(B, dim)`` executor buffer is
    currently viewed: ``None`` for flat rows, ``("signal", C, L)`` or
    ``("image", C, H, W)`` for the conv families.  View adapters
    (SignalView/ImageView/Flatten) are free — reshapes of a contiguous
    flat buffer move no data — so they lower to *no step at all*, just a
    layout change.
    """
    steps: list = []
    dim = in_dim
    i = 0
    while i < len(ops):
        op = ops[i]
        kind = op[0]
        if kind == "dense":
            if layout is not None:
                raise UntraceableModelError(
                    "dense layer applied to a non-flat layout",
                    reason="unknown-module",
                )
            act, i = _fused_act(ops, i)
            step = _GemmStep(op[1], op[2], act)
            steps.append(step)
            dim = step.out_dim
        elif kind == "activation":
            steps.append(_ActStep(op[1], dim))
        elif kind == "residual":
            inner, inner_dim, inner_layout = _lower(op[1], dim, layout)
            steps.append(_ResidualStep(inner, dim))
        elif kind == "signal_view":
            channels = int(op[1])
            if layout is not None or dim % channels:
                raise UntraceableModelError(
                    f"signal view of {channels} channels does not divide "
                    f"{dim} features", reason="conv",
                )
            layout = ("signal", channels, dim // channels)
        elif kind == "image_view":
            height, width = int(op[1]), int(op[2])
            if layout is not None or dim != height * width:
                raise UntraceableModelError(
                    f"image view {height}x{width} does not match {dim} "
                    "features", reason="conv",
                )
            layout = ("image", 1, height, width)
        elif kind == "flatten":
            layout = None
        elif kind == "conv1d":
            if layout is None or layout[0] != "signal":
                raise UntraceableModelError(
                    "conv1d applied outside a signal layout", reason="conv"
                )
            act, i = _fused_act(ops, i)
            step = _Conv1dStep(op[1], op[2], act, layout[1], layout[2])
            steps.append(step)
            layout = ("signal", step.out_channels, layout[2])
            dim = step.out_dim
        elif kind == "conv2d":
            if layout is None or layout[0] != "image":
                raise UntraceableModelError(
                    "conv2d applied outside an image layout", reason="conv"
                )
            act, i = _fused_act(ops, i)
            step = _Conv2dStep(
                op[1], op[2], act, int(op[3]), layout[1], layout[2], layout[3]
            )
            steps.append(step)
            layout = ("image", step.out_channels, layout[2], layout[3])
            dim = step.out_dim
        elif kind == "pool1d":
            pool = int(op[2])
            if pool > 1:
                if layout is None or layout[0] != "signal" or layout[2] % pool:
                    raise UntraceableModelError(
                        f"1-D pool of {pool} does not divide the signal",
                        reason="conv",
                    )
                step = _Pool1dStep(op[1], pool, layout[1], layout[2])
                steps.append(step)
                layout = ("signal", layout[1], layout[2] // pool)
                dim = step.out_dim
        elif kind == "pool2d":
            pool = int(op[2])
            if pool > 1:
                if (
                    layout is None or layout[0] != "image"
                    or layout[2] % pool or layout[3] % pool
                ):
                    raise UntraceableModelError(
                        f"2-D pool of {pool} does not divide the image",
                        reason="conv",
                    )
                step = _Pool2dStep(op[1], pool, layout[1], layout[2], layout[3])
                steps.append(step)
                layout = ("image", layout[1], layout[2] // pool, layout[3] // pool)
                dim = step.out_dim
        elif kind == "upsample1d":
            factor = int(op[1])
            if factor > 1:
                if layout is None or layout[0] != "signal":
                    raise UntraceableModelError(
                        "1-D upsample outside a signal layout", reason="conv"
                    )
                step = _Upsample1dStep(factor, layout[1], layout[2])
                steps.append(step)
                layout = ("signal", layout[1], layout[2] * factor)
                dim = step.out_dim
        elif kind == "upsample2d":
            factor = int(op[1])
            if factor > 1:
                if layout is None or layout[0] != "image":
                    raise UntraceableModelError(
                        "2-D upsample outside an image layout", reason="conv"
                    )
                step = _Upsample2dStep(factor, layout[1], layout[2], layout[3])
                steps.append(step)
                layout = ("image", layout[1], layout[2] * factor, layout[3] * factor)
                dim = step.out_dim
        else:  # unreachable: _flatten_spec validated the kinds
            raise UntraceableModelError(
                f"unknown op kind {kind!r}", reason="unknown-module"
            )
        i += 1
    return steps, dim, layout


def compile_package(
    package, *, batch_invariant: bool = True, csr_pattern: Optional[CSRMatrix] = None
) -> CompiledPlan:
    """Trace and partially evaluate a surrogate package into a plan.

    The optional autoencoder's encoder is traced first, then the
    surrogate model; the whole chain compiles into one flat plan.

    ``csr_pattern`` compiles a CSR-input specialization instead: the
    pattern's row pointers and column indices are folded into the plan
    (sparse-input encoders get a pattern-specialized first-layer gemm;
    packages without an encoder get the interpreter's densify prelude)
    and the resulting plan serves CSR batches with exactly that pattern.

    Raises :class:`UntraceableModelError` (tagged with a ``reason``)
    for module trees or input kinds with no plan lowering.
    """
    ops: list = []
    if package.autoencoder is not None:
        ops.extend(_flatten_spec(package.autoencoder.encoder))
    ops.extend(_flatten_spec(package.model))
    head: list = []
    in_dim = package.input_dim
    csr = None
    if csr_pattern is not None:
        csr = _CsrPattern.from_matrix(csr_pattern)
        if csr.shape[1] != package.input_dim:
            raise UntraceableModelError(
                f"CSR pattern has {csr.shape[1]} columns; package expects "
                f"{package.input_dim}", reason="csr",
            )
        if package.autoencoder is not None:
            if not getattr(package.autoencoder, "sparse_input", False):
                raise UntraceableModelError(
                    "package's autoencoder was built without sparse_input; "
                    "CSR requests cannot serve", reason="csr",
                )
            # sparse_input guarantees the first traced op is the
            # SparseDense input layer — specialize it on the pattern
            if not ops or ops[0][0] != "dense":
                raise UntraceableModelError(
                    "CSR-input package does not start with a sparse-capable "
                    "first layer", reason="csr",
                )
            act = "identity"
            rest = ops[1:]
            if rest and rest[0][0] == "activation":
                act, rest = rest[0][1], rest[1:]
            gemm = _CsrGemmStep(ops[0][1], ops[0][2], act, csr)
            head, ops, in_dim = [gemm], rest, gemm.out_dim
        else:
            # the interpreter densifies when no encoder is present
            head = [_CsrDensifyStep(csr)]
    steps, _, _ = _lower(ops, in_dim, None)
    return CompiledPlan(
        head + steps,
        input_dim=package.input_dim,
        output_dim=package.output_dim,
        batch_invariant=batch_invariant,
        csr=csr,
    )


# -- persistence payload ----------------------------------------------------


def plan_payload(plan: CompiledPlan) -> tuple[dict, dict]:
    """Lower a plan to ``(json-safe meta, arrays)`` for the npz codec.

    Weights, biases and the CSR pattern arrays persist verbatim (npz
    round-trips bytes exactly); conv gather indices are *derived*
    constants — rebuilt deterministically from the folded geometry at
    load time, so they never bloat the payload.
    """
    arrays: dict[str, np.ndarray] = {}

    def encode(steps: list, prefix: str) -> list:
        encoded = []
        for i, step in enumerate(steps):
            tag = f"{prefix}{i}"
            kind = step.kind
            if kind in ("gemm", "conv1d", "conv2d", "csr_gemm"):
                arrays[f"w_{tag}"] = step.weight
                arrays[f"b_{tag}"] = step.bias
                spec = {"kind": kind, "act": step.act, "id": tag}
                if kind == "conv1d":
                    spec.update(channels=step.channels, length=step.length)
                elif kind == "conv2d":
                    spec.update(
                        kernel=step.kernel, channels=step.channels,
                        height=step.height, width=step.width,
                    )
                encoded.append(spec)
            elif kind == "act":
                encoded.append({"kind": "act", "act": step.act, "dim": step.out_dim})
            elif kind == "pool1d":
                encoded.append({
                    "kind": kind, "op": step.op, "pool": step.pool,
                    "channels": step.channels, "length": step.length,
                })
            elif kind == "pool2d":
                encoded.append({
                    "kind": kind, "op": step.op, "pool": step.pool,
                    "channels": step.channels, "height": step.height,
                    "width": step.width,
                })
            elif kind == "upsample1d":
                encoded.append({
                    "kind": kind, "factor": step.factor,
                    "channels": step.channels, "length": step.length,
                })
            elif kind == "upsample2d":
                encoded.append({
                    "kind": kind, "factor": step.factor,
                    "channels": step.channels, "height": step.height,
                    "width": step.width,
                })
            elif kind == "csr_densify":
                encoded.append({"kind": kind})
            else:  # residual
                encoded.append({
                    "kind": "residual",
                    "dim": step.out_dim,
                    "steps": encode(step.steps, tag + "_"),
                })
        return encoded

    meta = {
        "schema": PLAN_SCHEMA_VERSION,
        "input_dim": plan.input_dim,
        "output_dim": plan.output_dim,
        "batch_invariant": plan.batch_invariant,
        "steps": encode(plan.steps, "s"),
    }
    if plan.csr is not None:
        meta["csr"] = {"shape": list(plan.csr.shape)}
        arrays["csr_indptr"] = plan.csr.indptr
        arrays["csr_indices"] = plan.csr.indices
    return meta, arrays


def plan_from_payload(meta: dict, arrays: dict) -> CompiledPlan:
    """Rebuild a plan from a persisted payload (arrays round-trip exactly
    through npz, so a disk hit is bit-identical to the plan it memoizes)."""
    if meta.get("schema") != PLAN_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported plan schema {meta.get('schema')!r} "
            f"(this build executes schema {PLAN_SCHEMA_VERSION})"
        )
    csr = None
    if "csr" in meta:
        csr = _CsrPattern(
            arrays["csr_indptr"], arrays["csr_indices"], meta["csr"]["shape"]
        )

    def decode(specs: list) -> list:
        steps: list = []
        for spec in specs:
            kind = spec["kind"]
            if kind == "gemm":
                steps.append(
                    _GemmStep(
                        arrays[f"w_{spec['id']}"],
                        arrays[f"b_{spec['id']}"],
                        spec["act"],
                    )
                )
            elif kind == "act":
                steps.append(_ActStep(spec["act"], spec["dim"]))
            elif kind == "conv1d":
                steps.append(
                    _Conv1dStep(
                        arrays[f"w_{spec['id']}"], arrays[f"b_{spec['id']}"],
                        spec["act"], spec["channels"], spec["length"],
                    )
                )
            elif kind == "conv2d":
                steps.append(
                    _Conv2dStep(
                        arrays[f"w_{spec['id']}"], arrays[f"b_{spec['id']}"],
                        spec["act"], spec["kernel"], spec["channels"],
                        spec["height"], spec["width"],
                    )
                )
            elif kind == "pool1d":
                steps.append(
                    _Pool1dStep(
                        spec["op"], spec["pool"], spec["channels"], spec["length"]
                    )
                )
            elif kind == "pool2d":
                steps.append(
                    _Pool2dStep(
                        spec["op"], spec["pool"], spec["channels"],
                        spec["height"], spec["width"],
                    )
                )
            elif kind == "upsample1d":
                steps.append(
                    _Upsample1dStep(
                        spec["factor"], spec["channels"], spec["length"]
                    )
                )
            elif kind == "upsample2d":
                steps.append(
                    _Upsample2dStep(
                        spec["factor"], spec["channels"],
                        spec["height"], spec["width"],
                    )
                )
            elif kind == "csr_gemm":
                steps.append(
                    _CsrGemmStep(
                        arrays[f"w_{spec['id']}"], arrays[f"b_{spec['id']}"],
                        spec["act"], csr,
                    )
                )
            elif kind == "csr_densify":
                steps.append(_CsrDensifyStep(csr))
            else:
                steps.append(_ResidualStep(decode(spec["steps"]), spec["dim"]))
        return steps

    return CompiledPlan(
        decode(meta["steps"]),
        input_dim=meta["input_dim"],
        output_dim=meta["output_dim"],
        batch_invariant=meta["batch_invariant"],
        csr=csr,
    )
