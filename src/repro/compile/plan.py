"""Plan IR + compiler: partial evaluation of a surrogate forward pass.

The serving hot path interprets the autograd layer graph on every
micro-batch: each ``Dense`` builds ``Tensor`` wrappers, allocates an
output for the matmul, another for the bias add, and each ``Activation``
allocates again.  None of that bookkeeping depends on the input — only
on the *specialization key* ``(model, version, input shape, dtype,
batch_invariant)`` — so it can all be done once, ahead of time.

``compile_package`` traces a :class:`~repro.nas.package.SurrogatePackage`
through the declarative ``trace_spec`` hooks on :mod:`repro.nn.layers`
and partially evaluates the module tree into a :class:`CompiledPlan`: a
flat list of steps with the weights and biases captured as plain
``ndarray`` constants, each adjacent Dense/Activation pair fused into a
single gemm step, and scratch buffers preallocated per thread and
reused across calls.  Only the autograd/Python overhead is compiled
away — **every floating-point operation runs in the exact order the
interpreted path runs it**, so under :func:`repro.nn.batch_invariant`
the compiled outputs are bit-identical to ``package.predict``:

* ``x @ W`` executes as the same ``np.einsum("ij,jk->ik")`` (invariant
  mode) or BLAS ``matmul`` (fast mode), merely writing into a
  preallocated ``out`` instead of allocating;
* ``+ bias`` is the same broadcast add, in place;
* activations replay the exact expressions of
  :class:`repro.nn.tensor.Tensor` (e.g. sigmoid's clip/negate/exp/add/
  divide chain) element-wise in place.

No algebraic rewrites (no ``W1 @ W2`` folding) are performed — those
would change summation orders and break the bit-identity guarantee the
micro-batching server is built on.

A module that returns ``None`` from ``trace_spec`` (the CNN family, CSR
sparse paths) raises :class:`UntraceableModelError`; the orchestrator
catches it and keeps serving that model on the interpreted path.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "UntraceableModelError",
    "CompiledPlan",
    "compile_package",
    "plan_payload",
    "plan_from_payload",
]

#: bump when the step semantics or payload layout change — the schema
#: version is folded into every cache key, so old persisted plans are
#: invalidated for free instead of misinterpreted
PLAN_SCHEMA_VERSION = 1

#: matches the default of :meth:`repro.nn.tensor.Tensor.leaky_relu`
_LEAKY_SLOPE = 0.01


class UntraceableModelError(TypeError):
    """The module tree holds a layer with no ``trace_spec`` (CNNs, etc.)."""


def _act_inplace(kind: str, out: np.ndarray) -> None:
    """Apply an activation in place, replaying the Tensor op expressions."""
    if kind == "relu":
        np.multiply(out, out > 0, out=out)
    elif kind == "tanh":
        np.tanh(out, out=out)
    elif kind == "sigmoid":
        # 1 / (1 + exp(-clip(x))) with the same clip bounds as Tensor.sigmoid
        np.clip(out, -60.0, 60.0, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)
    elif kind == "leaky_relu":
        np.multiply(out, np.where(out > 0, 1.0, _LEAKY_SLOPE), out=out)
    # identity: nothing to do


class _GemmStep:
    """Fused ``y = act(x @ W + b)`` with weights folded as constants.

    The fusion removes three intermediate allocations per layer pair but
    keeps the float ops verbatim: einsum/matmul into ``out``, in-place
    broadcast bias add, in-place activation.
    """

    __slots__ = ("weight", "bias", "act", "out_dim")

    def __init__(self, weight: np.ndarray, bias: np.ndarray, act: str = "identity") -> None:
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.bias = np.ascontiguousarray(bias, dtype=np.float64)
        self.act = act
        self.out_dim = int(self.weight.shape[1])

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        if invariant:
            # fixed per-element reduction order: rows are independent of
            # batch size, exactly like the interpreted batch_invariant path
            np.einsum("ij,jk->ik", x, self.weight, out=out)
        else:
            np.matmul(x, self.weight, out=out)
        out += self.bias
        _act_inplace(self.act, out)


class _ActStep:
    """A standalone activation (no preceding Dense to fuse into)."""

    __slots__ = ("act", "out_dim")

    def __init__(self, act: str, out_dim: int) -> None:
        self.act = act
        self.out_dim = int(out_dim)

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        if self.act == "relu":
            np.multiply(x, x > 0, out=out)
        elif self.act == "tanh":
            np.tanh(x, out=out)
        elif self.act == "sigmoid":
            np.clip(x, -60.0, 60.0, out=out)
            np.negative(out, out=out)
            np.exp(out, out=out)
            out += 1.0
            np.divide(1.0, out, out=out)
        elif self.act == "leaky_relu":
            np.multiply(x, np.where(x > 0, 1.0, _LEAKY_SLOPE), out=out)
        else:
            np.copyto(out, x)


class _ResidualStep:
    """``y = inner(x) + x`` with the inner chain compiled recursively.

    The inner steps write their final result straight into ``out`` and
    the skip connection is added in place — the same elementwise add the
    interpreted ``Residual.forward`` performs.
    """

    __slots__ = ("steps", "out_dim", "_tls")

    def __init__(self, steps: list, out_dim: int) -> None:
        self.steps = list(steps)
        self.out_dim = int(out_dim)
        self._tls = threading.local()

    def run(self, x: np.ndarray, out: np.ndarray, invariant: bool) -> None:
        if not self.steps:
            np.add(x, x, out=out)  # Residual(identity): inner(x) + x == 2x
            return
        _run_steps(self.steps, x, out, invariant, self._tls)
        out += x


def _scratch_buffers(tls: threading.local, steps: list, batch: int) -> list:
    """Per-thread intermediate buffers, regrown when a deeper batch arrives.

    Buffers are thread-local so concurrent serving workers never share a
    scratch array — the executor takes no lock on the hot path.
    """
    bufs = getattr(tls, "bufs", None)
    if bufs is None or any(b.shape[0] < batch for b in bufs):
        capacity = max(batch, 32)
        bufs = [np.empty((capacity, step.out_dim)) for step in steps[:-1]]
        tls.bufs = bufs
    return bufs


def _run_steps(
    steps: list,
    x: np.ndarray,
    out: np.ndarray,
    invariant: bool,
    tls: threading.local,
) -> None:
    """Run a step chain: intermediates into scratch, the last into ``out``."""
    batch = x.shape[0]
    bufs = _scratch_buffers(tls, steps, batch)
    cur = x
    last = len(steps) - 1
    for i, step in enumerate(steps):
        target = out if i == last else bufs[i][:batch]
        step.run(cur, target, invariant)
        cur = target


class CompiledPlan:
    """A specialized, flat executable form of one surrogate package.

    ``predict`` replicates the :meth:`SurrogatePackage.predict` contract
    exactly — 1-D input is one sample returning ``(output_dim,)``, 2-D
    input is a stacked batch, wrong feature counts raise ``ValueError``
    — so the orchestrator can substitute a plan for the package without
    any caller noticing (except in the latency histograms).

    The plan is specialized on ``batch_invariant`` at compile time; it
    does not consult the thread-local mode at run time.  The returned
    output array is freshly allocated per call (never a view of the
    plan's scratch), so callers may keep or mutate it freely.
    """

    def __init__(
        self,
        steps: list,
        *,
        input_dim: int,
        output_dim: int,
        batch_invariant: bool = True,
    ) -> None:
        self.steps = list(steps)
        self.input_dim = int(input_dim)
        self.output_dim = int(output_dim)
        self.batch_invariant = bool(batch_invariant)
        self._tls = threading.local()

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        single = x.ndim == 1
        if x.shape[-1] != self.input_dim:
            raise ValueError(
                f"surrogate expects {self.input_dim} input features, "
                f"got input of shape {x.shape}"
            )
        x2 = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float64)
        if not self.steps:
            out = x2.copy()
        else:
            out = np.empty((x2.shape[0], self.output_dim))
            _run_steps(self.steps, x2, out, self.batch_invariant, self._tls)
        return out[0] if single else out

    __call__ = predict

    def num_steps(self) -> int:
        """Flat step count (residual inners included), for introspection."""

        def count(steps: list) -> int:
            total = 0
            for step in steps:
                total += 1
                if isinstance(step, _ResidualStep):
                    total += count(step.steps)
            return total

        return count(self.steps)


# -- tracing ---------------------------------------------------------------


def _flatten_spec(module) -> list:
    """Lower a module tree to a flat op list via its ``trace_spec`` hooks."""
    spec = module.trace_spec() if hasattr(module, "trace_spec") else None
    if spec is None:
        raise UntraceableModelError(
            f"{type(module).__name__} declares no trace_spec; "
            "this model serves on the interpreted path"
        )
    kind = spec[0]
    if kind == "sequential":
        ops: list = []
        for child in spec[1]:
            ops.extend(_flatten_spec(child))
        return ops
    if kind == "residual":
        return [("residual", _flatten_spec(spec[1]))]
    if kind in ("dense", "activation"):
        return [spec]
    raise UntraceableModelError(f"unknown trace spec kind {kind!r}")


def _build_steps(ops: list, in_dim: int) -> list:
    """Partial evaluation: fold constants, fuse Dense+Activation pairs."""
    steps: list = []
    dim = in_dim
    i = 0
    while i < len(ops):
        op = ops[i]
        if op[0] == "dense":
            act = "identity"
            if i + 1 < len(ops) and ops[i + 1][0] == "activation":
                act = ops[i + 1][1]
                i += 1
            step = _GemmStep(op[1], op[2], act)
            steps.append(step)
            dim = step.out_dim
        elif op[0] == "activation":
            steps.append(_ActStep(op[1], dim))
        else:  # residual (the only other kind _flatten_spec emits)
            steps.append(_ResidualStep(_build_steps(op[1], dim), dim))
        i += 1
    return steps


def compile_package(package, *, batch_invariant: bool = True) -> CompiledPlan:
    """Trace and partially evaluate a surrogate package into a plan.

    The optional autoencoder's encoder is traced first (dense batches
    run it through the same Dense/Activation layers), then the
    surrogate model; the whole chain compiles into one flat plan.
    Raises :class:`UntraceableModelError` for module trees that expose
    no ``trace_spec`` (e.g. the CNN family).
    """
    ops: list = []
    if package.autoencoder is not None:
        ops.extend(_flatten_spec(package.autoencoder.encoder))
    ops.extend(_flatten_spec(package.model))
    steps = _build_steps(ops, package.input_dim)
    return CompiledPlan(
        steps,
        input_dim=package.input_dim,
        output_dim=package.output_dim,
        batch_invariant=batch_invariant,
    )


# -- persistence payload ----------------------------------------------------


def plan_payload(plan: CompiledPlan) -> tuple[dict, dict]:
    """Lower a plan to ``(json-safe meta, arrays)`` for the npz codec."""
    arrays: dict[str, np.ndarray] = {}

    def encode(steps: list, prefix: str) -> list:
        encoded = []
        for i, step in enumerate(steps):
            tag = f"{prefix}{i}"
            if isinstance(step, _GemmStep):
                arrays[f"w_{tag}"] = step.weight
                arrays[f"b_{tag}"] = step.bias
                encoded.append({"kind": "gemm", "act": step.act, "id": tag})
            elif isinstance(step, _ActStep):
                encoded.append({"kind": "act", "act": step.act, "dim": step.out_dim})
            else:
                encoded.append(
                    {
                        "kind": "residual",
                        "dim": step.out_dim,
                        "steps": encode(step.steps, tag + "_"),
                    }
                )
        return encoded

    meta = {
        "schema": PLAN_SCHEMA_VERSION,
        "input_dim": plan.input_dim,
        "output_dim": plan.output_dim,
        "batch_invariant": plan.batch_invariant,
        "steps": encode(plan.steps, "s"),
    }
    return meta, arrays


def plan_from_payload(meta: dict, arrays: dict) -> CompiledPlan:
    """Rebuild a plan from a persisted payload (float64 arrays round-trip
    exactly through npz, so a disk hit is bit-identical to the plan it
    memoizes)."""
    if meta.get("schema") != PLAN_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported plan schema {meta.get('schema')!r} "
            f"(this build executes schema {PLAN_SCHEMA_VERSION})"
        )

    def decode(specs: list) -> list:
        steps: list = []
        for spec in specs:
            if spec["kind"] == "gemm":
                steps.append(
                    _GemmStep(
                        arrays[f"w_{spec['id']}"],
                        arrays[f"b_{spec['id']}"],
                        spec["act"],
                    )
                )
            elif spec["kind"] == "act":
                steps.append(_ActStep(spec["act"], spec["dim"]))
            else:
                steps.append(_ResidualStep(decode(spec["steps"]), spec["dim"]))
        return steps

    return CompiledPlan(
        decode(meta["steps"]),
        input_dim=meta["input_dim"],
        output_dim=meta["output_dim"],
        batch_invariant=meta["batch_invariant"],
    )
