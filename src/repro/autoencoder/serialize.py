"""Autoencoder persistence: thin wrappers over the registry codecs.

Historically every consumer serialized autoencoders ad hoc with its own
``np.savez`` layout; the format now has exactly one definition in
:mod:`repro.registry.formats`.  A saved file is self-describing (embedded
constructor meta + parameter arrays), and loading also accepts the two
legacy layouts (bare ``param_i`` / ``ae_param_i`` archives) when given an
already-constructed model.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..registry.formats import (
    load_autoencoder_params,
    read_autoencoder_npz,
    write_autoencoder_npz,
)
from .model import Autoencoder

__all__ = ["save_autoencoder", "load_autoencoder", "load_autoencoder_params"]


def save_autoencoder(
    ae: Autoencoder,
    path: Union[str, Path],
    *,
    sigma: Optional[float] = None,
) -> Path:
    """Persist ``ae`` (params + rebuild meta, optional recorded σ_y)."""
    return write_autoencoder_npz(ae, path, sigma=sigma)


def load_autoencoder(path: Union[str, Path]) -> Autoencoder:
    """Rebuild an autoencoder saved by :func:`save_autoencoder`."""
    ae, _meta = read_autoencoder_npz(path)
    return ae
