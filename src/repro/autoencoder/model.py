"""Customized autoencoder for sparse HPC inputs (§4).

The encoder is *hourglass-shaped* (widths shrink geometrically from the
input dimension to the latent dimension) and the decoder is *horn-shaped*
(the mirror image), per §4.1.  The customizations of §4.2:

* ``sparse_input=True`` makes the first encoder layer a
  :class:`~repro.nn.layers.SparseDense`, so online feature reduction
  consumes CSR matrices directly — no decompression, no dense blow-up;
* training supports gradient checkpointing (see
  :mod:`repro.autoencoder.training`);
* reconstruction quality is quantified element-wise with σ_y (Eqn 1,
  :func:`repro.perf.metrics.reconstruction_similarity`) because encoder
  outputs alone (different size than the input) cannot be compared — the
  decoder's same-size reconstruction can.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..nn.layers import Activation, Dense, Module, Sequential, SparseDense
from ..nn.tensor import Tensor, no_grad
from ..sparse import CSRMatrix
from ..perf.metrics import reconstruction_similarity

__all__ = ["Autoencoder", "hourglass_widths"]


def hourglass_widths(input_dim: int, latent_dim: int, depth: int) -> list[int]:
    """Geometrically interpolated layer widths from input to latent.

    ``depth`` counts the hidden layers of the encoder including the latent
    layer; the decoder mirrors the list.
    """
    if input_dim < 1 or latent_dim < 1:
        raise ValueError("dimensions must be positive")
    if latent_dim > input_dim:
        raise ValueError("latent dimension must not exceed the input dimension")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if depth == 1:
        return [latent_dim]
    ratio = (latent_dim / input_dim) ** (1.0 / depth)
    widths = [max(latent_dim, int(round(input_dim * ratio ** (i + 1)))) for i in range(depth)]
    widths[-1] = latent_dim
    # enforce monotone shrink so the shape really is an hourglass
    for i in range(1, depth):
        widths[i] = min(widths[i], widths[i - 1])
    return widths


class Autoencoder(Module):
    """Encoder/decoder pair used for feature reduction."""

    def __init__(
        self,
        input_dim: int,
        latent_dim: int,
        *,
        depth: int = 2,
        activation: str = "relu",
        sparse_input: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.input_dim = int(input_dim)
        self.latent_dim = int(latent_dim)
        self.sparse_input = bool(sparse_input)
        self.activation = activation
        widths = hourglass_widths(self.input_dim, self.latent_dim, depth)

        encoder_layers: list[Module] = []
        prev = self.input_dim
        for i, width in enumerate(widths):
            if i == 0 and self.sparse_input:
                encoder_layers.append(SparseDense(prev, width, rng))
            else:
                encoder_layers.append(Dense(prev, width, rng, activation_hint=activation))
            if i < len(widths) - 1:
                encoder_layers.append(Activation(activation))
            prev = width
        self.encoder = Sequential(encoder_layers)

        decoder_layers: list[Module] = []
        mirror = list(reversed(widths[:-1])) + [self.input_dim]
        prev = self.latent_dim
        for i, width in enumerate(mirror):
            decoder_layers.append(Dense(prev, width, rng, activation_hint=activation))
            if i < len(mirror) - 1:
                decoder_layers.append(Activation(activation))
            prev = width
        self.decoder = Sequential(decoder_layers)

    # -- forward paths -----------------------------------------------------

    def forward(self, x: Union[Tensor, CSRMatrix]) -> Tensor:
        return self.decoder(self.encoder(x))

    def encode(self, x: Union[np.ndarray, CSRMatrix]) -> np.ndarray:
        """Online feature reduction: raw input -> latent features.

        Accepts a CSR batch directly when ``sparse_input`` is set — the
        paper's "painless support for sparse matrices".
        """
        with no_grad():
            if isinstance(x, CSRMatrix):
                if not self.sparse_input:
                    raise TypeError(
                        "this autoencoder was built without sparse_input; "
                        "pass a dense array or rebuild with sparse_input=True"
                    )
                return self.encoder(x).data
            return self.encoder(Tensor(np.atleast_2d(np.asarray(x, dtype=np.float64)))).data

    def decode(self, z: np.ndarray) -> np.ndarray:
        with no_grad():
            return self.decoder(Tensor(np.atleast_2d(np.asarray(z, dtype=np.float64)))).data

    def reconstruct(self, x: Union[np.ndarray, CSRMatrix]) -> np.ndarray:
        return self.decode(self.encode(x))

    # -- quality API ----------------------------------------------------------

    def evl(self, inputs: Union[np.ndarray, CSRMatrix], mu: float = 0.10) -> float:
        """Quality degradation of the reduction on ``inputs`` (Eqn 1).

        This is the paper's ``Autoencoder.evl(#inputs, #compaction)`` API:
        it reconstructs the reduced features and reports σ_y, the fraction
        of elements whose reconstruction error exceeds ``mu * |x_i|``.
        Lower is better; 0.0 is a lossless encoding at tolerance ``mu``.
        """
        dense = inputs.to_dense() if isinstance(inputs, CSRMatrix) else np.atleast_2d(inputs)
        recon = self.reconstruct(inputs)
        return reconstruction_similarity(dense, recon, mu=mu)

    def flops(self, batch: int = 1) -> int:
        return self.encoder.flops(batch) + self.decoder.flops(batch)

    def encode_flops(self, batch: int = 1) -> int:
        """Online cost: only the encoder runs during serving."""
        return self.encoder.flops(batch)
