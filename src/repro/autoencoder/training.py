"""Error-bounded autoencoder training with gradient checkpointing (§4.2/§6.2).

The trainer minimizes reconstruction MSE while monitoring σ_y (Eqn 1) on a
validation split after every epoch; training stops as soon as the encoding
quality meets the user's bound (Table 1's ``encodingLoss``), or when the
epoch budget runs out.  With ``gradient_checkpointing=True`` both halves of
the autoencoder are wrapped in :class:`~repro.nn.checkpoint.CheckpointSequential`,
trading a second forward pass for not storing interior activations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.checkpoint import CheckpointSequential
from ..nn.losses import mse_loss
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from ..extract.features import batch_to_csr
from ..perf.metrics import reconstruction_similarity
from .model import Autoencoder

__all__ = ["AETrainConfig", "AETrainResult", "train_autoencoder"]


@dataclass(frozen=True)
class AETrainConfig:
    """Autoencoder training knobs."""

    num_epochs: int = 100
    batch_size: int = 32
    lr: float = 1e-3
    train_ratio: float = 0.8
    encoding_loss_bound: float = 0.10   # acceptable sigma_y (Table 1 encodingLoss)
    sigma_mu: float = 0.10              # element tolerance inside Eqn 1
    gradient_checkpointing: bool = False
    checkpoint_segments: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.train_ratio <= 1.0:
            raise ValueError("train_ratio must be in (0, 1]")
        if not 0.0 <= self.encoding_loss_bound <= 1.0:
            raise ValueError("encoding_loss_bound must be in [0, 1]")


@dataclass
class AETrainResult:
    """Loss and σ_y histories plus the stopping reason."""

    train_losses: list[float] = field(default_factory=list)
    sigma_history: list[float] = field(default_factory=list)
    final_sigma: float = 1.0
    epochs_run: int = 0
    met_bound: bool = False


def train_autoencoder(
    ae: Autoencoder,
    x: np.ndarray,
    config: AETrainConfig = AETrainConfig(),
) -> AETrainResult:
    """Train ``ae`` to reconstruct the rows of ``x``.

    When the autoencoder has a sparse first layer, each mini-batch is
    compressed to CSR before the forward pass, so the sparse code path is
    exercised during training exactly as it will be online.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    if x.shape[1] != ae.input_dim:
        raise ValueError(f"expected {ae.input_dim} features, got {x.shape[1]}")
    if x.shape[0] < 2:
        raise ValueError("need at least two samples to train an autoencoder")

    rng = np.random.default_rng(config.seed)
    perm = rng.permutation(x.shape[0])
    cut = max(1, min(x.shape[0] - 1, int(round(x.shape[0] * config.train_ratio))))
    train_idx, val_idx = perm[:cut], perm[cut:]

    if config.gradient_checkpointing:
        encoder = CheckpointSequential(ae.encoder, config.checkpoint_segments)
        decoder = CheckpointSequential(ae.decoder, config.checkpoint_segments)
    else:
        encoder, decoder = ae.encoder, ae.decoder

    def run_batch(batch: np.ndarray) -> Tensor:
        if ae.sparse_input:
            latent = encoder(batch_to_csr(batch))
        else:
            latent = encoder(Tensor(batch))
        return decoder(latent)

    optimizer = Adam(list(ae.parameters()), lr=config.lr)
    result = AETrainResult()
    val = x[val_idx] if val_idx.size else x[train_idx]

    for epoch in range(config.num_epochs):
        order = rng.permutation(train_idx)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, order.size, config.batch_size):
            batch = x[order[start : start + config.batch_size]]
            optimizer.zero_grad()
            recon = run_batch(batch)
            loss = mse_loss(recon, Tensor(batch))
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        result.train_losses.append(epoch_loss / max(batches, 1))

        with no_grad():
            recon_val = ae.reconstruct(val)
        sigma = reconstruction_similarity(val, recon_val, mu=config.sigma_mu)
        result.sigma_history.append(sigma)
        result.final_sigma = sigma
        result.epochs_run = epoch + 1
        if sigma <= config.encoding_loss_bound:
            result.met_bound = True
            break

    return result
