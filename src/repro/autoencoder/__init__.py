"""Customized autoencoder for sparse-input feature reduction (paper §4)."""

from .model import Autoencoder, hourglass_widths
from .training import AETrainConfig, AETrainResult, train_autoencoder
from .serialize import load_autoencoder, save_autoencoder

__all__ = [
    "Autoencoder",
    "hourglass_widths",
    "AETrainConfig",
    "AETrainResult",
    "train_autoencoder",
    "load_autoencoder",
    "save_autoencoder",
]
