"""Synthetic sparse-problem generators.

The paper evaluates on NPB CG-class sparse systems.  NPB CG builds its test
matrix by summing random sparse outer products and shifting the diagonal so
that the matrix is symmetric positive definite with a known eigenvalue
spread.  ``npb_cg_matrix`` follows that recipe at reduced scale;
``random_sparse``/``banded_spd`` cover the other solver apps (AMG, MG) and
the property tests.
"""

from __future__ import annotations

import numpy as np

from .formats import COOMatrix, CSRMatrix, from_dense

__all__ = ["random_sparse", "banded_spd", "npb_cg_matrix", "poisson_1d", "poisson_2d"]


def random_sparse(
    rows: int,
    cols: int,
    density: float,
    rng: np.random.Generator,
    *,
    fmt: str = "csr",
):
    """Uniform-random sparse matrix with roughly ``density`` fill."""
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    nnz = int(round(rows * cols * density))
    flat = rng.choice(rows * cols, size=min(nnz, rows * cols), replace=False)
    r, c = np.divmod(flat.astype(np.int64), cols)
    data = rng.standard_normal(r.size)
    coo = COOMatrix(r, c, data, (rows, cols))
    if fmt == "coo":
        return coo
    if fmt == "csr":
        return coo.to_csr()
    if fmt == "csc":
        return coo.to_csc()
    raise ValueError(f"unknown sparse format {fmt!r}")


def banded_spd(n: int, bandwidth: int, rng: np.random.Generator) -> CSRMatrix:
    """Symmetric positive-definite banded matrix (MG/AMG-style stencils)."""
    dense = np.zeros((n, n))
    for offset in range(1, bandwidth + 1):
        vals = rng.uniform(-1.0, 0.0, size=n - offset)
        dense[np.arange(n - offset), np.arange(offset, n)] = vals
        dense[np.arange(offset, n), np.arange(n - offset)] = vals
    # diagonally dominant => SPD
    dense[np.diag_indices(n)] = np.abs(dense).sum(axis=1) + 1.0
    return from_dense(dense, "csr")


def npb_cg_matrix(
    n: int,
    nonzer: int,
    rng: np.random.Generator,
    *,
    shift: float = 10.0,
) -> CSRMatrix:
    """NPB-CG style sparse SPD matrix: sum of sparse outer products + shift.

    ``nonzer`` controls the nonzeros per generated sparse vector, mirroring
    the NPB parameter of the same name.
    """
    dense = np.zeros((n, n))
    for _ in range(n // 2 + 1):
        idx = rng.choice(n, size=min(nonzer, n), replace=False)
        vals = rng.uniform(-0.5, 0.5, size=idx.size)
        dense[np.ix_(idx, idx)] += np.outer(vals, vals)
    dense[np.diag_indices(n)] += shift
    return from_dense(dense, "csr")


def poisson_1d(n: int) -> CSRMatrix:
    """1-D Poisson (tridiagonal [-1, 2, -1]) operator, the MG test problem."""
    dense = 2.0 * np.eye(n)
    off = np.arange(n - 1)
    dense[off, off + 1] = -1.0
    dense[off + 1, off] = -1.0
    return from_dense(dense, "csr")


def poisson_2d(nx: int, ny: int) -> CSRMatrix:
    """2-D Poisson 5-point stencil on an ``nx`` x ``ny`` grid (AMG test)."""
    n = nx * ny
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []

    def add(i: int, j: int, v: float) -> None:
        rows.append(i)
        cols.append(j)
        vals.append(v)

    for y in range(ny):
        for x in range(nx):
            i = y * nx + x
            add(i, i, 4.0)
            if x > 0:
                add(i, i - 1, -1.0)
            if x < nx - 1:
                add(i, i + 1, -1.0)
            if y > 0:
                add(i, i - nx, -1.0)
            if y < ny - 1:
                add(i, i + nx, -1.0)
    coo = COOMatrix(np.array(rows), np.array(cols), np.array(vals), (n, n))
    return coo.to_csr()
