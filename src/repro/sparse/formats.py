"""Sparse matrix formats implemented from scratch.

Auto-HPCnet (§1, §4.2) observes that HPC inputs are usually sparse matrices
stored as COO / CSR / CSC, while DNN frameworks only consume dense arrays, so
every training or inference call would otherwise pay an unroll-to-dense
transformation in both time and memory (the paper reports a 14x size blow-up
for the NPB-CG matrix).  This module provides those three formats with
conversions, dense round-trips and the accounting (`nnz`, `density`,
`dense_blowup`) that the evaluation benches report.

The formats are deliberately self-contained (no ``scipy.sparse``): the
surrogate framework's sparse code path — CSR matmul in the first autoencoder
layer — is part of the system under reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["COOMatrix", "CSRMatrix", "CSCMatrix", "from_dense"]


def _check_shape(shape: tuple[int, int]) -> tuple[int, int]:
    rows, cols = int(shape[0]), int(shape[1])
    if rows < 0 or cols < 0:
        raise ValueError(f"shape must be non-negative, got {shape!r}")
    return rows, cols


@dataclass(frozen=True)
class COOMatrix:
    """Coordinate-list sparse matrix: parallel (row, col, value) arrays."""

    row: np.ndarray
    col: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        row = np.asarray(self.row, dtype=np.int64)
        col = np.asarray(self.col, dtype=np.int64)
        data = np.asarray(self.data, dtype=np.float64)
        if not (row.shape == col.shape == data.shape) or row.ndim != 1:
            raise ValueError("row, col and data must be equal-length 1-D arrays")
        shape = _check_shape(self.shape)
        if row.size and (row.min() < 0 or row.max() >= shape[0]):
            raise ValueError("row index out of bounds")
        if col.size and (col.min() < 0 or col.max() >= shape[1]):
            raise ValueError("col index out of bounds")
        object.__setattr__(self, "row", row)
        object.__setattr__(self, "col", col)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "shape", shape)

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def nbytes(self) -> int:
        """Storage footprint of the compressed representation."""
        return self.row.nbytes + self.col.nbytes + self.data.nbytes

    def dense_nbytes(self) -> int:
        """Storage footprint after unrolling to a dense float64 matrix."""
        return self.shape[0] * self.shape[1] * 8

    def dense_blowup(self) -> float:
        """Size amplification paid by unrolling (paper: ~14x for NPB CG)."""
        compressed = self.nbytes()
        return self.dense_nbytes() / compressed if compressed else float("inf")

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        # duplicate coordinates accumulate, matching standard COO semantics
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def sum_duplicates(self) -> "COOMatrix":
        """Canonicalize: sort by (row, col) and merge duplicate coordinates."""
        if self.nnz == 0:
            return self
        order = np.lexsort((self.col, self.row))
        row, col, data = self.row[order], self.col[order], self.data[order]
        keep = np.ones(row.size, dtype=bool)
        keep[1:] = (row[1:] != row[:-1]) | (col[1:] != col[:-1])
        idx = np.cumsum(keep) - 1
        merged = np.zeros(int(idx[-1]) + 1, dtype=np.float64)
        np.add.at(merged, idx, data)
        return COOMatrix(row[keep], col[keep], merged, self.shape)

    def to_csr(self) -> "CSRMatrix":
        canonical = self.sum_duplicates()
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, canonical.row + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(indptr, canonical.col, canonical.data, self.shape)

    def to_csc(self) -> "CSCMatrix":
        return self.to_csr().to_csc()

    def transpose(self) -> "COOMatrix":
        return COOMatrix(self.col, self.row, self.data, (self.shape[1], self.shape[0]))


@dataclass(frozen=True)
class CSRMatrix:
    """Compressed Sparse Row matrix (a.k.a. CRS in the paper)."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        indptr = np.asarray(self.indptr, dtype=np.int64)
        indices = np.asarray(self.indices, dtype=np.int64)
        data = np.asarray(self.data, dtype=np.float64)
        shape = _check_shape(self.shape)
        if indptr.ndim != 1 or indptr.size != shape[0] + 1:
            raise ValueError("indptr must have length nrows + 1")
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        if indices.shape != data.shape or indices.ndim != 1:
            raise ValueError("indices and data must be equal-length 1-D arrays")
        if int(indptr[-1]) != indices.size:
            raise ValueError("indptr[-1] must equal nnz")
        if indices.size and (indices.min() < 0 or indices.max() >= shape[1]):
            raise ValueError("column index out of bounds")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "shape", shape)

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    def dense_nbytes(self) -> int:
        return self.shape[0] * self.shape[1] * 8

    def dense_blowup(self) -> float:
        compressed = self.nbytes()
        return self.dense_nbytes() / compressed if compressed else float("inf")

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` (views, not copies)."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr))
        return COOMatrix(rows, self.indices.copy(), self.data.copy(), self.shape)

    def to_csc(self) -> "CSCMatrix":
        coo = self.to_coo()
        # build by sorting on (col, row)
        order = np.lexsort((coo.row, coo.col))
        row, col, data = coo.row[order], coo.col[order], coo.data[order]
        indptr = np.zeros(self.shape[1] + 1, dtype=np.int64)
        np.add.at(indptr, col + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSCMatrix(indptr, row, data, self.shape)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix × dense vector, no densification."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"expected vector of length {self.shape[1]}, got {x.shape}")
        products = self.data * x[self.indices]
        out = np.zeros(self.shape[0], dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        np.add.at(out, rows, products)
        return out

    def matmul_dense(self, other: np.ndarray) -> np.ndarray:
        """CSR × dense matrix -> dense, without unrolling self.

        This is the "TensorFlow embedding API" equivalent used by the first
        autoencoder layer (§4.2): the multiplication is performed directly on
        the compressed representation and only the (small) result is dense.
        """
        other = np.asarray(other, dtype=np.float64)
        if other.ndim != 2 or other.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: {self.shape} @ {other.shape}"
            )
        out = np.zeros((self.shape[0], other.shape[1]), dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        # gather the needed rows of `other`, scale by values, scatter-add
        contrib = self.data[:, None] * other[self.indices]
        np.add.at(out, rows, contrib)
        return out

    def transpose(self) -> "CSRMatrix":
        csc = self.to_csc()
        return CSRMatrix(csc.indptr, csc.indices, csc.data,
                         (self.shape[1], self.shape[0]))

    def diagonal(self) -> np.ndarray:
        n = min(self.shape)
        diag = np.zeros(n, dtype=np.float64)
        for i in range(n):
            cols, vals = self.row_slice(i)
            hit = np.nonzero(cols == i)[0]
            if hit.size:
                diag[i] = float(vals[hit].sum())
        return diag


@dataclass(frozen=True)
class CSCMatrix:
    """Compressed Sparse Column matrix."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        indptr = np.asarray(self.indptr, dtype=np.int64)
        indices = np.asarray(self.indices, dtype=np.int64)
        data = np.asarray(self.data, dtype=np.float64)
        shape = _check_shape(self.shape)
        if indptr.ndim != 1 or indptr.size != shape[1] + 1:
            raise ValueError("indptr must have length ncols + 1")
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        if indices.shape != data.shape or indices.ndim != 1:
            raise ValueError("indices and data must be equal-length 1-D arrays")
        if int(indptr[-1]) != indices.size:
            raise ValueError("indptr[-1] must equal nnz")
        if indices.size and (indices.min() < 0 or indices.max() >= shape[0]):
            raise ValueError("row index out of bounds")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "shape", shape)

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        cols = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        out[self.indices, cols] = self.data
        return out

    def to_coo(self) -> COOMatrix:
        cols = np.repeat(np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr))
        return COOMatrix(self.indices.copy(), cols, self.data.copy(), self.shape)

    def to_csr(self) -> CSRMatrix:
        return self.to_coo().to_csr()


def from_dense(matrix: np.ndarray, fmt: str = "csr"):
    """Compress a dense matrix into ``fmt`` ("coo", "csr" or "csc")."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("from_dense expects a 2-D array")
    row, col = np.nonzero(matrix)
    coo = COOMatrix(row, col, matrix[row, col], matrix.shape)
    if fmt == "coo":
        return coo
    if fmt == "csr":
        return coo.to_csr()
    if fmt == "csc":
        return coo.to_csc()
    raise ValueError(f"unknown sparse format {fmt!r}")
