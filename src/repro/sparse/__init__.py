"""Sparse matrix substrate: COO / CSR / CSC formats built from scratch.

Public API::

    from repro.sparse import COOMatrix, CSRMatrix, CSCMatrix, from_dense
    from repro.sparse import random_sparse, npb_cg_matrix, poisson_2d
"""

from .formats import COOMatrix, CSCMatrix, CSRMatrix, from_dense
from .generate import banded_spd, npb_cg_matrix, poisson_1d, poisson_2d, random_sparse
from .precond import ICPreconditioner, JacobiPreconditioner, SSORPreconditioner, pcg

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "from_dense",
    "random_sparse",
    "banded_spd",
    "npb_cg_matrix",
    "poisson_1d",
    "poisson_2d",
    "ICPreconditioner",
    "JacobiPreconditioner",
    "SSORPreconditioner",
    "pcg",
]
