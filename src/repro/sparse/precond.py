"""Sparse preconditioners for the iterative-solver applications.

The paper's Type-I/III workloads (CG, AMG, PCG) are preconditioned Krylov
solves; this module provides the standard preconditioner family over our
CSR format so the apps (and users replacing their own solvers) can build
realistic region variants:

* :class:`JacobiPreconditioner` — M = diag(A);
* :class:`SSORPreconditioner` — symmetric successive over-relaxation sweep;
* :class:`ICPreconditioner` — zero-fill incomplete Cholesky, IC(0).

Each exposes ``apply(r) -> z`` (an approximation of ``A^{-1} r``), the
interface the PCG iteration consumes.
"""

from __future__ import annotations

import numpy as np

from .formats import CSRMatrix

__all__ = [
    "JacobiPreconditioner",
    "SSORPreconditioner",
    "ICPreconditioner",
    "pcg",
]


class JacobiPreconditioner:
    """Diagonal scaling: z = r / diag(A)."""

    def __init__(self, matrix: CSRMatrix) -> None:
        diag = matrix.diagonal()
        if np.any(diag == 0):
            raise ValueError("Jacobi preconditioner needs a nonzero diagonal")
        self._inv_diag = 1.0 / diag

    def apply(self, r: np.ndarray) -> np.ndarray:
        return self._inv_diag * r


class SSORPreconditioner:
    """Symmetric SOR sweep: M = (D/w + L) (w/(2-w)) D^{-1} (D/w + U)."""

    def __init__(self, matrix: CSRMatrix, omega: float = 1.0) -> None:
        if not 0.0 < omega < 2.0:
            raise ValueError("omega must be in (0, 2)")
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("SSOR needs a square matrix")
        self.matrix = matrix
        self.omega = omega
        self._diag = matrix.diagonal()
        if np.any(self._diag == 0):
            raise ValueError("SSOR needs a nonzero diagonal")

    def apply(self, r: np.ndarray) -> np.ndarray:
        n = self.matrix.shape[0]
        omega = self.omega
        # forward sweep: (D/w + L) y = r
        y = np.zeros(n)
        for i in range(n):
            cols, vals = self.matrix.row_slice(i)
            lower = cols < i
            acc = float(vals[lower] @ y[cols[lower]])
            y[i] = (r[i] - acc) * omega / self._diag[i]
        # scale: y <- D y * (2 - w) / w ... folded into the backward sweep
        y = y * self._diag * (2.0 - omega) / omega
        # backward sweep: (D/w + U) z = y
        z = np.zeros(n)
        for i in range(n - 1, -1, -1):
            cols, vals = self.matrix.row_slice(i)
            upper = cols > i
            acc = float(vals[upper] @ z[cols[upper]])
            z[i] = (y[i] - acc) * omega / self._diag[i]
        return z


class ICPreconditioner:
    """Incomplete Cholesky with zero fill-in, IC(0).

    Factors A ~= L L^T keeping L's sparsity equal to A's lower triangle;
    ``apply`` performs the two triangular solves.
    """

    def __init__(self, matrix: CSRMatrix) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("IC(0) needs a square matrix")
        n = matrix.shape[0]
        # dense working copy of the lower triangle (fine at app scale)
        a = matrix.to_dense()
        if not np.allclose(a, a.T, atol=1e-12):
            raise ValueError("IC(0) needs a symmetric matrix")
        pattern = (a != 0.0)
        lower = np.tril(a)
        for k in range(n):
            pivot = lower[k, k]
            if pivot <= 0:
                raise ValueError("IC(0) breakdown: non-positive pivot")
            lower[k, k] = np.sqrt(pivot)
            rows = np.nonzero(pattern[k + 1 :, k])[0] + k + 1
            lower[rows, k] /= lower[k, k]
            for j in rows:
                cols = np.nonzero(pattern[j, k + 1 : j + 1])[0] + k + 1
                lower[j, cols] -= lower[j, k] * lower[cols, k]
        self._lower = lower * np.tril(pattern)

    def apply(self, r: np.ndarray) -> np.ndarray:
        from scipy.linalg import solve_triangular

        y = solve_triangular(self._lower, r, lower=True)
        return solve_triangular(self._lower.T, y, lower=False)


def pcg(
    matrix: CSRMatrix,
    b: np.ndarray,
    preconditioner,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iters: int | None = None,
) -> tuple[np.ndarray, int]:
    """Preconditioned CG with a pluggable preconditioner; returns (x, iters)."""
    n = matrix.shape[0]
    x = np.zeros(n) if x0 is None else x0.copy()
    max_iters = max_iters or 4 * n
    r = b - matrix.matvec(x)
    z = preconditioner.apply(r)
    p = z.copy()
    rz = float(r @ z)
    for iteration in range(1, max_iters + 1):
        if np.linalg.norm(r) < tol:
            return x, iteration - 1
        ap = matrix.matvec(p)
        alpha = rz / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        z = preconditioner.apply(r)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return x, max_iters
