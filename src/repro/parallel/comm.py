"""SPMD communicator: an mpi4py-shaped parallel substrate.

The paper's applications run under OpenMP/MPI and its tooling parallelizes
wherever work is independent (DDDG construction §3.1; the N application
runs that generate training samples §6.1).  This module provides the
communication layer those pieces build on — a thread-backed communicator
with the mpi4py collective vocabulary:

    def work(comm):
        chunk = comm.scatter(all_chunks, root=0)
        local = process(chunk)
        return comm.gather(local, root=0)

    results = run_spmd(work, size=4)

Threads (not processes) back the ranks: the workloads are NumPy-heavy, so
the GIL is released inside the kernels, and thread ranks can share arrays
zero-copy the way MPI ranks share a node's memory.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

__all__ = ["Communicator", "run_spmd", "SpmdError"]


class SpmdError(RuntimeError):
    """Raised on collective misuse (wrong counts, mismatched roots)."""


class _SharedState:
    """State shared by all ranks of one SPMD execution."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.mailboxes = {
            (dst, tag): queue.Queue()
            for dst in range(size)
            for tag in range(8)
        }


@dataclass
class Communicator:
    """Per-rank handle (mpi4py ``Comm`` vocabulary, lowercase methods)."""

    rank: int
    size: int
    _state: _SharedState

    # -- rank info (mpi4py spellings) -----------------------------------------

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py parity
        return self.rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py parity
        return self.size

    # -- synchronization -------------------------------------------------------

    def barrier(self) -> None:
        self._state.barrier.wait()

    # -- point to point ----------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise SpmdError(f"dest {dest} out of range for size {self.size}")
        self._state.mailboxes[(dest, tag)].put((self.rank, obj))

    def recv(self, source: Optional[int] = None, tag: int = 0) -> Any:
        box = self._state.mailboxes[(self.rank, tag)]
        while True:
            sender, obj = box.get(timeout=30.0)
            if source is None or sender == source:
                return obj
            box.put((sender, obj))  # not for us in source-filtered mode

    # -- collectives ----------------------------------------------------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            for i in range(self.size):
                self._state.slots[i] = obj
        self.barrier()
        value = self._state.slots[self.rank]
        self.barrier()
        return value

    def scatter(self, seq: Optional[Sequence[Any]], root: int = 0) -> Any:
        if self.rank == root:
            if seq is None or len(seq) != self.size:
                raise SpmdError(
                    f"scatter needs exactly {self.size} items at the root"
                )
            for i, item in enumerate(seq):
                self._state.slots[i] = item
        self.barrier()
        value = self._state.slots[self.rank]
        self.barrier()
        return value

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        self._state.slots[self.rank] = obj
        self.barrier()
        result = list(self._state.slots) if self.rank == root else None
        self.barrier()
        return result

    def allgather(self, obj: Any) -> list:
        self._state.slots[self.rank] = obj
        self.barrier()
        result = list(self._state.slots)
        self.barrier()
        return result

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        everything = self.allgather(value)
        if op is None:
            total = everything[0]
            for item in everything[1:]:
                total = total + item
            return total
        total = everything[0]
        for item in everything[1:]:
            total = op(total, item)
        return total

    def reduce(self, value: Any, root: int = 0,
               op: Callable[[Any, Any], Any] = None) -> Any:
        result = self.allreduce(value, op)
        return result if self.rank == root else None


def run_spmd(fn: Callable[[Communicator], Any], size: int) -> list:
    """Run ``fn(comm)`` on ``size`` thread ranks; returns per-rank results.

    Any rank raising aborts the whole execution with that exception
    (MPI_Abort semantics, minus the core dump).
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    state = _SharedState(size)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []

    def worker(rank: int) -> None:
        comm = Communicator(rank=rank, size=size, _state=state)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            errors.append((rank, exc))
            state.barrier.abort()

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        rank, exc = errors[0]
        raise SpmdError(f"rank {rank} failed: {exc!r}") from exc
    return results
