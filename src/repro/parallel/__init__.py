"""Parallel substrate: SPMD communicator + work distribution helpers."""

from .comm import Communicator, SpmdError, run_spmd
from .pool import parallel_map, parallel_samples

__all__ = [
    "Communicator",
    "SpmdError",
    "run_spmd",
    "parallel_map",
    "parallel_samples",
]
