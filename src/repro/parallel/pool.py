"""Parallel helpers built on the SPMD communicator.

``parallel_map`` distributes independent work items over thread ranks
(static block decomposition, the classic MPI pattern), and
``parallel_samples`` applies it to the §3.1 training-sample generation —
running the region on many perturbed inputs concurrently.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from .. import obs
from ..extract.sampling import Perturbation, SampleGenerator, perturb_value
from .comm import Communicator, run_spmd

__all__ = ["parallel_map", "parallel_samples"]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int = 4,
) -> list:
    """Apply ``fn`` to every item using ``workers`` SPMD ranks.

    Results come back in input order.  With one worker (or one item) this
    degenerates to a plain loop.
    """
    items = list(items)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    workers = min(workers, max(len(items), 1))
    if workers == 1:
        return [fn(item) for item in items]

    def work(comm: Communicator) -> list[tuple[int, Any]]:
        mine = range(comm.rank, len(items), comm.size)   # cyclic decomposition
        with obs.span(
            "parallel.rank", rank=comm.rank, size=comm.size, items=len(mine)
        ):
            return [(i, fn(items[i])) for i in mine]

    per_rank = run_spmd(work, workers)
    ordered: list[Any] = [None] * len(items)
    for chunk in per_rank:
        for index, value in chunk:
            ordered[index] = value
    return ordered


def parallel_samples(
    generator: SampleGenerator,
    base_inputs: Mapping[str, Any],
    n_samples: int,
    *,
    perturbation: Perturbation = Perturbation(),
    rng: np.random.Generator | None = None,
    perturb_names: Sequence[str] | None = None,
    workers: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Parallel version of :meth:`SampleGenerator.generate`.

    The perturbed inputs are drawn *sequentially* from one generator (so the
    sample set is identical to the serial path, worker count not
    withstanding); only the region executions fan out.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    rng = rng or np.random.default_rng(0)
    targets = tuple(perturb_names or generator.input_schema.names)

    problems = []
    for _ in range(n_samples):
        sample_inputs = dict(base_inputs)
        for name in targets:
            sample_inputs[name] = perturb_value(sample_inputs[name], perturbation, rng)
        problems.append(sample_inputs)

    pairs = parallel_map(generator.run_once, problems, workers=workers)
    xs = np.stack([x for x, _ in pairs])
    ys = np.stack([y for _, y in pairs])
    return xs, ys
