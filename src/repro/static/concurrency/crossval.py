"""Static/dynamic cross-validation of the lock-order graph.

The static graph (:mod:`~.graph`) and the runtime recorder
(:class:`repro.obs.locks.LockOrderRecorder`) answer the same question —
in what order does this code acquire its locks — from independent
evidence, exactly like the region-I/O cross-validation in
:mod:`repro.static.crossval`:

* a **dynamic-only** edge means a running thread nested two locks in an
  order the analyzer never derived — a blind spot in the static model
  (an unmodeled call path, monkey-patching, locks passed around as
  values), reported as an **error** (CC401);
* a **static-only** edge means the analyzer sees a nesting the test
  traffic never exercised — untested lock ordering, reported as
  **info** (CC402) so coverage gaps are visible without failing CI.

Agreement (every recorded edge present in the static graph) is the
precondition for trusting the static cycle/deadlock verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..diagnostics import Diagnostic, Severity
from .graph import LockOrderGraph
from .rules import CC_RULES

__all__ = ["LockOrderCrossValidation", "cross_validate_lock_orders"]


@dataclass(frozen=True)
class LockOrderCrossValidation:
    """Both edge sets plus the disagreement diagnostics."""

    static_edges: tuple[tuple[str, str], ...]
    dynamic_edges: tuple[tuple[str, str], ...]
    diagnostics: tuple[Diagnostic, ...]

    @property
    def agrees(self) -> bool:
        """True when no dynamic edge escaped the static graph."""
        return not any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def summary(self) -> str:
        status = ("agree" if self.agrees
                  else f"{len([d for d in self.diagnostics if d.severity >= Severity.ERROR])} dynamic-only edge(s)")
        return (
            f"lock-order cross-validation: {status}; "
            f"static={len(self.static_edges)} edge(s) "
            f"dynamic={len(self.dynamic_edges)} edge(s)"
        )


def cross_validate_lock_orders(
    graph: LockOrderGraph,
    recorded: Mapping[tuple[str, str], int],
) -> LockOrderCrossValidation:
    """Diff recorded acquisition orders against the static graph."""
    static_edges = graph.edge_set()
    dynamic_edges = frozenset(recorded)

    diags: list[Diagnostic] = []
    for held, acquired in sorted(dynamic_edges - static_edges):
        severity, _ = CC_RULES["CC401"]
        count = recorded[(held, acquired)]
        diags.append(Diagnostic(
            rule="CC401",
            severity=severity,
            message=(
                f"runtime acquired {acquired} while holding {held} "
                f"({count} time(s)) but the static lock-order graph has no "
                "such edge — the analyzer has a blind spot on this path"
            ),
            region=acquired,
        ))
    for held, acquired in sorted(static_edges - dynamic_edges):
        severity, _ = CC_RULES["CC402"]
        site = graph.edges[(held, acquired)][0]
        diags.append(Diagnostic(
            rule="CC402",
            severity=severity,
            message=(
                f"static edge {held} -> {acquired} "
                f"({site.cls}.{site.method} at {site.file}:{site.line}) was "
                "never exercised by the recorded traffic — untested lock "
                "nesting"
            ),
            region=acquired,
            file=site.file,
            line=site.line,
        ))

    return LockOrderCrossValidation(
        static_edges=tuple(sorted(static_edges)),
        dynamic_edges=tuple(sorted(dynamic_edges)),
        diagnostics=tuple(diags),
    )
