"""Two-pass AST extraction behind the concurrency rules.

Pass 1 (:func:`index_module`) scans every class definition for lock
declarations (``self._lock = threading.Lock()``, annotated dataclass
fields, ``field(default_factory=threading.Lock)``), member attributes
whose class is statically known (``self._queue = _RequestQueue()`` or a
``# cc: type(...)`` pragma), ``# cc: guarded-by(...)`` field guards and
``# cc: requires(...)`` method contracts, building a
:class:`~.model.PackageIndex`.

Pass 2 (:func:`summarize_class`) walks each method body with a lexical
*held-lock* stack — ``with self._lock:`` pushes, leaving the block pops —
recording every field access, lock acquisition, method call and condvar
verb together with the locks held at that point.  Local aliases
(``latch = self._latch``) are tracked so accesses through them attribute
to the right object.  Nested functions are walked with an *empty* held
set: they may run on any thread later, so locks held at their definition
site prove nothing about their execution.

Nothing here produces diagnostics; the facts are interpreted by
:mod:`~.rules` and :mod:`~.graph`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .model import (
    Acquisition,
    CallSite,
    ClassInfo,
    CondOp,
    FieldAccess,
    FieldGuard,
    LockDecl,
    MethodDef,
    MethodSummary,
    PackageIndex,
    Pragma,
    QLock,
    parse_pragmas,
    pragma_for,
)

__all__ = ["AnnotationIssue", "PackageAnalysis", "analyze_sources"]

#: ``Lock()`` constructor spellings -> (kind, reentrant)
_LOCK_CTORS: dict[str, tuple[str, bool]] = {
    "threading.Lock": ("lock", False), "Lock": ("lock", False),
    "threading.RLock": ("rlock", True), "RLock": ("rlock", True),
    "threading.Condition": ("condition", True), "Condition": ("condition", True),
    "threading.Event": ("event", False), "Event": ("event", False),
}

#: receiver methods that mutate the receiver in place
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "pop", "popleft", "popitem", "clear", "update", "setdefault",
    "remove", "discard", "add", "sort", "reverse",
})

_KNOWN_DIRECTIVES = frozenset({"guarded-by", "requires", "type", "ignore"})


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _lock_from_value(value: Optional[ast.AST]) -> Optional[tuple[str, bool]]:
    """(kind, reentrant) when ``value`` constructs a threading primitive."""
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    if dotted in _LOCK_CTORS:
        kind, reentrant = _LOCK_CTORS[dotted]
        if kind == "condition" and value.args:
            inner = _lock_from_value(value.args[0])
            if inner is not None and inner[0] == "lock":
                reentrant = False
        return kind, reentrant
    if dotted is not None and dotted.split(".")[-1] == "field":
        for kw in value.keywords:
            if kw.arg == "default_factory":
                factory = _dotted(kw.value)
                if factory in _LOCK_CTORS:
                    return _LOCK_CTORS[factory]
    return None


def _lock_from_annotation(ann: Optional[ast.AST]) -> Optional[tuple[str, bool]]:
    if ann is None:
        return None
    dotted = _dotted(ann)
    if dotted in _LOCK_CTORS:
        return _LOCK_CTORS[dotted]
    return None


def _class_candidate(value: Optional[ast.AST]) -> Optional[str]:
    """Simple class name when ``value`` looks like ``SomeClass(...)``."""
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    if dotted is None or dotted in _LOCK_CTORS:
        return None
    name = dotted.split(".")[-1]
    if name == "field" or not name[:1].isalpha() and name[:1] != "_":
        return None
    return name


@dataclass(frozen=True)
class AnnotationIssue:
    """A ``# cc:`` pragma the analyzer cannot honor (-> CC105)."""

    file: str
    line: int
    message: str


@dataclass
class PackageAnalysis:
    """All extracted facts for one lint target (file or package)."""

    index: PackageIndex
    summaries: list[MethodSummary] = field(default_factory=list)
    issues: list[AnnotationIssue] = field(default_factory=list)
    #: file -> line -> rule codes suppressed by an ignore pragma
    ignores: dict[str, dict[int, tuple[str, ...]]] = field(default_factory=dict)
    #: file of each class, for diagnostics
    files: list[str] = field(default_factory=list)

    def summary_for(self, cls_name: str, method: str) -> Optional[MethodSummary]:
        """Summary of ``method`` as seen from ``cls_name`` (walks bases)."""
        cls = self.index.get(cls_name)
        if cls is None:
            return None
        for info in self.index.mro(cls):
            found = self._by_key.get((info.name, method))
            if found is not None:
                return found
        return None

    def finalize(self) -> None:
        self._by_key = {(s.cls, s.method): s for s in self.summaries}


# -- pass 1 -----------------------------------------------------------------


def _requires_paths(pragma: Optional[Pragma]) -> tuple[tuple[str, ...], ...]:
    if pragma is None:
        return ()
    return tuple(tuple(arg.split(".")) for arg in pragma.args)


def _index_class(
    node: ast.ClassDef,
    filename: str,
    pragmas: dict[int, Pragma],
) -> ClassInfo:
    bases = tuple(
        base.id if isinstance(base, ast.Name)
        else base.attr if isinstance(base, ast.Attribute) else "?"
        for base in node.bases
    )
    info = ClassInfo(name=node.name, module=filename, line=node.lineno, bases=bases)

    def note_guard(attr: str, stmt: ast.AST) -> None:
        pragma = pragma_for(pragmas, stmt, "guarded-by")
        if pragma is not None and pragma.args:
            info.guards.setdefault(attr, FieldGuard(
                field=attr,
                guard_path=pragma.guard_path,
                atomic_reads=pragma.atomic_reads,
                line=pragma.line,
            ))

    def note_self_assign(stmt: ast.Assign | ast.AnnAssign) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            lock = _lock_from_value(value)
            if lock is None and isinstance(stmt, ast.AnnAssign):
                lock = _lock_from_annotation(stmt.annotation)
            if lock is not None:
                kind, reentrant = lock
                info.locks.setdefault(attr, LockDecl(
                    attr=attr, kind=kind, owner=info.name,
                    line=stmt.lineno, reentrant=reentrant,
                ))
            type_pragma = pragma_for(pragmas, stmt, "type")
            if type_pragma is not None and type_pragma.args:
                info.members[attr] = type_pragma.args[0]
            elif lock is None:
                candidate = _class_candidate(value)
                if candidate is not None:
                    info.members.setdefault(attr, candidate)
            note_guard(attr, stmt)

    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            # class-body (dataclass-style) field declaration
            attr = item.target.id
            lock = _lock_from_value(item.value) or _lock_from_annotation(
                item.annotation
            )
            if lock is not None:
                kind, reentrant = lock
                info.locks.setdefault(attr, LockDecl(
                    attr=attr, kind=kind, owner=info.name,
                    line=item.lineno, reentrant=reentrant,
                ))
            note_guard(attr, item)
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            requires = _requires_paths(pragma_for(pragmas, item, "requires"))
            info.methods[item.name] = MethodDef(
                name=item.name, node=item, requires=requires, line=item.lineno,
            )
            for stmt in ast.walk(item):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    note_self_assign(stmt)
    return info


def index_module(
    tree: ast.Module,
    filename: str,
    pragmas: dict[int, Pragma],
    analysis: PackageAnalysis,
) -> None:
    """Pass 1 over one module: populate the class index and pragma maps."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            analysis.index.add(_index_class(node, filename, pragmas))
    ignores: dict[int, tuple[str, ...]] = {}
    for line, pragma in pragmas.items():
        if pragma.directive == "ignore":
            ignores[line] = tuple(code.upper() for code in pragma.args)
        elif pragma.directive not in _KNOWN_DIRECTIVES:
            analysis.issues.append(AnnotationIssue(
                file=filename, line=line,
                message=(
                    f"unrecognized '# cc:' directive {pragma.directive!r} "
                    "(known: guarded-by, requires, type, ignore)"
                ),
            ))
    if ignores:
        analysis.ignores[filename] = ignores


# -- pass 2 -----------------------------------------------------------------


class _MethodWalker:
    """Walk one method body tracking the lexically held lock set."""

    def __init__(
        self,
        index: PackageIndex,
        cls: ClassInfo,
        method: MethodDef,
        locks: dict[str, LockDecl],
        members: dict[str, str],
        methods: dict[str, MethodDef],
        initial_held: tuple[QLock, ...],
    ) -> None:
        self.index = index
        self.cls = cls
        self.locks = locks
        # only members whose class the index actually knows are "typed";
        # `self._items = deque()` stays an ordinary field
        self.members = {
            attr: name for attr, name in members.items()
            if index.get(name) is not None
        }
        self.method_names = methods
        self.summary = MethodSummary(cls=cls.name, method=method.name,
                                     line=method.line)
        self.held: list[QLock] = list(initial_held)
        self.aliases: dict[str, tuple[str, ...]] = {}
        self.while_depth = 0
        self.is_init = method.name == "__init__"

    # -- path / lock resolution -------------------------------------------

    def _self_path(self, node: ast.AST) -> Optional[tuple[str, ...]]:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        if node.id == "self":
            return tuple(reversed(parts))
        base = self.aliases.get(node.id)
        if base is not None:
            return base + tuple(reversed(parts))
        return None

    def _qlock(self, path: Optional[tuple[str, ...]]) -> Optional[QLock]:
        if not path:
            return None
        locks, members = self.locks, self.members
        for i, comp in enumerate(path):
            if i == len(path) - 1:
                decl = locks.get(comp)
                if decl is None:
                    return None
                return QLock(decl.name, decl.kind, decl.reentrant)
            member_cls = self.index.get(members.get(comp, ""))
            if member_cls is None:
                return None
            locks = self.index.resolved_locks(member_cls)
            members = self.index.resolved_members(member_cls)
        return None

    def _member_class(self, path: tuple[str, ...]) -> Optional[ClassInfo]:
        cls: Optional[ClassInfo] = self.cls
        members = self.members
        for comp in path:
            type_name = members.get(comp)
            if type_name is None:
                return None
            cls = self.index.get(type_name)
            if cls is None:
                return None
            members = self.index.resolved_members(cls)
        return cls

    def _record(self, path: tuple[str, ...], kind: str, node: ast.AST) -> None:
        self.summary.accesses.append(FieldAccess(
            path=path, kind=kind, held=tuple(self.held),
            line=node.lineno, col=node.col_offset,
        ))

    # -- dispatch ----------------------------------------------------------

    def visit(self, node: ast.AST) -> None:
        handler = getattr(self, f"visit_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
        else:
            self.generic_visit(node)

    def generic_visit(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def run(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> MethodSummary:
        for stmt in node.body:
            self.visit(stmt)
        return self.summary

    # -- nested scopes: locks held here prove nothing there ----------------

    def _visit_nested(self, node) -> None:
        saved = (self.held, self.aliases, self.while_depth)
        self.held, self.aliases, self.while_depth = [], {}, 0
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            self.visit(stmt)
        self.held, self.aliases, self.while_depth = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    # -- lock scopes -------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: list[QLock] = []
        for item in node.items:
            ctx = item.context_expr
            qlock = self._qlock(self._self_path(ctx))
            if qlock is not None and qlock.kind != "event":
                self.summary.acquisitions.append(Acquisition(
                    lock=qlock, held=tuple(self.held),
                    line=ctx.lineno, col=ctx.col_offset,
                ))
                self.held.append(qlock)
                acquired.append(qlock)
            else:
                self.visit(ctx)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    visit_AsyncWith = visit_With

    # -- assignments and aliases ------------------------------------------

    def _assign_target(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            path = self._self_path(value) if value is not None else None
            if path:
                self.aliases[target.id] = path
            else:
                self.aliases.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, None)
        else:
            self.visit(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._assign_target(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self._assign_target(node.target, node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            self.aliases.pop(node.target.id, None)
        else:
            self.visit(node.target)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.aliases.pop(node.id, None)

    # -- accesses ----------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        path = self._self_path(node)
        if path is None:
            self.generic_visit(node)
            return
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._record(path, "write", node)
            return
        # structural loads: locks, typed members and bound methods are
        # construction-time constants, not shared mutable state
        if self._qlock(path) is not None:
            return
        if len(path) == 1 and (
            path[0] in self.members or path[0] in self.method_names
        ):
            return
        self._record(path, "read", node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            base = self._self_path(node.value)
            if base is not None:
                self._record(base, "mutate", node)
                self.visit(node.slice)
                return
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def _wait_timeout(self, attr: str, node: ast.Call) -> Optional[ast.AST]:
        position = 0 if attr == "wait" else 1
        if len(node.args) > position:
            return node.args[position]
        for kw in node.keywords:
            if kw.arg == "timeout":
                return kw.value
        return None

    def _attr_call(self, base: tuple[str, ...], attr: str,
                   node: ast.Call) -> None:
        if base == ():
            # self.method(...) — or a call through a callable field
            if attr in self.method_names:
                self.summary.calls.append(CallSite(
                    target_class=self.cls.name, method=attr,
                    held=tuple(self.held),
                    line=node.lineno, col=node.col_offset,
                ))
            elif attr not in self.locks and attr not in self.members:
                self._record((attr,), "read", node)
            return
        qlock = self._qlock(base)
        if qlock is not None:
            if attr == "acquire":
                self.summary.acquisitions.append(Acquisition(
                    lock=qlock, held=tuple(self.held),
                    line=node.lineno, col=node.col_offset,
                ))
            elif attr in ("wait", "wait_for") and qlock.kind in (
                "condition", "event"
            ):
                timeout = self._wait_timeout(attr, node)
                self.summary.cond_ops.append(CondOp(
                    lock=qlock,
                    op=attr,
                    held=tuple(self.held),
                    in_while=self.while_depth > 0,
                    timeout_inline_arith=isinstance(timeout, ast.BinOp),
                    line=node.lineno, col=node.col_offset,
                ))
            elif attr in ("notify", "notify_all") and qlock.kind == "condition":
                self.summary.cond_ops.append(CondOp(
                    lock=qlock, op=attr, held=tuple(self.held),
                    in_while=self.while_depth > 0,
                    timeout_inline_arith=False,
                    line=node.lineno, col=node.col_offset,
                ))
            # release/locked/set/clear/is_set: structural, nothing to check
            return
        member = self._member_class(base)
        if member is not None:
            self.summary.calls.append(CallSite(
                target_class=member.name, method=attr,
                held=tuple(self.held),
                line=node.lineno, col=node.col_offset,
            ))
            return
        kind = "mutate" if attr in _MUTATORS else "read"
        self._record(base, kind, node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = self._self_path(func.value)
            if base is not None or (
                isinstance(func.value, ast.Name) and func.value.id == "self"
            ):
                self._attr_call(base if base is not None else (), func.attr,
                                node)
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
        self.generic_visit(node)

    # -- control flow ------------------------------------------------------

    def visit_While(self, node: ast.While) -> None:
        self.while_depth += 1
        self.generic_visit(node)
        self.while_depth -= 1


def summarize_class(
    cls: ClassInfo,
    index: PackageIndex,
    analysis: PackageAnalysis,
) -> None:
    """Pass 2 over one class: summarize every method it *owns*."""
    locks = index.resolved_locks(cls)
    members = index.resolved_members(cls)
    methods = index.resolved_methods(cls)
    for method in cls.methods.values():
        initial: list[QLock] = []
        walker = _MethodWalker(index, cls, method, locks, members, methods, ())
        for path in method.requires:
            qlock = walker._qlock(path)
            if qlock is None:
                analysis.issues.append(AnnotationIssue(
                    file=cls.module, line=method.line,
                    message=(
                        f"requires({'.'.join(path)}) on {cls.name}."
                        f"{method.name} does not name a known lock "
                        "(declare the lock or add a '# cc: type(...)' pragma)"
                    ),
                ))
            else:
                initial.append(qlock)
        walker.held = list(initial)
        analysis.summaries.append(walker.run(method.node))


# -- driver -----------------------------------------------------------------


def analyze_sources(sources: list[tuple[str, str]]) -> PackageAnalysis:
    """Analyze ``[(filename, source), ...]`` as one package.

    Files that do not parse are skipped here — the SF linter already
    reports syntax errors (SF102) on a per-file basis.
    """
    analysis = PackageAnalysis(index=PackageIndex())
    trees: list[tuple[str, ast.Module]] = []
    for filename, source in sorted(sources):
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        pragmas = parse_pragmas(source)
        trees.append((filename, tree))
        analysis.files.append(filename)
        index_module(tree, filename, pragmas, analysis)
    for cls in list(analysis.index.classes.values()):
        summarize_class(cls, analysis.index, analysis)
    analysis.finalize()
    return analysis
