"""Concurrency lint rules (CC codes).

Rule catalogue (ids are stable; see README.md "Concurrency analysis"):

========  ========  =====================================================
id        severity  meaning
========  ========  =====================================================
CC101     error     write/mutation of a guarded field without its lock
CC102     warning   read of a guarded field without its lock (waived by
                    the ``atomic-reads`` annotation flag)
CC103     warning   field is locked inconsistently — written under two
                    different locks with no annotation to arbitrate
CC104     error     call to a ``# cc: requires(L)`` method without L held
CC105     error     unresolvable/malformed ``# cc:`` annotation
CC201     error     lock-acquisition cycle across methods (deadlock)
CC202     error     non-reentrant lock (re)acquired while already held,
                    lexically or through a call chain (self-deadlock)
CC203     warning   blocking ``wait()`` while holding an unrelated lock
CC301     error     condvar ``wait()`` not inside a predicate loop
CC302     error     condvar wait/notify without the condition held
CC303     warning   timed ``wait()`` with inline timeout arithmetic
                    (compute the remaining time explicitly instead)
CC401     error     dynamic-only lock-order edge (cross-validation)
CC402     info      static-only lock-order edge never exercised
========  ========  =====================================================

Guard discipline, per field:

* an explicit ``# cc: guarded-by(L)`` pragma is authoritative — every
  non-``__init__`` access is checked against L (reads are waived when
  the pragma carries ``atomic-reads``);
* otherwise the guard is *inferred*: if every non-init write happens
  under one common lock, that lock is the guard and bare reads warn
  (CC102); writes split between bare and locked flag the bare ones
  (CC101); writes split across two locks with no dominant one flag the
  field itself (CC103).  Fields only ever written in ``__init__`` are
  immutable-after-init and exempt, as are fields never written under
  any lock (single-threaded by construction — annotate them if that is
  wrong).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..diagnostics import Diagnostic, Severity
from .analyze import PackageAnalysis
from .graph import LockOrderGraph, Reentry
from .model import ClassInfo, FieldAccess, FieldGuard, QLock

__all__ = ["CC_RULES", "check_package"]

#: rule id -> (severity, one-line summary) — the documented catalogue
CC_RULES: dict[str, tuple[Severity, str]] = {
    "CC101": (Severity.ERROR, "write to guarded field without its lock"),
    "CC102": (Severity.WARNING, "read of guarded field without its lock"),
    "CC103": (Severity.WARNING, "field locked inconsistently"),
    "CC104": (Severity.ERROR, "requires()-method called without the lock"),
    "CC105": (Severity.ERROR, "unresolvable concurrency annotation"),
    "CC201": (Severity.ERROR, "lock-acquisition cycle (potential deadlock)"),
    "CC202": (Severity.ERROR, "non-reentrant lock re-acquired while held"),
    "CC203": (Severity.WARNING, "blocking wait while holding another lock"),
    "CC301": (Severity.ERROR, "condvar wait() outside a predicate loop"),
    "CC302": (Severity.ERROR, "condvar verb without the condition held"),
    "CC303": (Severity.WARNING, "inline timeout arithmetic in timed wait"),
    "CC401": (Severity.ERROR, "dynamic-only lock-order edge"),
    "CC402": (Severity.INFO, "static-only lock-order edge never exercised"),
}


def _diag(rule: str, message: str, *, region: Optional[str] = None,
          file: Optional[str] = None, line: int = 0, col: int = 0) -> Diagnostic:
    severity, _ = CC_RULES[rule]
    return Diagnostic(rule=rule, severity=severity, message=message,
                      region=region, file=file, line=line, col=col)


def _held_names(access) -> set[str]:
    return {h.name for h in access.held}


# -- guarded-by checks (CC101/CC102/CC103/CC105) ----------------------------


class _PooledAccess:
    """One field access attributed to its owning class."""

    __slots__ = ("access", "from_cls", "from_method", "file", "init_exempt")

    def __init__(self, access: FieldAccess, from_cls: str, from_method: str,
                 file: str, init_exempt: bool) -> None:
        self.access = access
        self.from_cls = from_cls
        self.from_method = from_method
        self.file = file
        self.init_exempt = init_exempt


def _guard_owner(
    analysis: PackageAnalysis, cls: ClassInfo, field: str
) -> tuple[str, Optional[FieldGuard], ClassInfo]:
    """(pool key class, declared guard, declaring class) for a field."""
    for info in analysis.index.mro(cls):
        if field in info.guards:
            return info.name, info.guards[field], info
    return cls.name, None, cls


def _resolve_access_owner(
    analysis: PackageAnalysis, cls: ClassInfo, path: tuple[str, ...]
) -> Optional[tuple[ClassInfo, str]]:
    """(owning class, field name) for an access path, or None."""
    if len(path) == 1:
        return cls, path[0]
    owner: Optional[ClassInfo] = cls
    members = analysis.index.resolved_members(cls)
    for comp in path[:-1]:
        type_name = members.get(comp)
        if type_name is None:
            return None
        owner = analysis.index.get(type_name)
        if owner is None:
            return None
        members = analysis.index.resolved_members(owner)
    return owner, path[-1]


def _qualify_guard(
    analysis: PackageAnalysis, owner: ClassInfo, guard_path: tuple[str, ...]
) -> Optional[QLock]:
    """Resolve a guard path (e.g. ``('_latch', '_lock')``) in ``owner``."""
    locks = analysis.index.resolved_locks(owner)
    members = analysis.index.resolved_members(owner)
    for i, comp in enumerate(guard_path):
        if i == len(guard_path) - 1:
            decl = locks.get(comp)
            if decl is None:
                return None
            return QLock(decl.name, decl.kind, decl.reentrant)
        member = analysis.index.get(members.get(comp, ""))
        if member is None:
            return None
        locks = analysis.index.resolved_locks(member)
        members = analysis.index.resolved_members(member)
    return None


def _access_verb(kind: str) -> str:
    return {"write": "write to", "mutate": "mutation of",
            "read": "read of"}[kind]


def _check_guards(analysis: PackageAnalysis) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    pooled: dict[tuple[str, str], list[_PooledAccess]] = {}
    owners: dict[str, ClassInfo] = {}

    for summary in analysis.summaries:
        cls = analysis.index.get(summary.cls)
        if cls is None:
            continue
        for access in summary.accesses:
            resolved = _resolve_access_owner(analysis, cls, access.path)
            if resolved is None:
                continue
            owner_cls, field = resolved
            # locks, typed members and methods are not data fields
            if (field in analysis.index.resolved_locks(owner_cls)
                    or field in analysis.index.resolved_methods(owner_cls)):
                continue
            pool_key_cls, _, declaring = _guard_owner(analysis, owner_cls,
                                                      field)
            owners.setdefault(pool_key_cls, declaring)
            init_exempt = (
                len(access.path) == 1
                and summary.method == "__init__"
                and summary.cls == owner_cls.name
            )
            pooled.setdefault((pool_key_cls, field), []).append(_PooledAccess(
                access, summary.cls, summary.method, cls.module, init_exempt,
            ))

    for (owner_name, field), entries in sorted(pooled.items()):
        owner = owners.get(owner_name) or analysis.index.get(owner_name)
        if owner is None:
            continue
        guards = analysis.index.resolved_guards(owner)
        guard = guards.get(field)
        region = f"{owner_name}.{field}"
        if guard is not None:
            qlock = _qualify_guard(analysis, owner, guard.guard_path)
            if qlock is None:
                diags.append(_diag(
                    "CC105",
                    f"guarded-by({'.'.join(guard.guard_path)}) on {region} "
                    "does not resolve to a known lock (declare the lock or "
                    "add a '# cc: type(...)' pragma on the member path)",
                    region=region, file=owner.module, line=guard.line,
                ))
                continue
            diags.extend(_check_declared(entries, qlock, guard, region))
        else:
            diags.extend(_infer_guard(entries, region))
    return diags


def _check_declared(
    entries: list[_PooledAccess], qlock: QLock, guard: FieldGuard, region: str
) -> list[Diagnostic]:
    diags = []
    for entry in entries:
        if entry.init_exempt:
            continue
        access = entry.access
        if qlock.name in _held_names(access):
            continue
        where = f"{entry.from_cls}.{entry.from_method}"
        if access.kind in ("write", "mutate"):
            diags.append(_diag(
                "CC101",
                f"{_access_verb(access.kind)} {region} in {where} without "
                f"holding its declared guard {qlock.name}",
                region=region, file=entry.file,
                line=access.line, col=access.col,
            ))
        elif not guard.atomic_reads:
            diags.append(_diag(
                "CC102",
                f"read of {region} in {where} without holding its declared "
                f"guard {qlock.name} (annotate 'atomic-reads' if a stale "
                "snapshot is acceptable)",
                region=region, file=entry.file,
                line=access.line, col=access.col,
            ))
    return diags


def _infer_guard(entries: list[_PooledAccess], region: str) -> list[Diagnostic]:
    writes = [e for e in entries
              if e.access.kind in ("write", "mutate") and not e.init_exempt]
    if not writes:
        return []                       # immutable after construction
    locked_writes = [e for e in writes if e.access.held]
    if not locked_writes:
        return []                       # never locked: single-threaded field

    votes: Counter[str] = Counter()
    for entry in locked_writes:
        for name in _held_names(entry.access):
            votes[name] += 1
    ranked = votes.most_common()
    candidate, candidate_votes = ranked[0]
    if len(ranked) > 1 and ranked[1][1] == candidate_votes:
        rivals = sorted(name for name, count in ranked
                        if count == candidate_votes)
        first = writes[0]
        return [_diag(
            "CC103",
            f"{region} is written under different locks with no dominant "
            f"guard ({', '.join(rivals)}) — annotate the intended guard "
            "with '# cc: guarded-by(...)'",
            region=region, file=first.file,
            line=first.access.line, col=first.access.col,
        )]

    diags = []
    for entry in writes:
        if candidate in _held_names(entry.access):
            continue
        where = f"{entry.from_cls}.{entry.from_method}"
        diags.append(_diag(
            "CC101",
            f"{_access_verb(entry.access.kind)} {region} in {where} without "
            f"holding {candidate}, which guards its other writes",
            region=region, file=entry.file,
            line=entry.access.line, col=entry.access.col,
        ))
    if diags:
        return diags                    # fix the writes first; reads follow
    for entry in entries:
        if entry.init_exempt or entry.access.kind != "read":
            continue
        if candidate in _held_names(entry.access):
            continue
        where = f"{entry.from_cls}.{entry.from_method}"
        diags.append(_diag(
            "CC102",
            f"read of {region} in {where} without holding {candidate}, "
            f"which guards every write (annotate "
            "'# cc: guarded-by(..., atomic-reads)' if a stale snapshot is "
            "acceptable)",
            region=region, file=entry.file,
            line=entry.access.line, col=entry.access.col,
        ))
    return diags


# -- requires checks (CC104) ------------------------------------------------


def _check_requires(analysis: PackageAnalysis) -> list[Diagnostic]:
    diags = []
    for summary in analysis.summaries:
        cls = analysis.index.get(summary.cls)
        if cls is None:
            continue
        for call in summary.calls:
            callee_cls = analysis.index.get(call.target_class)
            if callee_cls is None:
                continue
            callee = analysis.index.resolved_methods(callee_cls).get(
                call.method
            )
            if callee is None or not callee.requires:
                continue
            held = {h.name for h in call.held}
            for path in callee.requires:
                qlock = _qualify_guard(analysis, callee_cls, path)
                if qlock is None or qlock.name in held:
                    continue  # unresolvable paths already reported as CC105
                region = f"{call.target_class}.{call.method}"
                diags.append(_diag(
                    "CC104",
                    f"{summary.cls}.{summary.method} calls {region}, which "
                    f"requires {qlock.name}, without holding it",
                    region=region, file=cls.module,
                    line=call.line, col=call.col,
                ))
    return diags


# -- condvar checks (CC203/CC301/CC302/CC303) -------------------------------


def _check_cond_ops(analysis: PackageAnalysis) -> list[Diagnostic]:
    diags = []
    for summary in analysis.summaries:
        cls = analysis.index.get(summary.cls)
        file = cls.module if cls is not None else None
        where = f"{summary.cls}.{summary.method}"
        for op in summary.cond_ops:
            held = {h.name for h in op.held}
            region = op.lock.name
            if op.lock.kind == "condition":
                if op.lock.name not in held:
                    diags.append(_diag(
                        "CC302",
                        f"{op.op}() on {op.lock.name} in {where} without "
                        "holding the condition (raises RuntimeError at "
                        "runtime, or silently races)",
                        region=region, file=file, line=op.line, col=op.col,
                    ))
                if op.op == "wait" and not op.in_while:
                    diags.append(_diag(
                        "CC301",
                        f"wait() on {op.lock.name} in {where} is not inside "
                        "a while loop — spurious wakeups make un-looped "
                        "waits incorrect (re-test the predicate, or use "
                        "wait_for)",
                        region=region, file=file, line=op.line, col=op.col,
                    ))
                if op.op in ("wait", "wait_for") and op.timeout_inline_arith:
                    diags.append(_diag(
                        "CC303",
                        f"timed {op.op}() on {op.lock.name} in {where} "
                        "computes its timeout inline — bind the remaining "
                        "time to a variable and re-check it for <= 0 so the "
                        "deadline arithmetic cannot go negative unnoticed",
                        region=region, file=file, line=op.line, col=op.col,
                    ))
            if op.op in ("wait", "wait_for"):
                others = sorted(held - {op.lock.name})
                if others:
                    diags.append(_diag(
                        "CC203",
                        f"{op.op}() on {op.lock.name} in {where} while "
                        f"holding {', '.join(others)} — those locks stay "
                        "held for the whole wait and can starve or "
                        "deadlock other threads",
                        region=region, file=file, line=op.line, col=op.col,
                    ))
    return diags


# -- graph checks (CC201/CC202) ---------------------------------------------


def _check_graph(graph: LockOrderGraph,
                 reentries: list[Reentry]) -> list[Diagnostic]:
    diags = []
    for component in graph.cycles():
        sites = graph.cycle_sites(component)
        witness = sites[0] if sites else None
        chain = " -> ".join(component + (component[0],))
        evidence = "; ".join(
            f"{s.cls}.{s.method} at {s.file}:{s.line}"
            + (f" (via {s.via})" if s.via else "")
            for s in sites[:4]
        )
        diags.append(_diag(
            "CC201",
            f"lock-acquisition cycle {chain} — threads taking these locks "
            f"in different orders can deadlock (evidence: {evidence})",
            region=component[0],
            file=witness.file if witness else None,
            line=witness.line if witness else 0,
        ))
    for reentry in sorted(reentries,
                          key=lambda r: (r.site.file, r.site.line)):
        site = reentry.site
        via = f" via {site.via}" if site.via else ""
        diags.append(_diag(
            "CC202",
            f"{site.cls}.{site.method} (re)acquires non-reentrant "
            f"{reentry.lock.name} while already holding it{via} — a plain "
            "Lock self-deadlocks; use an RLock or restructure the call",
            region=reentry.lock.name, file=site.file, line=site.line,
        ))
    return diags


# -- entry point ------------------------------------------------------------


def check_package(
    analysis: PackageAnalysis,
    graph: LockOrderGraph,
    reentries: list[Reentry],
) -> list[Diagnostic]:
    """All CC diagnostics for one analyzed package."""
    diags = [
        _diag("CC105", issue.message, file=issue.file, line=issue.line)
        for issue in analysis.issues
    ]
    diags.extend(_check_guards(analysis))
    diags.extend(_check_requires(analysis))
    diags.extend(_check_cond_ops(analysis))
    diags.extend(_check_graph(graph, reentries))
    return diags
