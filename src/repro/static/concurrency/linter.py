"""Concurrency lint driver: files or whole packages -> :class:`LintReport`.

Unlike the per-file SF linter, the CC rules are *whole-package*: the
lock-order graph and ``requires`` contracts only make sense when every
class in the package is indexed together, so :func:`lint_concurrency`
accepts a directory and analyzes all ``*.py`` files under it as one
unit.  Single files still work (the package is just that file).

``# cc: ignore(CCxxx)`` pragmas suppress matching diagnostics on their
line.  They are honored here for downstream users, but ``src/repro``
itself must not contain any — the self-hosting test enforces that the
shipped code passes the analyzer on discipline alone.
"""

from __future__ import annotations

import os
from typing import Iterable

from ..diagnostics import Diagnostic, LintReport
from .analyze import PackageAnalysis, analyze_sources
from .graph import LockOrderGraph, build_graph
from .rules import check_package

__all__ = [
    "collect_sources",
    "analyze_target",
    "lint_concurrency",
    "lint_concurrency_source",
    "lock_order_graph",
]


def collect_sources(target: str) -> list[tuple[str, str]]:
    """``[(filename, source), ...]`` for a file or directory target."""
    if os.path.isdir(target):
        paths = []
        for root, dirs, files in os.walk(target):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            paths.extend(
                os.path.join(root, f) for f in sorted(files)
                if f.endswith(".py")
            )
    else:
        paths = [target]
    sources = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sources.append((path, handle.read()))
        except OSError:
            continue
    return sources


def analyze_target(
    target: str,
) -> tuple[PackageAnalysis, LockOrderGraph, list]:
    analysis = analyze_sources(collect_sources(target))
    graph, reentries = build_graph(analysis)
    return analysis, graph, reentries


def _suppressed(diag: Diagnostic, analysis: PackageAnalysis) -> bool:
    if diag.file is None:
        return False
    codes = analysis.ignores.get(diag.file, {}).get(diag.line)
    if codes is None:
        return False
    return any(diag.rule == code or (code == "CC" and diag.rule.startswith("CC"))
               for code in codes)


def _report(
    target: str,
    analysis: PackageAnalysis,
    diagnostics: Iterable[Diagnostic],
) -> LintReport:
    report = LintReport(target=target)
    ordered = sorted(
        (d for d in diagnostics if not _suppressed(d, analysis)),
        key=lambda d: (d.file or "", d.line, d.rule),
    )
    report.extend(ordered)
    return report


def lint_concurrency(target: str) -> LintReport:
    """Run every CC rule over a file or package directory."""
    analysis, graph, reentries = analyze_target(target)
    return _report(target, analysis, check_package(analysis, graph, reentries))


def lint_concurrency_source(
    source: str, filename: str = "<string>"
) -> LintReport:
    """Run the CC rules over one in-memory module (for tests/tools)."""
    analysis = analyze_sources([(filename, source)])
    graph, reentries = build_graph(analysis)
    return _report(filename, analysis,
                   check_package(analysis, graph, reentries))


def lock_order_graph(target: str) -> LockOrderGraph:
    """Just the static lock-order graph for a file or package directory."""
    _, graph, _ = analyze_target(target)
    return graph
