"""Whole-package lock-acquisition graph and deadlock detection.

Nodes are lock identities (``DeclaringClass.attr``); a directed edge
``A -> B`` means some code path acquires ``B`` while holding ``A``.
Edges come from two places:

* **intra-method** — a ``with self._b:`` lexically inside ``with
  self._a:``;
* **interprocedural** — a call made while holding ``A`` to a method
  that (transitively) acquires ``B``.  Transitive acquisition sets are
  computed as a worklist fixpoint over the call graph, so mutual
  recursion converges.

A cycle in this graph is a potential deadlock (two threads taking the
cycle's locks in different positions can block each other forever) and
is reported as CC201, one diagnostic per strongly connected component.
Re-acquiring a *non-reentrant* lock already held — lexically or through
a call chain — self-deadlocks a single thread and is reported as CC202;
reentrant primitives (``RLock``, default ``Condition``) are exempt.

The edge set is also the static half of the lock-order cross-validation
(:mod:`~.crossval`): edges observed at runtime by
:class:`repro.obs.locks.LockOrderRecorder` must be a subset of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .analyze import PackageAnalysis
from .model import MethodSummary, QLock

__all__ = ["EdgeSite", "Reentry", "LockOrderGraph", "build_graph"]


@dataclass(frozen=True)
class EdgeSite:
    """One code location contributing a lock-order edge."""

    cls: str
    method: str
    file: str
    line: int
    via: Optional[str] = None      # "Class.method" when interprocedural


@dataclass(frozen=True)
class Reentry:
    """A non-reentrant lock (possibly) re-acquired while held."""

    lock: QLock
    site: EdgeSite


@dataclass
class LockOrderGraph:
    """All lock-order edges with their witnessing sites."""

    edges: dict[tuple[str, str], list[EdgeSite]] = field(default_factory=dict)
    nodes: set[str] = field(default_factory=set)

    def add_edge(self, held: str, acquired: str, site: EdgeSite) -> None:
        self.nodes.update((held, acquired))
        self.edges.setdefault((held, acquired), []).append(site)

    def edge_set(self) -> frozenset[tuple[str, str]]:
        return frozenset(self.edges)

    def successors(self, node: str) -> list[str]:
        return [b for (a, b) in self.edges if a == node]

    def cycles(self) -> list[tuple[str, ...]]:
        """Strongly connected components with more than one node.

        Iterative Tarjan; nodes within an SCC are returned in sorted
        order so diagnostics are deterministic.
        """
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[tuple[str, ...]] = []
        adjacency: dict[str, list[str]] = {}
        for (a, b) in self.edges:
            adjacency.setdefault(a, []).append(b)

        for root in sorted(self.nodes):
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work.pop()
                if child_i == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                children = adjacency.get(node, [])
                advanced = False
                for i in range(child_i, len(children)):
                    child = children[i]
                    if child not in index:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sccs

    def cycle_sites(self, component: tuple[str, ...]) -> list[EdgeSite]:
        """One witnessing site per intra-component edge (for messages)."""
        members = set(component)
        sites = []
        for (a, b), witnesses in sorted(self.edges.items()):
            if a in members and b in members:
                sites.append(witnesses[0])
        return sites


def _callee_key(
    analysis: PackageAnalysis, cls: str, method: str
) -> Optional[tuple[str, str]]:
    """(declaring class, method) for a call target, or None if unknown."""
    summary = analysis.summary_for(cls, method)
    if summary is None:
        return None
    return (summary.cls, summary.method)


def _reachable_locks(
    analysis: PackageAnalysis,
) -> dict[tuple[str, str], frozenset[QLock]]:
    """Fixpoint: every lock each (class, method) may transitively acquire."""
    direct: dict[tuple[str, str], set[QLock]] = {}
    callees: dict[tuple[str, str], set[tuple[str, str]]] = {}
    for summary in analysis.summaries:
        key = (summary.cls, summary.method)
        direct[key] = {acq.lock for acq in summary.acquisitions}
        targets = set()
        for call in summary.calls:
            callee = _callee_key(analysis, call.target_class, call.method)
            if callee is not None and callee != key:
                targets.add(callee)
        callees[key] = targets

    reach = {key: set(locks) for key, locks in direct.items()}
    changed = True
    while changed:
        changed = False
        for key, targets in callees.items():
            acc = reach[key]
            before = len(acc)
            for callee in targets:
                acc |= reach.get(callee, set())
            if len(acc) != before:
                changed = True
    return {key: frozenset(locks) for key, locks in reach.items()}


def _site(summary: MethodSummary, file: str, line: int,
          via: Optional[str] = None) -> EdgeSite:
    return EdgeSite(cls=summary.cls, method=summary.method, file=file,
                    line=line, via=via)


def build_graph(
    analysis: PackageAnalysis,
) -> tuple[LockOrderGraph, list[Reentry]]:
    """The package lock-order graph plus CC202 re-entry witnesses."""
    graph = LockOrderGraph()
    reentries: list[Reentry] = []
    reach = _reachable_locks(analysis)
    reentry_seen: set[tuple[str, str, str, int]] = set()

    def note_reentry(lock: QLock, site: EdgeSite) -> None:
        key = (lock.name, site.cls, site.method, site.line)
        if key not in reentry_seen:
            reentry_seen.add(key)
            reentries.append(Reentry(lock=lock, site=site))

    for summary in analysis.summaries:
        cls = analysis.index.get(summary.cls)
        file = cls.module if cls is not None else "<unknown>"
        for decl in (analysis.index.resolved_locks(cls) if cls else {}).values():
            graph.nodes.add(decl.name)

        for acq in summary.acquisitions:
            held_names = {h.name for h in acq.held}
            if acq.lock.name in held_names:
                if not acq.lock.reentrant:
                    note_reentry(acq.lock, _site(summary, file, acq.line))
                continue
            graph.nodes.add(acq.lock.name)
            for held in dict.fromkeys(acq.held):
                graph.add_edge(held.name, acq.lock.name,
                               _site(summary, file, acq.line))

        for call in summary.calls:
            if not call.held:
                continue
            callee = _callee_key(analysis, call.target_class, call.method)
            if callee is None:
                continue
            via = f"{callee[0]}.{callee[1]}"
            held_names = {h.name for h in call.held}
            for lock in sorted(reach.get(callee, frozenset()),
                               key=lambda q: q.name):
                if lock.name in held_names:
                    if not lock.reentrant:
                        note_reentry(lock, _site(summary, file, call.line,
                                                 via=via))
                    continue
                for held in dict.fromkeys(call.held):
                    graph.add_edge(held.name, lock.name,
                                   _site(summary, file, call.line, via=via))
    return graph, reentries
