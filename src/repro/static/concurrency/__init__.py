"""Concurrency static analysis for the serving stack (CC rules).

Three analyses, in the spirit of Clang's thread-safety analysis, run
purely on the AST (nothing is imported):

* **guarded-by inference** (CC1xx) — which lock protects which instance
  field, from ``# cc: guarded-by`` annotations or from the dominant
  lock observed at write sites; accesses outside the guard are flagged;
* **lock-order graph** (CC2xx) — a whole-package graph of which locks
  are acquired while which are held, across method calls; cycles are
  potential deadlocks, non-reentrant re-acquisition is a self-deadlock;
* **condvar lints** (CC3xx) — ``wait()`` outside a predicate loop,
  wait/notify without the condition held, inline timeout arithmetic.

The static graph cross-validates against acquisition orders recorded at
runtime by :mod:`repro.obs.locks` (CC4xx), mirroring how the static
region I/O is checked against the dynamic DDDG.
"""

from .analyze import AnnotationIssue, PackageAnalysis, analyze_sources
from .crossval import LockOrderCrossValidation, cross_validate_lock_orders
from .graph import EdgeSite, LockOrderGraph, Reentry, build_graph
from .linter import (
    analyze_target,
    collect_sources,
    lint_concurrency,
    lint_concurrency_source,
    lock_order_graph,
)
from .model import parse_pragmas
from .rules import CC_RULES, check_package

__all__ = [
    "AnnotationIssue",
    "PackageAnalysis",
    "analyze_sources",
    "LockOrderCrossValidation",
    "cross_validate_lock_orders",
    "EdgeSite",
    "LockOrderGraph",
    "Reentry",
    "build_graph",
    "analyze_target",
    "collect_sources",
    "lint_concurrency",
    "lint_concurrency_source",
    "lock_order_graph",
    "parse_pragmas",
    "CC_RULES",
    "check_package",
]
