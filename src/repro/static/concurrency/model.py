"""Data model of the concurrency analyzer.

The analyzer reasons about three kinds of facts, all extracted purely
from the AST (nothing is ever imported):

* **lock declarations** — ``self._lock = threading.Lock()`` (or an
  annotated dataclass field with a ``threading`` lock type / factory)
  makes ``ClassName._lock`` a lock node.  Lock identity is
  ``DeclaringClass.attr`` — the same convention the runtime wrappers in
  :mod:`repro.obs.locks` use, so static and dynamic edges unify.
* **annotations** — ``# cc:`` comment pragmas declare intent the AST
  alone cannot recover (see :func:`parse_pragmas`).  Annotations are
  *checked disciplines*, not suppressions: a ``guarded-by`` field still
  has every access verified, a ``requires`` method has every call site
  verified.
* **method summaries** — per-method records of field accesses, lock
  acquisitions, call sites and condvar operations, each with the set of
  locks lexically held at that point.

Pragma grammar (one directive per comment, attached to the statement on
its line)::

    self._items = deque()   # cc: guarded-by(_cond)
    self._running = False   # cc: guarded-by(_state_lock, atomic-reads)
    self._orc = orch        # cc: type(Orchestrator)
    def _activate(self):    # cc: requires(_lock)
    risky_line()            # cc: ignore(CC102)

``guarded-by(PATH)`` declares the lock protecting a field; with the
``atomic-reads`` flag, bare *reads* are tolerated (GIL-atomic snapshot
reads) while writes are still checked.  ``requires(PATH)`` declares a
method that must be called with the lock already held: the method body
is analyzed with the lock credited, and every call site is checked.
``type(ClassName)`` declares a member attribute's class when the
constructor call is not statically resolvable.  ``ignore(CCxxx)``
suppresses matching diagnostics on that line only — supported for
downstream users, but ``src/repro`` itself must contain none (enforced
by the self-hosting test).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "LockDecl",
    "QLock",
    "FieldGuard",
    "MethodDef",
    "ClassInfo",
    "PackageIndex",
    "FieldAccess",
    "Acquisition",
    "CallSite",
    "CondOp",
    "MethodSummary",
    "Pragma",
    "parse_pragmas",
    "pragma_for",
    "LOCK_KINDS",
    "REENTRANT_KINDS",
]

#: attribute-call kinds the analyzer models
LOCK_KINDS = ("lock", "rlock", "condition", "event")
#: kinds that may be re-acquired by the holding thread without deadlock
REENTRANT_KINDS = frozenset({"rlock", "condition"})


# -- pragmas ----------------------------------------------------------------

_PRAGMA_RE = re.compile(r"#\s*cc:\s*([a-z-]+)\s*\(([^)]*)\)")


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# cc:`` directive."""

    directive: str                 # guarded-by | requires | type | ignore
    args: tuple[str, ...]
    line: int

    @property
    def guard_path(self) -> tuple[str, ...]:
        """For guarded-by/requires: the dotted lock path, split."""
        return tuple(self.args[0].split("."))

    @property
    def atomic_reads(self) -> bool:
        return "atomic-reads" in self.args[1:]


_KNOWN_DIRECTIVES = frozenset({"guarded-by", "requires", "type", "ignore"})


def parse_pragmas(source: str) -> dict[int, Pragma]:
    """Map line number -> ``# cc:`` pragma for a module's source text.

    Unknown directives and malformed pragmas are returned with the
    directive name preserved so the linter can flag them (CC105) rather
    than silently ignoring a typo.
    """
    pragmas: dict[int, Pragma] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                if re.search(r"#\s*cc:", tok.string):
                    pragmas[tok.start[0]] = Pragma("<malformed>", (), tok.start[0])
                continue
            directive = match.group(1)
            args = tuple(
                a.strip() for a in match.group(2).split(",") if a.strip()
            )
            pragmas[tok.start[0]] = Pragma(directive, args, tok.start[0])
    except tokenize.TokenError:
        pass
    return pragmas


def pragma_for(
    pragmas: dict[int, Pragma], node: ast.AST, directive: str
) -> Optional[Pragma]:
    """The pragma of ``directive`` attached to ``node``'s source lines."""
    start = getattr(node, "lineno", None)
    if start is None:
        return None
    end = getattr(node, "end_lineno", start) or start
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # a def's pragma sits on the signature lines, not the body
        end = node.body[0].lineno - 1 if node.body else start
        end = max(end, start)
    for line in range(start, end + 1):
        pragma = pragmas.get(line)
        if pragma is not None and pragma.directive == directive:
            return pragma
    return None


# -- declarations -----------------------------------------------------------


@dataclass(frozen=True)
class LockDecl:
    """A lock-like attribute declared by a class."""

    attr: str
    kind: str                      # one of LOCK_KINDS
    owner: str                     # declaring class name
    line: int
    reentrant: bool

    @property
    def name(self) -> str:
        """Graph-node identity: ``DeclaringClass.attr``."""
        return f"{self.owner}.{self.attr}"


@dataclass(frozen=True)
class QLock:
    """A fully qualified lock: graph identity plus behavioral kind."""

    name: str                      # "Orchestrator._lock"
    kind: str
    reentrant: bool


@dataclass(frozen=True)
class FieldGuard:
    """A declared (pragma) guard for a field."""

    field: str
    guard_path: tuple[str, ...]
    atomic_reads: bool
    line: int


@dataclass
class MethodDef:
    """One method of a class, pre-pass."""

    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    requires: tuple[tuple[str, ...], ...] = ()   # lock paths from pragmas
    line: int = 0


@dataclass
class ClassInfo:
    """Everything pass 1 learns about one class definition."""

    name: str
    module: str                    # module file path (for diagnostics)
    line: int
    bases: tuple[str, ...] = ()
    locks: dict[str, LockDecl] = field(default_factory=dict)
    members: dict[str, str] = field(default_factory=dict)   # attr -> class name
    guards: dict[str, FieldGuard] = field(default_factory=dict)
    methods: dict[str, MethodDef] = field(default_factory=dict)

    def has_locks(self) -> bool:
        return bool(self.locks)


@dataclass
class PackageIndex:
    """All classes across the analyzed files, keyed by simple name.

    Name collisions keep the first definition seen (file order is
    sorted, so this is deterministic); the analyzer is conservative
    wherever resolution is ambiguous.
    """

    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def add(self, info: ClassInfo) -> None:
        self.classes.setdefault(info.name, info)

    def get(self, name: str) -> Optional[ClassInfo]:
        return self.classes.get(name)

    def resolved_locks(self, cls: ClassInfo) -> dict[str, LockDecl]:
        """Lock decls of ``cls`` including single-inherited base classes."""
        merged: dict[str, LockDecl] = {}
        for info in self.mro(cls):
            for attr, decl in info.locks.items():
                merged.setdefault(attr, decl)
        return merged

    def resolved_members(self, cls: ClassInfo) -> dict[str, str]:
        merged: dict[str, str] = {}
        for info in self.mro(cls):
            for attr, type_name in info.members.items():
                merged.setdefault(attr, type_name)
        return merged

    def resolved_guards(self, cls: ClassInfo) -> dict[str, FieldGuard]:
        merged: dict[str, FieldGuard] = {}
        for info in self.mro(cls):
            for attr, guard in info.guards.items():
                merged.setdefault(attr, guard)
        return merged

    def resolved_methods(self, cls: ClassInfo) -> dict[str, MethodDef]:
        merged: dict[str, MethodDef] = {}
        for info in self.mro(cls):
            for name, meth in info.methods.items():
                merged.setdefault(name, meth)
        return merged

    def mro(self, cls: ClassInfo) -> Iterable[ClassInfo]:
        """Linearized cls + known bases (cycle-safe, by simple name)."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            info = stack.pop(0)
            if info.name in seen:
                continue
            seen.add(info.name)
            yield info
            for base in info.bases:
                base_info = self.classes.get(base)
                if base_info is not None:
                    stack.append(base_info)


# -- per-method facts -------------------------------------------------------


@dataclass(frozen=True)
class FieldAccess:
    """A read/write/mutate of a self-rooted attribute path."""

    path: tuple[str, ...]          # ("_items",) or ("_latch", "_remaining")
    kind: str                      # "read" | "write" | "mutate"
    held: tuple[QLock, ...]
    line: int
    col: int


@dataclass(frozen=True)
class Acquisition:
    """A ``with <lock>:`` entry (or bare ``.acquire()``)."""

    lock: QLock
    held: tuple[QLock, ...]        # locks held *before* this acquisition
    line: int
    col: int


@dataclass(frozen=True)
class CallSite:
    """A call to a method of self or of a typed member."""

    target_class: str
    method: str
    held: tuple[QLock, ...]
    line: int
    col: int


@dataclass(frozen=True)
class CondOp:
    """A condvar/event verb: wait / wait_for / notify / notify_all."""

    lock: QLock
    op: str
    held: tuple[QLock, ...]
    in_while: bool                 # lexically inside a while loop
    timeout_inline_arith: bool     # timeout argument is inline arithmetic
    line: int
    col: int


@dataclass
class MethodSummary:
    """Everything pass 2 extracts from one method body."""

    cls: str
    method: str
    line: int
    accesses: list[FieldAccess] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    cond_ops: list[CondOp] = field(default_factory=list)
