"""Surrogate-fitness lint rules.

A code region is a candidate for neural-surrogate replacement only when it
behaves like a pure function of its declared inputs: deterministic, free of
I/O and hidden state, and mutating nothing the caller can observe except
the declared outputs (HPAC-ML and "Programming with Neural Surrogates"
both treat this as the defining property of a surrogate-able region).
These rules check that property — plus the consistency of the
``@code_region`` metadata the extractor relies on — on the AST, before any
trace-and-train cycle is spent.

Rule catalogue (ids are stable; see README.md "Static preflight"):

========  ========  =====================================================
id        severity  meaning
========  ========  =====================================================
SF001     info      no annotated regions found in the lint target
SF002     error     lint target cannot be resolved to a Python file
SF101     error     region has no (statically known) non-empty name
SF102     error     ``continuation_source`` does not parse
SF103     error     ``live_after`` names a variable the region never
                    writes (and that is not a parameter passed through)
SF104     warning   outputs underivable: no ``live_after``, no
                    ``continuation_source``, and no named final return
SF105     info      final return names not declared in ``live_after``
SF106     warning   ``live_after`` disagrees with liveness of
                    ``continuation_source`` (both given)
SF107     error     duplicate region name inside one module
SF201     error     nondeterministic call (random/time/uuid/secrets/...)
SF202     error     I/O call (print/open/input, sys.std*, logging, ...)
SF203     error     global/nonlocal mutation (``global``/``nonlocal``
                    declaration, or element/attribute write to a name not
                    bound in the region)
SF204     error     in-place mutation of an input argument that is not
                    declared ``live_after``
SF205     error     unsupported construct (exec/eval/compile, dynamic
                    attribute access via [gs]etattr, globals()/locals(),
                    import inside the region, yield/await)
SF206     warning   nested function/lambda closes over region-local state
SF301     warning   static-only input (cross-validation, crossval.py)
SF302     error     dynamic-only input (cross-validation)
SF303     warning   static-only output (cross-validation)
SF304     error     dynamic-only output (cross-validation)
========  ========  =====================================================

Concurrency rules (CC1xx guarded-by, CC2xx lock order, CC3xx condvars,
CC4xx lock-order cross-validation) are catalogued in
:mod:`repro.static.concurrency.rules` and merged into :data:`RULES`.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Optional

from ..extract.liveness import live_in
from .concurrency.rules import CC_RULES
from .diagnostics import Diagnostic, Severity
from .inference import RegionMeta, StaticRegionReport, function_params

__all__ = ["RULES", "run_rules"]

#: rule id -> (severity, one-line summary) — the documented catalogue
RULES: dict[str, tuple[Severity, str]] = {
    "SF001": (Severity.INFO, "no annotated regions found"),
    "SF002": (Severity.ERROR, "lint target cannot be resolved"),
    "SF101": (Severity.ERROR, "region has no non-empty name"),
    "SF102": (Severity.ERROR, "continuation_source does not parse"),
    "SF103": (Severity.ERROR, "live_after name never written by the region"),
    "SF104": (Severity.WARNING, "region outputs cannot be derived"),
    "SF105": (Severity.INFO, "returned name not declared live_after"),
    "SF106": (Severity.WARNING, "live_after inconsistent with continuation_source"),
    "SF107": (Severity.ERROR, "duplicate region name in module"),
    "SF201": (Severity.ERROR, "nondeterministic call in region"),
    "SF202": (Severity.ERROR, "I/O call in region"),
    "SF203": (Severity.ERROR, "global or nonlocal mutation in region"),
    "SF204": (Severity.ERROR, "mutation of input argument not declared live_after"),
    "SF205": (Severity.ERROR, "unsupported construct in region"),
    "SF206": (Severity.WARNING, "closure over region-local state"),
    "SF301": (Severity.WARNING, "static-only input (cross-validation)"),
    "SF302": (Severity.ERROR, "dynamic-only input (cross-validation)"),
    "SF303": (Severity.WARNING, "static-only output (cross-validation)"),
    "SF304": (Severity.ERROR, "dynamic-only output (cross-validation)"),
}
RULES.update(CC_RULES)

# call-name denylists (matched against the dotted source text of the callee)
_NONDET_PREFIXES = (
    "random.", "np.random.", "numpy.random.", "secrets.", "uuid.",
)
_NONDET_EXACT = frozenset({
    "random", "default_rng",
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "os.urandom", "os.getrandom",
})
_IO_PREFIXES = ("sys.stdout.", "sys.stderr.", "sys.stdin.", "logging.")
_IO_EXACT = frozenset({
    "print", "input", "open", "breakpoint",
    "os.remove", "os.unlink", "os.rename", "os.makedirs", "os.mkdir",
    "os.system", "os.popen", "subprocess.run", "subprocess.Popen",
    "subprocess.call", "subprocess.check_output",
})
_UNSUPPORTED_EXACT = frozenset({
    "exec", "eval", "compile", "globals", "locals", "vars",
    "setattr", "getattr", "delattr", "__import__",
})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _local_bindings(func: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
    """Names bound inside the function: params plus every plain-name store.

    Comprehension targets count too (harmlessly — they only ever *narrow*
    the global-mutation rule), but names bound by *nested* function bodies
    do not leak into the region scope.
    """
    bound: set[str] = set(function_params(func))
    skip_roots: set[int] = set()
    for node in ast.walk(func):
        if node is not func and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            for sub in ast.walk(node):
                skip_roots.add(id(sub))
            skip_roots.discard(id(node))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
    for node in ast.walk(func):
        if id(node) in skip_roots:
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return frozenset(bound)


def _diag(
    rule: str,
    message: str,
    node: ast.AST,
    meta: RegionMeta,
    filename: Optional[str],
    region: Optional[str],
) -> Diagnostic:
    severity, _ = RULES[rule]
    return Diagnostic(
        rule=rule,
        severity=severity,
        message=message,
        region=region,
        file=filename,
        line=getattr(node, "lineno", meta.lineno),
        col=getattr(node, "col_offset", 0),
    )


# -- metadata rules (SF1xx) ------------------------------------------------


def _metadata_rules(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    meta: RegionMeta,
    report: StaticRegionReport,
    filename: Optional[str],
) -> Iterator[Diagnostic]:
    region = report.region_name

    if meta.name is not None and not meta.name:
        yield _diag("SF101", "@code_region name is empty", func, meta, filename, region)

    continuation_live: Optional[frozenset[str]] = None
    if meta.continuation_source is not None:
        try:
            continuation_live = live_in(meta.continuation_source)
        except SyntaxError as exc:
            yield _diag(
                "SF102",
                f"continuation_source does not parse: {exc.msg} "
                f"(continuation line {exc.lineno})",
                func, meta, filename, region,
            )

    writes = set(report.writes)
    for name in meta.live_after or ():
        if name not in writes and name not in report.params:
            yield _diag(
                "SF103",
                f"live_after name {name!r} is never written by the region "
                f"(writes: {sorted(writes) or 'none'})",
                func, meta, filename, region,
            )

    if report.live is None:
        yield _diag(
            "SF104",
            "cannot derive outputs: no live_after, no continuation_source, "
            "and the final return does not name its values",
            func, meta, filename, region,
        )

    if meta.live_after:
        for name in report.returns:
            if name not in meta.live_after:
                yield _diag(
                    "SF105",
                    f"returned name {name!r} is not declared live_after "
                    "(dropped from the surrogate's outputs)",
                    func, meta, filename, region,
                )

    if meta.live_after and continuation_live is not None:
        declared = set(meta.live_after) & writes
        derived = set(continuation_live) & writes
        if declared != derived:
            yield _diag(
                "SF106",
                f"live_after {sorted(declared)} disagrees with liveness of "
                f"continuation_source {sorted(derived)}",
                func, meta, filename, region,
            )


# -- purity / construct rules (SF2xx) --------------------------------------


def _call_rules(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    meta: RegionMeta,
    filename: Optional[str],
    region: str,
) -> Iterator[Diagnostic]:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        if dotted in _UNSUPPORTED_EXACT:
            yield _diag(
                "SF205",
                f"call to {dotted}() — dynamic execution/attribute access "
                "cannot be traced or replayed by a surrogate",
                node, meta, filename, region,
            )
        elif dotted in _NONDET_EXACT or dotted.startswith(_NONDET_PREFIXES):
            yield _diag(
                "SF201",
                f"nondeterministic call {dotted}() — the region must be a "
                "deterministic function of its inputs",
                node, meta, filename, region,
            )
        elif dotted in _IO_EXACT or dotted.startswith(_IO_PREFIXES):
            yield _diag(
                "SF202",
                f"I/O call {dotted}() — a surrogate cannot reproduce side "
                "effects",
                node, meta, filename, region,
            )


def _construct_rules(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    meta: RegionMeta,
    report: StaticRegionReport,
    filename: Optional[str],
) -> Iterator[Diagnostic]:
    region = report.region_name
    local = _local_bindings(func)
    declared_live = set(meta.live_after or ())

    def base_name(target: ast.AST) -> Optional[str]:
        while isinstance(target, (ast.Subscript, ast.Attribute)):
            target = target.value
        return target.id if isinstance(target, ast.Name) else None

    def check_mutation(target: ast.AST) -> Iterator[Diagnostic]:
        """Element/attribute stores mutate the object the base name holds."""
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        base = base_name(target)
        if base is None:
            return
        kind = "element" if isinstance(target, ast.Subscript) else "attribute"
        if base in report.params:
            if base not in declared_live:
                yield _diag(
                    "SF204",
                    f"{kind} write mutates input argument {base!r}, which is "
                    "not declared live_after — the caller observes a side "
                    "effect the surrogate will not reproduce",
                    target, meta, filename, region,
                )
        elif base not in local and not hasattr(builtins, base):
            yield _diag(
                "SF203",
                f"{kind} write mutates global {base!r} — hidden state makes "
                "the region non-replayable",
                target, meta, filename, region,
            )

    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            yield _diag(
                "SF203",
                f"'global {', '.join(node.names)}' — the region writes "
                "module state",
                node, meta, filename, region,
            )
        elif isinstance(node, ast.Nonlocal):
            yield _diag(
                "SF203",
                f"'nonlocal {', '.join(node.names)}' — the region writes "
                "enclosing-scope state",
                node, meta, filename, region,
            )
        elif isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
            getattr(node, "ctx", None), (ast.Store, ast.Del)
        ):
            yield from check_mutation(node)
        elif isinstance(node, ast.AugAssign):
            yield from check_mutation(node.target)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            yield _diag(
                "SF205",
                "import inside the region — move imports to module scope so "
                "the region stays a pure data transformation",
                node, meta, filename, region,
            )
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            yield _diag(
                "SF205",
                "yield inside the region — generators cannot be replaced by "
                "a one-shot surrogate",
                node, meta, filename, region,
            )
        elif isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            yield _diag(
                "SF205",
                "async construct inside the region — the tracer and runtime "
                "replay are synchronous",
                node, meta, filename, region,
            )


def _closure_rules(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    meta: RegionMeta,
    filename: Optional[str],
    region: str,
) -> Iterator[Diagnostic]:
    outer = _local_bindings(func)
    for node in ast.walk(func):
        if node is func or not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        inner_bound = set(
            function_params(node) if not isinstance(node, ast.Lambda)
            else [a.arg for a in (*node.args.posonlyargs, *node.args.args,
                                  *node.args.kwonlyargs)]
        )
        body = node.body if isinstance(node.body, list) else [node.body]
        for sub in body:
            for name in ast.walk(sub):
                if isinstance(name, ast.Name) and isinstance(name.ctx, ast.Store):
                    inner_bound.add(name.id)
        captured = sorted(
            name.id
            for sub in body
            for name in ast.walk(sub)
            if isinstance(name, ast.Name)
            and isinstance(name.ctx, ast.Load)
            and name.id in outer
            and name.id not in inner_bound
        )
        if captured:
            label = getattr(node, "name", "<lambda>")
            yield _diag(
                "SF206",
                f"nested {label!r} closes over region variables "
                f"{captured} — captured state is invisible to the tracer",
                node, meta, filename, region,
            )


# -- entry point -----------------------------------------------------------


def run_rules(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    meta: RegionMeta,
    report: StaticRegionReport,
    filename: Optional[str] = None,
) -> list[Diagnostic]:
    """All per-region rule diagnostics for one region definition."""
    region = report.region_name
    diags = list(_metadata_rules(func, meta, report, filename))
    diags.extend(_call_rules(func, meta, filename, region))
    diags.extend(_construct_rules(func, meta, report, filename))
    diags.extend(_closure_rules(func, meta, filename, region))
    return diags
