"""Pipeline preflight: refuse to acquire data for an unfit region.

A bad annotation — an impure region, hidden global state, metadata that
contradicts the code — used to surface only after an expensive
trace-and-train cycle, or worse, as a silently wrong surrogate.  The
preflight runs the static linter on the region *before*
:meth:`AutoHPCnet.build` spends anything, and (configurably) refuses to
continue on error-level findings.

Modes (``AutoHPCnetConfig.preflight``):

* ``"error"`` (default) — raise :class:`PreflightError` on error-level
  diagnostics; warnings are emitted via :mod:`warnings`;
* ``"warn"`` — emit everything as warnings, never refuse;
* ``"off"`` — skip the preflight entirely.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Sequence

from .diagnostics import Diagnostic, Severity
from .linter import lint_region_fn

__all__ = [
    "PreflightError",
    "PreflightWarning",
    "preflight_region",
    "preflight_concurrency",
    "PREFLIGHT_MODES",
]

PREFLIGHT_MODES = ("off", "warn", "error")


class PreflightWarning(UserWarning):
    """Non-fatal static-preflight findings."""


class PreflightError(RuntimeError):
    """The region failed the static surrogate-fitness preflight."""

    def __init__(self, region: str, diagnostics: Sequence[Diagnostic]) -> None:
        self.region = region
        self.diagnostics = tuple(diagnostics)
        errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
        lines = "\n".join(f"  {d.format()}" for d in errors)
        super().__init__(
            f"region {region!r} failed the static surrogate-fitness "
            f"preflight with {len(errors)} error(s):\n{lines}\n"
            "(fix the region/annotation, or set preflight='warn'/'off' in "
            "AutoHPCnetConfig to override)"
        )


def preflight_region(fn, *, mode: str = "error") -> list[Diagnostic]:
    """Lint ``fn`` and enforce ``mode``; returns the diagnostics found."""
    if mode not in PREFLIGHT_MODES:
        raise ValueError(
            f"unknown preflight mode {mode!r}; expected one of {PREFLIGHT_MODES}"
        )
    if mode == "off":
        return []
    report, diags = lint_region_fn(fn)
    errors = [d for d in diags if d.severity >= Severity.ERROR]
    if errors and mode == "error":
        raise PreflightError(report.region_name, diags)
    for d in diags:
        if d.severity >= Severity.WARNING:
            warnings.warn(d.format(), PreflightWarning, stacklevel=2)
    return diags


def preflight_concurrency(
    target: Optional[str] = None, *, mode: str = "off"
) -> list[Diagnostic]:
    """Run the CC concurrency rules over ``target`` and enforce ``mode``.

    ``target`` defaults to the installed ``repro`` package itself — the
    serving stack the pipeline is about to trust.  Off by default
    (``AutoHPCnetConfig.preflight_concurrency``): the region preflight
    guards *user* code on every build, while this guards *our* runtime
    and is primarily a CI/deploy gate.
    """
    if mode not in PREFLIGHT_MODES:
        raise ValueError(
            f"unknown preflight mode {mode!r}; expected one of {PREFLIGHT_MODES}"
        )
    if mode == "off":
        return []
    from .concurrency.linter import lint_concurrency

    if target is None:
        import repro

        target = os.path.dirname(os.path.abspath(repro.__file__))
    report = lint_concurrency(target)
    diags = report.diagnostics
    errors = [d for d in diags if d.severity >= Severity.ERROR]
    if errors and mode == "error":
        raise PreflightError(f"concurrency:{target}", diags)
    for d in diags:
        if d.severity >= Severity.WARNING:
            warnings.warn(d.format(), PreflightWarning, stacklevel=2)
    return diags
