"""Static region dataflow: infer inputs/outputs without running the code.

The dynamic extractor (:mod:`repro.extract`) identifies a region's inputs
as the variables whose version-0 value is read in the traced DDDG, and its
outputs as the written variables that are live after the region.  This
module computes the same two sets *statically*, from the region function's
AST alone:

* **inputs** — parameters read before they are (must-)written, via a
  forward scan of the body that reuses the per-statement read/write sets
  of :func:`repro.extract.analysis.analyze_statement`;
* **outputs** — names written anywhere in the body, intersected with the
  live-after set (``live_after`` from the directive, liveness of
  ``continuation_source`` via :func:`repro.extract.liveness.live_in`, or
  the names of the final ``return``).

Branches and loops are handled conservatively for the *read* side (every
reachable read counts) and precisely for the *kill* side (only writes that
must execute kill a later read), so the static input set over-approximates
any single dynamic trace — which is exactly what the cross-validation pass
(:mod:`repro.static.crossval`) exploits.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
from dataclasses import dataclass
from typing import Optional

from ..extract.analysis import analyze_statement
from ..extract.directives import get_region_spec
from ..extract.liveness import live_in

__all__ = [
    "RegionMeta",
    "StaticRegionReport",
    "infer_function",
    "infer_region_fn",
    "function_params",
    "returned_names_ast",
    "region_function_ast",
]


@dataclass(frozen=True)
class RegionMeta:
    """The ``@code_region`` metadata as far as it is statically known.

    ``live_after=None`` (as opposed to ``()``) means the value could not be
    determined statically (e.g. a non-literal decorator argument); rules
    that depend on it are skipped rather than guessed at.
    """

    name: Optional[str] = None
    live_after: Optional[tuple[str, ...]] = None
    continuation_source: Optional[str] = None
    lineno: int = 0


@dataclass(frozen=True)
class StaticRegionReport:
    """Everything the static analyzer inferred about one region."""

    region_name: str
    function_name: str
    params: tuple[str, ...]
    inputs: tuple[str, ...]        # params read before must-written
    free_reads: tuple[str, ...]    # non-param, non-builtin read-before-write
    writes: tuple[str, ...]        # every name written anywhere in the body
    returns: tuple[str, ...]       # names of the final return statement
    live: Optional[tuple[str, ...]]  # resolved live-after set (None: unknown)
    outputs: tuple[str, ...]       # writes ∩ live
    lineno: int = 0


# -- helpers ---------------------------------------------------------------


def function_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """All parameter names of a function definition."""
    a = func.args
    params = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg:
        params.append(a.vararg.arg)
    if a.kwarg:
        params.append(a.kwarg.arg)
    return tuple(params)


def returned_names_ast(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """Names returned by the function's final ``return`` (AST analogue of
    :func:`repro.extract.sampling.returned_names`)."""
    returns = [
        n for n in ast.walk(func)
        if isinstance(n, ast.Return) and n.value is not None
    ]
    if not returns:
        return ()
    value = returns[-1].value
    if isinstance(value, ast.Name):
        return (value.id,)
    if isinstance(value, ast.Tuple) and all(
        isinstance(e, ast.Name) for e in value.elts
    ):
        return tuple(e.id for e in value.elts)
    return ()


def _comprehension_targets(stmt: ast.AST) -> frozenset[str]:
    """Names bound by comprehension generators anywhere under ``stmt``.

    Comprehensions have their own scope in Python 3, but the statement-level
    read/write analysis flattens them; excluding their targets keeps a
    generator variable from looking like a read-before-write free name.
    """
    targets: set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                for name in ast.walk(gen.target):
                    if isinstance(name, ast.Name):
                        targets.add(name.id)
    return frozenset(targets)


class _BodyScan:
    """Forward scan: read-before-write and write sets of a statement list."""

    def __init__(self) -> None:
        self.reads_before_write: set[str] = set()
        self.writes: set[str] = set()

    def scan(self, body: list[ast.stmt], written: set[str]) -> set[str]:
        """Scan ``body`` given the must-written set on entry.

        Returns the must-written set on (normal) exit; mutates the
        instance's accumulated read/write sets.
        """
        for stmt in body:
            written = self._scan_stmt(stmt, written)
        return written

    # -- per-statement ----------------------------------------------------

    def _record(self, reads: set[str], writes: set[str],
                written: set[str], *, must: bool) -> set[str]:
        self.reads_before_write |= reads - written
        self.writes |= writes
        if must:
            written = written | writes
        return written

    def _simple(self, stmt: ast.stmt, written: set[str], *, must: bool = True) -> set[str]:
        info = analyze_statement(stmt, -1)
        comp = _comprehension_targets(stmt)
        return self._record(
            set(info.reads) - comp, set(info.writes) - comp, written, must=must
        )

    def _scan_stmt(self, stmt: ast.stmt, written: set[str]) -> set[str]:
        if isinstance(stmt, ast.If):
            written = self._simple(stmt, written, must=False)  # header test
            after_body = self.scan(stmt.body, set(written))
            after_else = self.scan(stmt.orelse, set(written))
            return written | (after_body & after_else)
        if isinstance(stmt, ast.For):
            written = self._simple(stmt, written, must=False)  # iter reads
            header = analyze_statement(stmt, -1)
            # the target is bound before each iteration of the body
            self.scan(stmt.body, written | set(header.writes))
            self.writes |= set(header.writes)
            self.scan(stmt.orelse, set(written))
            return written  # body/target writes are may-writes (0 iterations)
        if isinstance(stmt, ast.While):
            written = self._simple(stmt, written, must=False)  # test reads
            self.scan(stmt.body, set(written))
            self.scan(stmt.orelse, set(written))
            return written
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                reads = _expr_names(item.context_expr, ast.Load)
                writes = (
                    _expr_names(item.optional_vars, ast.Store)
                    if item.optional_vars is not None else set()
                )
                written = self._record(reads, writes, written, must=True)
            return self.scan(stmt.body, written)
        if isinstance(stmt, ast.Try):
            self.scan(stmt.body, set(written))
            for handler in stmt.handlers:
                bound = {handler.name} if handler.name else set()
                self.scan(handler.body, written | bound)
                self.writes |= bound
            self.scan(stmt.orelse, set(written))
            return self.scan(stmt.finalbody, written)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # a nested def only *binds* its name; its body runs later
            self.writes.add(stmt.name)
            return written | {stmt.name}
        return self._simple(stmt, written)


def _expr_names(node: ast.AST, ctx: type) -> set[str]:
    return {
        n.id for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ctx)
    }


# -- public API ------------------------------------------------------------


def _resolve_live(
    meta: RegionMeta, returns: tuple[str, ...]
) -> Optional[tuple[str, ...]]:
    """Same precedence as :func:`repro.extract.acquisition.acquire`."""
    if meta.live_after:
        return tuple(meta.live_after)
    if meta.continuation_source:
        try:
            return tuple(sorted(live_in(meta.continuation_source)))
        except SyntaxError:
            return None  # reported separately as a metadata diagnostic
    if returns:
        return tuple(returns)
    return None


def infer_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    meta: RegionMeta,
) -> StaticRegionReport:
    """Infer the input/output sets of one region function definition."""
    params = function_params(func)
    # scan with nothing pre-written: a param read before the body writes it
    # is an input, and any other read-before-write is a free (module) name
    scan = _BodyScan()
    scan.scan(func.body, set())
    rbw = scan.reads_before_write
    inputs = tuple(sorted(set(params) & rbw))
    free = tuple(
        sorted(
            name for name in rbw
            if name not in params and not hasattr(builtins, name)
        )
    )
    returns = returned_names_ast(func)
    live = _resolve_live(meta, returns)
    writes = tuple(sorted(scan.writes))
    outputs = (
        tuple(sorted(set(writes) & set(live))) if live is not None else ()
    )
    return StaticRegionReport(
        region_name=meta.name or func.name,
        function_name=func.name,
        params=params,
        inputs=inputs,
        free_reads=free,
        writes=writes,
        returns=returns,
        live=live,
        outputs=outputs,
        lineno=func.lineno,
    )


def region_function_ast(fn) -> tuple[ast.FunctionDef, str, int]:
    """Parse a live region function back to its definition AST.

    Returns ``(func_ast, filename, first_line)`` with line numbers shifted
    to match the source file, so diagnostics point at real locations.
    """
    source, first_line = inspect.getsourcelines(fn)
    tree = ast.parse(textwrap.dedent("".join(source)))
    ast.increment_lineno(tree, first_line - 1)
    func = next(
        n for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    filename = inspect.getsourcefile(fn) or "<unknown>"
    return func, filename, first_line


def infer_region_fn(fn) -> StaticRegionReport:
    """Run static inference on a live ``@code_region`` function."""
    spec = get_region_spec(fn)
    func, _, _ = region_function_ast(fn)
    meta = RegionMeta(
        name=spec.name,
        live_after=tuple(spec.live_after),
        continuation_source=spec.continuation_source,
        lineno=func.lineno,
    )
    return infer_function(func, meta)
