"""Diagnostic model of the static surrogate-fitness analyzer.

Every check in :mod:`repro.static` — metadata validation, purity linting,
static/dynamic cross-validation — reports its findings as
:class:`Diagnostic` records: a stable rule id, a severity, a source
location and a human-readable message.  :class:`LintReport` aggregates the
diagnostics for one lint target and renders them as text (one
``file:line:col`` line per finding, the format editors and CI annotate) or
as JSON (for machine consumption).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Optional, Sequence

__all__ = ["Severity", "Diagnostic", "LintReport"]


class Severity(IntEnum):
    """Diagnostic severity; ordering allows threshold comparisons."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {label!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    rule: str                      # stable id, e.g. "SF201"
    severity: Severity
    message: str
    region: Optional[str] = None   # region name the finding concerns
    file: Optional[str] = None
    line: int = 0
    col: int = 0

    def format(self) -> str:
        location = f"{self.file or '<unknown>'}:{self.line}:{self.col}"
        scope = f" [{self.region}]" if self.region else ""
        return f"{location}: {self.severity.label} {self.rule}{scope}: {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "region": self.region,
            "file": self.file,
            "line": self.line,
            "col": self.col,
        }


@dataclass
class LintReport:
    """All diagnostics produced for one lint target."""

    target: str
    regions: tuple[str, ...] = ()
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def filter(
        self,
        select: Sequence[str] = (),
        ignore: Sequence[str] = (),
    ) -> "LintReport":
        """A copy keeping only rules matching ``select`` minus ``ignore``.

        Codes are prefix-matched case-insensitively, so ``CC`` selects
        every concurrency rule and ``CC1`` just the guarded-by family.
        An empty ``select`` keeps everything.
        """
        selects = tuple(code.upper() for code in select)
        ignores = tuple(code.upper() for code in ignore)

        def keep(diag: Diagnostic) -> bool:
            if selects and not diag.rule.upper().startswith(selects):
                return False
            return not (ignores and diag.rule.upper().startswith(ignores))

        return LintReport(
            target=self.target,
            regions=self.regions,
            diagnostics=[d for d in self.diagnostics if keep(d)],
        )

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def counts(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for d in self.diagnostics:
            counts[d.severity.label] += 1
        return counts

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """0 when clean at the threshold, 1 otherwise (CI contract)."""
        return 1 if self.at_least(fail_on) else 0

    # -- rendering --------------------------------------------------------

    def format_text(self) -> str:
        lines = [f"lint {self.target}: {len(self.regions)} region(s) "
                 f"{list(self.regions)}"]
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.file or "", d.line, d.rule),
        )
        lines.extend(d.format() for d in ordered)
        c = self.counts()
        lines.append(
            f"{c['error']} error(s), {c['warning']} warning(s), {c['info']} info"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "target": self.target,
            "regions": list(self.regions),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "summary": self.counts(),
        }

    def format_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)
