"""Static surrogate-fitness analysis: preflight pass, linter, cross-validation.

This subpackage is the correctness-tooling layer in front of the dynamic
extractor.  It answers, *without running the region*, the two questions
the pipeline otherwise discovers the expensive way:

1. **What are the region's inputs and outputs?**
   (:mod:`~repro.static.inference` — AST read-before-write analysis plus
   liveness of the continuation.)
2. **Is the region fit to be replaced by a surrogate at all?**
   (:mod:`~repro.static.rules` — determinism, purity, argument-mutation
   and metadata-consistency rules with stable ``SFxxx`` ids.)

A third pass (:mod:`~repro.static.crossval`) diffs the static answer
against the dynamic DDDG of a traced region, so each analysis checks the
other.  Entry points::

    from repro.static import lint_module, lint_region_fn   # linter
    from repro.static import cross_validate                # static vs trace
    from repro.static import preflight_region              # pipeline hook

plus the ``repro lint`` CLI subcommand (see README.md).
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .inference import (
    RegionMeta,
    StaticRegionReport,
    infer_function,
    infer_region_fn,
)
from .rules import RULES, run_rules
from .linter import (
    discover_regions,
    lint_directory,
    lint_module,
    lint_path,
    lint_region_fn,
    lint_source,
    resolve_target,
)
from .crossval import CrossValidation, cross_validate
from .concurrency import (
    CC_RULES,
    LockOrderCrossValidation,
    LockOrderGraph,
    cross_validate_lock_orders,
    lint_concurrency,
    lock_order_graph,
)
from .preflight import (
    PREFLIGHT_MODES,
    PreflightError,
    PreflightWarning,
    preflight_concurrency,
    preflight_region,
)

__all__ = [
    "Diagnostic", "LintReport", "Severity",
    "RegionMeta", "StaticRegionReport", "infer_function", "infer_region_fn",
    "RULES", "run_rules",
    "discover_regions", "lint_directory", "lint_module", "lint_path",
    "lint_region_fn", "lint_source", "resolve_target",
    "CrossValidation", "cross_validate",
    "CC_RULES", "LockOrderCrossValidation", "LockOrderGraph",
    "cross_validate_lock_orders", "lint_concurrency", "lock_order_graph",
    "PREFLIGHT_MODES", "PreflightError", "PreflightWarning",
    "preflight_concurrency", "preflight_region",
]
