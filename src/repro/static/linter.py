"""Region discovery and the lint driver.

Two front ends share the same inference + rules core:

* :func:`lint_path` / :func:`lint_source` — **pure AST**: the target file
  is parsed, never imported, so linting untrusted or heavyweight modules
  is free of side effects.  ``@code_region`` metadata is recovered from
  the decorator's literal arguments.
* :func:`lint_region_fn` — **runtime**: a live decorated function is
  analyzed via its attached :class:`RegionSpec` (authoritative metadata)
  and ``inspect``-recovered source, with line numbers mapped back to the
  defining file.

Both return plain :class:`Diagnostic` lists; :func:`lint_module` wraps
them into a :class:`LintReport` for the CLI.
"""

from __future__ import annotations

import ast
import importlib.util
import os
from typing import Optional

from .concurrency.linter import collect_sources, lint_concurrency_source
from .diagnostics import Diagnostic, LintReport, Severity
from .inference import (
    RegionMeta,
    StaticRegionReport,
    infer_function,
    region_function_ast,
)
from .rules import run_rules

__all__ = [
    "discover_regions",
    "lint_source",
    "lint_path",
    "lint_directory",
    "lint_region_fn",
    "lint_module",
    "resolve_target",
]

_DECORATOR_NAMES = ("code_region",)


def _decorator_call(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Optional[ast.Call]:
    """The ``@code_region(...)`` decorator call, if present."""
    for deco in func.decorator_list:
        node = deco
        if isinstance(node, ast.Call):
            target = node.func
        else:
            target = node
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name in _DECORATOR_NAMES:
            return node if isinstance(node, ast.Call) else ast.Call(
                func=target, args=[], keywords=[]
            )
    return None


def _literal(node: ast.AST):
    """``ast.literal_eval`` that returns None instead of raising."""
    try:
        return ast.literal_eval(node)
    except (ValueError, TypeError, SyntaxError, MemoryError):
        return None


def _meta_from_decorator(call: ast.Call, func: ast.FunctionDef) -> RegionMeta:
    name = None
    live_after: Optional[tuple[str, ...]] = ()
    continuation = None
    if call.args:
        value = _literal(call.args[0])
        name = value if isinstance(value, str) else None
    for kw in call.keywords:
        if kw.arg == "name":
            value = _literal(kw.value)
            name = value if isinstance(value, str) else None
        elif kw.arg == "live_after":
            value = _literal(kw.value)
            if value is None and not isinstance(kw.value, ast.Constant):
                live_after = None  # non-literal: statically unknown
            else:
                try:
                    live_after = tuple(str(v) for v in (value or ()))
                except TypeError:
                    live_after = None
        elif kw.arg == "continuation_source":
            value = _literal(kw.value)
            continuation = value if isinstance(value, str) else None
    return RegionMeta(
        name=name,
        live_after=live_after,
        continuation_source=continuation,
        lineno=func.lineno,
    )


def discover_regions(
    tree: ast.Module,
) -> list[tuple[ast.FunctionDef, RegionMeta]]:
    """All ``@code_region``-decorated function definitions in a module AST."""
    regions = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            call = _decorator_call(node)
            if call is not None:
                regions.append((node, _meta_from_decorator(call, node)))
    return regions


def _lint_one(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    meta: RegionMeta,
    filename: Optional[str],
) -> tuple[StaticRegionReport, list[Diagnostic]]:
    report = infer_function(func, meta)
    return report, run_rules(func, meta, report, filename)


def lint_source(
    source: str, filename: str = "<string>", *, concurrency: bool = True
) -> LintReport:
    """Pure-AST lint of a module's source text (SF rules plus, unless
    disabled, the single-file concurrency CC rules)."""
    report = LintReport(target=filename)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.diagnostics.append(
            Diagnostic(
                rule="SF102",
                severity=Severity.ERROR,
                message=f"module does not parse: {exc.msg}",
                file=filename,
                line=exc.lineno or 0,
            )
        )
        return report

    regions = discover_regions(tree)
    names: list[str] = []
    seen: dict[str, int] = {}
    for func, meta in regions:
        static_report, diags = _lint_one(func, meta, filename)
        names.append(static_report.region_name)
        report.extend(diags)
        key = meta.name or static_report.region_name
        if key in seen:
            report.diagnostics.append(
                Diagnostic(
                    rule="SF107",
                    severity=Severity.ERROR,
                    message=(
                        f"duplicate region name {key!r} (first defined at "
                        f"line {seen[key]})"
                    ),
                    region=key,
                    file=filename,
                    line=func.lineno,
                )
            )
        else:
            seen[key] = func.lineno
    report.regions = tuple(names)

    if not regions:
        report.diagnostics.append(
            Diagnostic(
                rule="SF001",
                severity=Severity.INFO,
                message="no @code_region-annotated functions found",
                file=filename,
            )
        )
    if concurrency:
        report.extend(lint_concurrency_source(source, filename).diagnostics)
    return report


def lint_path(path: str) -> LintReport:
    """Pure-AST lint of a Python file (the file is read, never imported)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, filename=path)


def lint_directory(target: str) -> LintReport:
    """Lint every ``*.py`` under a directory as one package.

    SF rules run per file (the per-file "no regions" info is dropped —
    most modules of a package rightly have none); CC rules run once over
    the whole package so lock-order edges cross file boundaries.
    """
    from .concurrency.linter import lint_concurrency

    report = LintReport(target=target)
    names: list[str] = []
    for path, source in collect_sources(target):
        sub = lint_source(source, filename=path, concurrency=False)
        names.extend(sub.regions)
        report.extend(d for d in sub.diagnostics if d.rule != "SF001")
    report.regions = tuple(names)
    report.extend(lint_concurrency(target).diagnostics)
    return report


def lint_region_fn(fn) -> tuple[StaticRegionReport, list[Diagnostic]]:
    """Lint one live ``@code_region`` function using its attached spec."""
    from ..extract.directives import get_region_spec

    spec = get_region_spec(fn)
    func, filename, _ = region_function_ast(fn)
    meta = RegionMeta(
        name=spec.name,
        live_after=tuple(spec.live_after),
        continuation_source=spec.continuation_source,
        lineno=func.lineno,
    )
    return _lint_one(func, meta, filename)


def resolve_target(target: str) -> Optional[str]:
    """Map a lint target (file path or dotted module name) to a file path.

    Returns None when the target cannot be resolved.  Dotted names are
    located with :func:`importlib.util.find_spec` — the module file is
    found but **not** imported.
    """
    if os.path.isfile(target):
        return target
    if "/" in target or target.endswith(".py"):
        return None
    try:
        spec = importlib.util.find_spec(target)
    except (ImportError, ValueError, ModuleNotFoundError):
        return None
    if spec is None or not spec.origin or spec.origin == "built-in":
        return None
    return spec.origin


def lint_module(target: str) -> LintReport:
    """Lint a file, directory, or dotted module name; never imports it."""
    if os.path.isdir(target):
        return lint_directory(target)
    path = resolve_target(target)
    if path is None:
        report = LintReport(target=target)
        report.diagnostics.append(
            Diagnostic(
                rule="SF002",
                severity=Severity.ERROR,
                message=(
                    f"cannot resolve lint target {target!r} to a Python "
                    "file (expected a path, dotted module, or app name)"
                ),
            )
        )
        return report
    report = lint_path(path)
    report.target = target if target == path else f"{target} ({path})"
    return report
