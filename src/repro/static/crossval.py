"""Static/dynamic cross-validation of region I/O identification.

The dynamic extractor (trace → DDDG → :func:`classify_io`) and the static
analyzer (:mod:`repro.static.inference`) answer the same question — which
variables are the region's inputs and outputs — from independent evidence.
Running both and diffing the answers catches exactly the failures each
side is blind to:

* a **dynamic-only** input/output means the trace observed dataflow the
  AST pass missed — a hole in the static model (or monkey-business like
  ``exec``), reported as an **error**;
* a **static-only** input/output means the AST sees a read/write the
  example trace never exercised — usually an input-dependent branch, so
  the training samples may not cover that path; reported as a **warning**.

Agreement on both sets is the preflight's strongest signal that the
annotation, the tracer and the analyzer all describe the same region.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..extract.dddg import build_dddg
from ..extract.directives import get_region_spec
from ..extract.liveness import live_in
from ..extract.sampling import returned_names
from ..extract.tracer import RegionTracer
from .diagnostics import Diagnostic, Severity
from .inference import StaticRegionReport, infer_region_fn

__all__ = ["CrossValidation", "cross_validate"]

_RULES = {
    "static_only_input": ("SF301", Severity.WARNING),
    "dynamic_only_input": ("SF302", Severity.ERROR),
    "static_only_output": ("SF303", Severity.WARNING),
    "dynamic_only_output": ("SF304", Severity.ERROR),
}


@dataclass(frozen=True)
class CrossValidation:
    """Both answers plus the disagreement diagnostics."""

    region_name: str
    static_inputs: tuple[str, ...]
    dynamic_inputs: tuple[str, ...]
    static_outputs: tuple[str, ...]
    dynamic_outputs: tuple[str, ...]
    diagnostics: tuple[Diagnostic, ...]

    @property
    def agrees(self) -> bool:
        return not self.diagnostics

    def summary(self) -> str:
        status = "agree" if self.agrees else f"{len(self.diagnostics)} disagreement(s)"
        return (
            f"cross-validation {self.region_name!r}: {status}; "
            f"inputs static={list(self.static_inputs)} "
            f"dynamic={list(self.dynamic_inputs)}; "
            f"outputs static={list(self.static_outputs)} "
            f"dynamic={list(self.dynamic_outputs)}"
        )


def _resolve_live(spec, region_fn) -> frozenset[str]:
    """Same precedence as :func:`repro.extract.acquisition.acquire`."""
    if spec.live_after:
        return frozenset(spec.live_after)
    if spec.continuation_source:
        return live_in(spec.continuation_source)
    return frozenset(returned_names(region_fn))


def _diff(
    kind: str,
    names: set[str],
    region: str,
    report: StaticRegionReport,
    filename: Optional[str],
) -> list[Diagnostic]:
    rule, severity = _RULES[kind]
    side, _, what = kind.partition("_only_")
    other = "dynamic trace" if side == "static" else "static analysis"
    return [
        Diagnostic(
            rule=rule,
            severity=severity,
            message=(
                f"{side}-only {what} {name!r}: identified by "
                f"{side} analysis but not by the {other}"
            ),
            region=region,
            file=filename,
            line=report.lineno,
        )
        for name in sorted(names)
    ]


def cross_validate(
    region_fn,
    example_inputs: Mapping[str, Any],
    *,
    dddg_workers: int = 1,
) -> CrossValidation:
    """Trace the region on ``example_inputs`` and diff dynamic vs static I/O.

    Inputs are compared as *parameters read at version 0* on both sides
    (before the dynamic side's data-type filtering, which needs runtime
    values the static side deliberately never looks at); outputs as
    *written ∩ live-after*.
    """
    spec = get_region_spec(region_fn)
    report = infer_region_fn(region_fn)
    filename = inspect.getsourcefile(region_fn)

    tracer = RegionTracer(region_fn)
    _, trace = tracer.trace(**example_inputs)
    dddg = build_dddg(trace, workers=dddg_workers)
    live = _resolve_live(spec, region_fn)

    params = set(report.params)
    dynamic_inputs = frozenset(dddg.root_reads) & params
    static_inputs = frozenset(report.inputs)
    dynamic_outputs = frozenset(dddg.written) & live
    static_outputs = frozenset(report.outputs)

    diags: list[Diagnostic] = []
    diags += _diff("static_only_input", set(static_inputs - dynamic_inputs),
                   spec.name, report, filename)
    diags += _diff("dynamic_only_input", set(dynamic_inputs - static_inputs),
                   spec.name, report, filename)
    diags += _diff("static_only_output", set(static_outputs - dynamic_outputs),
                   spec.name, report, filename)
    diags += _diff("dynamic_only_output", set(dynamic_outputs - static_outputs),
                   spec.name, report, filename)

    return CrossValidation(
        region_name=spec.name,
        static_inputs=tuple(sorted(static_inputs)),
        dynamic_inputs=tuple(sorted(dynamic_inputs)),
        static_outputs=tuple(sorted(static_outputs)),
        dynamic_outputs=tuple(sorted(dynamic_outputs)),
        diagnostics=tuple(diags),
    )
