"""``repro lifecycle`` — operator controls for the closed loop.

The CLI talks only to the persisted lifecycle artifact; it never needs
the serving process.  ``status`` prints the latest record (full history
included), the other actions record an override the running controller
consumes on its next step::

    repro lifecycle status  out/ --model heat3d
    repro lifecycle trigger out/ --model heat3d   # force a loop iteration
    repro lifecycle promote out/ --model heat3d   # end the canary, keep it
    repro lifecycle abort   out/ --model heat3d   # end the canary, drop it
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..registry import ModelRegistry
from .state import LifecycleState, LifecycleStore

__all__ = ["add_lifecycle_parser", "cmd_lifecycle"]


def add_lifecycle_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "lifecycle",
        help="inspect or steer a model's drift/retrain/canary loop",
    )
    parser.add_argument(
        "action",
        choices=("status", "trigger", "promote", "abort"),
        help="status: print the persisted record; trigger: force a loop "
        "iteration; promote/abort: end the in-flight canary",
    )
    parser.add_argument(
        "dir",
        help="build output directory (the --out of `repro build`; the "
        "registry lives under <dir>/registry unless --registry is given)",
    )
    parser.add_argument(
        "--model", required=True, help="registry artifact name of the model"
    )
    parser.add_argument(
        "--registry", default=None,
        help="registry directory (default: <dir>/registry)",
    )


def cmd_lifecycle(args: argparse.Namespace) -> int:
    registry_dir = args.registry or str(Path(args.dir) / "registry")
    registry = ModelRegistry(registry_dir)
    store = LifecycleStore(registry, args.model)
    record = store.load()
    if args.action == "status":
        if record is None:
            print(f"{args.model}: no lifecycle state recorded")
            return 0
        print(json.dumps(record.to_payload(), indent=2))
        return 0
    if args.action in ("promote", "abort"):
        # promote/abort steer an in-flight canary; recording them in any
        # other state would plant a stale override that fires much later
        if record is None or record.state is not LifecycleState.CANARY:
            state = "absent" if record is None else record.state.value
            print(
                f"{args.model}: cannot {args.action} — lifecycle state is "
                f"{state}, not CANARY",
                file=sys.stderr,
            )
            return 1
    record = store.request(args.action)
    print(
        f"{args.model}: {args.action} recorded "
        f"(state {record.state.value}, seq {record.seq})"
    )
    return 0
