"""Bounded buffer of labeled guarded traffic for retraining.

Ground truth exists for free exactly once: when the guard restarts on
the original code (§7.1), the exact outputs it just computed label the
input that defeated the surrogate.  The buffer collects those
``(x, y)`` pairs — in *model space* (scaled input row, scaled output
row), so a retrainer can fit on them directly — bounded to the newest
``capacity`` samples so drifted traffic ages out stale regimes.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

__all__ = ["TrafficBuffer"]


class TrafficBuffer:
    """Thread-safe ring buffer of ``(x_row, y_row)`` training pairs."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._pairs: "deque[tuple[np.ndarray, np.ndarray]]" = deque(  # cc: guarded-by(_lock)
            maxlen=self.capacity
        )
        self._lock = threading.Lock()

    def add(self, x: np.ndarray, y: np.ndarray) -> None:
        """Append one labeled sample (copies: callers may reuse arrays)."""
        pair = (
            np.array(np.asarray(x, dtype=np.float64).ravel(), copy=True),
            np.array(np.asarray(y, dtype=np.float64).ravel(), copy=True),
        )
        with self._lock:
            self._pairs.append(pair)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pairs)

    def clear(self) -> None:
        with self._lock:
            self._pairs.clear()

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Snapshot as stacked ``(N, F)`` / ``(N, D)`` training matrices."""
        with self._lock:
            pairs = list(self._pairs)
        if not pairs:
            raise ValueError("traffic buffer is empty")
        x = np.stack([p[0] for p in pairs])
        y = np.stack([p[1] for p in pairs])
        return x, y
