"""Background retraining of a drifted surrogate from captured traffic.

The retrainer clones the incumbent :class:`~repro.nas.package.SurrogatePackage`
and fine-tunes the surrogate head on the buffered ``(x, y)`` pairs the
guard captured on fallback (the autoencoder, when present, stays frozen
— its reconstruction objective is not what drifted, and refitting it
would go back through the NAS).  The candidate publishes to the registry
as the next version of the model with a ``lineage`` block in the
manifest meta::

    {"lineage": {"parent_version": 3, "trigger": "drift",
                 "drift": {...}, "samples": 96, "content_key": "..."}}

``content_key`` fingerprints (parent weights, training data, config) the
same way :mod:`repro.nas.cache` keys autoencoder artifacts; a retrain
request whose key matches an already-published candidate returns that
candidate instead of training again, which makes the retrain step
idempotent under kill/resume.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import obs
from ..core.digest import content_key, fingerprint_array
from ..nas.package import SurrogatePackage
from ..nn.train import TrainConfig, train_model
from ..registry import ArtifactRef, ModelRegistry

__all__ = ["RetrainConfig", "Retrainer", "find_candidate"]


@dataclass(frozen=True)
class RetrainConfig:
    """Fine-tune hyperparameters for drift-triggered retraining.

    Defaults lean small: the buffer holds hundreds of samples at most,
    and the candidate starts from the incumbent's weights, so a short
    high-LR fine-tune beats a full from-scratch fit.
    """

    num_epochs: int = 80
    batch_size: int = 16
    lr: float = 1e-2
    train_ratio: float = 0.9
    patience: int = 20
    min_samples: int = 16
    seed: int = 0


def find_candidate(
    registry: ModelRegistry,
    name: str,
    *,
    parent_version: int,
    content_key_hex: Optional[str] = None,
    exclude: Optional[set] = None,
) -> Optional[ArtifactRef]:
    """Newest published candidate descended from ``parent_version``.

    With ``content_key_hex`` the match must be exact (same data, same
    config — the idempotence probe); without it any child of the parent
    qualifies (the resume-after-kill probe: the buffer died with the
    process, but a candidate published before the kill is still the
    right one to canary).  ``exclude`` skips versions a previous loop
    iteration already rolled back.
    """
    versions = registry.versions(name)
    for version in reversed(versions):
        if exclude and version in exclude:
            continue
        try:
            ref = registry.resolve(name, version)
        except Exception:  # noqa: BLE001 - skip unreadable versions
            continue
        lineage = ref.meta.get("lineage")
        if not isinstance(lineage, dict):
            continue
        if lineage.get("parent_version") != parent_version:
            continue
        if (
            content_key_hex is not None
            and lineage.get("content_key") != content_key_hex
        ):
            continue
        return ref
    return None


class Retrainer:
    """Fits and publishes candidate versions of one registry artifact."""

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        config: Optional[RetrainConfig] = None,
    ) -> None:
        self.registry = registry
        self.name = name
        self.config = config or RetrainConfig()
        #: fine-tunes actually run by this instance (cache hits excluded)
        self.trained_count = 0
        self._telemetry = obs.TELEMETRY
        self._m_retrains = obs.get_registry().counter(
            "repro_lifecycle_retrains_total",
            "Candidate fine-tunes actually run (cache hits excluded)",
            labels=("model",),
        )

    def retrain(
        self,
        incumbent: SurrogatePackage,
        x: np.ndarray,
        y: np.ndarray,
        *,
        parent_version: int,
        trigger: str = "drift",
        drift: Optional[dict] = None,
    ) -> ArtifactRef:
        """Fine-tune a candidate on ``(x, y)`` and publish it; returns its ref.

        Idempotent: an identical request (same parent, data, config)
        returns the already-published candidate without training.
        """
        cfg = self.config
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} samples but y has {y.shape[0]}"
            )
        if x.shape[0] < cfg.min_samples:
            raise ValueError(
                f"retraining needs at least {cfg.min_samples} samples; "
                f"buffer holds {x.shape[0]}"
            )
        key = content_key(
            {
                "parent": [fingerprint_array(p.data) for p in incumbent.model.parameters()],
                "x": fingerprint_array(x),
                "y": fingerprint_array(y),
                "config": {
                    "num_epochs": cfg.num_epochs,
                    "batch_size": cfg.batch_size,
                    "lr": cfg.lr,
                    "train_ratio": cfg.train_ratio,
                    "patience": cfg.patience,
                    "seed": cfg.seed,
                },
            }
        )
        cached = find_candidate(
            self.registry,
            self.name,
            parent_version=parent_version,
            content_key_hex=key,
        )
        if cached is not None:
            return cached
        # deep-copy via pickle: packages are picklable by construction
        # (process-sharded serving ships them the same way), and the
        # incumbent must keep serving unmodified while the clone trains
        candidate: SurrogatePackage = pickle.loads(pickle.dumps(incumbent))
        if candidate.autoencoder is not None:
            z = candidate.autoencoder.encode(x)
        else:
            z = x
        with obs.span("lifecycle.retrain", model=self.name, samples=x.shape[0]):
            result = train_model(
                candidate.model,
                z,
                y,
                TrainConfig(
                    num_epochs=cfg.num_epochs,
                    batch_size=cfg.batch_size,
                    lr=cfg.lr,
                    train_ratio=cfg.train_ratio,
                    patience=cfg.patience,
                    seed=cfg.seed,
                ),
            )
        self.trained_count += 1
        if self._telemetry.enabled:
            self._m_retrains.inc(model=self.name)
        return candidate.publish(
            self.registry,
            self.name,
            metrics={"retrain_val_loss": float(result.best_val_loss)},
            extra_meta={
                "lineage": {
                    "parent_version": int(parent_version),
                    "trigger": trigger,
                    "drift": dict(drift or {}),
                    "samples": int(x.shape[0]),
                    "content_key": key,
                }
            },
        )
