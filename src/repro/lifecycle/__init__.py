"""Closed-loop model lifecycle: drift → retrain → canary → promote/rollback.

Auto-HPCnet's guard (§7.1) restarts the original code whenever the
surrogate's answer fails its cheap validity check.  That restart is not
just a safety net — it is a *signal* (quality is slipping) and a *data
source* (the exact outputs it computes are free ground truth).  This
package closes the loop on both:

* :mod:`~repro.lifecycle.drift` — windowed HitRate + input-distribution
  shift detection over guarded traffic,
* :mod:`~repro.lifecycle.buffer` — bounded capture of labeled fallback
  samples,
* :mod:`~repro.lifecycle.retrain` — guarded fine-tune of a candidate
  with lineage metadata, idempotent under kill/resume,
* :mod:`~repro.lifecycle.state` — the persisted state machine
  (``STABLE → DRIFTING → RETRAINING → CANARY → PROMOTE|ROLLBACK``),
* :mod:`~repro.lifecycle.controller` — the policy tying them to the
  orchestrator's canary deploy-policy.
"""

from .buffer import TrafficBuffer
from .controller import LifecycleConfig, LifecycleController, ServeResult
from .drift import DriftConfig, DriftDetector, DriftScore
from .retrain import RetrainConfig, Retrainer, find_candidate
from .state import (
    KIND_LIFECYCLE,
    LIFECYCLE_SUFFIX,
    STATE_CODES,
    InvalidTransition,
    LifecycleRecord,
    LifecycleState,
    LifecycleStore,
)

__all__ = [
    "TrafficBuffer",
    "LifecycleConfig",
    "LifecycleController",
    "ServeResult",
    "DriftConfig",
    "DriftDetector",
    "DriftScore",
    "RetrainConfig",
    "Retrainer",
    "find_candidate",
    "KIND_LIFECYCLE",
    "LIFECYCLE_SUFFIX",
    "STATE_CODES",
    "InvalidTransition",
    "LifecycleRecord",
    "LifecycleState",
    "LifecycleStore",
]
