"""The closed-loop controller: drift → retrain → canary → promote/rollback.

:class:`LifecycleController` owns one model's loop end-to-end.  It wires
the pieces the other layers provide:

* the :class:`~repro.lifecycle.drift.DriftDetector` watches incumbent
  traffic (inputs + validation outcomes),
* the :class:`~repro.lifecycle.buffer.TrafficBuffer` collects ground
  truth captured on fallback,
* the :class:`~repro.lifecycle.retrain.Retrainer` publishes candidates
  with lineage metadata,
* the :class:`~repro.runtime.Orchestrator` canary deploy-policy routes
  the traffic slice and tracks per-version windowed hit rates,
* the :class:`~repro.lifecycle.state.LifecycleStore` persists every
  transition as an atomic registry artifact.

``serve(x)`` plays the guarded application: run the surrogate through
the serving path, validate, restart on the reference on failure, and
feed every signal back into the loop.  ``step()`` advances the state
machine one decision at a time — callers interleave it with traffic at
whatever cadence they like (every request, a background thread, a cron
tick).  ``resume()`` re-enters a persisted state after a kill: a process
dying mid-``CANARY`` comes back mid-``CANARY``, with the candidate
re-registered from the registry and **zero** retrains.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, NamedTuple, Optional

import numpy as np

from ..nas.package import SurrogatePackage
from ..registry import ModelRegistry
from ..runtime.client import Client
from ..runtime.orchestrator import Orchestrator, UnknownModelError
from .buffer import TrafficBuffer
from .drift import DriftConfig, DriftDetector
from .retrain import RetrainConfig, Retrainer, find_candidate
from .state import LifecycleRecord, LifecycleState, LifecycleStore

__all__ = ["LifecycleConfig", "ServeResult", "LifecycleController"]


@dataclass(frozen=True)
class LifecycleConfig:
    """Every knob of one model's closed loop."""

    #: canary traffic slice (deterministic hash-based, <= 25% by default)
    fraction: float = 0.25
    #: candidate outcomes required before an auto-promote may be decided
    decision_samples: int = 40
    #: incumbent outcomes required alongside (a fair comparison window)
    min_incumbent_samples: int = 10
    #: candidate outcomes after which a regression may roll back early
    early_rollback_samples: int = 10
    #: candidate hit rate may trail the incumbent by at most this much
    regression_margin: float = 0.05
    #: labeled fallback samples the traffic buffer retains
    buffer_capacity: int = 512
    drift: DriftConfig = field(default_factory=DriftConfig)
    retrain: RetrainConfig = field(default_factory=RetrainConfig)

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.regression_margin < 0.0:
            raise ValueError("regression_margin must be >= 0")


class ServeResult(NamedTuple):
    """One guarded invocation through the lifecycle serving path."""

    y: np.ndarray
    version: Optional[int]
    valid: bool


class LifecycleController:
    """Closes the loop for one model name.

    ``reference`` is the exact-code oracle in *model space*: given one
    scaled input row it returns the ground-truth output row (for a
    deployed app this is "run the original region and scale" — see
    :meth:`repro.core.pipeline.DeployedSurrogate.exact_row`).
    ``validator`` is the cheap §7.1 validity check, also in model space:
    ``validator(x_row, y_row) -> bool``.
    """

    def __init__(
        self,
        name: str,
        orchestrator: Orchestrator,
        registry: ModelRegistry,
        *,
        reference: Callable[[np.ndarray], np.ndarray],
        validator: Callable[[np.ndarray, np.ndarray], bool],
        config: Optional[LifecycleConfig] = None,
    ) -> None:
        self.name = name
        self.registry = registry
        self.reference = reference
        self.validator = validator
        self.config = config or LifecycleConfig()
        self._orc = orchestrator
        self._client = Client(orchestrator)
        self.detector = DriftDetector(self.config.drift, model=name)
        self.buffer = TrafficBuffer(self.config.buffer_capacity)
        self.retrainer = Retrainer(registry, name, self.config.retrain)
        self.store = LifecycleStore(registry, name)
        # reentrant: step() calls back into methods that take the lock
        self._lock = threading.RLock()
        self._record = self.store.load() or LifecycleRecord(model=name)  # cc: guarded-by(_lock)
        self._packages: dict[int, SurrogatePackage] = {}  # cc: guarded-by(_lock)
        self._ids = itertools.count()

    # -- introspection ------------------------------------------------------

    @property
    def state(self) -> LifecycleState:
        with self._lock:
            return self._record.state

    @property
    def record(self) -> LifecycleRecord:
        with self._lock:
            return self._record

    @property
    def retrain_count(self) -> int:
        """Candidate fine-tunes actually run by this controller instance."""
        return self.retrainer.trained_count

    def status(self) -> dict[str, Any]:
        """One JSON-friendly snapshot of the whole loop."""
        with self._lock:
            record = self._record
        canary = self._orc.canary_status(self.name) if self._orc.model_exists(
            self.name
        ) else None
        score = self.detector.score()
        return {
            "model": self.name,
            "state": record.state.value,
            "incumbent": record.incumbent,
            "candidate": record.candidate,
            "fraction": record.fraction,
            "trigger": record.trigger,
            "requested": record.requested,
            "seq": record.seq,
            "drift": score.to_payload(),
            "buffered_samples": len(self.buffer),
            "retrains": self.retrain_count,
            "canary": None if canary is None else canary._asdict(),
        }

    # -- wiring -------------------------------------------------------------

    def attach(self) -> LifecycleState:
        """Make the orchestrator reflect the persisted record.

        Registers and deploys the incumbent (from the registry when the
        orchestrator does not hold it yet) and, when the record says
        ``CANARY``, re-registers the candidate and re-opens the traffic
        slice.  Idempotent — safe on a warm orchestrator.
        """
        with self._lock:
            record = self._record
            incumbent = record.incumbent
            if incumbent is None:
                if self._orc.model_exists(self.name):
                    incumbent = self._orc.active_version(self.name)
                if incumbent is None and self.registry.exists(self.name):
                    incumbent = self.registry.resolve(self.name).version
                if incumbent is None:
                    raise UnknownModelError(self.name)
                self._record = record = record.with_fields(incumbent=incumbent)
            self._ensure_registered_locked(incumbent, deploy=True)
            if (
                record.state is LifecycleState.CANARY
                and record.candidate is not None
            ):
                self._ensure_registered_locked(record.candidate, deploy=False)
                if self._orc.canary_status(self.name) is None:
                    self._orc.canary(
                        self.name,
                        record.candidate,
                        record.fraction or self.config.fraction,
                    )
            return record.state

    def resume(self) -> LifecycleState:
        """Re-enter the persisted state after a restart (kill-safety half).

        A kill mid-``CANARY`` resumes mid-``CANARY``: the candidate was
        already published, so no retrain happens — the experiment simply
        continues accumulating outcomes where it left off.
        """
        return self.attach()

    def _ensure_registered_locked(  # cc: requires(_lock)
        self, version: int, *, deploy: bool
    ) -> None:
        have = (
            self._orc.model_versions(self.name)
            if self._orc.model_exists(self.name)
            else []
        )
        if version not in have:
            ref = self.registry.resolve(self.name, version)
            package = SurrogatePackage.load(ref.path)
            self._packages[version] = package
            self._orc.register_model(
                self.name,
                package.predict,
                batchable=True,
                version=version,
                deploy=deploy,
                package=package,
                digest=ref.digest,
            )
        elif deploy and self._orc.active_version(self.name) != version:
            self._orc.deploy(self.name, version)

    def _package_locked(self, version: int) -> SurrogatePackage:  # cc: requires(_lock)
        package = self._packages.get(version)
        if package is None:
            ref = self.registry.resolve(self.name, version)
            package = SurrogatePackage.load(ref.path)
            self._packages[version] = package
        return package

    # -- traffic ------------------------------------------------------------

    def serve(self, x: np.ndarray) -> ServeResult:
        """One guarded invocation through the live serving path.

        Runs the version the orchestrator admits (incumbent or canary
        slice), validates, restarts on the reference when invalid (the
        §7.1 guard), and feeds drift/outcome/capture signals back into
        the loop.  Returns the answer the application would see.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        out_key = f"__lifecycle_{self.name}_{next(self._ids)}__"
        future = self._client.run_model_async(self.name, x, out_key)
        try:
            y = np.asarray(future.result())
        finally:
            version = future.version
            self._orc.delete_tensor(out_key)
        valid = bool(self.validator(x, y))
        y_true: Optional[np.ndarray] = None
        if not valid:
            y_true = np.asarray(self.reference(x), dtype=np.float64).ravel()
            y = y_true
        self.observe(x, version=version, valid=valid, y_true=y_true)
        return ServeResult(y=y, version=version, valid=valid)

    def observe(
        self,
        x: np.ndarray,
        *,
        version: Optional[int],
        valid: bool,
        y_true: Optional[np.ndarray] = None,
    ) -> None:
        """Feed one externally-served invocation into the loop.

        Per-version outcome goes to the orchestrator's canary tracker;
        drift observation is restricted to *incumbent* traffic (candidate
        failures must show up in the canary comparison, not poison the
        incumbent's drift statistics); a failed invocation with ground
        truth lands in the retraining buffer.
        """
        with self._lock:
            incumbent = self._record.incumbent
        if version is not None:
            try:
                self._orc.record_outcome(self.name, version, valid)
            except (UnknownModelError, ValueError):
                pass  # version already unregistered: nothing to attribute
        if version is None or incumbent is None or version == incumbent:
            self.detector.observe(x, fallback=not valid)
        if not valid and y_true is not None:
            self.buffer.add(x, y_true)

    # -- the state machine --------------------------------------------------

    def step(self) -> LifecycleState:
        """Advance the loop by at most one decision; returns the new state."""
        with self._lock:
            self._sync_requested_locked()
            state = self._record.state
            if state is LifecycleState.STABLE:
                self._step_stable_locked()
            elif state is LifecycleState.DRIFTING:
                self._step_drifting_locked()
            elif state is LifecycleState.RETRAINING:
                self._step_retraining_locked()
            elif state is LifecycleState.CANARY:
                self._step_canary_locked()
            else:  # PROMOTE / ROLLBACK settle back to STABLE
                self._settle_locked()
            return self._record.state

    def _sync_requested_locked(self) -> None:  # cc: requires(_lock)
        # the CLI writes overrides straight into the persisted record;
        # the controller is otherwise the only writer, so `requested` is
        # the one field that can change under us
        persisted = self.store.load()
        if (
            persisted is not None
            and persisted.requested
            and persisted.requested != self._record.requested
        ):
            self._record = self._record.with_fields(
                requested=persisted.requested
            )

    def _transition_locked(  # cc: requires(_lock)
        self,
        to: LifecycleState,
        *,
        fields: Optional[dict] = None,
        **detail: Any,
    ) -> None:
        record = self._record.transition(to, **detail)
        if fields:
            record = record.with_fields(**fields)
        self._record = record
        self.store.save(record)

    def _step_stable_locked(self) -> None:  # cc: requires(_lock)
        record = self._record
        score = self.detector.score()
        if record.requested == "trigger":
            trigger = "manual"
        elif score.drifted:
            trigger = "drift"
        else:
            return
        self._transition_locked(
            LifecycleState.DRIFTING,
            fields={
                "trigger": trigger,
                "drift": score.to_payload(),
                "parent_version": record.incumbent,
                "requested": None,
            },
            trigger=trigger,
            drift=score.to_payload(),
        )

    def _step_drifting_locked(self) -> None:  # cc: requires(_lock)
        if len(self.buffer) >= self.config.retrain.min_samples:
            self._transition_locked(LifecycleState.RETRAINING)
            self._step_retraining_locked()
            return
        score = self.detector.score()
        if not score.drifted and not len(self.buffer):
            # transient blip: the evidence evaporated before any ground
            # truth was captured, so there is nothing to retrain on
            self._transition_locked(
                LifecycleState.STABLE, note="drift-recovered"
            )

    def _step_retraining_locked(self) -> None:  # cc: requires(_lock)
        record = self._record
        parent = (
            record.parent_version
            if record.parent_version is not None
            else record.incumbent
        )
        candidate_ref = None
        if len(self.buffer) >= self.config.retrain.min_samples:
            x, y = self.buffer.arrays()
            candidate_ref = self.retrainer.retrain(
                self._package_locked(record.incumbent),
                x,
                y,
                parent_version=parent,
                trigger=record.trigger or "drift",
                drift=record.drift,
            )
        else:
            # resume after a kill: the buffer died with the process, but a
            # candidate published before the kill is still the one to
            # canary — minus any the history already rolled back
            rejected = {
                entry.get("detail", {}).get("candidate")
                for entry in record.history
                if entry.get("to") == LifecycleState.ROLLBACK.value
            }
            candidate_ref = find_candidate(
                self.registry,
                self.name,
                parent_version=parent,
                exclude=rejected,
            )
        if candidate_ref is None:
            self._transition_locked(
                LifecycleState.STABLE, note="retrain-abandoned"
            )
            return
        self._ensure_registered_locked(candidate_ref.version, deploy=False)
        self._orc.canary(
            self.name, candidate_ref.version, self.config.fraction
        )
        self._transition_locked(
            LifecycleState.CANARY,
            fields={
                "candidate": candidate_ref.version,
                "fraction": self.config.fraction,
            },
            candidate=candidate_ref.version,
        )

    def _step_canary_locked(self) -> None:  # cc: requires(_lock)
        record = self._record
        cfg = self.config
        status = self._orc.canary_status(self.name)
        if status is None:
            # the in-memory slice is gone (fresh orchestrator after a
            # kill): re-open it and keep accumulating outcomes
            self._ensure_registered_locked(record.candidate, deploy=False)
            self._orc.canary(
                self.name, record.candidate, record.fraction or cfg.fraction
            )
            return
        decision: Optional[bool] = None
        if record.requested == "promote":
            decision = True
        elif record.requested == "abort":
            decision = False
        else:
            candidate_rate = status.candidate_hit_rate
            baseline = (
                status.incumbent_hit_rate
                if status.incumbent_hit_rate is not None
                else 1.0
            )
            if (
                status.candidate_count >= cfg.early_rollback_samples
                and candidate_rate is not None
                and candidate_rate < baseline - cfg.regression_margin
            ):
                # regressing vs. the incumbent: kill it mid-burst rather
                # than waiting out the full evaluation window
                decision = False
            elif (
                status.candidate_count >= cfg.decision_samples
                and status.incumbent_count >= cfg.min_incumbent_samples
            ):
                decision = (
                    candidate_rate is not None
                    and candidate_rate >= baseline - cfg.regression_margin
                )
        if decision is None:
            return  # evaluation window still open
        self._orc.end_canary(self.name, promote=decision)
        detail = {
            "candidate": record.candidate,
            "candidate_hit_rate": status.candidate_hit_rate,
            "incumbent_hit_rate": status.incumbent_hit_rate,
            "requested": record.requested,
        }
        self._transition_locked(
            LifecycleState.PROMOTE if decision else LifecycleState.ROLLBACK,
            fields={"requested": None},
            **detail,
        )

    def _settle_locked(self) -> None:  # cc: requires(_lock)
        record = self._record
        if record.state is LifecycleState.PROMOTE:
            self._transition_locked(
                LifecycleState.STABLE,
                fields={
                    "incumbent": record.candidate,
                    "candidate": None,
                    "fraction": 0.0,
                    "trigger": None,
                    "drift": {},
                    "requested": None,
                },
                outcome="promoted",
                incumbent=record.candidate,
            )
            # the promoted candidate defines normal now
            self.detector.rebaseline()
            self.buffer.clear()
        else:  # ROLLBACK
            self._transition_locked(
                LifecycleState.STABLE,
                fields={
                    "candidate": None,
                    "fraction": 0.0,
                    "requested": None,
                },
                outcome="rolled-back",
                incumbent=record.incumbent,
            )
            # incumbent keeps serving: keep its reference distribution but
            # demand fresh evidence before the loop may fire again
            self.detector.reset_recent()
            self.buffer.clear()
