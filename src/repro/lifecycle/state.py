"""Lifecycle state machine, persisted as a registry artifact.

The loop runs ``STABLE → DRIFTING → RETRAINING → CANARY →
PROMOTE | ROLLBACK → STABLE``.  Every transition publishes a new version
of the ``<model>-lifecycle`` artifact (kind ``lifecycle-state``) whose
single payload, ``state.json``, carries the complete record *including
the full transition history* — so the latest version alone reconstructs
everything, and the registry's atomic publish makes each transition
kill-safe: a process dying mid-write leaves the previous complete state,
and resume re-enters exactly where the loop was.

The artifact's manifest also declares ``meta["pins"]`` naming the
model versions the loop references (incumbent, candidate,
``parent_version``), which :meth:`repro.registry.ModelRegistry.gc`
honors — an offline gc can never collect a version the control loop
still needs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import Optional

from .. import obs
from ..registry import ArtifactRef, ModelRegistry

__all__ = [
    "KIND_LIFECYCLE",
    "LIFECYCLE_SUFFIX",
    "LifecycleState",
    "InvalidTransition",
    "LifecycleRecord",
    "LifecycleStore",
    "STATE_CODES",
]

KIND_LIFECYCLE = "lifecycle-state"
LIFECYCLE_SUFFIX = "-lifecycle"
STATE_PAYLOAD = "state.json"


class LifecycleState(str, Enum):
    """Where one model's closed loop currently is."""

    STABLE = "STABLE"
    DRIFTING = "DRIFTING"
    RETRAINING = "RETRAINING"
    CANARY = "CANARY"
    PROMOTE = "PROMOTE"
    ROLLBACK = "ROLLBACK"


#: numeric codes for the ``repro_lifecycle_state`` gauge
STATE_CODES = {
    LifecycleState.STABLE: 0,
    LifecycleState.DRIFTING: 1,
    LifecycleState.RETRAINING: 2,
    LifecycleState.CANARY: 3,
    LifecycleState.PROMOTE: 4,
    LifecycleState.ROLLBACK: 5,
}

_ALLOWED: dict[LifecycleState, frozenset[LifecycleState]] = {
    LifecycleState.STABLE: frozenset({LifecycleState.DRIFTING}),
    LifecycleState.DRIFTING: frozenset(
        {LifecycleState.RETRAINING, LifecycleState.STABLE}
    ),
    LifecycleState.RETRAINING: frozenset(
        {LifecycleState.CANARY, LifecycleState.STABLE}
    ),
    LifecycleState.CANARY: frozenset(
        {LifecycleState.PROMOTE, LifecycleState.ROLLBACK}
    ),
    LifecycleState.PROMOTE: frozenset({LifecycleState.STABLE}),
    LifecycleState.ROLLBACK: frozenset({LifecycleState.STABLE}),
}


class InvalidTransition(RuntimeError):
    """The requested state change is not an edge of the lifecycle graph."""


@dataclass(frozen=True)
class LifecycleRecord:
    """Immutable snapshot of one model's lifecycle.

    ``transition`` returns a new record with the history appended;
    nothing mutates in place, so a controller can hold a reference
    across a publish without torn reads.
    """

    model: str
    state: LifecycleState = LifecycleState.STABLE
    #: version serving the main traffic slice
    incumbent: Optional[int] = None
    #: candidate under canary (or just retrained), None outside the loop
    candidate: Optional[int] = None
    #: the version the current/last candidate descended from
    parent_version: Optional[int] = None
    #: canary traffic fraction for the in-flight experiment
    fraction: float = 0.0
    #: what started the current loop iteration ("drift" | "manual")
    trigger: Optional[str] = None
    #: drift statistics at trigger time (DriftScore.to_payload())
    drift: dict = field(default_factory=dict)
    #: operator override awaiting the controller ("trigger"|"promote"|"abort")
    requested: Optional[str] = None
    #: monotonically increasing transition counter
    seq: int = 0
    #: every transition ever taken: {"seq", "from", "to", "detail"}
    history: tuple = ()

    def transition(self, to: LifecycleState, **detail) -> "LifecycleRecord":
        """Validated step to ``to``; appends one history entry."""
        to = LifecycleState(to)
        if to not in _ALLOWED[self.state]:
            raise InvalidTransition(
                f"{self.model}: {self.state.value} -> {to.value} is not a "
                f"lifecycle edge (allowed: "
                f"{sorted(s.value for s in _ALLOWED[self.state])})"
            )
        entry = {
            "seq": self.seq + 1,
            "from": self.state.value,
            "to": to.value,
            "detail": detail,
        }
        return replace(
            self,
            state=to,
            seq=self.seq + 1,
            history=self.history + (entry,),
        )

    def with_fields(self, **changes) -> "LifecycleRecord":
        """Field update without a state transition (pointers, overrides)."""
        return replace(self, **changes)

    @property
    def pins(self) -> list[int]:
        """Model versions this record keeps alive (for gc protection)."""
        return sorted(
            {
                v
                for v in (self.incumbent, self.candidate, self.parent_version)
                if v is not None
            }
        )

    def to_payload(self) -> dict:
        return {
            "model": self.model,
            "state": self.state.value,
            "incumbent": self.incumbent,
            "candidate": self.candidate,
            "parent_version": self.parent_version,
            "fraction": self.fraction,
            "trigger": self.trigger,
            "drift": self.drift,
            "requested": self.requested,
            "seq": self.seq,
            "history": list(self.history),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LifecycleRecord":
        return cls(
            model=payload["model"],
            state=LifecycleState(payload.get("state", "STABLE")),
            incumbent=payload.get("incumbent"),
            candidate=payload.get("candidate"),
            parent_version=payload.get("parent_version"),
            fraction=float(payload.get("fraction", 0.0)),
            trigger=payload.get("trigger"),
            drift=dict(payload.get("drift") or {}),
            requested=payload.get("requested"),
            seq=int(payload.get("seq", 0)),
            history=tuple(payload.get("history") or ()),
        )


class LifecycleStore:
    """Persists one model's lifecycle record in a :class:`ModelRegistry`.

    Each ``save`` publishes a new version of ``<model>-lifecycle``; the
    latest version is the truth.  Publishing is atomic (registry
    semantics), so a kill mid-save leaves the previous state intact —
    the resume-after-kill guarantee of the whole loop reduces to the
    registry's own crash-safety.
    """

    def __init__(self, registry: ModelRegistry, model: str) -> None:
        self.registry = registry
        self.model = model
        self.artifact = f"{model}{LIFECYCLE_SUFFIX}"
        self._telemetry = obs.TELEMETRY
        metrics = obs.get_registry()
        self._m_state = metrics.gauge(
            "repro_lifecycle_state",
            "Lifecycle state code per model "
            "(0 STABLE, 1 DRIFTING, 2 RETRAINING, 3 CANARY, 4 PROMOTE, 5 ROLLBACK)",
            labels=("model",),
        )
        self._m_transitions = metrics.counter(
            "repro_lifecycle_transitions_total",
            "Lifecycle transitions taken, by destination state",
            labels=("model", "to"),
        )

    def load(self) -> Optional[LifecycleRecord]:
        """Latest persisted record, or None when the loop never ran."""
        if not self.registry.exists(self.artifact):
            return None
        ref = self.registry.resolve(self.artifact)
        payload = json.loads(ref.payload_path(STATE_PAYLOAD).read_text())
        return LifecycleRecord.from_payload(payload)

    def save(self, record: LifecycleRecord) -> ArtifactRef:
        """Atomically publish ``record`` as the newest lifecycle version."""

        def writer(staged: Path) -> None:
            (staged / STATE_PAYLOAD).write_text(
                json.dumps(record.to_payload(), indent=2)
            )

        with obs.span(
            "lifecycle.transition", model=self.model, state=record.state.value
        ):
            ref = self.registry.publish(
                self.artifact,
                KIND_LIFECYCLE,
                writer,
                meta={
                    "state": record.state.value,
                    "seq": record.seq,
                    "pins": [{"name": self.model, "versions": record.pins}],
                },
            )
        if self._telemetry.enabled:
            self._m_state.set(STATE_CODES[record.state], model=self.model)
            self._m_transitions.inc(model=self.model, to=record.state.value)
        return ref

    def request(self, action: str) -> LifecycleRecord:
        """Record an operator override ("trigger" | "promote" | "abort").

        The override rides the persisted record; the controller consumes
        it on its next step (or on resume).  When no lifecycle state
        exists yet, a fresh STABLE record is created with the model's
        latest registry version as incumbent.
        """
        if action not in ("trigger", "promote", "abort"):
            raise ValueError(
                f"unknown lifecycle request {action!r}; "
                "expected trigger, promote or abort"
            )
        record = self.load()
        if record is None:
            incumbent = None
            if self.registry.exists(self.model):
                incumbent = self.registry.resolve(self.model).version
            record = LifecycleRecord(model=self.model, incumbent=incumbent)
        record = record.with_fields(requested=action)
        self.save(record)
        return record
