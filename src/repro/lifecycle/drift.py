"""Online drift detection over guarded traffic.

Two independent windows, either of which can fire:

* **HitRate window** — a ring buffer of the most recent validation
  outcomes (the §7.1 guard signal).  Drift fires when the windowed
  HitRate falls below ``hit_rate_threshold``: the surrogate is failing
  its cheap validity check more often than the operator accepts.

* **Input-shift window** — a running mean/variance *reference* frozen
  over the first ``reference_samples`` inputs (Welford accumulation),
  compared against the mean of the most recent ``window`` inputs.  The
  statistic is the largest per-feature standardized deviation of the
  recent mean from the reference mean::

      z_j = |mean_recent_j - mu_ref_j| / (sigma_ref_j / sqrt(n_recent))

  i.e. a z-score on the standard error of the windowed mean.  Under the
  reference distribution this stays O(1); under a shifted distribution
  it grows like ``sqrt(n_recent)`` times the shift in reference sigmas,
  so a persistent shift crosses any fixed threshold quickly while noise
  does not.  Drift fires when ``max_j z_j > z_threshold``.

The input-shift channel catches drift *before* quality collapses (a
moved input distribution is the leading indicator); the HitRate channel
catches quality collapse even when inputs look unchanged (e.g. the
physics regime changed within the same box).  Both are cheap: O(F) per
observation, no history of raw rows beyond the window.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import NamedTuple, Optional

import numpy as np

from .. import obs

__all__ = ["DriftConfig", "DriftScore", "DriftDetector"]


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds and window sizes of one :class:`DriftDetector`."""

    #: recent-traffic window (outcomes and input rows)
    window: int = 64
    #: observations required in a window before it may fire
    min_samples: int = 20
    #: drift when windowed HitRate drops below this
    hit_rate_threshold: float = 0.8
    #: drift when the max per-feature mean-shift z-score exceeds this
    z_threshold: float = 8.0
    #: inputs absorbed into the frozen reference before comparison starts
    reference_samples: int = 128

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError("min_samples must be in [1, window]")
        if not 0.0 < self.hit_rate_threshold <= 1.0:
            raise ValueError("hit_rate_threshold must be in (0, 1]")
        if self.z_threshold <= 0.0:
            raise ValueError("z_threshold must be positive")
        if self.reference_samples < 2:
            raise ValueError("reference_samples must be >= 2")


class DriftScore(NamedTuple):
    """One drift evaluation: both channel statistics plus the verdict."""

    hit_rate: Optional[float]
    shift_z: Optional[float]
    drifted: bool
    reason: Optional[str]  # "hit-rate" | "input-shift" | None

    def to_payload(self) -> dict:
        """JSON-serializable form (persisted into lifecycle history)."""
        return {
            "hit_rate": None if self.hit_rate is None else float(self.hit_rate),
            "shift_z": None if self.shift_z is None else float(self.shift_z),
            "drifted": bool(self.drifted),
            "reason": self.reason,
        }


class DriftDetector:
    """Watches one model's guarded traffic; fires when a window crosses.

    Thread-safe: ``observe`` may be called from every serving thread.
    ``repro_drift_score{model,kind}`` gauges track both channels and
    ``repro_drift_events_total{model,reason}`` counts rising edges (the
    transition into drift, not every drifted observation).
    """

    def __init__(
        self, config: Optional[DriftConfig] = None, *, model: str = "model"
    ) -> None:
        self.config = config or DriftConfig()
        self.model = model
        self._lock = threading.Lock()
        cfg = self.config
        # frozen reference distribution (Welford): count, mean, M2
        self._ref_count = 0                          # cc: guarded-by(_lock)
        self._ref_mean: Optional[np.ndarray] = None  # cc: guarded-by(_lock)
        self._ref_m2: Optional[np.ndarray] = None    # cc: guarded-by(_lock)
        self._recent_x: "deque[np.ndarray]" = deque(maxlen=cfg.window)  # cc: guarded-by(_lock)
        self._recent_ok: "deque[bool]" = deque(maxlen=cfg.window)       # cc: guarded-by(_lock)
        self._was_drifted = False                    # cc: guarded-by(_lock)
        self._telemetry = obs.TELEMETRY
        registry = obs.get_registry()
        self._m_score = registry.gauge(
            "repro_drift_score",
            "Current drift statistic per channel (hit_rate, shift_z)",
            labels=("model", "kind"),
        )
        self._m_events = registry.counter(
            "repro_drift_events_total",
            "Rising edges of the drift verdict, by firing channel",
            labels=("model", "reason"),
        )

    # -- observation --------------------------------------------------------

    def observe(self, x: np.ndarray, *, fallback: bool = False) -> DriftScore:
        """Absorb one invocation (input row + validation outcome); score it."""
        row = np.asarray(x, dtype=np.float64).ravel()
        with self._lock:
            if self._ref_count < self.config.reference_samples:
                self._absorb_reference_locked(row)
            else:
                self._recent_x.append(row)
            self._recent_ok.append(not fallback)
            return self._score_locked()

    def score(self) -> DriftScore:
        """Current verdict without absorbing a new observation."""
        with self._lock:
            return self._score_locked()

    def rebaseline(self) -> None:
        """Restart from scratch — the promoted candidate defines normal now.

        After a promote, traffic that looked shifted against the *old*
        model's reference is the new normal; keeping the old reference
        would re-fire drift forever.
        """
        with self._lock:
            self._ref_count = 0
            self._ref_mean = None
            self._ref_m2 = None
            self._recent_x.clear()
            self._recent_ok.clear()
            self._was_drifted = False

    def reset_recent(self) -> None:
        """Drop the recent windows but keep the reference.

        Used after a rollback: the incumbent keeps serving, so the
        reference distribution still defines normal, but the evidence
        that triggered the failed candidate must be re-accumulated
        before the loop may fire again.
        """
        with self._lock:
            self._recent_x.clear()
            self._recent_ok.clear()
            self._was_drifted = False

    # -- internals ----------------------------------------------------------

    def _absorb_reference_locked(self, row: np.ndarray) -> None:  # cc: requires(_lock)
        if self._ref_mean is None:
            self._ref_mean = np.zeros_like(row)
            self._ref_m2 = np.zeros_like(row)
        elif row.shape != self._ref_mean.shape:
            raise ValueError(
                f"drift input has {row.shape[0]} features; "
                f"reference has {self._ref_mean.shape[0]}"
            )
        self._ref_count += 1
        delta = row - self._ref_mean
        self._ref_mean = self._ref_mean + delta / self._ref_count
        self._ref_m2 = self._ref_m2 + delta * (row - self._ref_mean)

    def _shift_z_locked(self) -> Optional[float]:  # cc: requires(_lock)
        cfg = self.config
        n_recent = len(self._recent_x)
        if (
            self._ref_count < cfg.reference_samples
            or n_recent < cfg.min_samples
        ):
            return None
        sigma = np.sqrt(self._ref_m2 / max(self._ref_count - 1, 1))
        # a constant reference feature has sigma 0; floor it so a truly
        # moved constant still registers instead of dividing by zero
        floor = 1e-12 + 1e-9 * np.abs(self._ref_mean)
        sigma = np.maximum(sigma, floor)
        recent_mean = np.mean(np.stack(self._recent_x), axis=0)
        z = np.abs(recent_mean - self._ref_mean) / (sigma / np.sqrt(n_recent))
        return float(np.max(z))

    def _score_locked(self) -> DriftScore:  # cc: requires(_lock)
        cfg = self.config
        hit_rate: Optional[float] = None
        if len(self._recent_ok) >= cfg.min_samples:
            hit_rate = sum(self._recent_ok) / len(self._recent_ok)
        shift_z = self._shift_z_locked()
        reason: Optional[str] = None
        if hit_rate is not None and hit_rate < cfg.hit_rate_threshold:
            reason = "hit-rate"
        elif shift_z is not None and shift_z > cfg.z_threshold:
            reason = "input-shift"
        drifted = reason is not None
        if self._telemetry.enabled:
            if hit_rate is not None:
                self._m_score.set(hit_rate, model=self.model, kind="hit_rate")
            if shift_z is not None:
                self._m_score.set(shift_z, model=self.model, kind="shift_z")
            if drifted and not self._was_drifted:
                self._m_events.inc(model=self.model, reason=reason)
        self._was_drifted = drifted
        return DriftScore(hit_rate, shift_z, drifted, reason)
