"""Nested tracing spans with Chrome trace-event export.

A :class:`Tracer` records :class:`Span` trees — the current span lives in
a :mod:`contextvars` variable, so nesting works across call boundaries
and each thread gets its own stack.  Finished spans export to the Chrome
trace-event JSON format, so a build or serving run opens directly in
``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed region: name, wall-clock extent, attributes, parent link."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float                       # time.perf_counter() at entry
    end: Optional[float] = None
    attributes: dict[str, Any] = field(default_factory=dict)
    thread_id: int = 0
    _token: Optional[contextvars.Token] = field(default=None, repr=False, compare=False)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0 while the span is open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self


class Tracer:
    """Records span trees; the current span is context-local."""

    def __init__(self) -> None:
        # exporters read the epoch bare (a float snapshot is coherent);
        # reset() rewrites it under the lock
        self.epoch = time.perf_counter()  # cc: guarded-by(_lock, atomic-reads)
        self._lock = threading.Lock()
        self._finished: list[Span] = []   # cc: guarded-by(_lock)
        self._ids = itertools.count(1)
        self._current: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
            f"repro_span_{id(self)}", default=None
        )

    # -- span lifecycle ---------------------------------------------------------

    def current_span(self) -> Optional[Span]:
        return self._current.get()

    def start_span(
        self, name: str, attributes: Optional[Mapping[str, Any]] = None
    ) -> Span:
        """Open a span as a child of the context's current span."""
        parent = self._current.get()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start=time.perf_counter(),
            attributes=dict(attributes or {}),
            thread_id=threading.get_ident(),
        )
        span._token = self._current.set(span)
        return span

    def end_span(self, span: Span, *, duration: Optional[float] = None) -> Span:
        """Close ``span``; ``duration`` pins the extent exactly (used by the
        phase helper so span time and :class:`~repro.perf.timers.PhaseTimer`
        time come from one measurement)."""
        if span.finished:
            return span
        span.end = span.start + duration if duration is not None else time.perf_counter()
        if span._token is not None:
            try:
                self._current.reset(span._token)
            except ValueError:   # ended from a different context: just clear
                self._current.set(None)
            span._token = None
        with self._lock:
            self._finished.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        span = self.start_span(name, attributes)
        try:
            yield span
        finally:
            self.end_span(span)

    # -- inspection -------------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.finished_spans() if s.name == name]

    def reset(self) -> None:
        # one critical section: an exporter racing reset() must not see
        # the cleared span list paired with the old epoch
        with self._lock:
            self._finished.clear()
            self.epoch = time.perf_counter()

    # -- export -----------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON object format (complete ``X`` events)."""
        events = []
        for span in self.finished_spans():
            args = {k: _jsonable(v) for k, v in span.attributes.items()}
            if span.parent_id is not None:
                args["parent_span_id"] = span.parent_id
            args["span_id"] = span.span_id
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.start - self.epoch) * 1e6,     # microseconds
                "dur": span.duration * 1e6,
                "pid": os.getpid(),
                "tid": span.thread_id,
                "cat": "repro",
                "args": args,
            })
        events.sort(key=lambda e: e["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path: str | Path) -> Path:
        """Write the trace to ``path``; open it in chrome://tracing/Perfetto."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace(), indent=1))
        return path


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
