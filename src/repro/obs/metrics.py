"""Metrics registry: counters, gauges, and latency histograms.

The paper's claims are quantitative (Eqn 2 speedup, Eqn 3 HitRate, the
§7.3 online breakdown), so the runtime needs first-class instruments
rather than ad-hoc arithmetic scattered through the stack.  This module
provides the three Prometheus-style metric kinds:

* :class:`Counter` — monotonically increasing totals (requests served,
  guard fallbacks);
* :class:`Gauge` — a value that goes up and down (queue depth, tensor
  store size, best-so-far NAS objective);
* :class:`Histogram` — fixed-bucket latency distributions with
  p50/p90/p99 quantile estimates (per-model inference time).

All instruments are thread-safe and label-aware, and the owning
:class:`MetricsRegistry` exports the whole set as Prometheus text
exposition (scrapeable) or JSON (machine-readable snapshots).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Bucket upper bounds (seconds) spanning sub-microsecond kernel launches
#: to multi-second solver runs; the +Inf bucket is implicit.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
    1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)

_RESERVED_LABELS = frozenset({"le", "quantile"})


def _label_key(
    label_names: tuple[str, ...], labels: Mapping[str, object]
) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _format_labels(label_names: Sequence[str], key: Sequence[str], extra: str = "") -> str:
    parts = [f'{n}="{v}"' for n, v in zip(label_names, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Base: name/help/label bookkeeping plus the per-metric lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        bad = _RESERVED_LABELS.intersection(labels)
        if bad:
            raise ValueError(f"reserved label names: {sorted(bad)}")
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._lock = threading.Lock()

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """Monotonically increasing total, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}  # cc: guarded-by(_lock)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._values.values()) if self._values else 0.0

    def raw_series(self) -> dict[tuple[str, ...], float]:
        """Snapshot of every label key's value (cross-process merge source)."""
        with self._lock:
            return dict(self._values)

    def inc_series(self, key: Sequence[str], amount: float) -> None:
        """Add ``amount`` to one label key given positionally.

        The merge path (:mod:`repro.obs.merge`) replays worker-process
        deltas whose label keys arrive as tuples, not keyword arguments.
        """
        if len(key) != len(self.label_names):
            raise ValueError(
                f"expected {len(self.label_names)} label values, got {len(key)}"
            )
        if amount < 0:
            raise ValueError("counters only go up")
        k = tuple(str(v) for v in key)
        with self._lock:
            self._values[k] = self._values.get(k, 0.0) + amount

    def expose(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(f"{self.name}{_format_labels(self.label_names, key)} {value:g}")
        return lines

    def snapshot(self) -> dict:
        with self._lock:
            series = [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"name": self.name, "type": self.kind, "help": self.help,
                "series": series, "total": sum(s["value"] for s in series)}


class Gauge(_Metric):
    """A value that can go up and down (queue depth, store size, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}  # cc: guarded-by(_lock)

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def expose(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(f"{self.name}{_format_labels(self.label_names, key)} {value:g}")
        return lines

    def snapshot(self) -> dict:
        with self._lock:
            series = [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"name": self.name, "type": self.kind, "help": self.help, "series": series}


class _HistogramState:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)   # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket latency histogram with interpolated quantile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (the +Inf bucket is implicit)")
        self.buckets = bounds
        self._states: dict[tuple[str, ...], _HistogramState] = {}  # cc: guarded-by(_lock)

    def _state(self, key: tuple[str, ...]) -> _HistogramState:  # cc: requires(_lock)
        state = self._states.get(key)
        if state is None:
            state = self._states.setdefault(key, _HistogramState(len(self.buckets)))
        return state

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            state = self._state(key)
            state.bucket_counts[idx] += 1
            state.sum += value
            state.count += 1

    def count(self, **labels: object) -> int:
        key = _label_key(self.label_names, labels)
        with self._lock:
            state = self._states.get(key)
            return state.count if state else 0

    def sum(self, **labels: object) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            state = self._states.get(key)
            return state.sum if state else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        """Estimate the ``q`` quantile by linear interpolation in-bucket.

        The estimate is bucket-resolution accurate — exactly what the
        operator gets from a Prometheus ``histogram_quantile`` query.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        key = _label_key(self.label_names, labels)
        with self._lock:
            state = self._states.get(key)
            if state is None or state.count == 0:
                return float("nan")
            counts = list(state.bucket_counts)
            total = state.count
        rank = q * total
        cumulative = 0.0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            prev = cumulative
            cumulative += counts[i]
            if cumulative >= rank:
                if counts[i] == 0:
                    return bound
                frac = (rank - prev) / counts[i]
                return lower + frac * (bound - lower)
            lower = bound
        return self.buckets[-1]   # rank fell in the +Inf bucket: clamp

    def percentiles(self, **labels: object) -> dict[str, float]:
        """The operator's trio: p50/p90/p99 of the observed distribution."""
        return {f"p{int(q * 100)}": self.quantile(q, **labels) for q in (0.5, 0.9, 0.99)}

    def raw_series(self) -> dict[tuple[str, ...], tuple[list[int], float, int]]:
        """Per-key ``(bucket_counts, sum, count)`` snapshot (for merging)."""
        with self._lock:
            return {
                key: (list(state.bucket_counts), state.sum, state.count)
                for key, state in self._states.items()
            }

    def merge_series(
        self,
        key: Sequence[str],
        bucket_counts: Sequence[int],
        sum_delta: float,
        count_delta: int,
    ) -> None:
        """Fold another histogram's per-bucket deltas into this one.

        The caller must have identical bucket bounds — the merge path
        creates the receiving histogram from the shipped bounds, so a
        mismatch means two processes defined one metric differently.
        """
        if len(key) != len(self.label_names):
            raise ValueError(
                f"expected {len(self.label_names)} label values, got {len(key)}"
            )
        if len(bucket_counts) != len(self.buckets) + 1:
            raise ValueError(
                f"expected {len(self.buckets) + 1} bucket counts, "
                f"got {len(bucket_counts)}"
            )
        k = tuple(str(v) for v in key)
        with self._lock:
            state = self._state(k)
            for i, delta in enumerate(bucket_counts):
                state.bucket_counts[i] += int(delta)
            state.sum += float(sum_delta)
            state.count += int(count_delta)

    def expose(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(
                (key, list(state.bucket_counts), state.sum, state.count)
                for key, state in self._states.items()
            )
        for key, counts, total_sum, count in items:
            cumulative = 0
            for bound, c in zip(self.buckets, counts):
                cumulative += c
                labels = _format_labels(self.label_names, key, f'le="{bound:g}"')
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _format_labels(self.label_names, key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {count}")
            plain = _format_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{plain} {total_sum:g}")
            lines.append(f"{self.name}_count{plain} {count}")
        return lines

    def snapshot(self) -> dict:
        with self._lock:
            keys = sorted(self._states)
        series = []
        for key in keys:
            labels = dict(zip(self.label_names, key))
            series.append({
                "labels": labels,
                "count": self.count(**labels),
                "sum": self.sum(**labels),
                **self.percentiles(**labels),
            })
        return {"name": self.name, "type": self.kind, "help": self.help,
                "buckets": list(self.buckets), "series": series}


class MetricsRegistry:
    """Thread-safe get-or-create registry for every instrument in a process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}  # cc: guarded-by(_lock)

    def _get_or_create(self, cls, name: str, help: str, labels: Sequence[str], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- export ----------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-able dict of every metric's current state."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return {"metrics": [m.snapshot() for m in metrics]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)
