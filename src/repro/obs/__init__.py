"""Telemetry subsystem: process-global metrics registry + tracer.

Every instrumented component (orchestrator, serving session, guard, NAS
loops, build pipeline, SPMD pool) reports through the one global
:data:`TELEMETRY` state.  The switch is designed so the *disabled* cost
on a hot path is a single attribute check::

    from repro import obs

    obs.configure(enabled=True)            # on (the default)
    with obs.disabled():                   # temporarily off
        ...
    obs.get_registry().to_prometheus()     # scrape
    obs.get_tracer().export_chrome_trace("build.trace.json")

Set ``REPRO_TELEMETRY=0`` in the environment to start disabled.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from ..perf.timers import PhaseTimer
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .merge import MetricsDeltaTracker, apply_metrics_delta
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsDeltaTracker",
    "apply_metrics_delta",
    "DEFAULT_LATENCY_BUCKETS",
    "Span",
    "Tracer",
    "TELEMETRY",
    "configure",
    "disabled",
    "is_enabled",
    "get_registry",
    "get_tracer",
    "span",
    "phase",
]


class _TelemetryState:
    """The one mutable switchboard; hot paths read ``.enabled`` only."""

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self, enabled: bool, registry: MetricsRegistry, tracer: Tracer) -> None:
        self.enabled = enabled
        self.registry = registry
        self.tracer = tracer


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


#: Process-global telemetry state.  The object identity is stable for the
#: life of the process — ``configure`` mutates it in place, so components
#: may cache a reference at construction time.
TELEMETRY = _TelemetryState(_env_enabled(), MetricsRegistry(), Tracer())


def configure(
    enabled: Optional[bool] = None,
    *,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    reset: bool = False,
) -> _TelemetryState:
    """(Re)configure global telemetry; call before building instrumented
    components so they bind to the right registry.

    ``reset=True`` swaps in a fresh registry and tracer (test isolation).
    """
    if reset:
        TELEMETRY.registry = MetricsRegistry()
        TELEMETRY.tracer = Tracer()
    if registry is not None:
        TELEMETRY.registry = registry
    if tracer is not None:
        TELEMETRY.tracer = tracer
    if enabled is not None:
        TELEMETRY.enabled = bool(enabled)
    return TELEMETRY


def is_enabled() -> bool:
    return TELEMETRY.enabled


def get_registry() -> MetricsRegistry:
    return TELEMETRY.registry


def get_tracer() -> Tracer:
    return TELEMETRY.tracer


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily switch telemetry off (restores the previous state)."""
    previous = TELEMETRY.enabled
    TELEMETRY.enabled = False
    try:
        yield
    finally:
        TELEMETRY.enabled = previous


class _NullSpan:
    """Shared no-op stand-in returned when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


def span(name: str, **attributes: Any):
    """Open a span on the global tracer; a shared no-op when disabled."""
    if not TELEMETRY.enabled:
        return _NULL_SPAN
    return TELEMETRY.tracer.span(name, **attributes)


@contextmanager
def phase(
    name: str,
    *,
    timer: Optional[PhaseTimer] = None,
    histogram: Optional[Histogram] = None,
    labels: Optional[dict[str, Any]] = None,
    attributes: Optional[dict[str, Any]] = None,
) -> Iterator[Optional[Span]]:
    """Measure a block ONCE and feed every consumer the same number.

    The elapsed seconds from one ``perf_counter`` pair are written to the
    span, the :class:`~repro.perf.timers.PhaseTimer` entry ``name``, and
    the latency ``histogram`` — so simulated/measured breakdowns and trace
    views can never drift apart.  When telemetry is disabled the span and
    histogram are skipped but an attached timer still accumulates (the
    §7.3 breakdown is a functional output, not telemetry).
    """
    state = TELEMETRY
    enabled = state.enabled
    open_span = state.tracer.start_span(name, attributes) if enabled else None
    start = open_span.start if open_span is not None else time.perf_counter()
    try:
        yield open_span
    finally:
        elapsed = time.perf_counter() - start
        if open_span is not None:
            state.tracer.end_span(open_span, duration=elapsed)
        if timer is not None:
            timer.add(name, elapsed)
        if enabled and histogram is not None:
            histogram.observe(elapsed, **(labels or {}))
