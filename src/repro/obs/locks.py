"""Instrumented lock wrappers: the dynamic half of the concurrency analysis.

The static analyzer (:mod:`repro.static.concurrency`) derives a
lock-acquisition graph from the AST; this module records the orders a
*running* process actually acquires its locks in, so the two can be
cross-validated the same way the static region I/O is checked against the
dynamic DDDG (:mod:`repro.static.crossval`).  A dynamic edge the static
graph lacks means the analyzer has a blind spot; a static edge the test
suite never exercises means untested lock nesting.

Wrappers are **opt-in** and zero-cost when unused: production code keeps
constructing plain :mod:`threading` primitives, and a test (or a debugging
session) swaps them for tracked ones after construction::

    from repro.obs.locks import instrument_object, RECORDER

    orc = Orchestrator()
    instrument_object(orc)           # wraps _lock, _state_lock, ...
    instrument_object(orc._queue)    # wraps the request queue's condvar
    ... traffic ...
    RECORDER.edges()                 # {("Orchestrator._state_lock",
                                     #   "_RequestQueue._cond"): count, ...}

Lock names follow the static analyzer's identity convention —
``ClassName.attr`` — so recorded edges unify with the static graph's nodes
without translation.  Every tracked acquisition also feeds two latency
histograms on the process registry, labelled by lock name:

* ``repro_lock_wait_seconds`` — time spent waiting to acquire (plus
  condvar ``wait`` time, which is time waiting for the lock + predicate);
* ``repro_lock_held_seconds`` — time between acquire and release.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Mapping, Optional

from . import TELEMETRY, get_registry

__all__ = [
    "LockOrderRecorder",
    "RECORDER",
    "TrackedLock",
    "TrackedCondition",
    "instrument_object",
    "tracked_class_name",
]

_LOCK_TYPE = type(threading.Lock())
_RLOCK_TYPE = type(threading.RLock())


class LockOrderRecorder:
    """Process-wide log of (held-lock -> acquired-lock) order edges.

    Each thread keeps its own held stack; an acquisition of ``B`` while
    ``A`` is held records the edge ``A -> B``.  Reentrant re-acquisitions
    do not record self-edges (an RLock cannot deadlock against itself).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: dict[tuple[str, str], int] = {}  # cc: guarded-by(_lock)
        self._tls = threading.local()

    def _held_stack(self) -> list[str]:
        stack = getattr(self._tls, "held", None)
        if stack is None:
            stack = self._tls.held = []
        return stack

    def held(self) -> tuple[str, ...]:
        """Locks the calling thread currently holds (acquisition order)."""
        return tuple(self._held_stack())

    def on_acquire(self, name: str) -> None:
        stack = self._held_stack()
        new_edges = [
            (held, name) for held in dict.fromkeys(stack) if held != name
        ]
        stack.append(name)
        if new_edges:
            with self._lock:
                for edge in new_edges:
                    self._edges[edge] = self._edges.get(edge, 0) + 1

    def on_release(self, name: str) -> None:
        stack = self._held_stack()
        # release the innermost matching hold (LIFO discipline)
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    def edges(self) -> dict[tuple[str, str], int]:
        """Every recorded (held, acquired) pair with its observation count."""
        with self._lock:
            return dict(self._edges)

    def reset(self) -> None:
        with self._lock:
            self._edges.clear()


#: Default process-global recorder every tracked lock reports to.
RECORDER = LockOrderRecorder()


def _histograms():
    registry = get_registry()
    wait = registry.histogram(
        "repro_lock_wait_seconds",
        "Seconds spent waiting to acquire a tracked lock",
        labels=("lock",),
    )
    held = registry.histogram(
        "repro_lock_held_seconds",
        "Seconds a tracked lock was held per acquire/release pair",
        labels=("lock",),
    )
    return wait, held


class TrackedLock:
    """Wrapper around ``threading.Lock``/``RLock`` that records orders.

    Context-manager and ``acquire``/``release`` compatible, so it can be
    swapped into any attribute that held the plain primitive.
    """

    def __init__(
        self,
        inner,
        name: str,
        *,
        recorder: Optional[LockOrderRecorder] = None,
    ) -> None:
        self._inner = inner
        self.name = name
        self._recorder = recorder if recorder is not None else RECORDER
        self._telemetry = TELEMETRY
        self._m_wait, self._m_held = _histograms()
        self._tls = threading.local()

    def _entry_times(self) -> list[float]:
        times = getattr(self._tls, "times", None)
        if times is None:
            times = self._tls.times = []
        return times

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        start = time.perf_counter()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            now = time.perf_counter()
            if self._telemetry.enabled:
                self._m_wait.observe(now - start, lock=self.name)
            self._recorder.on_acquire(self.name)
            self._entry_times().append(now)
        return acquired

    def release(self) -> None:
        times = self._entry_times()
        self._inner.release()
        self._recorder.on_release(self.name)
        if times and self._telemetry.enabled:
            self._m_held.observe(time.perf_counter() - times.pop(), lock=self.name)
        elif times:
            times.pop()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrackedLock {self.name} wrapping {self._inner!r}>"


class TrackedCondition(TrackedLock):
    """Tracked ``threading.Condition``: lock tracking plus condvar verbs.

    ``wait`` time is observed into ``repro_lock_wait_seconds`` — while a
    thread sits in ``wait`` it is, from the caller's perspective, waiting
    to (re)own the lock with the predicate true.
    """

    def wait(self, timeout: Optional[float] = None) -> bool:
        start = time.perf_counter()
        notified = self._inner.wait(timeout)
        if self._telemetry.enabled:
            self._m_wait.observe(time.perf_counter() - start, lock=self.name)
        return notified

    def wait_for(self, predicate, timeout: Optional[float] = None):
        start = time.perf_counter()
        result = self._inner.wait_for(predicate, timeout)
        if self._telemetry.enabled:
            self._m_wait.observe(time.perf_counter() - start, lock=self.name)
        return result

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


def tracked_class_name(obj: object) -> str:
    """The static analyzer's class component of a lock identity."""
    return type(obj).__name__


def instrument_object(
    obj: object,
    attrs: Optional[Iterable[str]] = None,
    *,
    recorder: Optional[LockOrderRecorder] = None,
    prefix: Optional[str] = None,
) -> Mapping[str, str]:
    """Swap ``obj``'s lock attributes for tracked wrappers, in place.

    Every instance attribute holding a ``Lock``, ``RLock`` or
    ``Condition`` (or only those named in ``attrs``) is replaced by a
    tracked equivalent named ``ClassName.attr`` — the same identity the
    static lock-order graph uses, so recorded edges cross-validate
    directly.  Already-tracked attributes are left alone.  Returns the
    ``{attr: lock name}`` mapping that was instrumented.
    """
    prefix = prefix if prefix is not None else tracked_class_name(obj)
    names = tuple(attrs) if attrs is not None else tuple(vars(obj))
    wrapped: dict[str, str] = {}
    for attr in names:
        value = getattr(obj, attr, None)
        if isinstance(value, (TrackedLock, TrackedCondition)):
            continue
        name = f"{prefix}.{attr}"
        if isinstance(value, threading.Condition):
            setattr(obj, attr, TrackedCondition(value, name, recorder=recorder))
        elif isinstance(value, (_LOCK_TYPE, _RLOCK_TYPE)):
            setattr(obj, attr, TrackedLock(value, name, recorder=recorder))
        else:
            continue
        wrapped[attr] = name
    return wrapped
