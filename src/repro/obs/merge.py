"""Cross-process metric merging for the sharded serving runtime.

Worker processes each hold their own process-global
:class:`~repro.obs.metrics.MetricsRegistry`; the serving front-end needs
one coherent view.  Shipping full snapshots would double-count on every
publish, so workers ship *deltas*:

* :class:`MetricsDeltaTracker` (worker side) diffs the registry against
  the state it last shipped and emits only what moved — counters as
  per-series increments, histograms as per-bucket increments.  The
  payload is a plain dict of str/int/float, safe to pickle through a
  control pipe or result queue.
* :func:`apply_metrics_delta` (front-end side) replays a delta into the
  receiving registry, creating instruments on first sight with the
  shipped help text, label names, and bucket bounds.  Because workers
  reuse the same metric names as the in-process serving path
  (``repro_orchestrator_served_total`` and friends), merged totals read
  exactly like single-process totals.

Gauges are deliberately *not* merged: a worker-local gauge (its own
queue depth, its own tensor-store size) has no meaningful sum, and the
front-end owns the fleet-level gauges (``repro_shard_queue_depth``,
``repro_shm_segments``) directly.
"""

from __future__ import annotations

from typing import Optional

from .metrics import Counter, Histogram, MetricsRegistry

__all__ = ["MetricsDeltaTracker", "apply_metrics_delta"]


class MetricsDeltaTracker:
    """Diffs a registry against the last shipped state (single-threaded).

    One tracker belongs to one worker's publish loop; it is not itself
    thread-safe (the underlying metric reads are).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._counters: dict[str, dict[tuple[str, ...], float]] = {}
        self._histograms: dict[
            str, dict[tuple[str, ...], tuple[list[int], float, int]]
        ] = {}

    def delta(self) -> Optional[dict]:
        """Everything that moved since the previous ``delta()`` call.

        Returns ``None`` when nothing moved, so idle workers ship
        nothing.
        """
        counters: list[dict] = []
        histograms: list[dict] = []
        for name in self._registry.names():
            metric = self._registry.get(name)
            if isinstance(metric, Counter):
                raw = metric.raw_series()
                prev = self._counters.get(name, {})
                series = [
                    {"key": list(key), "value": value - prev.get(key, 0.0)}
                    for key, value in sorted(raw.items())
                    if value != prev.get(key, 0.0)
                ]
                if series:
                    counters.append(
                        {
                            "name": name,
                            "help": metric.help,
                            "labels": list(metric.label_names),
                            "series": series,
                        }
                    )
                self._counters[name] = raw
            elif isinstance(metric, Histogram):
                raw = metric.raw_series()
                prev_h = self._histograms.get(name, {})
                series = []
                for key, (buckets, total, count) in sorted(raw.items()):
                    old = prev_h.get(key)
                    if old is not None and old[2] == count:
                        continue
                    old_buckets = old[0] if old else [0] * len(buckets)
                    series.append(
                        {
                            "key": list(key),
                            "buckets": [
                                b - o for b, o in zip(buckets, old_buckets)
                            ],
                            "sum": total - (old[1] if old else 0.0),
                            "count": count - (old[2] if old else 0),
                        }
                    )
                if series:
                    histograms.append(
                        {
                            "name": name,
                            "help": metric.help,
                            "labels": list(metric.label_names),
                            "bounds": list(metric.buckets),
                            "series": series,
                        }
                    )
                self._histograms[name] = raw
        if not counters and not histograms:
            return None
        return {"counters": counters, "histograms": histograms}


def apply_metrics_delta(registry: MetricsRegistry, delta: dict) -> None:
    """Replay one worker delta into ``registry`` (front-end side)."""
    for entry in delta.get("counters", ()):
        counter = registry.counter(
            entry["name"], entry.get("help", ""), tuple(entry.get("labels", ()))
        )
        for series in entry["series"]:
            counter.inc_series(series["key"], series["value"])
    for entry in delta.get("histograms", ()):
        histogram = registry.histogram(
            entry["name"],
            entry.get("help", ""),
            tuple(entry.get("labels", ())),
            buckets=entry.get("bounds"),
        )
        for series in entry["series"]:
            histogram.merge_series(
                series["key"], series["buckets"], series["sum"], series["count"]
            )
