"""ACCEPT baseline [76] (§7.2 comparison 1).

ACCEPT is a programmer-guided approximation tool: the *user* supplies the
NN topology for each region, and the tool trains it with no feature
reduction, no architecture search, and — crucially — no awareness of the
application's final computation quality.  The paper therefore applies it
only to the Type-II (PARSEC) applications, for which ACCEPT ships
topologies; we mirror that with the per-app topology table below.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..apps.base import Application
from ..core.pipeline import DeployedSurrogate
from ..core.scaling import Scaler
from ..nn.mlp import Topology, build_mlp
from ..nn.train import TrainConfig, train_model
from ..nas.package import SurrogatePackage

__all__ = ["ACCEPT_TOPOLOGIES", "build_accept_surrogate"]

#: the fixed user-given topologies ACCEPT defines for the PARSEC apps —
#: small two-layer perceptrons in the style of the ACCEPT/SNNAP reports
ACCEPT_TOPOLOGIES: dict[str, Topology] = {
    "Blackscholes": Topology(hidden=(16, 16), activation="sigmoid"),
    "Canneal": Topology(hidden=(8, 8), activation="sigmoid"),
    "fluidanimate": Topology(hidden=(16, 16), activation="sigmoid"),
    "streamcluster": Topology(hidden=(8, 8), activation="sigmoid"),
    "X264": Topology(hidden=(16, 16), activation="sigmoid"),
}


def build_accept_surrogate(
    app: Application,
    *,
    topology: Optional[Topology] = None,
    n_samples: int = 400,
    num_epochs: int = 150,
    seed: int = 0,
) -> DeployedSurrogate:
    """Train an ACCEPT-style surrogate: fixed topology, quality-blind.

    Raises ``ValueError`` for apps ACCEPT has no topology for (Type I/III),
    matching the paper's evaluation scope.
    """
    if topology is None:
        try:
            topology = ACCEPT_TOPOLOGIES[app.name]
        except KeyError:
            raise ValueError(
                f"ACCEPT defines no NN topology for {app.name!r} "
                "(the paper applies ACCEPT to Type-II applications only)"
            ) from None

    rng = np.random.default_rng(seed)
    acq = app.acquire(n_samples=n_samples, rng=rng)
    x_scaler = Scaler.fit(acq.x)
    y_scaler = Scaler.fit(acq.y)
    x = x_scaler.transform(acq.x)
    y = y_scaler.transform(acq.y)

    model = build_mlp(acq.input_dim, acq.output_dim, topology, rng)
    train_model(
        model,
        x,
        y,
        TrainConfig(num_epochs=num_epochs, lr=1e-3, patience=25, seed=seed),
    )
    package = SurrogatePackage(
        model=model,
        topology=topology,
        input_dim=acq.input_dim,
        output_dim=acq.output_dim,
        autoencoder=None,
    )
    return DeployedSurrogate(
        app=app,
        package=package,
        input_schema=acq.input_schema,
        output_schema=acq.output_schema,
        x_scaler=x_scaler,
        y_scaler=y_scaler,
    )
