"""Comparison baselines of §7.2: ACCEPT, loop perforation, Autokeras."""

from .accept import ACCEPT_TOPOLOGIES, build_accept_surrogate
from .autokeras import build_autokeras_surrogate
from .perforation import (
    PERFORATABLE,
    PerforationResult,
    evaluate_perforation,
    find_max_rate,
    perforated_run,
)
from .comparison import METHODS, MethodRow, compare_methods

__all__ = [
    "ACCEPT_TOPOLOGIES", "build_accept_surrogate",
    "build_autokeras_surrogate",
    "PERFORATABLE", "PerforationResult", "evaluate_perforation",
    "find_max_rate", "perforated_run",
    "METHODS", "MethodRow", "compare_methods",
]
