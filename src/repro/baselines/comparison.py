"""Fig. 6 harness: Auto-HPCnet vs ACCEPT vs loop perforation vs Autokeras.

All four methods accelerate the *same* code regions (Table 2) and all are
held to the same quality requirement (mu = 10 %): per §7.1, a problem whose
surrogate output misses the requirement restarts on the original code, so
every reported speedup is the restart-adjusted
:func:`~repro.perf.metrics.effective_speedup`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..apps.base import Application
from ..core.config import AutoHPCnetConfig
from ..core.evaluation import evaluate_surrogate
from ..core.pipeline import AutoHPCnet
from ..perf.metrics import effective_speedup
from .accept import build_accept_surrogate
from .autokeras import build_autokeras_surrogate
from .perforation import evaluate_perforation, find_max_rate

__all__ = ["MethodRow", "compare_methods", "METHODS"]

METHODS = ("Auto-HPCnet", "ACCEPT", "LoopPerforation", "Autokeras")


@dataclass
class MethodRow:
    """One bar of Fig. 6."""

    app_name: str
    method: str
    speedup: float          # restart-adjusted (quality-enforced)
    hit_rate: float
    raw_speedup: float      # Eqn 2 without restart accounting
    note: str = ""

    def format(self) -> str:
        return (
            f"{self.app_name:<14} {self.method:<16} "
            f"{self.speedup:7.2f}x   hit {self.hit_rate:6.1%}   "
            f"(raw {self.raw_speedup:6.2f}x) {self.note}"
        )


def compare_methods(
    app: Application,
    *,
    config: Optional[AutoHPCnetConfig] = None,
    n_problems: int = 50,
    mu: float = 0.10,
    seed: int = 0,
) -> list[MethodRow]:
    """Evaluate all four methods on ``app``; returns one row per method."""
    config = config or AutoHPCnetConfig(seed=seed)
    rows: list[MethodRow] = []
    eval_rng = lambda: np.random.default_rng(2023)  # same problems for all methods

    # --- Auto-HPCnet ---
    build = AutoHPCnet(config).build(app)
    row = evaluate_surrogate(
        build.surrogate, n_problems=n_problems, mu=mu, rng=eval_rng()
    )
    rows.append(
        MethodRow(
            app_name=app.name,
            method="Auto-HPCnet",
            speedup=effective_speedup(row.breakdown, row.hit_rate),
            hit_rate=row.hit_rate,
            raw_speedup=row.speedup,
        )
    )

    # --- ACCEPT (Type-II only, as in the paper) ---
    try:
        accept = build_accept_surrogate(
            app, n_samples=config.n_samples, num_epochs=config.num_epochs, seed=seed
        )
        arow = evaluate_surrogate(accept, n_problems=n_problems, mu=mu, rng=eval_rng())
        rows.append(
            MethodRow(
                app_name=app.name,
                method="ACCEPT",
                speedup=effective_speedup(arow.breakdown, arow.hit_rate),
                hit_rate=arow.hit_rate,
                raw_speedup=arow.speedup,
            )
        )
    except ValueError as exc:
        rows.append(
            MethodRow(
                app_name=app.name,
                method="ACCEPT",
                speedup=float("nan"),
                hit_rate=float("nan"),
                raw_speedup=float("nan"),
                note=f"[not applicable: {exc}]",
            )
        )

    # --- loop perforation (HPAC rate search) ---
    rate = find_max_rate(app, mu=mu, rng=np.random.default_rng(seed + 5))
    prow = evaluate_perforation(
        app, rate, n_problems=n_problems, mu=mu, rng=eval_rng()
    )
    rows.append(
        MethodRow(
            app_name=app.name,
            method="LoopPerforation",
            speedup=prow.speedup,
            hit_rate=prow.hit_rate,
            raw_speedup=prow.breakdown.value,
            note=f"[rate {rate:.2f}]",
        )
    )

    # --- Autokeras (dense transfers pay the unroll blow-up) ---
    autokeras = build_autokeras_surrogate(
        app, n_samples=config.n_samples, num_epochs=config.num_epochs, seed=seed
    )
    krow = evaluate_surrogate(
        autokeras,
        n_problems=n_problems,
        mu=mu,
        rng=eval_rng(),
        transfer_blowup=app.unrolled_blowup,
    )
    rows.append(
        MethodRow(
            app_name=app.name,
            method="Autokeras",
            speedup=effective_speedup(krow.breakdown, krow.hit_rate),
            hit_rate=krow.hit_rate,
            raw_speedup=krow.speedup,
        )
    )
    return rows
