"""Autokeras-style AutoML baseline (§7.2 comparison 3).

Autokeras automatically searches NN architectures for best *prediction
accuracy*.  The paper identifies three reasons it underperforms
Auto-HPCnet when used for surrogate construction, all reproduced here:

1. **no feature reduction** — the model consumes the full raw input;
2. **no inference-time objective** — the search minimizes validation error
   only, so it happily picks large, slow models;
3. **no sparse-input support** — sparse matrices are unrolled to dense
   before being shipped to the device, paying the full dense-transfer
   blow-up (14x for the NPB CG matrix) every inference, and the raw
   unstandardized high-dynamic-range values destabilize training
   (the "gradient overflow" failure of §7.2).

It is also quality-unaware: the application's QoI never enters the search,
so the resulting hit rate — and with it the restart-adjusted speedup of
Fig. 6 — can collapse.
"""

from __future__ import annotations

import numpy as np

from ..apps.base import Application
from ..bo.optimize import BayesianOptimizer
from ..core.pipeline import DeployedSurrogate
from ..core.scaling import Scaler
from ..nas.evaluation import evaluate_topology
from ..nas.package import SurrogatePackage
from ..nas.space import TopologySpace
from ..nn.train import TrainConfig

__all__ = ["build_autokeras_surrogate"]


def build_autokeras_surrogate(
    app: Application,
    *,
    n_trials: int = 8,
    n_samples: int = 400,
    num_epochs: int = 150,
    seed: int = 0,
) -> DeployedSurrogate:
    """Accuracy-only NAS on the raw, unreduced input features."""
    rng = np.random.default_rng(seed)
    acq = app.acquire(n_samples=n_samples, rng=rng)

    if app.sparse_input():
        # Autokeras consumes the dense unroll as-is: no standardization of
        # the raw matrix values (diagonal shifts ~n vs zeros elsewhere)
        x_scaler = Scaler.identity(acq.input_dim)
    else:
        x_scaler = Scaler.fit(acq.x)
    y_scaler = Scaler.fit(acq.y)
    x = x_scaler.transform(acq.x)
    y = y_scaler.transform(acq.y)

    space = TopologySpace(
        max_layers=3,
        width_choices=(32, 64, 128),      # Autokeras defaults skew large
        activations=("relu",),
        allow_residual=True,
    )
    optimizer = BayesianOptimizer(
        threshold=None, init_samples=3, rng=np.random.default_rng(seed + 1)
    )
    best_candidate = None
    best_error = np.inf
    search_rng = np.random.default_rng(seed + 2)
    for trial in range(n_trials):
        pool = np.array([space.encode(space.sample(search_rng)) for _ in range(48)])
        idx = optimizer.ask(pool)
        topology = space.decode(pool[idx])
        candidate = evaluate_topology(
            topology,
            x,
            y,
            train_config=TrainConfig(num_epochs=num_epochs, lr=1e-3, patience=25, seed=seed),
            rng=np.random.default_rng(seed + 100 + trial),
        )
        # accuracy-only objective: validation error, never inference time
        optimizer.tell(space.encode(topology), candidate.val_error)
        if candidate.val_error < best_error:
            best_error = candidate.val_error
            best_candidate = candidate

    assert best_candidate is not None
    package = SurrogatePackage(
        model=best_candidate.package.model,
        topology=best_candidate.topology,
        input_dim=acq.input_dim,
        output_dim=acq.output_dim,
        autoencoder=None,
    )
    return DeployedSurrogate(
        app=app,
        package=package,
        input_schema=acq.input_schema,
        output_schema=acq.output_schema,
        x_scaler=x_scaler,
        y_scaler=y_scaler,
    )
