"""Loop perforation baseline, HPAC-style [63] (§7.2 comparison 2).

Loop perforation skips a fraction of a loop's iterations.  Following HPAC,
a small offline search finds the largest skip rate whose QoI degradation
stays within the quality requirement; the perforated application then runs
on the CPU (perforation does not move code to an accelerator — which is
exactly why the paper finds its speedups limited: the approximation
granularity is the loop iteration, and the ceiling is ``1 / (1 - rate)``
on the loop itself).

Each application gets a strategy describing *which* loop perforates and
how the region cost scales; apps with no safely-perforatable loop (a
single direct solve, an FFT butterfly network) only admit rate 0, as a
perforated FFT/LU is numerically meaningless — the honest analogue of
HPAC refusing to annotate such loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

import numpy as np

from ..apps.base import Application, RegionCost
from ..perf.devices import DeviceModel, XEON_E5_2698V4
from ..perf.metrics import SpeedupBreakdown, effective_speedup, hit_rate

__all__ = [
    "PerforationResult",
    "perforated_run",
    "find_max_rate",
    "evaluate_perforation",
    "PERFORATABLE",
]

Strategy = Callable[[Application, Mapping[str, Any], float], tuple[dict, RegionCost]]


def _run(app: Application, problem: Mapping[str, Any]) -> dict:
    return app._outputs_dict(app.region_fn(**problem))


def _perforate_iters(key: str, nominal: Callable[[Application], int]) -> Strategy:
    def strategy(app: Application, problem: Mapping[str, Any], rate: float):
        p = dict(problem)
        p[key] = max(1, int(round(nominal(app) * (1.0 - rate))))
        outputs = _run(app, p)
        return outputs, app.region_cost(problem, outputs)

    return strategy


def _perforate_scaled(key: str, attr: str) -> Strategy:
    """Reduce an iteration knob; cost scales with the knob ratio."""

    def strategy(app: Application, problem: Mapping[str, Any], rate: float):
        original = int(problem[key])
        reduced = max(1, int(round(original * (1.0 - rate))))
        p = dict(problem)
        p[key] = reduced
        outputs = _run(app, p)
        cost = app.region_cost(problem, outputs).scaled(reduced / original)
        return outputs, cost

    return strategy


def _perforate_blackscholes(app, problem, rate):
    n = app.n
    keep = max(1, int(round(n * (1.0 - rate))))
    idx = np.linspace(0, n - 1, keep).astype(np.int64)
    sub = {k: np.asarray(v)[idx] for k, v in problem.items()}
    prices_sub = app.region_fn(**sub)
    # nearest-computed fill for the skipped options
    nearest = np.abs(np.arange(n)[:, None] - idx[None, :]).argmin(axis=1)
    prices = prices_sub[nearest]
    cost = app.region_cost(problem, {}).scaled(keep / n)
    return {"prices": prices}, cost


def _perforate_canneal(app, problem, rate):
    proposals = np.asarray(problem["proposals"])
    keep = max(1, int(round(proposals.shape[0] * (1.0 - rate))))
    p = dict(problem)
    p["proposals"] = proposals[:keep]
    outputs = _run(app, p)
    cost = app.region_cost(problem, outputs).scaled(keep / proposals.shape[0])
    return outputs, cost


def _perforate_x264(app, problem, rate):
    outputs = _run(app, problem)
    recon = np.array(outputs["recon"], copy=True)
    previous = np.asarray(problem["previous"])
    size = recon.shape[0]
    blocks = [(by, bx) for by in range(0, size, 4) for bx in range(0, size, 4)]
    skip = int(round(len(blocks) * rate))
    for by, bx in blocks[:skip]:           # deterministic raster-order skip
        recon[by : by + 4, bx : bx + 4] = previous[by : by + 4, bx : bx + 4]
    cost = app.region_cost(problem, outputs).scaled(1.0 - rate)
    return {"recon": recon}, cost


def _no_perforation(app, problem, rate):
    if rate > 0:
        raise ValueError(f"{app.name} has no safely-perforatable loop")
    outputs = _run(app, problem)
    return outputs, app.region_cost(problem, outputs)


#: app name -> (strategy, admissible rates)
PERFORATABLE: dict[str, tuple[Strategy, tuple[float, ...]]] = {
    "CG": (_perforate_iters("max_iters", lambda a: a.n), (0.0, 0.125, 0.25, 0.375, 0.5)),
    "AMG": (_perforate_iters("max_iters", lambda a: a.n // 2), (0.0, 0.125, 0.25, 0.375, 0.5)),
    "MG": (_perforate_scaled("sweeps", "sweeps"), (0.0, 0.25, 0.5)),
    "Blackscholes": (_perforate_blackscholes, (0.0, 0.25, 0.5, 0.75)),
    "Canneal": (_perforate_canneal, (0.0, 0.25, 0.5, 0.75)),
    "fluidanimate": (_perforate_scaled("jacobi_iters", "jacobi_iters"), (0.0, 0.25, 0.5, 0.75)),
    "streamcluster": (_perforate_scaled("power_iters", "power_iters"), (0.0, 1.0 / 3.0, 2.0 / 3.0)),
    "X264": (_perforate_x264, (0.0, 0.25, 0.5, 0.75)),
    "FFT": (_no_perforation, (0.0,)),
    "miniQMC": (_no_perforation, (0.0,)),
    "Laghos": (_no_perforation, (0.0,)),
}


def perforated_run(
    app: Application, problem: Mapping[str, Any], rate: float
) -> tuple[dict, RegionCost]:
    """Run the app's perforated region at ``rate``; returns outputs + cost."""
    try:
        strategy, rates = PERFORATABLE[app.name]
    except KeyError:
        raise ValueError(f"no perforation strategy for {app.name!r}") from None
    if not any(abs(rate - r) < 1e-9 for r in rates):
        raise ValueError(f"rate {rate} not admissible for {app.name}; use {rates}")
    return strategy(app, problem, rate)


@dataclass
class PerforationResult:
    """Outcome of the HPAC-style rate search + evaluation."""

    app_name: str
    rate: float
    speedup: float
    hit_rate: float
    breakdown: SpeedupBreakdown


def find_max_rate(
    app: Application,
    *,
    mu: float = 0.10,
    n_problems: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Largest admissible skip rate whose QoI degradation stays within mu."""
    rng = rng or np.random.default_rng(0)
    _, rates = PERFORATABLE[app.name]
    problems = app.generate_problems(n_problems, rng)
    exact = [app.run_exact(p).qoi for p in problems]
    best = 0.0
    for rate in sorted(rates):
        qois = [
            app.qoi_from_outputs(p, perforated_run(app, p, rate)[0])
            for p in problems
        ]
        if hit_rate(exact, qois, mu=mu) >= 1.0 - 1e-9:
            best = rate
        else:
            break
    return best


def evaluate_perforation(
    app: Application,
    rate: float,
    *,
    n_problems: int = 50,
    mu: float = 0.10,
    rng: Optional[np.random.Generator] = None,
    cpu: DeviceModel = XEON_E5_2698V4,
) -> PerforationResult:
    """Fig. 6 protocol for the perforated application."""
    rng = rng or np.random.default_rng(2023)
    problems = app.generate_problems(n_problems, rng)
    exact_qois = np.empty(n_problems)
    perf_qois = np.empty(n_problems)
    solver_seconds = 0.0
    perforated_seconds = 0.0
    other_seconds = 0.0
    for i, problem in enumerate(problems):
        run = app.run_exact(problem)
        exact_qois[i] = run.qoi
        region = run.region_cost.scaled(app.cost_scale)
        solver_seconds += cpu.kernel_time(region.flops, region.bytes_moved)
        outputs, cost = perforated_run(app, problem, rate)
        perf_qois[i] = app.qoi_from_outputs(problem, outputs)
        scaled = cost.scaled(app.cost_scale)
        perforated_seconds += cpu.kernel_time(scaled.flops, scaled.bytes_moved)
        other = app.other_cost(problem).scaled(app.cost_scale)
        other_seconds += cpu.kernel_time(other.flops, other.bytes_moved)

    # perforation keeps the region on the CPU: its "surrogate" time is the
    # perforated region itself, with no device transfer
    breakdown = SpeedupBreakdown(
        t_numerical_solver=solver_seconds,
        t_nn_infer=perforated_seconds,
        t_data_load=0.0,
        t_other=other_seconds,
    )
    rate_hit = hit_rate(exact_qois, perf_qois, mu=mu)
    return PerforationResult(
        app_name=app.name,
        rate=rate,
        speedup=effective_speedup(breakdown, rate_hit),
        hit_rate=rate_hit,
        breakdown=breakdown,
    )
