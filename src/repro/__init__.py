"""repro — a from-scratch reproduction of Auto-HPCnet (HPDC '23).

Auto-HPCnet is an end-to-end framework that replaces annotated code regions
of HPC applications with automatically-constructed neural-network
surrogates.  This package rebuilds the full system in NumPy: the
compiler-based extractor, sparse-matrix substrate, customized autoencoder,
hierarchical 2D neural-architecture search, serving runtime and the 11
evaluation applications.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    import numpy as np
    from repro import AutoHPCnet, AutoHPCnetConfig
    from repro.apps import BlackscholesApplication
    from repro.core import evaluate_surrogate

    app = BlackscholesApplication()
    framework = AutoHPCnet(AutoHPCnetConfig(quality_loss=0.10))
    build = framework.build(app)
    row = evaluate_surrogate(build.surrogate, n_problems=50)
    print(row.format())
"""

from .core import (
    AutoHPCnet,
    AutoHPCnetConfig,
    BuildResult,
    DeployedSurrogate,
    EvaluationRow,
    evaluate_surrogate,
)

__version__ = "1.0.0"

__all__ = [
    "AutoHPCnet",
    "AutoHPCnetConfig",
    "BuildResult",
    "DeployedSurrogate",
    "EvaluationRow",
    "evaluate_surrogate",
    "__version__",
]
