"""Dynamic data-dependency graph construction and I/O classification (§3.1).

Vertices are *versions* of variables (``name@k``: the value produced by the
k-th write to ``name``); edges are the operations transforming read values
into written values, following FlipTracker's DDDG formulation [30] that the
paper extends.

Two extensions from the paper are implemented:

* **array grouping** — element accesses are recorded at base-array
  granularity by the static analysis, so an array is one feature, not
  thousands (§3.1 "group variables for effective feature reduction");
* **parallel construction** — the flattened trace is split into chunks, a
  cheap sequential pre-pass computes per-chunk starting versions for every
  variable, and a thread pool then builds per-chunk edge lists that merge
  into a graph identical to the sequential result.
"""

from __future__ import annotations

import builtins
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import networkx as nx
import numpy as np

from ..sparse import COOMatrix, CSCMatrix, CSRMatrix
from .events import Trace

__all__ = ["DDDG", "build_dddg", "IOClassification", "classify_io"]

_DATA_TYPES = (int, float, complex, np.ndarray, np.generic, COOMatrix, CSRMatrix, CSCMatrix)


def _node(name: str, version: int) -> str:
    return f"{name}@{version}"


@dataclass
class DDDG:
    """The dependency graph plus the summaries classification needs."""

    graph: nx.DiGraph
    root_reads: frozenset[str]     # vars read at version 0 (read before written)
    written: frozenset[str]        # vars written at least once in the region
    read: frozenset[str]           # vars read at least once

    @property
    def roots(self) -> frozenset[str]:
        """Root *nodes* (version-0 vertices with successors)."""
        return frozenset(
            n for n in self.graph.nodes
            if n.endswith("@0") and self.graph.out_degree(n) > 0
        )

    @property
    def leaves(self) -> frozenset[str]:
        """Leaf nodes: final versions never read again inside the region."""
        return frozenset(
            n for n in self.graph.nodes if self.graph.out_degree(n) == 0
        )

    def final_version_vars(self) -> frozenset[str]:
        """Variable names whose final version is a leaf."""
        return frozenset(n.split("@", 1)[0] for n in self.leaves)


def _chunk_edges(
    chunk: Sequence[tuple[int, int]],
    stmt_table: Mapping[int, Any],
    start_versions: Mapping[str, int],
) -> tuple[list[tuple[str, str, int, int]], set[str], set[str], set[str]]:
    """Edge list for one trace chunk given each variable's starting version."""
    versions = dict(start_versions)
    edges: list[tuple[str, str, int, int]] = []
    root_reads: set[str] = set()
    written: set[str] = set()
    read: set[str] = set()
    for stmt_id, mult in chunk:
        info = stmt_table[stmt_id]
        read_nodes = []
        for r in info.reads:
            v = versions.get(r, 0)
            if v == 0:
                root_reads.add(r)
            read.add(r)
            read_nodes.append(_node(r, v))
        for w in info.writes:
            versions[w] = versions.get(w, 0) + 1
            written.add(w)
            dst = _node(w, versions[w])
            for src in read_nodes:
                edges.append((src, dst, stmt_id, mult))
            if not read_nodes:
                # constant assignment still creates the version node
                edges.append((_node(w, versions[w] - 1), dst, stmt_id, 0))
    return edges, root_reads, written, read


def build_dddg(trace: Trace, *, workers: int = 1) -> DDDG:
    """Construct the DDDG from a (possibly compressed) trace.

    With ``workers > 1`` construction parallelizes over trace chunks as the
    paper describes; the result is identical to the sequential build.
    """
    flat = list(trace.flatten())
    stmt_table = trace.stmt_table

    if workers <= 1 or len(flat) < 2 * workers:
        chunks = [flat]
    else:
        per = (len(flat) + workers - 1) // workers
        chunks = [flat[i : i + per] for i in range(0, len(flat), per)]

    # pre-pass: starting version of every variable for every chunk
    start_versions: list[dict[str, int]] = []
    running: dict[str, int] = {}
    for chunk in chunks:
        start_versions.append(dict(running))
        for stmt_id, _mult in chunk:
            for w in stmt_table[stmt_id].writes:
                running[w] = running.get(w, 0) + 1

    if len(chunks) == 1:
        results = [_chunk_edges(chunks[0], stmt_table, start_versions[0])]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(
                    lambda pair: _chunk_edges(pair[0], stmt_table, pair[1]),
                    zip(chunks, start_versions),
                )
            )

    graph = nx.DiGraph()
    root_reads: set[str] = set()
    written: set[str] = set()
    read: set[str] = set()
    for edges, chunk_roots, chunk_written, chunk_read in results:
        # a "root read" is only genuine if no earlier chunk wrote the var;
        # the pre-pass versions already encode that (version 0 check), so
        # chunk_roots are correct as-is.
        root_reads |= chunk_roots
        written |= chunk_written
        read |= chunk_read
        for src, dst, stmt_id, mult in edges:
            if graph.has_edge(src, dst):
                graph[src][dst]["weight"] += mult
            else:
                graph.add_edge(src, dst, stmt=stmt_id, weight=mult)

    # ensure every version-0 node of a root read exists even if isolated
    for name in root_reads:
        graph.add_node(_node(name, 0))

    return DDDG(
        graph=graph,
        root_reads=frozenset(root_reads),
        written=frozenset(written),
        read=frozenset(read),
    )


@dataclass(frozen=True)
class IOClassification:
    """Input / output / internal variable sets of a region (§3)."""

    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    internals: tuple[str, ...]


def _is_data(value: Any) -> bool:
    return isinstance(value, _DATA_TYPES)


def classify_io(
    dddg: DDDG,
    namespace: Mapping[str, Any],
    live_after: frozenset[str] | set[str] | Sequence[str],
) -> IOClassification:
    """Classify region variables per the paper's definitions (§3).

    * **inputs** — declared outside the region (present in ``namespace``,
      i.e. the region's arguments/closure) and read before written inside
      (their version-0 node is a DDDG root).  Non-data bindings (modules,
      functions) are filtered out.
    * **outputs** — written in the region and live afterwards
      (``live_after`` comes from liveness/use-def analysis of the
      continuation, or from the region's returned names).
    * **internals** — everything else the region touches.
    """
    live = frozenset(live_after)
    inputs = tuple(
        sorted(
            name
            for name in dddg.root_reads
            if name in namespace and _is_data(namespace[name])
        )
    )
    outputs = tuple(sorted(name for name in dddg.written if name in live))
    touched = dddg.read | dddg.written
    classified = set(inputs) | set(outputs)
    internals = tuple(
        sorted(
            name
            for name in touched
            if name not in classified
            and not (name in namespace and not _is_data(namespace[name]))
            and not hasattr(builtins, name)
        )
    )
    return IOClassification(inputs=inputs, outputs=outputs, internals=internals)
