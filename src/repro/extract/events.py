"""Trace event model for the compiler-based extractor (§3.1).

The tracer (LLVM-Tracer substitute) emits a hierarchical trace:

* :class:`StmtHit` — one dynamic execution of a statement, carrying the
  statically-analyzed read/write sets of that statement.
* :class:`LoopTrace` — a loop whose iterations have been *compressed*: when
  an iteration has the same control flow and touches the same (array)
  variables as the previous one, only one copy is kept with a repeat count.
  This is the paper's trace-size reduction.

``flatten`` expands a compressed trace back to per-statement granularity
(weighted by repeats) for consumers like the DDDG builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = ["StmtInfo", "StmtHit", "LoopTrace", "Trace", "TraceEvent"]


@dataclass(frozen=True)
class StmtInfo:
    """Static facts about one source statement inside the region."""

    stmt_id: int
    lineno: int
    kind: str                      # assign / augassign / for / while / if / expr / return
    reads: frozenset[str]          # variable names read (base names for arrays)
    writes: frozenset[str]         # variable names written
    arrays_read: frozenset[str]    # subset of reads accessed via subscript
    arrays_written: frozenset[str] # subset of writes accessed via subscript
    op_count: int                  # arithmetic ops appearing in the statement
    source: str = ""


@dataclass(frozen=True)
class StmtHit:
    """One dynamic execution of statement ``stmt_id``."""

    stmt_id: int

    def signature(self) -> tuple:
        return ("s", self.stmt_id)


@dataclass
class LoopTrace:
    """A loop's compressed iterations: list of (events, repeat_count)."""

    loop_id: int
    iterations: list[tuple[list["TraceEvent"], int]] = field(default_factory=list)

    def signature(self) -> tuple:
        return (
            "l",
            self.loop_id,
            tuple(
                (tuple(e.signature() for e in events), count)
                for events, count in self.iterations
            ),
        )

    @property
    def total_iterations(self) -> int:
        return sum(count for _, count in self.iterations)

    @property
    def stored_iterations(self) -> int:
        return len(self.iterations)


TraceEvent = Union[StmtHit, LoopTrace]


@dataclass
class Trace:
    """A complete region trace plus the static statement table."""

    events: list[TraceEvent]
    stmt_table: dict[int, StmtInfo]

    def flatten(self) -> Iterator[tuple[int, int]]:
        """Yield (stmt_id, multiplicity) in execution order.

        Compressed loop iterations are yielded once with their repeat count
        as the multiplicity (nested loops multiply).
        """
        yield from _flatten(self.events, 1)

    def stored_length(self) -> int:
        """Number of statement hits physically stored (post compression)."""
        return sum(1 for _ in _walk_stored(self.events))

    def dynamic_length(self) -> int:
        """Number of statement executions the trace represents."""
        return sum(mult for _, mult in self.flatten())

    def compression_ratio(self) -> float:
        stored = self.stored_length()
        return self.dynamic_length() / stored if stored else 1.0


    # -- persistence ------------------------------------------------------
    #
    # The paper's tracer materializes instruction traces on disk so the
    # analysis stages can run separately; these methods serialize the
    # compressed trace (events + statement table) as JSON.

    def save(self, path) -> "Path":
        import json
        from pathlib import Path

        payload = {
            "version": 1,
            "events": [_event_to_json(e) for e in self.events],
            "stmt_table": {
                str(sid): {
                    "stmt_id": info.stmt_id,
                    "lineno": info.lineno,
                    "kind": info.kind,
                    "reads": sorted(info.reads),
                    "writes": sorted(info.writes),
                    "arrays_read": sorted(info.arrays_read),
                    "arrays_written": sorted(info.arrays_written),
                    "op_count": info.op_count,
                    "source": info.source,
                }
                for sid, info in self.stmt_table.items()
            },
        }
        path = Path(path)
        path.write_text(json.dumps(payload))
        return path

    @classmethod
    def load(cls, path) -> "Trace":
        import json
        from pathlib import Path

        payload = json.loads(Path(path).read_text())
        if payload.get("version") != 1:
            raise ValueError(f"unsupported trace version {payload.get('version')!r}")
        stmt_table = {
            int(sid): StmtInfo(
                stmt_id=meta["stmt_id"],
                lineno=meta["lineno"],
                kind=meta["kind"],
                reads=frozenset(meta["reads"]),
                writes=frozenset(meta["writes"]),
                arrays_read=frozenset(meta["arrays_read"]),
                arrays_written=frozenset(meta["arrays_written"]),
                op_count=meta["op_count"],
                source=meta["source"],
            )
            for sid, meta in payload["stmt_table"].items()
        }
        events = [_event_from_json(e) for e in payload["events"]]
        return cls(events=events, stmt_table=stmt_table)


def _event_to_json(event: TraceEvent) -> dict:
    if isinstance(event, StmtHit):
        return {"t": "s", "id": event.stmt_id}
    return {
        "t": "l",
        "id": event.loop_id,
        "iters": [
            ([_event_to_json(e) for e in inner], count)
            for inner, count in event.iterations
        ],
    }


def _event_from_json(payload: dict) -> TraceEvent:
    if payload["t"] == "s":
        return StmtHit(payload["id"])
    iterations = [
        ([_event_from_json(e) for e in inner], count)
        for inner, count in payload["iters"]
    ]
    return LoopTrace(payload["id"], iterations)


def _flatten(events: list[TraceEvent], mult: int) -> Iterator[tuple[int, int]]:
    for event in events:
        if isinstance(event, StmtHit):
            yield event.stmt_id, mult
        else:
            for inner, count in event.iterations:
                yield from _flatten(inner, mult * count)


def _walk_stored(events: list[TraceEvent]) -> Iterator[int]:
    for event in events:
        if isinstance(event, StmtHit):
            yield event.stmt_id
        else:
            for inner, _count in event.iterations:
                yield from _walk_stored(inner)
