"""DDDG export and inspection tooling.

The paper's extractor "automatically analyzes the graph" — this module
gives the user the same visibility: export the dynamic data-dependency
graph to Graphviz DOT (with inputs/outputs/internals colour-coded), or
summarize it as text, so a domain scientist can sanity-check what the
tracer identified before committing to a surrogate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from .dddg import DDDG, IOClassification

__all__ = ["to_dot", "write_dot", "summarize_dddg"]


def _variable(node: str) -> str:
    return node.split("@", 1)[0]


def to_dot(
    dddg: DDDG,
    io: Optional[IOClassification] = None,
    *,
    max_nodes: int = 400,
    graph_name: str = "dddg",
) -> str:
    """Render the DDDG as Graphviz DOT text.

    Inputs are drawn as green boxes, outputs as blue double circles,
    internals as grey ellipses.  Graphs larger than ``max_nodes`` are
    truncated (highest-degree nodes kept) so the output stays plottable.
    """
    graph = dddg.graph
    nodes = list(graph.nodes)
    truncated = False
    if len(nodes) > max_nodes:
        nodes = sorted(graph.nodes, key=lambda n: -graph.degree(n))[:max_nodes]
        truncated = True
    keep = set(nodes)

    inputs = set(io.inputs) if io else set()
    outputs = set(io.outputs) if io else set()

    lines = [f"digraph {graph_name} {{", "  rankdir=LR;"]
    if truncated:
        lines.append(
            f'  label="truncated to the {max_nodes} highest-degree nodes";'
        )
    for node in nodes:
        var = _variable(node)
        if var in inputs:
            style = 'shape=box, style=filled, fillcolor="#c7e9c0"'
        elif var in outputs:
            style = 'shape=doublecircle, style=filled, fillcolor="#c6dbef"'
        else:
            style = 'shape=ellipse, style=filled, fillcolor="#eeeeee"'
        lines.append(f'  "{node}" [{style}];')
    for src, dst, data in graph.edges(data=True):
        if src in keep and dst in keep:
            weight = data.get("weight", 1)
            label = f' [label="x{weight}"]' if weight > 1 else ""
            lines.append(f'  "{src}" -> "{dst}"{label};')
    lines.append("}")
    return "\n".join(lines)


def write_dot(
    dddg: DDDG,
    path: Union[str, Path],
    io: Optional[IOClassification] = None,
    **kwargs,
) -> Path:
    """Write :func:`to_dot` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(to_dot(dddg, io, **kwargs))
    return path


def summarize_dddg(dddg: DDDG, io: Optional[IOClassification] = None) -> str:
    """Human-readable summary: sizes, roots/leaves, per-variable versions."""
    graph = dddg.graph
    versions: dict[str, int] = {}
    for node in graph.nodes:
        var = _variable(node)
        versions[var] = versions.get(var, 0) + 1
    hottest = sorted(versions.items(), key=lambda kv: -kv[1])[:8]
    lines = [
        f"DDDG: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges",
        f"roots (read-before-written): {sorted(dddg.root_reads)}",
        f"leaf variables: {sorted(dddg.final_version_vars())}",
        "most-versioned variables: "
        + ", ".join(f"{var} (x{count})" for var, count in hottest),
    ]
    if io is not None:
        lines.append(f"classified inputs:  {list(io.inputs)}")
        lines.append(f"classified outputs: {list(io.outputs)}")
        lines.append(f"internals: {list(io.internals)}")
    return "\n".join(lines)
