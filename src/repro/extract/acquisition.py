"""End-to-end data acquisition: trace -> DDDG -> I/O -> training samples.

This is the "Compiler-based Extractor" box of Fig. 1: one call takes an
annotated region and a concrete example input and returns everything the
downstream search needs — the identified input/output features, their
schemas, and a perturbation-generated training set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from .dddg import DDDG, IOClassification, build_dddg, classify_io
from .directives import get_region_spec
from .events import Trace
from .features import FeatureSchema, build_schema
from .liveness import live_in
from .sampling import Perturbation, SampleGenerator, returned_names
from .tracer import RegionTracer

__all__ = ["AcquisitionResult", "acquire"]


@dataclass
class AcquisitionResult:
    """Everything the extractor learned about one region."""

    region_name: str
    io: IOClassification
    input_schema: FeatureSchema
    output_schema: FeatureSchema
    x: np.ndarray          # (n_samples, input_dim)
    y: np.ndarray          # (n_samples, output_dim)
    trace: Trace
    dddg: DDDG

    @property
    def input_dim(self) -> int:
        return self.input_schema.total_size

    @property
    def output_dim(self) -> int:
        return self.output_schema.total_size

    def summary(self) -> str:
        return (
            f"region {self.region_name!r}: "
            f"inputs={list(self.io.inputs)} ({self.input_dim} features), "
            f"outputs={list(self.io.outputs)} ({self.output_dim} features), "
            f"{self.x.shape[0]} samples, "
            f"trace {self.trace.stored_length()} stored / "
            f"{self.trace.dynamic_length()} dynamic stmts "
            f"({self.trace.compression_ratio():.1f}x compression)"
        )


def acquire(
    region_fn,
    example_inputs: Mapping[str, Any],
    *,
    n_samples: int = 200,
    perturbation: Perturbation = Perturbation(),
    rng: np.random.Generator | None = None,
    dddg_workers: int = 1,
    perturb_names: Sequence[str] | None = None,
    sample_workers: int = 1,
) -> AcquisitionResult:
    """Run the full §3 workflow on one annotated region.

    1. trace the region on ``example_inputs`` (loop-compressed);
    2. build the DDDG (optionally in parallel);
    3. classify inputs/outputs using the region's liveness info
       (``live_after`` from the directive, or liveness analysis of
       ``continuation_source``, or the region's returned names);
    4. build feature schemas (arrays grouped);
    5. generate ``n_samples`` training pairs by input perturbation.

    By default only array/sparse-valued inputs are perturbed: randomizing
    scalar knobs (iteration counts, tolerances) would change the region's
    execution path, and §3.2 requires one surrogate per execution-path
    distribution.  Pass ``perturb_names`` to override.
    """
    spec = get_region_spec(region_fn)
    rng = rng or np.random.default_rng(0)

    tracer = RegionTracer(region_fn)
    result, trace = tracer.trace(**example_inputs)
    dddg = build_dddg(trace, workers=dddg_workers)

    if spec.live_after:
        live = frozenset(spec.live_after)
    elif spec.continuation_source:
        live = live_in(spec.continuation_source)
    else:
        live = frozenset(returned_names(region_fn))
    io = classify_io(dddg, example_inputs, live)
    if not io.inputs:
        raise ValueError(f"region {spec.name!r}: no input variables identified")
    if not io.outputs:
        raise ValueError(f"region {spec.name!r}: no output variables identified")

    input_schema = build_schema(io.inputs, example_inputs)

    generator_probe = SampleGenerator.__new__(SampleGenerator)
    # build the output schema from one concrete run of the region
    out_names = tuple(returned_names(region_fn)) or io.outputs
    ordered_outputs = tuple(n for n in out_names if n in io.outputs) or io.outputs
    raw = region_fn(**example_inputs)
    del generator_probe
    if isinstance(raw, Mapping):
        example_outputs = dict(raw)
    elif isinstance(raw, tuple):
        example_outputs = dict(zip(out_names, raw))
    else:
        example_outputs = {out_names[0]: raw}
    output_schema = build_schema(ordered_outputs, example_outputs)

    generator = SampleGenerator(
        region_fn,
        input_schema,
        output_schema,
        output_names=out_names,
    )
    if perturb_names is None:
        perturb_names = tuple(
            f.name
            for f in input_schema.fields
            if f.is_sparse or len(f.shape) >= 1
        ) or input_schema.names
    if sample_workers > 1:
        # the N region executions are independent (§6.1's "run the
        # application N times"); fan them out over SPMD ranks
        from ..parallel.pool import parallel_samples

        x, y = parallel_samples(
            generator,
            example_inputs,
            n_samples,
            perturbation=perturbation,
            rng=rng,
            perturb_names=perturb_names,
            workers=sample_workers,
        )
    else:
        x, y = generator.generate(
            example_inputs,
            n_samples,
            perturbation=perturbation,
            rng=rng,
            perturb_names=perturb_names,
        )

    return AcquisitionResult(
        region_name=spec.name,
        io=io,
        input_schema=input_schema,
        output_schema=output_schema,
        x=x,
        y=y,
        trace=trace,
        dddg=dddg,
    )
