"""Compiler-based extractor: tracing, DDDG, I/O identification, sampling.

This subpackage is the LLVM-Tracer substitute (DESIGN.md §2).  Public API::

    from repro.extract import code_region, RegionTracer, build_dddg
    from repro.extract import classify_io, acquire, Perturbation
"""

from .analysis import analyze_statement, count_ops, names_read, names_written
from .directives import RegionSpec, code_region, get_region_spec
from .events import LoopTrace, StmtHit, StmtInfo, Trace
from .tracer import Recorder, RegionTracer
from .dddg import DDDG, IOClassification, build_dddg, classify_io
from .liveness import live_in, uses_before_defs
from .features import FeatureField, FeatureSchema, batch_to_csr, build_schema
from .sampling import Perturbation, SampleGenerator, perturb_value, returned_names
from .acquisition import AcquisitionResult, acquire
from .export import summarize_dddg, to_dot, write_dot

__all__ = [
    "analyze_statement", "count_ops", "names_read", "names_written",
    "RegionSpec", "code_region", "get_region_spec",
    "LoopTrace", "StmtHit", "StmtInfo", "Trace",
    "Recorder", "RegionTracer",
    "DDDG", "IOClassification", "build_dddg", "classify_io",
    "live_in", "uses_before_defs",
    "FeatureField", "FeatureSchema", "batch_to_csr", "build_schema",
    "Perturbation", "SampleGenerator", "perturb_value", "returned_names",
    "AcquisitionResult", "acquire",
    "summarize_dddg", "to_dot", "write_dot",
]
