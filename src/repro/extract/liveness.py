"""Liveness / use-def analysis for output-variable identification (§3.1).

Taking only DDDG leaves as outputs is insufficient: a variable written in
the region may be consumed by code *after* the region.  The paper combines
liveness analysis with use-def chains over the continuation; here we
compute, from the source text of the code following the region, the set of
variables that are **used before being redefined** — the classic live-in
set of the continuation.
"""

from __future__ import annotations

import ast
import textwrap

from .analysis import analyze_statement

__all__ = ["live_in", "uses_before_defs"]


def _live_in_body(body: list[ast.stmt], live_out: frozenset[str]) -> frozenset[str]:
    """Backward dataflow over a statement list: live = use ∪ (live - def)."""
    live = set(live_out)
    for stmt in reversed(body):
        if isinstance(stmt, ast.If):
            branch_live = set(_live_in_body(stmt.body, frozenset(live)))
            branch_live |= _live_in_body(stmt.orelse, frozenset(live))
            header = analyze_statement(stmt, -1)
            live = branch_live | set(header.reads)
        elif isinstance(stmt, (ast.For, ast.While)):
            # loop body may execute zero times: union of fall-through and
            # one-iteration liveness, iterated to a (2-pass) fixed point
            header = analyze_statement(stmt, -1)
            body_live = set(live)
            for _ in range(2):
                body_live |= _live_in_body(stmt.body, frozenset(body_live))
            if isinstance(stmt, ast.For):
                # the loop target is defined by the loop itself, so body
                # uses of it are not live into the loop; uses *after* the
                # loop (the zero-iteration path) survive via `live` below
                body_live -= set(header.writes)
            live = body_live | set(header.reads) | set(live)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        else:
            info = analyze_statement(stmt, -1)
            # a pure definition kills liveness; arrays written element-wise
            # stay live (read-modify-write keeps them in `reads`)
            live -= set(info.writes) - set(info.reads)
            live |= set(info.reads)
    return frozenset(live)


def live_in(continuation_source: str) -> frozenset[str]:
    """Variables live on entry to ``continuation_source``.

    The source is the code that executes after the annotated region; the
    result is the set of names the region must therefore expose as outputs
    (intersected, by the caller, with what the region actually writes).
    """
    tree = ast.parse(textwrap.dedent(continuation_source))
    return _live_in_body(tree.body, frozenset())


def uses_before_defs(continuation_source: str) -> frozenset[str]:
    """Alias of :func:`live_in` named after the use-def chain view."""
    return live_in(continuation_source)
