"""Training-sample generation by input perturbation (§3.1, Step 3).

When the user cannot supply enough distinct input problems, Auto-HPCnet
perturbs the identified input variables following a user-chosen distribution
(Gaussian by default: ``X' ~ N(mu, sigma^2)`` around the base value) and
re-runs the region to collect ground-truth outputs.
"""

from __future__ import annotations

import inspect
import ast
import textwrap
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..sparse import COOMatrix, CSCMatrix, CSRMatrix
from .features import FeatureSchema

__all__ = ["Perturbation", "perturb_value", "returned_names", "SampleGenerator"]

_SPARSE_TYPES = (COOMatrix, CSRMatrix, CSCMatrix)


@dataclass(frozen=True)
class Perturbation:
    """Distribution used to randomize input variables.

    ``kind`` is "gaussian" (additive, scaled by |value|), "uniform"
    (multiplicative in [1-scale, 1+scale]) or "scale" (one global random
    factor per sample).  ``scale`` is the paper's sigma / range knob.
    """

    kind: str = "gaussian"
    scale: float = 0.1
    mean: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("gaussian", "uniform", "scale"):
            raise ValueError(f"unknown perturbation kind {self.kind!r}")
        if self.scale < 0:
            raise ValueError("scale must be non-negative")


def _perturb_array(arr: np.ndarray, p: Perturbation, rng: np.random.Generator) -> np.ndarray:
    magnitude = np.abs(arr) + (np.abs(arr).mean() if arr.size else 1.0) * 0.1 + 1e-12
    if p.kind == "gaussian":
        return arr + p.mean + p.scale * magnitude * rng.standard_normal(arr.shape)
    if p.kind == "uniform":
        return arr * rng.uniform(1.0 - p.scale, 1.0 + p.scale, size=arr.shape)
    factor = 1.0 + p.scale * rng.standard_normal()
    return arr * factor


def perturb_value(value: Any, p: Perturbation, rng: np.random.Generator) -> Any:
    """Perturb one input variable, preserving its type and sparsity pattern.

    Sparse matrices keep their structure — only stored values change — which
    matches the paper's assumption that an NN model serves inputs drawn from
    one distribution (same execution path, §3.2).
    """
    if isinstance(value, _SPARSE_TYPES):
        new_data = _perturb_array(np.asarray(value.data), p, rng)
        if isinstance(value, CSRMatrix):
            return CSRMatrix(value.indptr, value.indices, new_data, value.shape)
        if isinstance(value, CSCMatrix):
            return CSCMatrix(value.indptr, value.indices, new_data, value.shape)
        return COOMatrix(value.row, value.col, new_data, value.shape)
    if isinstance(value, np.ndarray):
        return _perturb_array(value.astype(np.float64), p, rng)
    if isinstance(value, bool):
        raise TypeError("cannot perturb a boolean input")
    if isinstance(value, (int, np.integer)):
        # integer knobs (iteration counts, sizes) keep their type; changing
        # them would change the execution path, which §3.2 forbids for one
        # surrogate, so we only jitter and round
        jittered = _perturb_array(np.asarray([float(value)]), p, rng)[0]
        return max(0, int(round(jittered)))
    if isinstance(value, (float, np.generic)):
        return float(_perturb_array(np.asarray([float(value)]), p, rng)[0])
    raise TypeError(f"cannot perturb value of type {type(value).__name__}")


def returned_names(fn: Callable) -> tuple[str, ...]:
    """Names returned by the region function's final return statement.

    Used to map the region's return value back onto output-variable names
    (``return x`` -> ("x",); ``return x, r`` -> ("x", "r")).
    """
    source = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(source)
    func = next(n for n in tree.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)))
    returns = [n for n in ast.walk(func) if isinstance(n, ast.Return) and n.value is not None]
    if not returns:
        return ()
    value = returns[-1].value
    if isinstance(value, ast.Name):
        return (value.id,)
    if isinstance(value, ast.Tuple) and all(isinstance(e, ast.Name) for e in value.elts):
        return tuple(e.id for e in value.elts)
    if isinstance(value, ast.Dict) and all(
        isinstance(k, ast.Constant) and isinstance(k.value, str) for k in value.keys
    ):
        return tuple(k.value for k in value.keys)
    return ()


class SampleGenerator:
    """Runs the region repeatedly on perturbed inputs to build (X, Y)."""

    def __init__(
        self,
        region_fn: Callable,
        input_schema: FeatureSchema,
        output_schema: FeatureSchema,
        *,
        output_names: Sequence[str] | None = None,
    ) -> None:
        self.region_fn = region_fn
        self.input_schema = input_schema
        self.output_schema = output_schema
        self.output_names = tuple(output_names or returned_names(region_fn))
        if not self.output_names:
            raise ValueError(
                "could not infer output names from the region's return "
                "statement; pass output_names explicitly"
            )

    def _outputs_to_dict(self, result: Any) -> dict[str, Any]:
        if isinstance(result, Mapping):
            return dict(result)
        if isinstance(result, tuple):
            if len(result) != len(self.output_names):
                raise ValueError(
                    f"region returned {len(result)} values but "
                    f"{len(self.output_names)} output names are known"
                )
            return dict(zip(self.output_names, result))
        return {self.output_names[0]: result}

    def run_once(self, inputs: Mapping[str, Any]) -> tuple[np.ndarray, np.ndarray]:
        """One (input-vector, output-vector) pair from a concrete input."""
        result = self.region_fn(**inputs)
        out = self._outputs_to_dict(result)
        x = self.input_schema.flatten(inputs)
        y = self.output_schema.flatten(out)
        return x, y

    def generate(
        self,
        base_inputs: Mapping[str, Any],
        n_samples: int,
        *,
        perturbation: Perturbation = Perturbation(),
        rng: np.random.Generator | None = None,
        perturb_names: Sequence[str] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``n_samples`` training pairs by perturbing inputs.

        ``perturb_names`` restricts which inputs are randomized (defaults to
        every field of the input schema); the remaining base inputs (e.g.
        tolerances) are passed through unchanged.
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        rng = rng or np.random.default_rng(0)
        targets = tuple(perturb_names or self.input_schema.names)
        xs = np.empty((n_samples, self.input_schema.total_size))
        ys = np.empty((n_samples, self.output_schema.total_size))
        for i in range(n_samples):
            sample_inputs = dict(base_inputs)
            for name in targets:
                sample_inputs[name] = perturb_value(sample_inputs[name], perturbation, rng)
            xs[i], ys[i] = self.run_once(sample_inputs)
        return xs, ys
